//! Serving quick start: train a small ATLAS, persist it to a model
//! registry, serve it under **two names** behind one service, register a
//! server-side workload, and fire concurrent requests.
//!
//! ```text
//! cargo run --release --example serve_quickstart
//! ```
//!
//! The same service is what the `serve` binary exposes over
//! stdin/stdout or TCP as JSON lines; see docs/PROTOCOL.md for the wire
//! reference and docs/ARCHITECTURE.md for the request lifecycle.

use std::sync::Arc;

use atlas::core::pipeline::{train_atlas, ExperimentConfig};
use atlas::sim::WorkloadPhase;
use atlas_serve::{AtlasService, ModelCatalog, ModelRegistry, PredictRequest, ServiceConfig};

fn main() {
    // 1. Train at quick scale (a few minutes of CPU at most).
    let cfg = ExperimentConfig::quick();
    println!(
        "training ATLAS (scale {}, {} cycles) on C1/C3/C5/C6...",
        cfg.scale, cfg.cycles
    );
    let trained = train_atlas(&cfg);
    println!(
        "trained in {:.1}s prepare + {:.1}s pretrain + {:.1}s finetune",
        trained.timing.prepare_s, trained.timing.pretrain_s, trained.timing.finetune_s
    );

    // 2. Persist to a registry — the file a production
    //    `serve --registry ... --model quickstart` invocation would read.
    let registry = ModelRegistry::open("target/registry").expect("registry opens");
    let path = registry
        .save("quickstart", &trained.model, &cfg)
        .expect("model saves");
    println!("saved model to {}", path.display());

    // 3. Serve it under two names behind one front door (the shape a
    //    stable/canary rollout takes: `--model stable=quickstart
    //    --model canary=quickstart`). Requests without a `model` field
    //    route to the default (first) entry.
    let mut catalog = ModelCatalog::new();
    catalog
        .load_spec(&registry, "stable=quickstart")
        .expect("stable loads");
    catalog
        .load_spec(&registry, "canary=quickstart")
        .expect("canary loads");
    let service = Arc::new(
        AtlasService::start_catalog(
            catalog,
            ServiceConfig {
                workers: 4,
                ..ServiceConfig::default()
            },
        )
        .expect("catalog serves"),
    );
    println!(
        "hosting models: {:?} (default `{}`)",
        service
            .models()
            .iter()
            .map(|m| m.name.clone())
            .collect::<Vec<_>>(),
        service.default_model()
    );

    // 4. Fire concurrent requests: the unseen designs C2/C4 under both
    //    workloads, twice each — the second round hits the cache.
    let requests: Vec<PredictRequest> = ["C2", "C4"]
        .iter()
        .flat_map(|d| ["W1", "W2"].iter().map(|w| PredictRequest::new(*d, *w, 64)))
        .collect();
    for round in 0..2 {
        let label = if round == 0 { "cold" } else { "warm" };
        std::thread::scope(|scope| {
            let handles: Vec<_> = requests
                .iter()
                .map(|req| {
                    let service = Arc::clone(&service);
                    let req = req.clone();
                    scope.spawn(move || service.call(req).expect("request succeeds"))
                })
                .collect();
            for h in handles {
                let resp = h.join().expect("client thread");
                println!(
                    "[{label}] {}/{}: mean {:.4} W, peak {:.4} W, {:.2} ms{}",
                    resp.design,
                    resp.workload,
                    resp.mean_total_w,
                    resp.peak_total_w,
                    resp.latency_ms,
                    if resp.cache_hit { " (cache hit)" } else { "" },
                );
            }
        });
    }

    // 5. A user-defined workload, two ways. Inline: the schedule rides in
    //    the request's `phases` field. Registered: store it once under a
    //    name (`register_workload` on the wire), then reference it from
    //    any request — the second use below is a cache hit.
    let schedule = vec![
        WorkloadPhase {
            activity: 0.55,
            min_len: 4,
            max_len: 10,
        },
        WorkloadPhase {
            activity: 0.03,
            min_len: 20,
            max_len: 40,
        },
    ];
    let bursty = PredictRequest::with_phases("C2", "bursty", 64, schedule.clone());
    let resp = service.call(bursty).expect("inline workload serves");
    println!(
        "\n[inline] {}/{}: mean {:.4} W, peak {:.4} W",
        resp.design, resp.workload, resp.mean_total_w, resp.peak_total_w
    );

    let (registered, _replaced) = service
        .register_workload("bursty-lib", schedule)
        .expect("workload registers");
    println!(
        "registered workload `{}` ({} phases, fingerprint {:#x})",
        registered.name, registered.phases, registered.fingerprint
    );
    for round in ["cold", "warm"] {
        let resp = service
            .call(PredictRequest::with_workload_name("C4", "bursty-lib", 64))
            .expect("registered workload serves");
        println!(
            "[registered {round}] {}/{}: mean {:.4} W{}",
            resp.design,
            resp.workload,
            resp.mean_total_w,
            if resp.cache_hit { " (cache hit)" } else { "" },
        );
    }

    // 6. A model-addressed request: same key, explicitly on the canary.
    let resp = service
        .call(PredictRequest::new("C2", "W1", 64).on_model("canary"))
        .expect("canary serves");
    println!(
        "\n[canary] {}/{} on `{}`: mean {:.4} W",
        resp.design, resp.workload, resp.model, resp.mean_total_w
    );

    let stats = service.stats();
    println!(
        "\n{} requests served ({} embeddings computed, {} coalesced), \
         embedding cache: {} hits / {} misses, {} of {} budget bytes",
        stats.requests,
        stats.embeddings_computed,
        stats.coalesced_requests,
        stats.embedding_cache.hits,
        stats.embedding_cache.misses,
        stats.embedding_cache.weight,
        stats.embedding_cache.budget,
    );
    for m in &stats.models {
        println!(
            "  model `{}`: {} requests, cache {} entries / {} bytes",
            m.model, m.requests, m.embedding_cache.len, m.embedding_cache.weight
        );
    }
}
