//! Cross-design evaluation (the Table III workflow): train on C1/C3/C5/C6
//! and evaluate on the strictly-unseen C2 and C4 under both workloads,
//! against both the golden labels and the gate-level baseline.
//!
//! Run with:
//! ```text
//! cargo run --release --example crossdesign_eval
//! ```

use atlas_core::pipeline::{train_atlas, ExperimentConfig};

fn main() {
    let mut cfg = ExperimentConfig::quick();
    // A little more budget than `quick()` so the numbers are meaningful.
    cfg.cycles = 120;
    cfg.scale = 0.35;
    cfg.pretrain.steps = 120;
    cfg.pretrain.hidden_dim = 48;
    cfg.pretrain.layers = 2;
    cfg.finetune.cycles_per_design = 24;
    cfg.finetune.gbdt.n_estimators = 120;

    println!("training on C1/C3/C5/C6...");
    let trained = train_atlas(&cfg);
    let (start, end) = trained.pretrain_stats.improvement(12);
    println!("  joint SSL loss: {start:.3} → {end:.3}");

    println!(
        "\n{:<8} {:<4} | {:>9} {:>9} | {:>9} {:>9}",
        "Design", "WL", "ATLAS tot", "ATLAS CT", "Base tot", "Base CT"
    );
    for design in ["C2", "C4"] {
        for workload in ["W1", "W2"] {
            let row = trained.evaluate_test_design(design, workload);
            println!(
                "{:<8} {:<4} | {:>8.2}% {:>8.2}% | {:>8.2}% {:>8.2}%",
                design,
                workload,
                row.atlas_mape_total,
                row.atlas_mape_ct,
                row.baseline_mape_total,
                row.baseline_mape_ct
            );
        }
    }
    println!("\nNeither C2 nor C4 contributed a single sub-module to training; the model");
    println!("generalizes because sub-modules, not designs, are the learning unit.");
    println!("For the full-budget version of this table run:");
    println!("  cargo run --release -p atlas-bench --bin table3");
}
