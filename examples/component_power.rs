//! Component-level power rollups (the Fig. 6 workflow): predict per-cycle
//! sub-module power with a trained ATLAS and roll it up into the five CPU
//! components for floorplan-style feedback.
//!
//! Run with:
//! ```text
//! cargo run --release --example component_power
//! ```

use atlas_core::evaluate::component_table;
use atlas_core::pipeline::{train_atlas, ExperimentConfig};

fn main() {
    let cfg = ExperimentConfig::quick();
    println!("training a small ATLAS (quick config)...");
    let trained = train_atlas(&cfg);

    for design in ["C2", "C4"] {
        let eval = trained.evaluate_test(design, "W1");
        let table = component_table(&eval.labels, &eval.atlas, &eval.gate);
        println!("\ncomponent power of unseen {design} under W1:");
        println!(
            "  {:<12} {:>12} {:>12} {:>9}",
            "component", "label (mW)", "ATLAS (mW)", "MAPE"
        );
        for row in &table {
            println!(
                "  {:<12} {:>12.3} {:>12.3} {:>8.2}%",
                row.component,
                row.label_w * 1e3,
                row.atlas_w * 1e3,
                row.mape
            );
        }
        let biggest = table
            .iter()
            .max_by(|a, b| a.label_w.partial_cmp(&b.label_w).expect("no NaN"))
            .expect("components exist");
        println!(
            "  → hottest component: {} ({:.3} mW)",
            biggest.component,
            biggest.label_w * 1e3
        );
    }
    println!("\nEach component value is the sum of its sub-modules' predictions — the");
    println!("partition is exact, so the rollup adds nothing beyond the model's error.");
}
