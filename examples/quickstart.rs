//! Quickstart: train a small ATLAS and predict per-cycle post-layout
//! power for a design it has never seen — from the gate-level netlist
//! alone.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```

use atlas_core::pipeline::{train_atlas, ExperimentConfig};

fn main() {
    // A scaled-down configuration so the whole protocol (layout + golden
    // labels for four training designs, 5-task pre-training, fine-tuning)
    // runs in about a minute. `ExperimentConfig::default()` is the
    // paper-shaped setup.
    let cfg = ExperimentConfig::quick();

    println!(
        "training ATLAS on C1/C3/C5/C6 (scale {:.2}, {} cycles)...",
        cfg.scale, cfg.cycles
    );
    let trained = train_atlas(&cfg);
    println!(
        "  prepared data in {:.1}s, pre-trained in {:.1}s, fine-tuned in {:.1}s",
        trained.timing.prepare_s, trained.timing.pretrain_s, trained.timing.finetune_s
    );

    // C2 was never seen during training.
    println!("\npredicting the unseen design C2 under workload W1...");
    let eval = trained.evaluate_test("C2", "W1");

    println!("\nper-group MAPE vs golden post-layout power:");
    println!(
        "  combinational : ATLAS {:6.2}%   gate-level tool {:6.2}%",
        eval.row.atlas_mape_comb, eval.row.baseline_mape_comb
    );
    println!(
        "  clock tree    : ATLAS {:6.2}%   gate-level tool {:6.2}%",
        eval.row.atlas_mape_ct, eval.row.baseline_mape_ct
    );
    println!(
        "  register      : ATLAS {:6.2}%   gate-level tool {:6.2}%",
        eval.row.atlas_mape_reg, eval.row.baseline_mape_reg
    );
    println!(
        "  total         : ATLAS {:6.2}%   gate-level tool {:6.2}%",
        eval.row.atlas_mape_total, eval.row.baseline_mape_total
    );

    println!("\nfirst cycles of the total power trace (mW):");
    println!("  cycle   label   ATLAS");
    for t in 0..8 {
        println!(
            "  {t:>5} {:>7.3} {:>7.3}",
            eval.labels.non_memory_total(t) * 1e3,
            eval.atlas.non_memory_total(t) * 1e3
        );
    }
    println!("\nThe gate-level tool cannot see the clock tree at all (100% error); ATLAS");
    println!("predicts it from the netlist embedding alone — the paper's core result.");
}
