//! Per-cycle power tracing of a CPU-like design (the Fig. 5 workflow):
//! simulate a workload, compute golden post-layout power, and inspect the
//! peaks and valleys that only time-based analysis can reveal.
//!
//! This example needs no ML — it exercises the substrate stack: design
//! generation → layout flow → logic simulation → golden power engine.
//!
//! Run with:
//! ```text
//! cargo run --release --example cpu_power_trace
//! ```

use atlas_designs::DesignConfig;
use atlas_layout::{run_layout, LayoutConfig};
use atlas_liberty::{Library, PowerGroup};
use atlas_power::compute_power;
use atlas_sim::{simulate, PhasedWorkload};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let lib = Library::synthetic_40nm();
    let gate = DesignConfig::c2().scaled(0.5).generate();
    println!(
        "design {}: {} cells, {} sub-modules",
        gate.name(),
        gate.cell_count(),
        gate.submodules().len()
    );

    println!("running the layout flow (place, buffer, CTS, route, RC)...");
    let layout = run_layout(&gate, &lib, &LayoutConfig::default());
    println!(
        "  {} → {} cells (+{} buffers, +{} clock cells), {:.0} µm routed wire",
        layout.report.gate_cells,
        layout.report.post_cells,
        layout.report.buffers_added,
        layout.report.clock_cells,
        layout.report.routed_um
    );

    let cycles = 300;
    println!("simulating {cycles} cycles of workload W1...");
    let trace = simulate(&layout.design, &mut PhasedWorkload::w1(7), cycles)?;
    let power = compute_power(&layout.design, &lib, &trace);

    let total = power.non_memory_series();
    let mean = total.iter().sum::<f64>() / cycles as f64;
    let (peak_cycle, peak) = total
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("no NaN"))
        .expect("nonempty");
    let (idle_cycle, idle) = total
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(b.1).expect("no NaN"))
        .expect("nonempty");

    println!("\nper-cycle power (non-memory groups):");
    println!("  mean {:.3} mW", mean * 1e3);
    println!(
        "  peak {:.3} mW at cycle {peak_cycle} ({:+.1}% over mean)",
        peak * 1e3,
        100.0 * (peak / mean - 1.0)
    );
    println!(
        "  idle {:.3} mW at cycle {idle_cycle} ({:+.1}% under mean)",
        idle * 1e3,
        100.0 * (idle / mean - 1.0)
    );
    println!("\ngroup means:");
    for g in PowerGroup::ALL {
        println!("  {:<14} {:.3} mW", g.label(), power.mean_group(g) * 1e3);
    }

    // The fluctuation the paper motivates (peak power, L·di/dt): the
    // combinational group swings with the workload phases while clock +
    // register power stays near-constant.
    let comb = power.group_series(PowerGroup::Combinational);
    let comb_mean = comb.iter().sum::<f64>() / cycles as f64;
    let comb_peak = comb.iter().cloned().fold(0.0f64, f64::max);
    println!(
        "\ncombinational swing: peak/mean = {:.2}x — the per-cycle signal an\naverage-power model cannot see.",
        comb_peak / comb_mean
    );
    Ok(())
}
