//! Cell instances.

use atlas_liberty::{CellClass, Drive};
use serde::{Deserialize, Serialize};

use crate::ids::{NetId, SubmoduleId};

/// Behavioral configuration of an SRAM macro instance.
///
/// SRAM macros are modeled at port granularity: the instance samples a read
/// enable, a write enable, and single-bit address/data digests. This is all
/// the power engine needs (per-cycle read/write access counts, §VI-B) while
/// still giving the logic simulator a deterministic sequential element whose
/// output feeds downstream toggles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SramConfig {
    /// Words in the instantiated macro.
    pub words: u32,
    /// Bits per word.
    pub bits: u32,
}

/// One cell instance in a [`crate::Design`].
///
/// Pin conventions by class:
///
/// * combinational classes: `inputs` holds the logic pins in
///   [`CellClass`] order, `clock`/`reset` are `None`;
/// * `Dff`: `inputs[0]` = D, `clock` = Some;
/// * `Dffr`: `inputs[0]` = D, `clock` = Some, `reset` = Some;
/// * `Sram`: `inputs = [ren, wen, addr, data]`, `clock` = Some.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cell {
    pub(crate) class: CellClass,
    pub(crate) drive: Drive,
    pub(crate) inputs: Vec<NetId>,
    pub(crate) output: NetId,
    pub(crate) clock: Option<NetId>,
    pub(crate) reset: Option<NetId>,
    pub(crate) submodule: SubmoduleId,
    pub(crate) sram: Option<SramConfig>,
}

impl Cell {
    /// Functional class.
    pub fn class(&self) -> CellClass {
        self.class
    }

    /// Drive strength.
    pub fn drive(&self) -> Drive {
        self.drive
    }

    /// Logic input nets in pin order.
    pub fn inputs(&self) -> &[NetId] {
        &self.inputs
    }

    /// Output net.
    pub fn output(&self) -> NetId {
        self.output
    }

    /// Clock net, for sequential cells.
    pub fn clock(&self) -> Option<NetId> {
        self.clock
    }

    /// Synchronous-reset net, for `Dffr`.
    pub fn reset(&self) -> Option<NetId> {
        self.reset
    }

    /// The sub-module this cell belongs to.
    pub fn submodule(&self) -> SubmoduleId {
        self.submodule
    }

    /// SRAM geometry, for `Sram` cells.
    pub fn sram(&self) -> Option<SramConfig> {
        self.sram
    }

    /// Whether the cell is clocked.
    pub fn is_sequential(&self) -> bool {
        self.class.is_sequential()
    }
}
