//! Validated netlist construction.

use std::fmt;

use atlas_liberty::{CellClass, Drive};

use crate::cell::{Cell, SramConfig};
use crate::design::{Design, Stage, Submodule};
use crate::ids::{CellId, NetId, Sink, SinkPin, SubmoduleId};
use crate::net::Net;
use crate::topo;

/// Error produced while building or finalizing a netlist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// A net has no driver and is not a primary input / clock / reset.
    UndrivenNet(NetId),
    /// Attempted to drive a net that already has a driver.
    MultiplyDrivenNet(NetId),
    /// Wrong number of input nets for the cell class.
    BadPinCount {
        /// The offending class.
        class: CellClass,
        /// Pins the class requires.
        expected: usize,
        /// Pins supplied.
        got: usize,
    },
    /// A purely combinational cycle exists (no register on the loop).
    CombinationalCycle(CellId),
    /// The design has no cells.
    Empty,
    /// Referenced a sub-module id that was never declared.
    UnknownSubmodule(SubmoduleId),
    /// A sequential cell was added but no clock net exists.
    NoClock,
    /// Attempted to bind the clock or reset to a second, different net.
    ConflictingBind(NetId),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::UndrivenNet(n) => write!(f, "net {n} has no driver"),
            BuildError::MultiplyDrivenNet(n) => write!(f, "net {n} is driven more than once"),
            BuildError::BadPinCount {
                class,
                expected,
                got,
            } => {
                write!(f, "cell class {class} expects {expected} inputs, got {got}")
            }
            BuildError::CombinationalCycle(c) => {
                write!(f, "combinational cycle through cell {c}")
            }
            BuildError::Empty => write!(f, "design has no cells"),
            BuildError::UnknownSubmodule(s) => write!(f, "unknown sub-module {s}"),
            BuildError::NoClock => write!(f, "sequential cell added without a clock net"),
            BuildError::ConflictingBind(n) => {
                write!(f, "clock or reset is already bound to a net other than {n}")
            }
        }
    }
}

impl std::error::Error for BuildError {}

/// Incremental, validated builder for a [`Design`].
///
/// # Examples
///
/// ```
/// use atlas_liberty::{CellClass, Drive};
/// use atlas_netlist::NetlistBuilder;
///
/// # fn main() -> Result<(), atlas_netlist::BuildError> {
/// let mut b = NetlistBuilder::new("demo");
/// let sm = b.add_submodule("top.u0", "top");
/// let a = b.add_input();
/// let c = b.add_input();
/// let y = b.add_cell(CellClass::Xor2, Drive::X1, &[a, c], sm)?;
/// let q = b.add_dff(y, sm)?;
/// b.mark_output(q);
/// let design = b.finish()?;
/// assert_eq!(design.cell_count(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct NetlistBuilder {
    name: String,
    cells: Vec<Cell>,
    nets: Vec<Net>,
    submodules: Vec<Submodule>,
    primary_inputs: Vec<NetId>,
    primary_outputs: Vec<NetId>,
    clock: Option<NetId>,
    reset: Option<NetId>,
}

impl NetlistBuilder {
    /// Start a new empty design.
    pub fn new(name: impl Into<String>) -> NetlistBuilder {
        NetlistBuilder {
            name: name.into(),
            cells: Vec::new(),
            nets: Vec::new(),
            submodules: Vec::new(),
            primary_inputs: Vec::new(),
            primary_outputs: Vec::new(),
            clock: None,
            reset: None,
        }
    }

    /// Declare a sub-module under a component.
    pub fn add_submodule(
        &mut self,
        name: impl Into<String>,
        component: impl Into<String>,
    ) -> SubmoduleId {
        let id = SubmoduleId::from_index(self.submodules.len());
        self.submodules.push(Submodule {
            name: name.into(),
            component: component.into(),
        });
        id
    }

    /// Number of cells added so far.
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// Create a fresh undriven net (must be driven before [`finish`](Self::finish)).
    pub fn new_net(&mut self) -> NetId {
        let id = NetId::from_index(self.nets.len());
        self.nets.push(Net {
            driver: None,
            sinks: Vec::new(),
            wire_cap: 0.0,
        });
        id
    }

    /// Create a primary-input net.
    pub fn add_input(&mut self) -> NetId {
        let id = self.new_net();
        self.primary_inputs.push(id);
        id
    }

    /// Create several primary-input nets.
    pub fn add_inputs(&mut self, n: usize) -> Vec<NetId> {
        (0..n).map(|_| self.add_input()).collect()
    }

    /// The design's clock root net (created on first use).
    pub fn clock_net(&mut self) -> NetId {
        if let Some(c) = self.clock {
            c
        } else {
            let c = self.new_net();
            self.clock = Some(c);
            c
        }
    }

    /// The design's reset net (created on first use).
    pub fn reset_net(&mut self) -> NetId {
        if let Some(r) = self.reset {
            r
        } else {
            let r = self.new_net();
            self.reset = Some(r);
            r
        }
    }

    /// Register an existing net as a primary input (idempotent).
    ///
    /// [`add_input`](Self::add_input) creates the net and marks it in one
    /// step; this variant exists for readers that allocate every net up
    /// front (the structural Verilog reader) and classify them afterward.
    pub fn mark_input(&mut self, net: NetId) {
        if !self.primary_inputs.contains(&net) {
            self.primary_inputs.push(net);
        }
    }

    /// Bind the design clock to an existing net instead of letting
    /// [`clock_net`](Self::clock_net) create a fresh one.
    ///
    /// # Errors
    ///
    /// [`BuildError::ConflictingBind`] if a different clock net is
    /// already bound; rebinding the same net is a no-op.
    pub fn bind_clock(&mut self, net: NetId) -> Result<(), BuildError> {
        match self.clock {
            None => {
                self.clock = Some(net);
                Ok(())
            }
            Some(c) if c == net => Ok(()),
            Some(_) => Err(BuildError::ConflictingBind(net)),
        }
    }

    /// Bind the design reset to an existing net; see
    /// [`bind_clock`](Self::bind_clock).
    ///
    /// # Errors
    ///
    /// [`BuildError::ConflictingBind`] if a different reset net is
    /// already bound.
    pub fn bind_reset(&mut self, net: NetId) -> Result<(), BuildError> {
        match self.reset {
            None => {
                self.reset = Some(net);
                Ok(())
            }
            Some(r) if r == net => Ok(()),
            Some(_) => Err(BuildError::ConflictingBind(net)),
        }
    }

    /// Mark a net as a primary output.
    pub fn mark_output(&mut self, net: NetId) {
        if !self.primary_outputs.contains(&net) {
            self.primary_outputs.push(net);
        }
    }

    /// Add a combinational cell; creates and returns its output net.
    ///
    /// # Errors
    ///
    /// [`BuildError::BadPinCount`] if `inputs` does not match the class, or
    /// [`BuildError::UnknownSubmodule`].
    pub fn add_cell(
        &mut self,
        class: CellClass,
        drive: Drive,
        inputs: &[NetId],
        submodule: SubmoduleId,
    ) -> Result<NetId, BuildError> {
        let out = self.new_net();
        self.add_cell_onto(out, class, drive, inputs, submodule)?;
        Ok(out)
    }

    /// Add a combinational cell driving the existing (undriven) net `out`.
    ///
    /// # Errors
    ///
    /// [`BuildError::MultiplyDrivenNet`], [`BuildError::BadPinCount`], or
    /// [`BuildError::UnknownSubmodule`].
    pub fn add_cell_onto(
        &mut self,
        out: NetId,
        class: CellClass,
        drive: Drive,
        inputs: &[NetId],
        submodule: SubmoduleId,
    ) -> Result<CellId, BuildError> {
        if inputs.len() != class.input_pins() {
            return Err(BuildError::BadPinCount {
                class,
                expected: class.input_pins(),
                got: inputs.len(),
            });
        }
        self.push_cell(
            class,
            drive,
            inputs.to_vec(),
            out,
            None,
            None,
            submodule,
            None,
        )
    }

    /// Add a D flip-flop clocked by the design clock; returns the Q net.
    ///
    /// # Errors
    ///
    /// Propagates the same errors as [`add_cell`](Self::add_cell).
    pub fn add_dff(&mut self, d: NetId, submodule: SubmoduleId) -> Result<NetId, BuildError> {
        let q = self.new_net();
        self.add_dff_onto(q, d, submodule)?;
        Ok(q)
    }

    /// Add a D flip-flop driving the existing net `q`.
    ///
    /// # Errors
    ///
    /// [`BuildError::MultiplyDrivenNet`] or [`BuildError::UnknownSubmodule`].
    pub fn add_dff_onto(
        &mut self,
        q: NetId,
        d: NetId,
        submodule: SubmoduleId,
    ) -> Result<CellId, BuildError> {
        let clk = self.clock_net();
        self.push_cell(
            CellClass::Dff,
            Drive::X1,
            vec![d],
            q,
            Some(clk),
            None,
            submodule,
            None,
        )
    }

    /// Add a resettable D flip-flop; returns the Q net.
    ///
    /// # Errors
    ///
    /// Propagates the same errors as [`add_cell`](Self::add_cell).
    pub fn add_dffr(&mut self, d: NetId, submodule: SubmoduleId) -> Result<NetId, BuildError> {
        let q = self.new_net();
        self.add_dffr_onto(q, d, submodule)?;
        Ok(q)
    }

    /// Add a resettable D flip-flop driving the existing net `q`.
    ///
    /// # Errors
    ///
    /// [`BuildError::MultiplyDrivenNet`] or [`BuildError::UnknownSubmodule`].
    pub fn add_dffr_onto(
        &mut self,
        q: NetId,
        d: NetId,
        submodule: SubmoduleId,
    ) -> Result<CellId, BuildError> {
        let clk = self.clock_net();
        let rst = self.reset_net();
        self.push_cell(
            CellClass::Dffr,
            Drive::X1,
            vec![d],
            q,
            Some(clk),
            Some(rst),
            submodule,
            None,
        )
    }

    /// Add an SRAM macro instance. `inputs = [ren, wen, addr, data]` are
    /// single-bit digests of the ports; returns the read-data digest net.
    ///
    /// # Errors
    ///
    /// Propagates the same errors as [`add_cell`](Self::add_cell).
    pub fn add_sram(
        &mut self,
        words: u32,
        bits: u32,
        ren: NetId,
        wen: NetId,
        addr: NetId,
        data: NetId,
        submodule: SubmoduleId,
    ) -> Result<NetId, BuildError> {
        let q = self.new_net();
        self.add_sram_onto(q, words, bits, ren, wen, addr, data, submodule)?;
        Ok(q)
    }

    /// Add an SRAM macro instance driving the existing net `q`.
    ///
    /// # Errors
    ///
    /// [`BuildError::MultiplyDrivenNet`] or [`BuildError::UnknownSubmodule`].
    #[allow(clippy::too_many_arguments)]
    pub fn add_sram_onto(
        &mut self,
        q: NetId,
        words: u32,
        bits: u32,
        ren: NetId,
        wen: NetId,
        addr: NetId,
        data: NetId,
        submodule: SubmoduleId,
    ) -> Result<CellId, BuildError> {
        let clk = self.clock_net();
        self.push_cell(
            CellClass::Sram,
            Drive::X1,
            vec![ren, wen, addr, data],
            q,
            Some(clk),
            None,
            submodule,
            Some(SramConfig { words, bits }),
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn push_cell(
        &mut self,
        class: CellClass,
        drive: Drive,
        inputs: Vec<NetId>,
        output: NetId,
        clock: Option<NetId>,
        reset: Option<NetId>,
        submodule: SubmoduleId,
        sram: Option<SramConfig>,
    ) -> Result<CellId, BuildError> {
        if submodule.index() >= self.submodules.len() {
            return Err(BuildError::UnknownSubmodule(submodule));
        }
        if self.nets[output.index()].driver.is_some() {
            return Err(BuildError::MultiplyDrivenNet(output));
        }
        let id = CellId::from_index(self.cells.len());
        self.nets[output.index()].driver = Some(id);
        for (pin, &net) in inputs.iter().enumerate() {
            self.nets[net.index()]
                .sinks
                .push(Sink::input(id, pin as u8));
        }
        if let Some(clk) = clock {
            self.nets[clk.index()].sinks.push(Sink::clock(id));
        }
        if let Some(rst) = reset {
            self.nets[rst.index()].sinks.push(Sink {
                cell: id,
                pin: SinkPin::Reset,
            });
        }
        self.cells.push(Cell {
            class,
            drive,
            inputs,
            output,
            clock,
            reset,
            submodule,
            sram,
        });
        Ok(id)
    }

    /// Validate and produce the final [`Design`].
    ///
    /// # Errors
    ///
    /// * [`BuildError::Empty`] — no cells.
    /// * [`BuildError::UndrivenNet`] — a net with neither a driver nor
    ///   primary-input / clock / reset status.
    /// * [`BuildError::CombinationalCycle`] — a register-free loop.
    pub fn finish(self) -> Result<Design, BuildError> {
        if self.cells.is_empty() {
            return Err(BuildError::Empty);
        }
        for (i, net) in self.nets.iter().enumerate() {
            let id = NetId::from_index(i);
            let is_source = self.primary_inputs.contains(&id)
                || self.clock == Some(id)
                || self.reset == Some(id);
            if net.driver.is_none() && !is_source {
                return Err(BuildError::UndrivenNet(id));
            }
        }
        let design = Design {
            name: self.name,
            stage: Stage::GateLevel,
            cells: self.cells,
            nets: self.nets,
            submodules: self.submodules,
            primary_inputs: self.primary_inputs,
            primary_outputs: self.primary_outputs,
            clock: self.clock,
            reset: self.reset,
        };
        if let Err(cell) = topo::levelize(&design) {
            return Err(BuildError::CombinationalCycle(cell));
        }
        Ok(design)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_design_is_an_error() {
        let b = NetlistBuilder::new("empty");
        assert_eq!(b.finish().unwrap_err(), BuildError::Empty);
    }

    #[test]
    fn bad_pin_count_is_an_error() {
        let mut b = NetlistBuilder::new("bad");
        let sm = b.add_submodule("t.u", "t");
        let a = b.add_input();
        let err = b
            .add_cell(CellClass::Nand2, Drive::X1, &[a], sm)
            .unwrap_err();
        assert!(matches!(
            err,
            BuildError::BadPinCount {
                expected: 2,
                got: 1,
                ..
            }
        ));
    }

    #[test]
    fn undriven_net_is_an_error() {
        let mut b = NetlistBuilder::new("undriven");
        let sm = b.add_submodule("t.u", "t");
        let dangling = b.new_net();
        let a = b.add_input();
        b.add_cell(CellClass::And2, Drive::X1, &[a, dangling], sm)
            .expect("structurally fine at add time");
        let err = b.finish().unwrap_err();
        assert!(matches!(err, BuildError::UndrivenNet(_)));
    }

    #[test]
    fn multiply_driven_net_is_an_error() {
        let mut b = NetlistBuilder::new("multi");
        let sm = b.add_submodule("t.u", "t");
        let a = b.add_input();
        let y = b.add_cell(CellClass::Inv, Drive::X1, &[a], sm).expect("ok");
        let err = b
            .add_cell_onto(y, CellClass::Inv, Drive::X1, &[a], sm)
            .unwrap_err();
        assert_eq!(err, BuildError::MultiplyDrivenNet(y));
    }

    #[test]
    fn unknown_submodule_is_an_error() {
        let mut b = NetlistBuilder::new("nosm");
        let a = b.add_input();
        let err = b
            .add_cell(CellClass::Inv, Drive::X1, &[a], SubmoduleId::from_index(5))
            .unwrap_err();
        assert!(matches!(err, BuildError::UnknownSubmodule(_)));
    }

    #[test]
    fn combinational_cycle_is_an_error() {
        let mut b = NetlistBuilder::new("cycle");
        let sm = b.add_submodule("t.u", "t");
        let loopback = b.new_net();
        let a = b.add_input();
        let y = b
            .add_cell(CellClass::And2, Drive::X1, &[a, loopback], sm)
            .expect("ok");
        b.add_cell_onto(loopback, CellClass::Inv, Drive::X1, &[y], sm)
            .expect("ok");
        let err = b.finish().unwrap_err();
        assert!(matches!(err, BuildError::CombinationalCycle(_)));
    }

    #[test]
    fn register_breaks_cycle() {
        let mut b = NetlistBuilder::new("regloop");
        let sm = b.add_submodule("t.u", "t");
        let q = b.new_net();
        let nq = b.add_cell(CellClass::Inv, Drive::X1, &[q], sm).expect("ok");
        b.add_dff_onto(q, nq, sm).expect("ok");
        assert!(b.finish().is_ok());
    }

    #[test]
    fn sram_wiring() {
        let mut b = NetlistBuilder::new("mem");
        let sm = b.add_submodule("t.mem", "t");
        let ren = b.add_input();
        let wen = b.add_input();
        let addr = b.add_input();
        let data = b.add_input();
        let q = b.add_sram(512, 64, ren, wen, addr, data, sm).expect("ok");
        b.mark_output(q);
        let d = b.finish().expect("valid");
        let sram = &d.cells()[0];
        assert_eq!(sram.class(), CellClass::Sram);
        assert_eq!(sram.sram().expect("has config").words, 512);
        assert!(d.validate().is_empty());
    }

    #[test]
    fn outputs_deduplicated() {
        let mut b = NetlistBuilder::new("dup");
        let sm = b.add_submodule("t.u", "t");
        let a = b.add_input();
        let y = b.add_cell(CellClass::Buf, Drive::X1, &[a], sm).expect("ok");
        b.mark_output(y);
        b.mark_output(y);
        let d = b.finish().expect("valid");
        assert_eq!(d.primary_outputs().len(), 1);
    }
}
