//! Combinational levelization (topological ordering).
//!
//! Sequential cell outputs and primary inputs are sources; the levelized
//! order visits every combinational cell after all of its fanin cells.
//! This single pass is the backbone of the cycle-based simulator and of
//! slew propagation in the layout flow.

use crate::design::Design;
use crate::ids::CellId;

/// Compute a topological order of the combinational cells.
///
/// Returns `Ok(order)` (combinational cells only, in dependency order), or
/// `Err(cell)` naming a cell on a register-free cycle.
///
/// # Examples
///
/// ```
/// use atlas_liberty::{CellClass, Drive};
/// use atlas_netlist::{topo, NetlistBuilder};
///
/// # fn main() -> Result<(), atlas_netlist::BuildError> {
/// let mut b = NetlistBuilder::new("chain");
/// let sm = b.add_submodule("t.u", "t");
/// let a = b.add_input();
/// let x = b.add_cell(CellClass::Inv, Drive::X1, &[a], sm)?;
/// let y = b.add_cell(CellClass::Inv, Drive::X1, &[x], sm)?;
/// b.mark_output(y);
/// let d = b.finish()?;
/// let order = topo::levelize(&d).expect("acyclic");
/// assert_eq!(order.len(), 2);
/// # Ok(())
/// # }
/// ```
pub fn levelize(design: &Design) -> Result<Vec<CellId>, CellId> {
    let n = design.cell_count();
    // indegree = number of inputs driven by *combinational* cells.
    let mut indegree = vec![0u32; n];
    let mut comb_count = 0usize;
    for (i, cell) in design.cells().iter().enumerate() {
        if cell.class().is_sequential() {
            continue;
        }
        comb_count += 1;
        indegree[i] = cell
            .inputs()
            .iter()
            .filter(|&&net| {
                design
                    .net(net)
                    .driver()
                    .map(|d| !design.cell(d).class().is_sequential())
                    .unwrap_or(false)
            })
            .count() as u32;
    }

    let mut order = Vec::with_capacity(comb_count);
    let mut queue: Vec<CellId> = design
        .cell_ids()
        .filter(|&id| !design.cell(id).class().is_sequential() && indegree[id.index()] == 0)
        .collect();

    while let Some(id) = queue.pop() {
        order.push(id);
        let out = design.cell(id).output();
        for sink in design.net(out).sinks() {
            let sink_cell = design.cell(sink.cell);
            if sink_cell.class().is_sequential() {
                continue;
            }
            let d = &mut indegree[sink.cell.index()];
            debug_assert!(*d > 0);
            *d -= 1;
            if *d == 0 {
                queue.push(sink.cell);
            }
        }
    }

    if order.len() != comb_count {
        // Some combinational cell never reached indegree 0 → cycle.
        let stuck = design
            .cell_ids()
            .find(|&id| !design.cell(id).class().is_sequential() && indegree[id.index()] > 0)
            .expect("a cell with nonzero indegree exists on a cycle");
        return Err(stuck);
    }
    Ok(order)
}

/// Logic depth (in cells) of each combinational cell, and the overall
/// maximum — a proxy for the critical path length used by gate sizing.
///
/// Returns `(levels, max_level)`; `levels[cell] == 0` for sequential cells
/// and combinational cells fed only by sources.
pub fn levels(design: &Design) -> (Vec<u32>, u32) {
    let order = levelize(design).unwrap_or_default();
    let mut level = vec![0u32; design.cell_count()];
    let mut max = 0;
    for id in order {
        let cell = design.cell(id);
        let lv = cell
            .inputs()
            .iter()
            .filter_map(|&net| design.net(net).driver())
            .filter(|&d| !design.cell(d).class().is_sequential())
            .map(|d| level[d.index()] + 1)
            .max()
            .unwrap_or(0);
        level[id.index()] = lv;
        max = max.max(lv);
    }
    (level, max)
}

#[cfg(test)]
mod tests {
    use atlas_liberty::{CellClass, Drive};

    use super::*;
    use crate::builder::NetlistBuilder;

    fn chain(n: usize) -> Design {
        let mut b = NetlistBuilder::new("chain");
        let sm = b.add_submodule("t.u", "t");
        let mut cur = b.add_input();
        for _ in 0..n {
            cur = b
                .add_cell(CellClass::Inv, Drive::X1, &[cur], sm)
                .expect("ok");
        }
        b.mark_output(cur);
        b.finish().expect("valid")
    }

    #[test]
    fn order_respects_dependencies() {
        let d = chain(10);
        let order = levelize(&d).expect("acyclic");
        assert_eq!(order.len(), 10);
        let pos: Vec<usize> = {
            let mut p = vec![0; d.cell_count()];
            for (i, id) in order.iter().enumerate() {
                p[id.index()] = i;
            }
            p
        };
        for id in d.cell_ids() {
            let cell = d.cell(id);
            for &input in cell.inputs() {
                if let Some(drv) = d.net(input).driver() {
                    if !d.cell(drv).class().is_sequential() {
                        assert!(pos[drv.index()] < pos[id.index()]);
                    }
                }
            }
        }
    }

    #[test]
    fn chain_levels() {
        let d = chain(5);
        let (_, max) = levels(&d);
        assert_eq!(max, 4); // first inverter is level 0
    }

    #[test]
    fn registers_are_sources() {
        let mut b = NetlistBuilder::new("ring");
        let sm = b.add_submodule("t.u", "t");
        let q = b.new_net();
        let nq = b.add_cell(CellClass::Inv, Drive::X1, &[q], sm).expect("ok");
        b.add_dff_onto(q, nq, sm).expect("ok");
        let d = b.finish().expect("valid");
        let order = levelize(&d).expect("register breaks the loop");
        assert_eq!(order.len(), 1);
    }
}
