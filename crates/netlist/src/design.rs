//! The flat design container and its editing API.

use atlas_liberty::{CellClass, Drive, PowerGroup};
use serde::{Deserialize, Serialize};

use crate::cell::{Cell, SramConfig};
use crate::ids::{CellId, NetId, Sink, SinkPin, SubmoduleId};
use crate::net::Net;

/// Which stage of the flow a netlist snapshot represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Stage {
    /// Post-synthesis gate-level netlist (`Ng` or its equivalent `N+g`):
    /// no clock tree, no wire parasitics.
    GateLevel,
    /// Post-layout netlist (`Np`): clock tree synthesized, buffers inserted,
    /// drives resized, per-net wire capacitance annotated.
    PostLayout,
}

/// One non-overlapping sub-module: the unit ATLAS encodes and predicts
/// power for (paper §III-A). Each sub-module belongs to a named component
/// (e.g. `frontend`, `lsu`) used for Fig. 6-style rollups.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Submodule {
    pub(crate) name: String,
    pub(crate) component: String,
}

impl Submodule {
    /// Full hierarchical name, e.g. `core.alu0`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Owning component, e.g. `core`.
    pub fn component(&self) -> &str {
        &self.component
    }
}

/// A flat gate-level design: cells, nets, sub-modules, and port lists.
///
/// Constructed with [`crate::NetlistBuilder`]; edited *additively* by the
/// layout flow (cells are never removed, mirroring how timing optimization
/// and CTS only grow the cell count in Table II of the paper).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Design {
    pub(crate) name: String,
    pub(crate) stage: Stage,
    pub(crate) cells: Vec<Cell>,
    pub(crate) nets: Vec<Net>,
    pub(crate) submodules: Vec<Submodule>,
    pub(crate) primary_inputs: Vec<NetId>,
    pub(crate) primary_outputs: Vec<NetId>,
    pub(crate) clock: Option<NetId>,
    pub(crate) reset: Option<NetId>,
}

impl Design {
    /// Design name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Flow stage of this snapshot.
    pub fn stage(&self) -> Stage {
        self.stage
    }

    /// Mark this snapshot as post-layout. Used by the layout flow.
    pub fn set_stage(&mut self, stage: Stage) {
        self.stage = stage;
    }

    /// Number of cell instances.
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// Number of nets.
    pub fn net_count(&self) -> usize {
        self.nets.len()
    }

    /// All cells, indexable by [`CellId::index`].
    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }

    /// All nets, indexable by [`NetId::index`].
    pub fn nets(&self) -> &[Net] {
        &self.nets
    }

    /// All sub-modules.
    pub fn submodules(&self) -> &[Submodule] {
        &self.submodules
    }

    /// Look up one cell.
    pub fn cell(&self, id: CellId) -> &Cell {
        &self.cells[id.index()]
    }

    /// Look up one net.
    pub fn net(&self, id: NetId) -> &Net {
        &self.nets[id.index()]
    }

    /// Look up one sub-module.
    pub fn submodule(&self, id: SubmoduleId) -> &Submodule {
        &self.submodules[id.index()]
    }

    /// Iterate cell ids.
    pub fn cell_ids(&self) -> impl Iterator<Item = CellId> + '_ {
        (0..self.cells.len()).map(CellId::from_index)
    }

    /// Iterate net ids.
    pub fn net_ids(&self) -> impl Iterator<Item = NetId> + '_ {
        (0..self.nets.len()).map(NetId::from_index)
    }

    /// Iterate sub-module ids.
    pub fn submodule_ids(&self) -> impl Iterator<Item = SubmoduleId> + '_ {
        (0..self.submodules.len()).map(SubmoduleId::from_index)
    }

    /// Primary input nets (excluding clock and reset).
    pub fn primary_inputs(&self) -> &[NetId] {
        &self.primary_inputs
    }

    /// Primary output nets.
    pub fn primary_outputs(&self) -> &[NetId] {
        &self.primary_outputs
    }

    /// The clock root net, if the design is sequential.
    pub fn clock(&self) -> Option<NetId> {
        self.clock
    }

    /// The reset net, if present.
    pub fn reset(&self) -> Option<NetId> {
        self.reset
    }

    /// The distinct component names, in first-appearance order.
    pub fn components(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        for sm in &self.submodules {
            if !out.contains(&sm.component.as_str()) {
                out.push(&sm.component);
            }
        }
        out
    }

    /// Count cells in each power group.
    pub fn group_counts(&self) -> [usize; 4] {
        let mut counts = [0usize; 4];
        for cell in &self.cells {
            counts[cell.class().power_group().index()] += 1;
        }
        counts
    }

    /// Count cells of one power group.
    pub fn count_in_group(&self, group: PowerGroup) -> usize {
        self.group_counts()[group.index()]
    }

    // -----------------------------------------------------------------
    // Additive editing API (used by the layout flow)
    // -----------------------------------------------------------------

    /// Create a fresh undriven net and return its id.
    pub fn add_net(&mut self) -> NetId {
        let id = NetId::from_index(self.nets.len());
        self.nets.push(Net {
            driver: None,
            sinks: Vec::new(),
            wire_cap: 0.0,
        });
        id
    }

    /// Add a new sub-module (used by CTS to group clock-tree cells).
    pub fn add_submodule(
        &mut self,
        name: impl Into<String>,
        component: impl Into<String>,
    ) -> SubmoduleId {
        let id = SubmoduleId::from_index(self.submodules.len());
        self.submodules.push(Submodule {
            name: name.into(),
            component: component.into(),
        });
        id
    }

    /// Insert a new cell driving `output`. All nets must already exist;
    /// `output` must be undriven. Sink lists of the input nets are updated.
    ///
    /// # Panics
    ///
    /// Panics if `output` already has a driver or if the input count does
    /// not match the class's pin count (these indicate a bug in the caller,
    /// not a recoverable condition — the layout flow is trusted code).
    #[allow(clippy::too_many_arguments)]
    pub fn insert_cell(
        &mut self,
        class: CellClass,
        drive: Drive,
        inputs: &[NetId],
        output: NetId,
        clock: Option<NetId>,
        reset: Option<NetId>,
        submodule: SubmoduleId,
        sram: Option<SramConfig>,
    ) -> CellId {
        assert_eq!(
            inputs.len(),
            class.input_pins(),
            "{class} expects {} inputs",
            class.input_pins()
        );
        assert!(
            self.nets[output.index()].driver.is_none(),
            "net {output} is already driven"
        );
        let id = CellId::from_index(self.cells.len());
        self.cells.push(Cell {
            class,
            drive,
            inputs: inputs.to_vec(),
            output,
            clock,
            reset,
            submodule,
            sram,
        });
        self.nets[output.index()].driver = Some(id);
        for (pin, &net) in inputs.iter().enumerate() {
            self.nets[net.index()]
                .sinks
                .push(Sink::input(id, pin as u8));
        }
        if let Some(clk) = clock {
            self.nets[clk.index()].sinks.push(Sink::clock(id));
        }
        if let Some(rst) = reset {
            self.nets[rst.index()].sinks.push(Sink {
                cell: id,
                pin: SinkPin::Reset,
            });
        }
        id
    }

    /// Move the given sinks from net `from` to net `to`, rewiring the sink
    /// cells' pin references. This is the primitive behind buffer insertion
    /// and clock-tree construction.
    ///
    /// Sinks not currently on `from` are ignored.
    pub fn move_sinks(&mut self, from: NetId, to: NetId, sinks: &[Sink]) {
        if from == to {
            return;
        }
        let wanted: std::collections::HashSet<Sink> = sinks.iter().copied().collect();
        let from_net = &mut self.nets[from.index()];
        let mut moved = Vec::new();
        from_net.sinks.retain(|s| {
            if wanted.contains(s) {
                moved.push(*s);
                false
            } else {
                true
            }
        });
        for sink in &moved {
            let cell = &mut self.cells[sink.cell.index()];
            match sink.pin {
                SinkPin::Input(p) => cell.inputs[p as usize] = to,
                SinkPin::Clock => cell.clock = Some(to),
                SinkPin::Reset => cell.reset = Some(to),
            }
        }
        self.nets[to.index()].sinks.extend(moved);
    }

    /// Change a cell's drive strength in place (gate sizing).
    pub fn set_drive(&mut self, cell: CellId, drive: Drive) {
        self.cells[cell.index()].drive = drive;
    }

    /// Annotate a net's wire capacitance (pF). Used by parasitic estimation.
    pub fn set_wire_cap(&mut self, net: NetId, cap: f64) {
        self.nets[net.index()].wire_cap = cap;
    }

    /// Check structural invariants; returns a list of human-readable
    /// violations (empty if consistent). Used by tests and after layout
    /// transformations.
    pub fn validate(&self) -> Vec<String> {
        let mut problems = Vec::new();
        for (i, cell) in self.cells.iter().enumerate() {
            let id = CellId::from_index(i);
            if cell.inputs.len() != cell.class.input_pins() {
                problems.push(format!(
                    "cell {id} ({}) has {} inputs, expected {}",
                    cell.class,
                    cell.inputs.len(),
                    cell.class.input_pins()
                ));
            }
            if self.nets[cell.output.index()].driver != Some(id) {
                problems.push(format!("cell {id} output net does not point back to it"));
            }
            if cell.class.is_sequential() && cell.clock.is_none() {
                problems.push(format!("sequential cell {id} has no clock"));
            }
            for (pin, &net) in cell.inputs.iter().enumerate() {
                let ok = self.nets[net.index()]
                    .sinks
                    .iter()
                    .any(|s| s.cell == id && s.pin == SinkPin::Input(pin as u8));
                if !ok {
                    problems.push(format!(
                        "cell {id} input pin {pin} missing from net {net} sinks"
                    ));
                }
            }
        }
        for (i, net) in self.nets.iter().enumerate() {
            let id = NetId::from_index(i);
            if let Some(driver) = net.driver {
                if self.cells[driver.index()].output != id {
                    problems.push(format!("net {id} driver does not drive it"));
                }
            }
            for sink in &net.sinks {
                let cell = &self.cells[sink.cell.index()];
                let ok = match sink.pin {
                    SinkPin::Input(p) => cell.inputs.get(p as usize) == Some(&id),
                    SinkPin::Clock => cell.clock == Some(id),
                    SinkPin::Reset => cell.reset == Some(id),
                };
                if !ok {
                    problems.push(format!("net {id} sink {sink:?} does not reference it"));
                }
            }
        }
        problems
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetlistBuilder;

    fn tiny() -> Design {
        let mut b = NetlistBuilder::new("tiny");
        let sm = b.add_submodule("top.u0", "top");
        let a = b.add_input();
        let bnet = b.add_input();
        let y = b
            .add_cell(CellClass::Nand2, Drive::X1, &[a, bnet], sm)
            .expect("ok");
        let q = b.add_dff(y, sm).expect("ok");
        b.mark_output(q);
        b.finish().expect("valid")
    }

    #[test]
    fn accessors() {
        let d = tiny();
        assert_eq!(d.name(), "tiny");
        assert_eq!(d.cell_count(), 2);
        assert_eq!(d.primary_inputs().len(), 2);
        assert_eq!(d.primary_outputs().len(), 1);
        assert!(d.clock().is_some());
        assert_eq!(d.components(), vec!["top"]);
        assert!(d.validate().is_empty());
    }

    #[test]
    fn group_counts() {
        let d = tiny();
        let g = d.group_counts();
        assert_eq!(g[PowerGroup::Combinational.index()], 1);
        assert_eq!(g[PowerGroup::Register.index()], 1);
        assert_eq!(d.count_in_group(PowerGroup::ClockTree), 0);
    }

    #[test]
    fn insert_cell_maintains_links() {
        let mut d = tiny();
        let sm = SubmoduleId::from_index(0);
        let src = d.cells()[0].output();
        let out = d.add_net();
        let id = d.insert_cell(CellClass::Buf, Drive::X2, &[src], out, None, None, sm, None);
        assert_eq!(d.net(out).driver(), Some(id));
        assert!(d.net(src).sinks().iter().any(|s| s.cell == id));
        assert!(d.validate().is_empty());
    }

    #[test]
    fn move_sinks_rewires() {
        let mut d = tiny();
        let sm = SubmoduleId::from_index(0);
        // nand output currently feeds the dff's D pin.
        let nand_out = d.cells()[0].output();
        let dff_id = CellId::from_index(1);
        let buf_out = d.add_net();
        let sinks: Vec<Sink> = d.net(nand_out).sinks().to_vec();
        d.move_sinks(nand_out, buf_out, &sinks);
        d.insert_cell(
            CellClass::Buf,
            Drive::X1,
            &[nand_out],
            buf_out,
            None,
            None,
            sm,
            None,
        );
        assert_eq!(d.cell(dff_id).inputs()[0], buf_out);
        assert!(d.validate().is_empty());
    }

    #[test]
    fn set_drive_and_wire_cap() {
        let mut d = tiny();
        d.set_drive(CellId::from_index(0), Drive::X8);
        assert_eq!(d.cells()[0].drive(), Drive::X8);
        let n = NetId::from_index(0);
        d.set_wire_cap(n, 0.042);
        assert!((d.net(n).wire_cap() - 0.042).abs() < 1e-12);
    }

    #[test]
    fn validate_catches_corruption() {
        let mut d = tiny();
        // Corrupt: point a cell's output at a net that doesn't know it.
        let extra = d.add_net();
        d.cells[0].output = extra;
        assert!(!d.validate().is_empty());
    }
}
