//! A small deterministic RNG (SplitMix64 seeding a xoshiro256**) used by
//! every generator in the workspace.
//!
//! It lives here — the lowest crate every generator depends on — so that
//! workloads, design generation, and layout decisions reproduce bit-for-bit
//! regardless of `rand` version changes (the stock `StdRng`/`SmallRng`
//! explicitly do not promise cross-version stability).

use rand::{RngCore, SeedableRng};

/// Deterministic xoshiro256** generator.
///
/// # Examples
///
/// ```
/// use atlas_netlist::detrng::DetRng;
/// use rand::Rng;
///
/// let mut a = DetRng::new(7);
/// let mut b = DetRng::new(7);
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
/// ```
#[derive(Debug, Clone)]
pub struct DetRng {
    s: [u64; 4],
}

impl DetRng {
    /// Create from a 64-bit seed (SplitMix64-expanded).
    pub fn new(seed: u64) -> DetRng {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        let mut s = [next(), next(), next(), next()];
        if s.iter().all(|&x| x == 0) {
            s[0] = 1;
        }
        DetRng { s }
    }

    /// Derive an independent stream for a named sub-purpose. Streams from
    /// different labels are statistically independent.
    pub fn fork(&mut self, label: u64) -> DetRng {
        DetRng::new(self.next_u64() ^ label.wrapping_mul(0xA24BAED4963EE407))
    }

    /// `true` with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl RngCore for DetRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl SeedableRng for DetRng {
    type Seed = [u8; 8];

    fn from_seed(seed: Self::Seed) -> DetRng {
        DetRng::new(u64::from_le_bytes(seed))
    }

    fn seed_from_u64(state: u64) -> DetRng {
        DetRng::new(state)
    }
}

#[cfg(test)]
mod tests {
    use rand::Rng;

    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = DetRng::new(42);
        let mut b = DetRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn chance_probabilities_roughly_hold() {
        let mut rng = DetRng::new(7);
        let hits = (0..10_000).filter(|_| rng.chance(0.25)).count();
        assert!((2200..2800).contains(&hits), "got {hits}");
    }

    #[test]
    fn forks_are_independent() {
        let mut base = DetRng::new(9);
        let mut f1 = base.fork(1);
        let mut f2 = base.fork(2);
        assert_ne!(f1.next_u64(), f2.next_u64());
    }

    #[test]
    fn works_with_rand_traits() {
        let mut rng = DetRng::new(11);
        let x: f64 = rng.gen_range(0.0..1.0);
        assert!((0.0..1.0).contains(&x));
        let n: u32 = rng.gen_range(0..10);
        assert!(n < 10);
    }

    #[test]
    fn fill_bytes_covers_remainder() {
        let mut rng = DetRng::new(3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
