//! Typed indices into a [`crate::Design`]'s arenas.

use std::fmt;

use serde::{Deserialize, Serialize};

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize,
        )]
        pub struct $name(pub(crate) u32);

        impl $name {
            /// Construct from a raw index.
            pub fn from_index(index: usize) -> $name {
                $name(index as u32)
            }

            /// The raw arena index.
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// Index of a [`crate::Cell`] in its design.
    CellId,
    "c"
);
id_type!(
    /// Index of a [`crate::Net`] in its design.
    NetId,
    "n"
);
id_type!(
    /// Index of a [`crate::Submodule`] in its design.
    SubmoduleId,
    "sm"
);

/// Which pin of a sink cell a net connects to. Needed because clock pins
/// present different capacitance than logic pins, and the power engine
/// accounts them differently.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SinkPin {
    /// Logic input pin `n` (0-based, in [`atlas_liberty::CellClass`] pin order).
    Input(u8),
    /// The clock pin of a sequential cell.
    Clock,
    /// The synchronous reset pin of a [`atlas_liberty::CellClass::Dffr`].
    Reset,
}

/// One (cell, pin) load on a net.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Sink {
    /// The loaded cell.
    pub cell: CellId,
    /// Which of its pins is connected.
    pub pin: SinkPin,
}

impl Sink {
    /// Convenience constructor for a logic-input sink.
    pub fn input(cell: CellId, pin: u8) -> Sink {
        Sink {
            cell,
            pin: SinkPin::Input(pin),
        }
    }

    /// Convenience constructor for a clock-pin sink.
    pub fn clock(cell: CellId) -> Sink {
        Sink {
            cell,
            pin: SinkPin::Clock,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_roundtrip_and_display() {
        let c = CellId::from_index(7);
        assert_eq!(c.index(), 7);
        assert_eq!(c.to_string(), "c7");
        assert_eq!(NetId::from_index(3).to_string(), "n3");
        assert_eq!(SubmoduleId::from_index(0).to_string(), "sm0");
    }

    #[test]
    fn ids_are_ordered() {
        assert!(CellId::from_index(1) < CellId::from_index(2));
    }

    #[test]
    fn sink_constructors() {
        let s = Sink::input(CellId::from_index(4), 1);
        assert_eq!(s.pin, SinkPin::Input(1));
        let s = Sink::clock(CellId::from_index(4));
        assert_eq!(s.pin, SinkPin::Clock);
    }
}
