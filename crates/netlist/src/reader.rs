//! Structural Verilog reader for the subset `Design::to_verilog` emits.
//!
//! [`Design::from_verilog`] is the ingestion path for untrusted uploads
//! (the serve layer's `load_design` verb), so it is **total over
//! arbitrary input**: any text either reconstructs a validated
//! [`Design`] or returns a typed [`NetlistParseError`] — never a panic,
//! a hang, or an allocation beyond the caps in [`limits`]. The accepted
//! grammar is exactly the writer's output:
//!
//! ```text
//! module NAME (n2, n0, n1, ...);
//!   // clock n2
//!   input n2;
//!   input n0;
//!   output n5;
//!   wire n3;
//!   // submodule sm0 top.u0 top
//!   NAND2_X1 u0 (.A(n0), .B(n1), .Y(n3)); // sm0 top.u0
//! endmodule
//! ```
//!
//! Reconstruction is exact: nets keep their indices, cells and
//! sub-modules their declaration order, and the `// clock nN` /
//! `// reset nN` role markers preserve a bound clock or reset even when
//! no instance references it — so `from_verilog(to_verilog(d))` equals
//! `d` for any gate-level design the builder produces. One documented
//! corner does not round-trip: names containing whitespace (written
//! verbatim, read back split).

use std::collections::HashSet;
use std::fmt;

use atlas_liberty::{CellClass, Drive};

use crate::builder::{BuildError, NetlistBuilder};
use crate::cell::SramConfig;
use crate::design::Design;
use crate::ids::NetId;

/// Hard ingestion caps for the structural Verilog reader.
///
/// Inputs exceeding any cap fail with
/// [`NetlistParseErrorKind::LimitExceeded`] before the excess is
/// allocated.
pub mod limits {
    /// Largest accepted input, in bytes.
    pub const MAX_INPUT_BYTES: usize = 64 << 20;
    /// Largest accepted net index (and net count).
    pub const MAX_NETS: usize = 1 << 22;
    /// Most cell instances per module.
    pub const MAX_CELLS: usize = 1 << 21;
    /// Most sub-module declarations per module.
    pub const MAX_SUBMODULES: usize = 1 << 16;
    /// Longest accepted identifier, in bytes.
    pub const MAX_IDENT_BYTES: usize = 256;
}

/// Machine-readable classification of a [`NetlistParseError`].
#[non_exhaustive]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NetlistParseErrorKind {
    /// A line did not match the grammar.
    Syntax,
    /// The input ended before `endmodule`.
    UnexpectedEnd,
    /// An unknown cell, pin, or sub-module reference.
    Unknown,
    /// Pins, declarations, and usage disagree (wrong pin set, undeclared
    /// net, driving an input, inconsistent clock).
    BadConnection,
    /// A net or instance was declared twice (or out of order).
    Duplicate,
    /// An explicit ingestion cap (see [`limits`]) was exceeded.
    LimitExceeded,
    /// The reconstructed netlist failed builder validation (undriven
    /// net, combinational cycle, empty design).
    Structure,
}

/// Error produced while reading structural Verilog.
///
/// Carries a [`NetlistParseErrorKind`] and the 1-based line number of
/// the offending text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetlistParseError {
    kind: NetlistParseErrorKind,
    line: usize,
    message: String,
}

impl NetlistParseError {
    fn new(kind: NetlistParseErrorKind, line: usize, message: impl Into<String>) -> Self {
        NetlistParseError {
            kind,
            line,
            message: message.into(),
        }
    }

    /// Machine-readable classification of the failure.
    pub fn kind(&self) -> NetlistParseErrorKind {
        self.kind
    }

    /// 1-based line number of the offending text. Whole-input failures
    /// (a missing `endmodule`, a netlist that fails builder validation)
    /// anchor to the last line consumed.
    pub fn line(&self) -> usize {
        self.line
    }

    /// Human-readable description of the failure.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for NetlistParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "verilog parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for NetlistParseError {}

fn err(kind: NetlistParseErrorKind, line: usize, msg: impl Into<String>) -> NetlistParseError {
    NetlistParseError::new(kind, line, msg)
}

/// `nN` → N, with the index cap applied.
fn net_index(token: &str, line: usize) -> Result<usize, NetlistParseError> {
    let digits = token.strip_prefix('n').ok_or_else(|| {
        err(
            NetlistParseErrorKind::Syntax,
            line,
            format!("expected a net name `nN`, found `{token}`"),
        )
    })?;
    let idx: usize = digits
        .parse()
        .ok()
        .filter(|_| !digits.is_empty() && digits.bytes().all(|b| b.is_ascii_digit()))
        .ok_or_else(|| {
            err(
                NetlistParseErrorKind::Syntax,
                line,
                format!("bad net index in `{token}`"),
            )
        })?;
    if idx >= limits::MAX_NETS {
        return Err(err(
            NetlistParseErrorKind::LimitExceeded,
            line,
            format!(
                "net index {idx} exceeds the cap of {} nets",
                limits::MAX_NETS
            ),
        ));
    }
    Ok(idx)
}

fn check_ident_len(token: &str, line: usize) -> Result<(), NetlistParseError> {
    if token.len() > limits::MAX_IDENT_BYTES {
        return Err(err(
            NetlistParseErrorKind::LimitExceeded,
            line,
            format!(
                "identifier of {} bytes exceeds the {}-byte cap",
                token.len(),
                limits::MAX_IDENT_BYTES
            ),
        ));
    }
    Ok(())
}

/// `CLASS_XN` or `SRAM_WxB` → (class, drive, sram geometry).
fn parse_cell_name(
    name: &str,
    line: usize,
) -> Result<(CellClass, Drive, Option<SramConfig>), NetlistParseError> {
    check_ident_len(name, line)?;
    if let Some(geom) = name.strip_prefix("SRAM_") {
        let (w, b) = geom.split_once('x').ok_or_else(|| {
            err(
                NetlistParseErrorKind::Unknown,
                line,
                format!("bad SRAM geometry in `{name}` (expected SRAM_WxB)"),
            )
        })?;
        let words: u32 = w.parse().map_err(|_| {
            err(
                NetlistParseErrorKind::Unknown,
                line,
                format!("bad SRAM word count in `{name}`"),
            )
        })?;
        let bits: u32 = b.parse().map_err(|_| {
            err(
                NetlistParseErrorKind::Unknown,
                line,
                format!("bad SRAM bit width in `{name}`"),
            )
        })?;
        return Ok((CellClass::Sram, Drive::X1, Some(SramConfig { words, bits })));
    }
    let (class_str, drive_str) = name.rsplit_once('_').ok_or_else(|| {
        err(
            NetlistParseErrorKind::Unknown,
            line,
            format!("unknown cell `{name}` (expected CLASS_XN)"),
        )
    })?;
    let class = class_str
        .to_ascii_lowercase()
        .parse::<CellClass>()
        .map_err(|_| {
            err(
                NetlistParseErrorKind::Unknown,
                line,
                format!("unknown cell class in `{name}`"),
            )
        })?;
    let drive = drive_str
        .strip_prefix('X')
        .and_then(|s| s.parse::<u32>().ok())
        .and_then(Drive::from_suffix)
        .ok_or_else(|| {
            err(
                NetlistParseErrorKind::Unknown,
                line,
                format!("unknown drive strength in `{name}`"),
            )
        })?;
    if class.is_sequential() && drive != Drive::X1 {
        return Err(err(
            NetlistParseErrorKind::Unknown,
            line,
            format!("sequential cell `{name}` must be drive X1"),
        ));
    }
    Ok((class, drive, None))
}

/// One parsed instance line, before cross-instance checks.
struct ParsedCell {
    line: usize,
    class: CellClass,
    drive: Drive,
    sram: Option<SramConfig>,
    inputs: Vec<usize>,
    output: usize,
    clock: Option<usize>,
    reset: Option<usize>,
    submodule: usize,
}

impl Design {
    /// Parse the structural Verilog subset [`Design::to_verilog`]
    /// emits back into a validated gate-level [`Design`].
    ///
    /// # Errors
    ///
    /// Returns a typed [`NetlistParseError`] on any syntactic problem,
    /// unknown cell or pin, declaration/usage mismatch, exceeded cap
    /// (see [`limits`]), or structural failure (undriven net,
    /// combinational cycle) — never panics, for any input.
    ///
    /// # Examples
    ///
    /// ```
    /// use atlas_liberty::{CellClass, Drive};
    /// use atlas_netlist::{Design, NetlistBuilder};
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let mut b = NetlistBuilder::new("rt");
    /// let sm = b.add_submodule("top.u0", "top");
    /// let a = b.add_input();
    /// let y = b.add_cell(CellClass::Inv, Drive::X1, &[a], sm)?;
    /// let q = b.add_dff(y, sm)?;
    /// b.mark_output(q);
    /// let d = b.finish()?;
    /// assert_eq!(Design::from_verilog(&d.to_verilog())?, d);
    /// # Ok(())
    /// # }
    /// ```
    pub fn from_verilog(text: &str) -> Result<Design, NetlistParseError> {
        if text.len() > limits::MAX_INPUT_BYTES {
            return Err(err(
                NetlistParseErrorKind::LimitExceeded,
                1,
                format!(
                    "input of {} bytes exceeds the {}-byte cap",
                    text.len(),
                    limits::MAX_INPUT_BYTES
                ),
            ));
        }

        let mut lines = text.lines().enumerate().map(|(i, l)| (i + 1, l.trim()));

        // --- module header ---------------------------------------------
        let (header_line, header) = lines
            .by_ref()
            .find(|(_, l)| !l.is_empty())
            .ok_or_else(|| err(NetlistParseErrorKind::UnexpectedEnd, 1, "empty input"))?;
        let rest = header.strip_prefix("module ").ok_or_else(|| {
            err(
                NetlistParseErrorKind::Syntax,
                header_line,
                format!("expected `module NAME (ports);`, found `{header}`"),
            )
        })?;
        let (name, ports_part) = rest.split_once('(').ok_or_else(|| {
            err(
                NetlistParseErrorKind::Syntax,
                header_line,
                "module header has no port list",
            )
        })?;
        let name = name.trim();
        check_ident_len(name, header_line)?;
        if name.is_empty() {
            return Err(err(
                NetlistParseErrorKind::Syntax,
                header_line,
                "module has no name",
            ));
        }
        let ports_part = ports_part.strip_suffix(");").ok_or_else(|| {
            err(
                NetlistParseErrorKind::Syntax,
                header_line,
                "module header must end with `);`",
            )
        })?;
        let header_ports: Vec<usize> = ports_part
            .split(',')
            .map(str::trim)
            .filter(|p| !p.is_empty())
            .map(|p| net_index(p, header_line))
            .collect::<Result<_, _>>()?;

        // --- declarations and instances --------------------------------
        let mut input_decls: Vec<usize> = Vec::new();
        let mut output_decls: Vec<usize> = Vec::new();
        let mut declared: HashSet<usize> = HashSet::new();
        let mut input_set: HashSet<usize> = HashSet::new();
        let mut wire_count = 0usize;
        let mut submodules: Vec<(String, String)> = Vec::new();
        let mut cells: Vec<ParsedCell> = Vec::new();
        // Explicit `// clock nN` / `// reset nN` role markers emitted by
        // `to_verilog`; they let a bound-but-unreferenced clock or reset
        // survive a round trip, and instance usage must agree with them.
        let mut marked_clock: Option<usize> = None;
        let mut marked_reset: Option<usize> = None;
        let mut saw_end = false;
        // Whole-design errors (missing `endmodule`, sparse numbering,
        // builder validation) anchor to the last line consumed, so every
        // reported line stays 1-based.
        let mut end_line = header_line;

        for (lineno, line) in lines.by_ref() {
            end_line = lineno;
            if line.is_empty() {
                continue;
            }
            if line == "endmodule" {
                saw_end = true;
                break;
            }
            if let Some(rest) = line.strip_prefix("// submodule ") {
                let tokens: Vec<&str> = rest.split_whitespace().collect();
                if tokens.len() < 3 {
                    return Err(err(
                        NetlistParseErrorKind::Syntax,
                        lineno,
                        "sub-module declaration needs `smN NAME COMPONENT`",
                    ));
                }
                let idx: usize = tokens[0]
                    .strip_prefix("sm")
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| {
                        err(
                            NetlistParseErrorKind::Syntax,
                            lineno,
                            format!("bad sub-module index `{}`", tokens[0]),
                        )
                    })?;
                if idx != submodules.len() {
                    return Err(err(
                        NetlistParseErrorKind::Duplicate,
                        lineno,
                        format!(
                            "sub-module sm{idx} declared out of order (expected sm{})",
                            submodules.len()
                        ),
                    ));
                }
                if submodules.len() >= limits::MAX_SUBMODULES {
                    return Err(err(
                        NetlistParseErrorKind::LimitExceeded,
                        lineno,
                        format!("more than {} sub-modules", limits::MAX_SUBMODULES),
                    ));
                }
                let component = tokens[tokens.len() - 1];
                let sm_name = tokens[1..tokens.len() - 1].join(" ");
                check_ident_len(&sm_name, lineno)?;
                check_ident_len(component, lineno)?;
                submodules.push((sm_name, component.to_owned()));
                continue;
            }
            if let Some(rest) = line.strip_prefix("// clock ") {
                if marked_clock.is_some() {
                    return Err(err(
                        NetlistParseErrorKind::Duplicate,
                        lineno,
                        "duplicate `// clock` marker",
                    ));
                }
                marked_clock = Some(net_index(rest.trim(), lineno)?);
                continue;
            }
            if let Some(rest) = line.strip_prefix("// reset ") {
                if marked_reset.is_some() {
                    return Err(err(
                        NetlistParseErrorKind::Duplicate,
                        lineno,
                        "duplicate `// reset` marker",
                    ));
                }
                marked_reset = Some(net_index(rest.trim(), lineno)?);
                continue;
            }
            if line.starts_with("//") {
                continue;
            }
            if let Some(rest) = line.strip_prefix("input ") {
                let idx = decl_net(rest, lineno)?;
                if !declared.insert(idx) {
                    return Err(dup_decl(idx, lineno));
                }
                input_set.insert(idx);
                input_decls.push(idx);
                check_net_cap(declared.len(), lineno)?;
                continue;
            }
            if let Some(rest) = line.strip_prefix("output ") {
                let idx = decl_net(rest, lineno)?;
                // A net may be both an input and an output (a primary
                // input marked as a primary output); anything else
                // redeclared is an error.
                if declared.contains(&idx) && !input_set.contains(&idx)
                    || output_decls.contains(&idx)
                {
                    return Err(dup_decl(idx, lineno));
                }
                declared.insert(idx);
                output_decls.push(idx);
                check_net_cap(declared.len(), lineno)?;
                continue;
            }
            if let Some(rest) = line.strip_prefix("wire ") {
                let idx = decl_net(rest, lineno)?;
                if !declared.insert(idx) {
                    return Err(dup_decl(idx, lineno));
                }
                wire_count += 1;
                check_net_cap(declared.len(), lineno)?;
                continue;
            }
            // Anything else must be an instance line.
            if cells.len() >= limits::MAX_CELLS {
                return Err(err(
                    NetlistParseErrorKind::LimitExceeded,
                    lineno,
                    format!("more than {} cell instances", limits::MAX_CELLS),
                ));
            }
            cells.push(parse_instance(line, lineno, cells.len())?);
        }
        let _ = wire_count;

        if !saw_end {
            return Err(err(
                NetlistParseErrorKind::UnexpectedEnd,
                end_line,
                "missing `endmodule`",
            ));
        }
        for (lineno, line) in lines {
            if !line.is_empty() {
                return Err(err(
                    NetlistParseErrorKind::Syntax,
                    lineno,
                    format!("unexpected text after `endmodule`: `{line}`"),
                ));
            }
        }

        // --- net numbering must be dense -------------------------------
        let net_count = declared.len();
        if let Some(&max) = declared.iter().max() {
            if max + 1 != net_count {
                return Err(err(
                    NetlistParseErrorKind::BadConnection,
                    end_line,
                    format!(
                        "net indices are not dense: {} nets declared but the \
                         highest index is n{max}",
                        net_count
                    ),
                ));
            }
        }

        // --- clock/reset from markers and usage ------------------------
        // The markers (when present) fix the roles; every `.CK`/`.RN`
        // reference must then agree. Without markers the roles are
        // derived from consistent usage alone.
        let mut clock: Option<usize> = marked_clock;
        let mut reset: Option<usize> = marked_reset;
        for cell in &cells {
            for (slot, found, what) in [
                (&mut clock, cell.clock, "clock"),
                (&mut reset, cell.reset, "reset"),
            ] {
                if let Some(n) = found {
                    match *slot {
                        None => *slot = Some(n),
                        Some(prev) if prev == n => {}
                        Some(prev) => {
                            return Err(err(
                                NetlistParseErrorKind::BadConnection,
                                cell.line,
                                format!(
                                    "instance uses {what} n{n} but the design \
                                     {what} is n{prev}"
                                ),
                            ));
                        }
                    }
                }
            }
        }
        for (n, what) in [(clock, "clock"), (reset, "reset")] {
            if let Some(n) = n {
                if !input_set.contains(&n) {
                    return Err(err(
                        NetlistParseErrorKind::BadConnection,
                        end_line,
                        format!("{what} net n{n} is not declared as an input"),
                    ));
                }
            }
        }

        // --- rebuild through the validated builder ---------------------
        let mut b = NetlistBuilder::new(name);
        let sm_count = submodules.len();
        for (sm_name, component) in submodules {
            b.add_submodule(sm_name, component);
        }
        let nets: Vec<NetId> = (0..net_count).map(|_| b.new_net()).collect();
        if let Some(c) = clock {
            b.bind_clock(nets[c]).map_err(|e| build_err(e, end_line))?;
        }
        if let Some(r) = reset {
            b.bind_reset(nets[r]).map_err(|e| build_err(e, end_line))?;
        }
        for &idx in &input_decls {
            if Some(idx) != clock && Some(idx) != reset {
                b.mark_input(nets[idx]);
            }
        }
        for cell in cells {
            let check_net = |idx: usize| -> Result<NetId, NetlistParseError> {
                if idx >= net_count {
                    return Err(err(
                        NetlistParseErrorKind::BadConnection,
                        cell.line,
                        format!("net n{idx} is used but never declared"),
                    ));
                }
                Ok(nets[idx])
            };
            if cell.submodule >= sm_count {
                return Err(err(
                    NetlistParseErrorKind::Unknown,
                    cell.line,
                    format!(
                        "instance references undeclared sub-module sm{}",
                        cell.submodule
                    ),
                ));
            }
            if input_set.contains(&cell.output)
                || Some(cell.output) == clock
                || Some(cell.output) == reset
            {
                return Err(err(
                    NetlistParseErrorKind::BadConnection,
                    cell.line,
                    format!("instance drives input net n{}", cell.output),
                ));
            }
            let out = check_net(cell.output)?;
            let inputs: Vec<NetId> = cell
                .inputs
                .iter()
                .map(|&i| check_net(i))
                .collect::<Result<_, _>>()?;
            let sm = crate::ids::SubmoduleId::from_index(cell.submodule);
            let built = match cell.class {
                CellClass::Dff => b.add_dff_onto(out, inputs[0], sm),
                CellClass::Dffr => b.add_dffr_onto(out, inputs[0], sm),
                CellClass::Sram => {
                    let cfg = cell.sram.unwrap_or(SramConfig { words: 0, bits: 0 });
                    b.add_sram_onto(
                        out, cfg.words, cfg.bits, inputs[0], inputs[1], inputs[2], inputs[3], sm,
                    )
                }
                class => b.add_cell_onto(out, class, cell.drive, &inputs, sm),
            };
            built.map_err(|e| build_err(e, cell.line))?;
        }
        for idx in output_decls {
            b.mark_output(nets[idx]);
        }
        let design = b.finish().map_err(|e| build_err(e, end_line))?;

        // --- header port list must match the reconstruction ------------
        let mut expected: Vec<usize> = Vec::new();
        expected.extend(design.clock().map(|n| n.index()));
        expected.extend(design.reset().map(|n| n.index()));
        expected.extend(design.primary_inputs().iter().map(|n| n.index()));
        expected.extend(design.primary_outputs().iter().map(|n| n.index()));
        if header_ports != expected {
            return Err(err(
                NetlistParseErrorKind::BadConnection,
                header_line,
                "module port list does not match the declarations",
            ));
        }
        Ok(design)
    }
}

fn decl_net(rest: &str, line: usize) -> Result<usize, NetlistParseError> {
    let token = rest.strip_suffix(';').map(str::trim).ok_or_else(|| {
        err(
            NetlistParseErrorKind::Syntax,
            line,
            "net declaration must end with `;`",
        )
    })?;
    if token.split_whitespace().count() != 1 {
        return Err(err(
            NetlistParseErrorKind::Syntax,
            line,
            format!("expected a single net name, found `{token}`"),
        ));
    }
    net_index(token, line)
}

fn dup_decl(idx: usize, line: usize) -> NetlistParseError {
    err(
        NetlistParseErrorKind::Duplicate,
        line,
        format!("net n{idx} is declared twice"),
    )
}

fn check_net_cap(count: usize, line: usize) -> Result<(), NetlistParseError> {
    if count > limits::MAX_NETS {
        return Err(err(
            NetlistParseErrorKind::LimitExceeded,
            line,
            format!("more than {} nets", limits::MAX_NETS),
        ));
    }
    Ok(())
}

fn build_err(e: BuildError, line: usize) -> NetlistParseError {
    let kind = match e {
        BuildError::BadPinCount { .. } | BuildError::ConflictingBind(_) => {
            NetlistParseErrorKind::BadConnection
        }
        BuildError::MultiplyDrivenNet(_) => NetlistParseErrorKind::BadConnection,
        BuildError::UnknownSubmodule(_) => NetlistParseErrorKind::Unknown,
        BuildError::UndrivenNet(_)
        | BuildError::CombinationalCycle(_)
        | BuildError::Empty
        | BuildError::NoClock => NetlistParseErrorKind::Structure,
    };
    err(kind, line, e.to_string())
}

/// Parse one `CELL uN (.PIN(net), ...); // smM name` line.
fn parse_instance(
    line: &str,
    lineno: usize,
    expected_index: usize,
) -> Result<ParsedCell, NetlistParseError> {
    let syntax = |msg: String| err(NetlistParseErrorKind::Syntax, lineno, msg);

    // Split off the trailing comment (the sub-module reference).
    let (body, comment) = line.split_once("; //").ok_or_else(|| {
        syntax(format!(
            "expected an instance `CELL uN (pins); // smM NAME`, found `{line}`"
        ))
    })?;
    let sm_token = comment
        .split_whitespace()
        .next()
        .ok_or_else(|| syntax("instance comment is missing its sub-module reference".to_owned()))?;
    let submodule: usize = sm_token
        .strip_prefix("sm")
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| syntax(format!("bad sub-module reference `{sm_token}`")))?;

    let (head, pins_part) = body
        .split_once('(')
        .ok_or_else(|| syntax(format!("instance has no pin list: `{body}`")))?;
    let pins_part = pins_part
        .strip_suffix(')')
        .ok_or_else(|| syntax("instance pin list must end with `)`".to_owned()))?;
    let mut head_tokens = head.split_whitespace();
    let cell_name = head_tokens
        .next()
        .ok_or_else(|| syntax("instance has no cell name".to_owned()))?;
    let inst_name = head_tokens
        .next()
        .ok_or_else(|| syntax("instance has no instance name".to_owned()))?;
    if head_tokens.next().is_some() {
        return Err(syntax(format!(
            "unexpected tokens before the pin list: `{head}`"
        )));
    }
    let inst_index: usize = inst_name
        .strip_prefix('u')
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| syntax(format!("bad instance name `{inst_name}` (expected uN)")))?;
    if inst_index != expected_index {
        return Err(err(
            NetlistParseErrorKind::Duplicate,
            lineno,
            format!("instance u{inst_index} out of order (expected u{expected_index})"),
        ));
    }

    let (class, drive, sram) = parse_cell_name(cell_name, lineno)?;
    let n_inputs = class.input_pins();
    let mut inputs: Vec<Option<usize>> = vec![None; n_inputs];
    let mut clock: Option<usize> = None;
    let mut reset: Option<usize> = None;
    let mut output: Option<usize> = None;

    for pin in pins_part.split(',') {
        let pin = pin.trim();
        let (pin_name, net_part) = pin
            .strip_suffix(')')
            .and_then(|p| p.split_once('('))
            .and_then(|(n, v)| n.strip_prefix('.').map(|n| (n, v)))
            .ok_or_else(|| syntax(format!("bad pin `{pin}` (expected .PIN(net))")))?;
        let net = net_index(net_part.trim(), lineno)?;
        let input_slot = if class == CellClass::Sram {
            ["REN", "WEN", "ADDR", "DATA"]
                .iter()
                .position(|&n| n == pin_name)
        } else {
            match pin_name.as_bytes() {
                [c @ b'A'..=b'D'] => Some((c - b'A') as usize),
                _ => None,
            }
        };
        let conn = |slot: &mut Option<usize>| -> Result<(), NetlistParseError> {
            if slot.replace(net).is_some() {
                return Err(err(
                    NetlistParseErrorKind::BadConnection,
                    lineno,
                    format!("pin `.{pin_name}` connected twice"),
                ));
            }
            Ok(())
        };
        match (input_slot, pin_name) {
            (Some(slot), _) if slot < n_inputs => conn(&mut inputs[slot])?,
            (None, "CK") if class.is_sequential() => conn(&mut clock)?,
            (None, "RN") if class == CellClass::Dffr => conn(&mut reset)?,
            (None, "Y") => conn(&mut output)?,
            _ => {
                return Err(err(
                    NetlistParseErrorKind::Unknown,
                    lineno,
                    format!("pin `.{pin_name}` is not valid on a {} cell", class),
                ));
            }
        }
    }

    let inputs: Vec<usize> = inputs
        .into_iter()
        .enumerate()
        .map(|(i, slot)| {
            slot.ok_or_else(|| {
                err(
                    NetlistParseErrorKind::BadConnection,
                    lineno,
                    format!("instance u{inst_index} is missing input pin {i}"),
                )
            })
        })
        .collect::<Result<_, _>>()?;
    let output = output.ok_or_else(|| {
        err(
            NetlistParseErrorKind::BadConnection,
            lineno,
            format!("instance u{inst_index} has no output pin `.Y`"),
        )
    })?;
    if class.is_sequential() && clock.is_none() {
        return Err(err(
            NetlistParseErrorKind::BadConnection,
            lineno,
            format!("sequential instance u{inst_index} has no `.CK` pin"),
        ));
    }
    if class == CellClass::Dffr && reset.is_none() {
        return Err(err(
            NetlistParseErrorKind::BadConnection,
            lineno,
            format!("DFFR instance u{inst_index} has no `.RN` pin"),
        ));
    }

    Ok(ParsedCell {
        line: lineno,
        class,
        drive,
        sram,
        inputs,
        output,
        clock,
        reset,
        submodule,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetlistBuilder;

    fn demo_design() -> Design {
        let mut b = NetlistBuilder::new("demo");
        let sm0 = b.add_submodule("top.u0", "top");
        let sm1 = b.add_submodule("top.u1", "top");
        let a = b.add_input();
        let c = b.add_input();
        let x = b
            .add_cell(CellClass::Nand2, Drive::X2, &[a, c], sm0)
            .expect("ok");
        let q = b.add_dffr(x, sm0).expect("ok");
        let ren = b.add_input();
        let wen = b.add_input();
        let addr = b.add_input();
        let m = b.add_sram(256, 32, ren, wen, addr, q, sm1).expect("ok");
        let y = b
            .add_cell(CellClass::Xor2, Drive::X1, &[q, m], sm1)
            .expect("ok");
        b.mark_output(y);
        b.finish().expect("valid")
    }

    #[test]
    fn roundtrip_is_exact() {
        let d = demo_design();
        let v = d.to_verilog();
        let back = Design::from_verilog(&v).expect("parses");
        assert_eq!(back, d);
        // And the round-trip is a fixed point of the writer too.
        assert_eq!(back.to_verilog(), v);
    }

    #[test]
    fn pi_marked_as_po_roundtrips() {
        let mut b = NetlistBuilder::new("pipo");
        let sm = b.add_submodule("t.u", "t");
        let a = b.add_input();
        let y = b.add_cell(CellClass::Buf, Drive::X1, &[a], sm).expect("ok");
        b.mark_output(a);
        b.mark_output(y);
        let d = b.finish().expect("valid");
        let back = Design::from_verilog(&d.to_verilog()).expect("parses");
        assert_eq!(back, d);
    }

    #[test]
    fn truncation_and_garbage_are_typed_errors() {
        let v = demo_design().to_verilog();
        // Every strict prefix must fail (the full text parses).
        let cut = &v[..v.len() / 2];
        assert!(Design::from_verilog(cut).is_err());
        assert_eq!(
            Design::from_verilog("").expect_err("empty").kind(),
            NetlistParseErrorKind::UnexpectedEnd
        );
        assert_eq!(
            Design::from_verilog("not verilog at all")
                .expect_err("junk")
                .kind(),
            NetlistParseErrorKind::Syntax
        );
        let trailing = format!("{v}\nmodule again ();");
        assert_eq!(
            Design::from_verilog(&trailing)
                .expect_err("trailing")
                .kind(),
            NetlistParseErrorKind::Syntax
        );
    }

    #[test]
    fn huge_claimed_net_index_is_capped_not_allocated() {
        // A header claiming a ~4-billion-net module must fail on the cap,
        // not by allocating.
        let v = "module bomb (n4000000000);\n  input n4000000000;\nendmodule\n";
        let e = Design::from_verilog(v).expect_err("capped");
        assert_eq!(e.kind(), NetlistParseErrorKind::LimitExceeded);
    }

    #[test]
    fn sparse_net_indices_are_rejected() {
        let v = "module gap (n0, n9);\n  input n0;\n  input n9;\n\
                   // submodule sm0 t.u t\n  INV_X1 u0 (.A(n0), .Y(n9)); // sm0 t.u\nendmodule\n";
        let e = Design::from_verilog(v).expect_err("sparse");
        assert_eq!(e.kind(), NetlistParseErrorKind::BadConnection);
    }

    #[test]
    fn driving_an_input_is_rejected() {
        let v = "module bad (n0, n1);\n  input n0;\n  input n1;\n\
                   // submodule sm0 t.u t\n  INV_X1 u0 (.A(n0), .Y(n1)); // sm0 t.u\nendmodule\n";
        let e = Design::from_verilog(v).expect_err("drives input");
        assert_eq!(e.kind(), NetlistParseErrorKind::BadConnection);
    }

    #[test]
    fn inconsistent_clock_is_rejected() {
        let v = "module clk2 (n0, n1, n2, n3, n4, n5);\n\
                   input n0;\n  input n1;\n  input n2;\n  input n3;\n\
                   output n4;\n  output n5;\n\
                   // submodule sm0 t.u t\n\
                   DFF_X1 u0 (.A(n2), .CK(n0), .Y(n4)); // sm0 t.u\n\
                   DFF_X1 u1 (.A(n3), .CK(n1), .Y(n5)); // sm0 t.u\n\
                 endmodule\n";
        let e = Design::from_verilog(v).expect_err("two clocks");
        assert_eq!(e.kind(), NetlistParseErrorKind::BadConnection);
    }

    #[test]
    fn unknown_cells_and_pins_are_rejected() {
        let base = "module u (n0, n1);\n  input n0;\n  output n1;\n  // submodule sm0 t.u t\n";
        for inst in [
            "  FROB_X1 u0 (.A(n0), .Y(n1)); // sm0 t.u\n",
            "  INV_X9 u0 (.A(n0), .Y(n1)); // sm0 t.u\n",
            "  INV_X1 u0 (.Q(n0), .Y(n1)); // sm0 t.u\n",
            "  DFF_X2 u0 (.A(n0), .CK(n0), .Y(n1)); // sm0 t.u\n",
            "  SRAM_12 u0 (.REN(n0), .Y(n1)); // sm0 t.u\n",
        ] {
            let v = format!("{base}{inst}endmodule\n");
            let e = Design::from_verilog(&v).expect_err(inst);
            assert_eq!(e.kind(), NetlistParseErrorKind::Unknown, "{inst}");
        }
    }

    #[test]
    fn combinational_cycle_is_a_structure_error() {
        let v = "module loopy (n0, n3);\n  input n0;\n  output n3;\n  wire n1;\n  wire n2;\n\
                   // submodule sm0 t.u t\n\
                   AND2_X1 u0 (.A(n0), .B(n2), .Y(n1)); // sm0 t.u\n\
                   INV_X1 u1 (.A(n1), .Y(n2)); // sm0 t.u\n\
                   BUF_X1 u2 (.A(n1), .Y(n3)); // sm0 t.u\n\
                 endmodule\n";
        let e = Design::from_verilog(v).expect_err("cycle");
        assert_eq!(e.kind(), NetlistParseErrorKind::Structure);
    }

    #[test]
    fn port_list_mismatch_is_rejected() {
        let d = demo_design();
        let v = d.to_verilog();
        // Swap the first two ports in the header only.
        let (head, rest) = v.split_once('\n').expect("has header");
        let swapped = head
            .replacen("n0", "nX", 1)
            .replacen("n1", "n0", 1)
            .replacen("nX", "n1", 1);
        let e = Design::from_verilog(&format!("{swapped}\n{rest}")).expect_err("mismatch");
        assert_eq!(e.kind(), NetlistParseErrorKind::BadConnection);
    }
}
