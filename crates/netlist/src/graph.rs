//! Sub-module directed graphs — the unit ATLAS encodes (paper §III-C).

use serde::{Deserialize, Serialize};

use crate::design::Design;
use crate::ids::{CellId, SubmoduleId};

/// The directed graph of one sub-module: nodes are the sub-module's cell
/// instances, edges follow driver → sink wires *within* the sub-module.
///
/// Because sub-modules are non-overlapping, summing per-sub-module power
/// predictions reconstructs the whole design's power without
/// double-counting — the paper's core argument for sub-modules over logic
/// cones (§III-A).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SubmoduleGraph {
    submodule: SubmoduleId,
    cells: Vec<CellId>,
    /// Local (index into `cells`) driver → sink pairs, sorted and deduped.
    edges: Vec<(u32, u32)>,
    /// Number of wires crossing the sub-module boundary (context feature).
    boundary_edges: u32,
}

impl SubmoduleGraph {
    /// The sub-module this graph was cut from.
    pub fn submodule(&self) -> SubmoduleId {
        self.submodule
    }

    /// Global cell ids of the nodes, in ascending order. Node `i` of the
    /// graph is `cells()[i]`.
    pub fn cells(&self) -> &[CellId] {
        &self.cells
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.cells.len()
    }

    /// Directed edges as local node-index pairs.
    pub fn edges(&self) -> &[(u32, u32)] {
        &self.edges
    }

    /// Wires entering or leaving the sub-module.
    pub fn boundary_edges(&self) -> u32 {
        self.boundary_edges
    }
}

impl Design {
    /// Cut the design into its per-sub-module directed graphs.
    ///
    /// Every cell appears in exactly one graph (the partition is exact);
    /// edges crossing sub-module boundaries are counted but not included.
    ///
    /// # Examples
    ///
    /// ```
    /// use atlas_liberty::{CellClass, Drive};
    /// use atlas_netlist::NetlistBuilder;
    ///
    /// # fn main() -> Result<(), atlas_netlist::BuildError> {
    /// let mut b = NetlistBuilder::new("two");
    /// let sm0 = b.add_submodule("t.a", "t");
    /// let sm1 = b.add_submodule("t.b", "t");
    /// let i = b.add_input();
    /// let x = b.add_cell(CellClass::Inv, Drive::X1, &[i], sm0)?;
    /// let y = b.add_cell(CellClass::Inv, Drive::X1, &[x], sm1)?;
    /// b.mark_output(y);
    /// let d = b.finish()?;
    /// let graphs = d.submodule_graphs();
    /// assert_eq!(graphs.len(), 2);
    /// let total: usize = graphs.iter().map(|g| g.node_count()).sum();
    /// assert_eq!(total, d.cell_count());
    /// # Ok(())
    /// # }
    /// ```
    pub fn submodule_graphs(&self) -> Vec<SubmoduleGraph> {
        let nsm = self.submodules().len();
        let mut cells_per: Vec<Vec<CellId>> = vec![Vec::new(); nsm];
        for id in self.cell_ids() {
            cells_per[self.cell(id).submodule().index()].push(id);
        }
        // local index of each cell within its sub-module
        let mut local = vec![u32::MAX; self.cell_count()];
        for cells in &cells_per {
            for (i, id) in cells.iter().enumerate() {
                local[id.index()] = i as u32;
            }
        }
        let mut graphs: Vec<SubmoduleGraph> = cells_per
            .iter()
            .enumerate()
            .map(|(i, cells)| SubmoduleGraph {
                submodule: SubmoduleId::from_index(i),
                cells: cells.clone(),
                edges: Vec::new(),
                boundary_edges: 0,
            })
            .collect();

        for id in self.cell_ids() {
            let cell = self.cell(id);
            let sm = cell.submodule().index();
            for sink in self.net(cell.output()).sinks() {
                let sink_sm = self.cell(sink.cell).submodule().index();
                if sink_sm == sm {
                    graphs[sm]
                        .edges
                        .push((local[id.index()], local[sink.cell.index()]));
                } else {
                    graphs[sm].boundary_edges += 1;
                    graphs[sink_sm].boundary_edges += 1;
                }
            }
        }
        for g in &mut graphs {
            g.edges.sort_unstable();
            g.edges.dedup();
        }
        graphs
    }
}

#[cfg(test)]
mod tests {
    use atlas_liberty::{CellClass, Drive};

    use super::*;
    use crate::builder::NetlistBuilder;

    fn two_submodule_design() -> Design {
        let mut b = NetlistBuilder::new("two");
        let sm0 = b.add_submodule("t.a", "t");
        let sm1 = b.add_submodule("t.b", "t");
        let i0 = b.add_input();
        let i1 = b.add_input();
        let x = b
            .add_cell(CellClass::And2, Drive::X1, &[i0, i1], sm0)
            .expect("ok");
        let y = b
            .add_cell(CellClass::Inv, Drive::X1, &[x], sm0)
            .expect("ok");
        let z = b
            .add_cell(CellClass::Or2, Drive::X1, &[y, x], sm1)
            .expect("ok");
        let q = b.add_dff(z, sm1).expect("ok");
        b.mark_output(q);
        b.finish().expect("valid")
    }

    #[test]
    fn partition_is_exact() {
        let d = two_submodule_design();
        let graphs = d.submodule_graphs();
        let total: usize = graphs.iter().map(|g| g.node_count()).sum();
        assert_eq!(total, d.cell_count());
        // No cell appears twice.
        let mut seen = std::collections::HashSet::new();
        for g in &graphs {
            for c in g.cells() {
                assert!(seen.insert(*c), "cell {c} appears in two graphs");
            }
        }
    }

    #[test]
    fn internal_and_boundary_edges() {
        let d = two_submodule_design();
        let graphs = d.submodule_graphs();
        // sm0: and -> inv internal edge.
        assert_eq!(graphs[0].edges().len(), 1);
        // and->or and inv->or cross the boundary (2 wires), each counted on
        // both sides.
        assert_eq!(graphs[0].boundary_edges(), 2);
        assert_eq!(graphs[1].boundary_edges(), 2);
        // sm1: or -> dff internal edge.
        assert_eq!(graphs[1].edges().len(), 1);
    }

    #[test]
    fn edges_are_local_and_valid() {
        let d = two_submodule_design();
        for g in d.submodule_graphs() {
            for &(a, b) in g.edges() {
                assert!((a as usize) < g.node_count());
                assert!((b as usize) < g.node_count());
            }
        }
    }
}
