//! Structural Verilog-style netlist writer (debug/interchange aid).
//!
//! Emits one flat module with library-cell instances. The output is
//! readable by humans and by structural netlist viewers, and the exact
//! emitted subset is read back by [`Design::from_verilog`] (see
//! `reader.rs`), which is how the serve layer ingests uploaded designs.
//! Sub-module declarations ride in `// submodule smN name component`
//! comment lines, each instance comment carries its sub-module index,
//! and `// clock nN` / `// reset nN` markers record the bound clock and
//! reset nets, so the two-level hierarchy (including duplicate names and
//! declaration order) and the net roles reconstruct exactly. Names
//! containing whitespace do not round-trip — they are written verbatim
//! and the reader splits on whitespace.

use std::fmt::Write as _;

use atlas_liberty::CellClass;

use crate::design::Design;
use crate::ids::NetId;

impl Design {
    /// Render the design as flat structural Verilog.
    ///
    /// # Examples
    ///
    /// ```
    /// use atlas_liberty::{CellClass, Drive};
    /// use atlas_netlist::NetlistBuilder;
    ///
    /// # fn main() -> Result<(), atlas_netlist::BuildError> {
    /// let mut b = NetlistBuilder::new("hello");
    /// let sm = b.add_submodule("t.u", "t");
    /// let a = b.add_input();
    /// let y = b.add_cell(CellClass::Inv, Drive::X1, &[a], sm)?;
    /// b.mark_output(y);
    /// let v = b.finish()?.to_verilog();
    /// assert!(v.contains("module hello"));
    /// assert!(v.contains("INV_X1"));
    /// # Ok(())
    /// # }
    /// ```
    pub fn to_verilog(&self) -> String {
        let mut out = String::new();
        let net_name = |n: NetId| format!("n{}", n.index());

        let mut ports: Vec<String> = Vec::new();
        if let Some(clk) = self.clock() {
            ports.push(net_name(clk));
        }
        if let Some(rst) = self.reset() {
            ports.push(net_name(rst));
        }
        ports.extend(self.primary_inputs().iter().map(|&n| net_name(n)));
        ports.extend(self.primary_outputs().iter().map(|&n| net_name(n)));

        let _ = writeln!(out, "module {} ({});", self.name, ports.join(", "));
        // Explicit role markers: the reader needs these to reconstruct a
        // bound clock/reset that no instance happens to reference (it
        // still cross-checks them against `.CK`/`.RN` usage).
        if let Some(clk) = self.clock() {
            let _ = writeln!(out, "  // clock {}", net_name(clk));
        }
        if let Some(rst) = self.reset() {
            let _ = writeln!(out, "  // reset {}", net_name(rst));
        }
        if let Some(clk) = self.clock() {
            let _ = writeln!(out, "  input {};", net_name(clk));
        }
        if let Some(rst) = self.reset() {
            let _ = writeln!(out, "  input {};", net_name(rst));
        }
        for &n in self.primary_inputs() {
            let _ = writeln!(out, "  input {};", net_name(n));
        }
        for &n in self.primary_outputs() {
            let _ = writeln!(out, "  output {};", net_name(n));
        }
        let port_nets: std::collections::HashSet<usize> = self
            .primary_inputs()
            .iter()
            .chain(self.primary_outputs())
            .chain(self.clock().iter())
            .chain(self.reset().iter())
            .map(|n| n.index())
            .collect();
        for id in self.net_ids() {
            if !port_nets.contains(&id.index()) {
                let _ = writeln!(out, "  wire {};", net_name(id));
            }
        }
        for (i, sm) in self.submodules().iter().enumerate() {
            let _ = writeln!(out, "  // submodule sm{i} {} {}", sm.name(), sm.component());
        }

        const PIN_NAMES: [&str; 4] = ["A", "B", "C", "D"];
        for (i, cell) in self.cells().iter().enumerate() {
            let cell_name = if cell.class() == CellClass::Sram {
                // Every builder path stores a config with an SRAM cell;
                // degrade to 0x0 rather than panic if one is absent.
                let cfg = cell
                    .sram()
                    .unwrap_or(crate::cell::SramConfig { words: 0, bits: 0 });
                format!("SRAM_{}x{}", cfg.words, cfg.bits)
            } else {
                format!("{}_{}", cell.class().keyword().to_uppercase(), cell.drive())
            };
            let mut pins: Vec<String> = Vec::new();
            if cell.class() == CellClass::Sram {
                let names = ["REN", "WEN", "ADDR", "DATA"];
                for (p, &net) in cell.inputs().iter().enumerate() {
                    pins.push(format!(".{}({})", names[p], net_name(net)));
                }
            } else {
                for (p, &net) in cell.inputs().iter().enumerate() {
                    pins.push(format!(".{}({})", PIN_NAMES[p], net_name(net)));
                }
            }
            if let Some(clk) = cell.clock() {
                pins.push(format!(".CK({})", net_name(clk)));
            }
            if let Some(rst) = cell.reset() {
                pins.push(format!(".RN({})", net_name(rst)));
            }
            pins.push(format!(".Y({})", net_name(cell.output())));
            let sm_idx = cell.submodule().index();
            let sm = self.submodule(cell.submodule()).name();
            let _ = writeln!(
                out,
                "  {cell_name} u{i} ({}); // sm{sm_idx} {sm}",
                pins.join(", ")
            );
        }
        out.push_str("endmodule\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use atlas_liberty::{CellClass, Drive};

    use crate::builder::NetlistBuilder;

    #[test]
    fn verilog_contains_all_cells() {
        let mut b = NetlistBuilder::new("vtest");
        let sm = b.add_submodule("t.u", "t");
        let a = b.add_input();
        let c = b.add_input();
        let x = b
            .add_cell(CellClass::Nand2, Drive::X2, &[a, c], sm)
            .expect("ok");
        let q = b.add_dff(x, sm).expect("ok");
        b.mark_output(q);
        let d = b.finish().expect("valid");
        let v = d.to_verilog();
        assert!(v.contains("module vtest"));
        assert!(v.contains("NAND2_X2"));
        assert!(v.contains("DFF_X1"));
        assert!(v.contains(".CK("));
        assert!(v.ends_with("endmodule\n"));
        let instance_lines = v.lines().filter(|l| l.contains(" u")).count();
        assert_eq!(instance_lines, d.cell_count());
    }

    #[test]
    fn sram_instance_name() {
        let mut b = NetlistBuilder::new("m");
        let sm = b.add_submodule("t.u", "t");
        let nets = b.add_inputs(4);
        let q = b
            .add_sram(512, 64, nets[0], nets[1], nets[2], nets[3], sm)
            .expect("ok");
        b.mark_output(q);
        let v = b.finish().expect("valid").to_verilog();
        assert!(v.contains("SRAM_512x64"));
        assert!(v.contains(".REN("));
    }
}
