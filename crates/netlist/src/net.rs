//! Nets (wires).

use serde::{Deserialize, Serialize};

use crate::ids::{CellId, Sink};

/// One net: a single driver (a cell output or a primary input / clock root)
/// fanning out to zero or more sink pins.
///
/// `wire_cap` is 0 at the gate level and is filled in by the layout flow
/// from placement geometry — this is precisely the information that is
/// missing when power is (mis)estimated from the gate-level netlist alone,
/// the gap ATLAS learns to bridge.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Net {
    pub(crate) driver: Option<CellId>,
    pub(crate) sinks: Vec<Sink>,
    pub(crate) wire_cap: f64,
}

impl Net {
    /// The driving cell, or `None` for primary inputs and the clock root.
    pub fn driver(&self) -> Option<CellId> {
        self.driver
    }

    /// All (cell, pin) loads on this net.
    pub fn sinks(&self) -> &[Sink] {
        &self.sinks
    }

    /// Fanout (number of sink pins).
    pub fn fanout(&self) -> usize {
        self.sinks.len()
    }

    /// Wire capacitance in pF (0 before layout).
    pub fn wire_cap(&self) -> f64 {
        self.wire_cap
    }
}
