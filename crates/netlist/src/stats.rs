//! Design statistics (Table II's raw material).

use atlas_liberty::{CellClass, Library, PowerGroup};
use serde::{Deserialize, Serialize};

use crate::design::Design;
use crate::topo;

/// Aggregate statistics of one design snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DesignStats {
    /// Total cell instances (the paper's "gate count", Table II).
    pub cell_count: usize,
    /// Total nets.
    pub net_count: usize,
    /// Instances per cell class, indexed by [`CellClass::index`].
    pub per_class: Vec<usize>,
    /// Instances per power group, indexed by [`PowerGroup::index`].
    pub per_group: Vec<usize>,
    /// Maximum net fanout.
    pub max_fanout: usize,
    /// Maximum combinational depth in cells.
    pub max_level: u32,
    /// Total SRAM capacity in bits.
    pub sram_bits: u64,
    /// Number of sub-modules.
    pub submodule_count: usize,
}

impl DesignStats {
    /// Instances of one class.
    pub fn class_count(&self, class: CellClass) -> usize {
        self.per_class[class.index()]
    }

    /// Instances in one power group.
    pub fn group_count(&self, group: PowerGroup) -> usize {
        self.per_group[group.index()]
    }
}

impl Design {
    /// Compute aggregate statistics for this snapshot.
    ///
    /// # Examples
    ///
    /// ```
    /// use atlas_liberty::{CellClass, Drive};
    /// use atlas_netlist::NetlistBuilder;
    ///
    /// # fn main() -> Result<(), atlas_netlist::BuildError> {
    /// let mut b = NetlistBuilder::new("d");
    /// let sm = b.add_submodule("t.u", "t");
    /// let a = b.add_input();
    /// let y = b.add_cell(CellClass::Inv, Drive::X1, &[a], sm)?;
    /// b.mark_output(y);
    /// let stats = b.finish()?.stats();
    /// assert_eq!(stats.cell_count, 1);
    /// assert_eq!(stats.class_count(CellClass::Inv), 1);
    /// # Ok(())
    /// # }
    /// ```
    pub fn stats(&self) -> DesignStats {
        let mut per_class = vec![0usize; CellClass::COUNT];
        let mut per_group = vec![0usize; PowerGroup::ALL.len()];
        let mut sram_bits = 0u64;
        for cell in self.cells() {
            per_class[cell.class().index()] += 1;
            per_group[cell.class().power_group().index()] += 1;
            if let Some(cfg) = cell.sram() {
                sram_bits += cfg.words as u64 * cfg.bits as u64;
            }
        }
        let max_fanout = self.nets().iter().map(|n| n.fanout()).max().unwrap_or(0);
        let (_, max_level) = topo::levels(self);
        DesignStats {
            cell_count: self.cell_count(),
            net_count: self.net_count(),
            per_class,
            per_group,
            max_fanout,
            max_level,
            sram_bits,
            submodule_count: self.submodules().len(),
        }
    }

    /// Total standard-cell + macro area in µm² under the given library.
    pub fn area(&self, lib: &Library) -> f64 {
        let mut total = 0.0;
        for cell in self.cells() {
            if cell.class() == CellClass::Sram {
                if let Some(cfg) = cell.sram() {
                    if let Some(m) = lib.sram_at_least(cfg.words, cfg.bits) {
                        total += m.area();
                    }
                }
            } else if let Some(lc) = lib.cell(cell.class(), cell.drive()) {
                total += lc.area();
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use atlas_liberty::Drive;

    use super::*;
    use crate::builder::NetlistBuilder;

    fn sample() -> Design {
        let mut b = NetlistBuilder::new("s");
        let sm = b.add_submodule("t.u", "t");
        let i0 = b.add_input();
        let i1 = b.add_input();
        let x = b
            .add_cell(CellClass::Xor2, Drive::X1, &[i0, i1], sm)
            .expect("ok");
        let y = b
            .add_cell(CellClass::And2, Drive::X1, &[x, i0], sm)
            .expect("ok");
        let q = b.add_dff(y, sm).expect("ok");
        let ren = b.add_input();
        let wen = b.add_input();
        let m = b.add_sram(256, 32, ren, wen, i0, q, sm).expect("ok");
        b.mark_output(m);
        b.finish().expect("valid")
    }

    #[test]
    fn counts() {
        let s = sample().stats();
        assert_eq!(s.cell_count, 4);
        assert_eq!(s.class_count(CellClass::Xor2), 1);
        assert_eq!(s.group_count(PowerGroup::Register), 1);
        assert_eq!(s.group_count(PowerGroup::Memory), 1);
        assert_eq!(s.sram_bits, 256 * 32);
        assert_eq!(s.submodule_count, 1);
        assert_eq!(s.max_level, 1);
    }

    #[test]
    fn area_is_positive_and_dominated_by_sram() {
        let d = sample();
        let lib = Library::synthetic_40nm();
        let area = d.area(&lib);
        assert!(area > 0.0);
        let sram_area = lib.sram_at_least(256, 32).expect("exists").area();
        assert!(area > sram_area);
        assert!(area < sram_area * 1.5);
    }
}
