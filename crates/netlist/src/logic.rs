//! Boolean semantics of the combinational cell classes.
//!
//! Shared by the logic simulator (`atlas-sim`) and the functional
//! equivalence checks in the restructuring engine (`atlas-layout`).

use atlas_liberty::CellClass;

/// Evaluate a combinational cell class on its input values (in pin order).
///
/// Returns `None` for sequential classes ([`CellClass::Dff`],
/// [`CellClass::Dffr`], [`CellClass::Sram`]) whose outputs are state, not a
/// function of current inputs.
///
/// # Panics
///
/// Panics if `inputs.len()` does not match [`CellClass::input_pins`].
///
/// # Examples
///
/// ```
/// use atlas_liberty::CellClass;
/// use atlas_netlist::logic::eval;
///
/// assert_eq!(eval(CellClass::Nand2, &[true, true]), Some(false));
/// assert_eq!(eval(CellClass::Mux2, &[false, true, true]), Some(true));
/// assert_eq!(eval(CellClass::Dff, &[true]), None);
/// ```
pub fn eval(class: CellClass, inputs: &[bool]) -> Option<bool> {
    assert_eq!(
        inputs.len(),
        class.input_pins(),
        "{class} expects {} inputs, got {}",
        class.input_pins(),
        inputs.len()
    );
    let v = match class {
        CellClass::Inv => !inputs[0],
        CellClass::Buf | CellClass::Clk => inputs[0],
        CellClass::And2 => inputs[0] & inputs[1],
        CellClass::Nand2 => !(inputs[0] & inputs[1]),
        CellClass::Or2 => inputs[0] | inputs[1],
        CellClass::Nor2 => !(inputs[0] | inputs[1]),
        CellClass::Xor2 => inputs[0] ^ inputs[1],
        CellClass::Xnor2 => !(inputs[0] ^ inputs[1]),
        // Mux2 pins: [A, B, S] — S selects B when high.
        CellClass::Mux2 => {
            if inputs[2] {
                inputs[1]
            } else {
                inputs[0]
            }
        }
        // AOI21 pins: [A, B, C] — !(A&B | C).
        CellClass::Aoi21 => !((inputs[0] & inputs[1]) | inputs[2]),
        // OAI21 pins: [A, B, C] — !((A|B) & C).
        CellClass::Oai21 => !((inputs[0] | inputs[1]) & inputs[2]),
        // AOI22 pins: [A, B, C, D] — !(A&B | C&D).
        CellClass::Aoi22 => !((inputs[0] & inputs[1]) | (inputs[2] & inputs[3])),
        // Adder cells model the SUM output; carries are built from AND/OR.
        CellClass::HalfAdder => inputs[0] ^ inputs[1],
        CellClass::FullAdder => inputs[0] ^ inputs[1] ^ inputs[2],
        CellClass::Dff | CellClass::Dffr | CellClass::Sram => return None,
    };
    Some(v)
}

/// Exhaustively compare two single-output combinational functions over all
/// input assignments of `n` pins. Used by restructuring tests to prove
/// rewrite rules are logic-invariant.
pub fn equivalent<F, G>(n: usize, f: F, g: G) -> bool
where
    F: Fn(&[bool]) -> bool,
    G: Fn(&[bool]) -> bool,
{
    assert!(n <= 16, "exhaustive check limited to 16 inputs");
    let mut buf = vec![false; n];
    for m in 0..(1u32 << n) {
        for (i, b) in buf.iter_mut().enumerate() {
            *b = (m >> i) & 1 == 1;
        }
        if f(&buf) != g(&buf) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truth_tables() {
        assert_eq!(eval(CellClass::Inv, &[false]), Some(true));
        assert_eq!(eval(CellClass::Buf, &[true]), Some(true));
        assert_eq!(eval(CellClass::And2, &[true, false]), Some(false));
        assert_eq!(eval(CellClass::Or2, &[true, false]), Some(true));
        assert_eq!(eval(CellClass::Nor2, &[false, false]), Some(true));
        assert_eq!(eval(CellClass::Xnor2, &[true, true]), Some(true));
        assert_eq!(eval(CellClass::Aoi21, &[true, true, false]), Some(false));
        assert_eq!(eval(CellClass::Aoi21, &[false, true, false]), Some(true));
        assert_eq!(eval(CellClass::Oai21, &[false, false, true]), Some(true));
        assert_eq!(
            eval(CellClass::Aoi22, &[true, true, false, false]),
            Some(false)
        );
        assert_eq!(eval(CellClass::HalfAdder, &[true, true]), Some(false));
        assert_eq!(eval(CellClass::FullAdder, &[true, true, true]), Some(true));
    }

    #[test]
    fn sequential_returns_none() {
        assert_eq!(eval(CellClass::Dff, &[true]), None);
        assert_eq!(eval(CellClass::Dffr, &[false]), None);
        assert_eq!(eval(CellClass::Sram, &[true, false, true, false]), None);
    }

    #[test]
    #[should_panic(expected = "expects 2 inputs")]
    fn wrong_arity_panics() {
        let _ = eval(CellClass::And2, &[true]);
    }

    #[test]
    fn demorgan_equivalence() {
        // !(a & b) == !a | !b
        assert!(equivalent(
            2,
            |v| eval(CellClass::Nand2, v).expect("comb"),
            |v| v.iter().map(|b| !b).fold(false, |acc, x| acc | x),
        ));
    }

    #[test]
    fn mux_via_aoi() {
        // mux(a, b, s) == !aoi22(a, !s, b, s)
        assert!(equivalent(
            3,
            |v| eval(CellClass::Mux2, v).expect("comb"),
            |v| {
                let (a, b, s) = (v[0], v[1], v[2]);
                let aoi = eval(CellClass::Aoi22, &[a, !s, b, s]).expect("comb");
                !aoi
            },
        ));
    }

    #[test]
    fn xor_via_nands() {
        // a ^ b with four NANDs.
        assert!(equivalent(
            2,
            |v| v[0] ^ v[1],
            |v| {
                let (a, b) = (v[0], v[1]);
                let n1 = !(a & b);
                let n2 = !(a & n1);
                let n3 = !(b & n1);
                !(n2 & n3)
            },
        ));
    }
}
