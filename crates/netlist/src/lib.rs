//! Gate-level netlist intermediate representation for the ATLAS reproduction.
//!
//! A [`Design`] is a flat sea of [`Cell`]s connected by [`Net`]s, annotated
//! with a two-level hierarchy ([`Submodule`] → component) that mirrors how
//! the paper splits each design into non-overlapping sub-modules (§III-A)
//! and rolls sub-module power up into components (Fig. 6).
//!
//! The same IR represents both stages of the flow:
//!
//! * the **post-synthesis gate-level netlist** `Ng` ([`Stage::GateLevel`]),
//! * the **post-layout netlist** `Np` ([`Stage::PostLayout`]) — with clock
//!   tree cells, inserted buffers, resized drives, and per-net wire
//!   capacitance filled in by `atlas-layout`.
//!
//! Key entry points:
//!
//! * [`NetlistBuilder`] — construct designs with validation.
//! * [`Design::submodule_graphs`] — the directed graphs ATLAS encodes.
//! * [`topo::levelize`] — combinational levelization used by the simulator.
//! * [`Design::stats`] — per-class / per-group counts (Table II).
//!
//! # Examples
//!
//! Build a 1-bit toggler (inverter feeding a flip-flop):
//!
//! ```
//! use atlas_liberty::{CellClass, Drive};
//! use atlas_netlist::{NetlistBuilder, Stage};
//!
//! # fn main() -> Result<(), atlas_netlist::BuildError> {
//! let mut b = NetlistBuilder::new("toggler");
//! let sm = b.add_submodule("top.t0", "top");
//! let q = b.new_net();
//! let nq = b.add_cell(CellClass::Inv, Drive::X1, &[q], sm)?;
//! b.add_dff_onto(q, nq, sm)?;
//! b.mark_output(q);
//! let design = b.finish()?;
//! assert_eq!(design.stage(), Stage::GateLevel);
//! assert_eq!(design.cell_count(), 2);
//! # Ok(())
//! # }
//! ```

mod builder;
mod cell;
mod design;
pub mod detrng;
mod graph;
mod ids;
pub mod logic;
mod net;
mod reader;
mod stats;
pub mod topo;
mod verilog;

pub use builder::{BuildError, NetlistBuilder};
pub use cell::{Cell, SramConfig};
pub use design::{Design, Stage, Submodule};
pub use graph::SubmoduleGraph;
pub use ids::{CellId, NetId, Sink, SinkPin, SubmoduleId};
pub use net::Net;
pub use reader::limits as verilog_limits;
pub use reader::{NetlistParseError, NetlistParseErrorKind};
pub use stats::DesignStats;
