//! Table III — MAPE (%) of ATLAS vs the gate-level baseline on the unseen
//! designs C2 and C4 under workloads W1 and W2.

use atlas_bench::{bench_config, load_or_train, pct, write_result};
use atlas_core::EvalRow;

fn main() {
    let cfg = bench_config();
    let trained = load_or_train(&cfg);

    let mut rows: Vec<EvalRow> = Vec::new();
    for design in ["C2", "C4"] {
        for workload in ["W1", "W2"] {
            println!("evaluating {design} under {workload}...");
            rows.push(trained.evaluate_test_design(design, workload));
        }
    }

    println!("\nTable III: MAPE (%) of designs C2 and C4 under workloads W1 and W2\n");
    println!(
        "{:<10} {:<4} | {:>8} {:>8} {:>8} {:>8} {:>8} | {:>8} {:>8} {:>8} {:>8} {:>8}",
        "", "", "ATLAS", "", "", "", "", "Gate-Level baseline", "", "", "", ""
    );
    println!(
        "{:<10} {:<4} | {:>8} {:>8} {:>8} {:>8} {:>8} | {:>8} {:>8} {:>8} {:>8} {:>8}",
        "Design",
        "WL",
        "Comb",
        "CT",
        "Reg",
        "CT+Reg",
        "Total",
        "Comb",
        "CT",
        "Reg",
        "CT+Reg",
        "Total"
    );
    let mut avg = [0.0f64; 10];
    for r in &rows {
        println!(
            "{:<10} {:<4} | {:>8} {:>8} {:>8} {:>8} {:>8} | {:>8} {:>8} {:>8} {:>8} {:>8}",
            r.design,
            r.workload,
            pct(r.atlas_mape_comb),
            pct(r.atlas_mape_ct),
            pct(r.atlas_mape_reg),
            pct(r.atlas_mape_ct_reg),
            pct(r.atlas_mape_total),
            pct(r.baseline_mape_comb),
            pct(r.baseline_mape_ct),
            pct(r.baseline_mape_reg),
            pct(r.baseline_mape_ct_reg),
            pct(r.baseline_mape_total),
        );
        for (slot, v) in avg.iter_mut().zip([
            r.atlas_mape_comb,
            r.atlas_mape_ct,
            r.atlas_mape_reg,
            r.atlas_mape_ct_reg,
            r.atlas_mape_total,
            r.baseline_mape_comb,
            r.baseline_mape_ct,
            r.baseline_mape_reg,
            r.baseline_mape_ct_reg,
            r.baseline_mape_total,
        ]) {
            *slot += v / rows.len() as f64;
        }
    }
    println!(
        "{:<10} {:<4} | {:>8} {:>8} {:>8} {:>8} {:>8} | {:>8} {:>8} {:>8} {:>8} {:>8}",
        "Average",
        "",
        pct(avg[0]),
        pct(avg[1]),
        pct(avg[2]),
        pct(avg[3]),
        pct(avg[4]),
        pct(avg[5]),
        pct(avg[6]),
        pct(avg[7]),
        pct(avg[8]),
        pct(avg[9]),
    );
    println!("\nPaper shape checks:");
    println!(
        "  - baseline clock-tree MAPE = 100% (group absent at gate level): {}",
        if avg[6] >= 99.9 { "HOLDS" } else { "VIOLATED" }
    );
    println!(
        "  - ATLAS total ≪ baseline total: {:.2}% vs {:.2}%: {}",
        avg[4],
        avg[9],
        if avg[4] < avg[9] / 2.0 {
            "HOLDS"
        } else {
            "VIOLATED"
        }
    );
    println!(
        "  - combinational is ATLAS's hardest group: {}",
        if avg[0] > avg[2] { "HOLDS" } else { "VIOLATED" }
    );
    write_result("table3", &rows);
}
