//! Embed-path benchmark: per-cycle vs cross-cycle layer-batched encoder
//! forwards over real designs, writing `BENCH_infer.json`.
//!
//! ```text
//! infer_bench [--out PATH] [--cycles N] [--threads N] [--reps N]
//!             [--scales F,F,..] [--gate-scale F]
//! ```
//!
//! For each design scale the bench builds C1 at that scale, simulates a
//! W1 toggle trace, and embeds the whole trace four ways:
//!
//! * **per_cycle** — the seed hot path, reproduced verbatim in
//!   [`seed_path`]: the scalar zero-skipping matmul kernel, one forward
//!   (with per-operation allocations) per (sub-module, cycle),
//!   sub-modules chunked across threads *by count*, plus per-cycle side
//!   features;
//! * **batched** — [`AtlasModel::embed_trace`] as shipped: the blocked
//!   register-tiled SIMD kernels, work-balanced work items, whole-trace
//!   toggle-pattern dedup, and the cycle-blocked forward (one fused
//!   matmul per layer per chunk);
//! * **scalar_batched** — the same batched path with the kernel dispatch
//!   pinned to the scalar fallback, isolating the SIMD micro-kernels'
//!   contribution as `simd_speedup` (an in-run ratio, so the CI gate
//!   compares like with like on whatever machine runs it);
//! * **f32** — the batched path through the reduced-precision encoder
//!   ([`Precision::F32`]), gated on accuracy (`f32_max_rel_delta` against
//!   the f64 embeddings, tolerance [`atlas_nn::F32_EMBED_TOLERANCE`])
//!   rather than bit parity.
//!
//! The f64 arms produce bit-identical embeddings (checked, reported as
//! `parity`/`scalar_parity` — seed, batched, and scalar-batched forwards
//! are the same dot-product sequence per output element); the bench
//! measures throughput in embedded trace cycles per second. The `gate`
//! object repeats the `--gate-scale` row with flat numeric field names
//! for the CI regression gate (`scripts/check_bench.rs --infer`), and the
//! report's `isa`/`kernel`/`f32_kernel` fields record what the dispatch
//! actually selected on the benchmarking machine.

use std::process::ExitCode;
use std::time::Instant;

use atlas_core::features::{build_submodule_data, side_features, SubmoduleData};
use atlas_core::finetune::{MemoryModel, PowerHeads};
use atlas_core::{AtlasModel, EmbeddingTable, Precision};
use atlas_designs::DesignConfig;
use atlas_gbdt::{Gbdt, GbdtConfig};
use atlas_liberty::Library;
use atlas_netlist::Design;
use atlas_nn::simd::{self, KernelLevel};
use atlas_nn::{EncoderConfig, EncoderState, GraphEncoder, Matrix, SparseAdj, F32_EMBED_TOLERANCE};
use atlas_sim::{simulate, PhasedWorkload, ToggleTrace};
use serde::Serialize;

/// The seed implementation of the embed hot path, frozen here as the
/// benchmark baseline: scalar ikj matmul with the `a == 0.0` skip, a
/// fresh allocation per operation, and one full forward per cycle.
mod seed_path {
    use super::Matrix;
    use super::SparseAdj;

    /// The seed's dense kernel (scalar, zero-skipping).
    fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
        assert_eq!(a.cols(), b.rows(), "matmul shape mismatch");
        let (ar, ac, bc) = (a.rows(), a.cols(), b.cols());
        let mut out = Matrix::zeros(ar, bc);
        let ad = a.as_slice();
        let bd = b.as_slice();
        for i in 0..ar {
            let orow = &mut out.as_mut_slice()[i * bc..(i + 1) * bc];
            for k in 0..ac {
                let av = ad[i * ac + k];
                if av == 0.0 {
                    continue;
                }
                let brow = &bd[k * bc..(k + 1) * bc];
                for (o, &bv) in orow.iter_mut().zip(brow) {
                    *o += av * bv;
                }
            }
        }
        out
    }

    /// The seed's `selfᵀ × other` kernel.
    fn matmul_tn(a: &Matrix, b: &Matrix) -> Matrix {
        assert_eq!(a.rows(), b.rows(), "matmul_tn shape mismatch");
        let mut out = Matrix::zeros(a.cols(), b.cols());
        let bc = b.cols();
        for k in 0..a.rows() {
            let arow = a.row(k);
            let brow = b.row(k);
            for (i, &av) in arow.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let orow = &mut out.as_mut_slice()[i * bc..(i + 1) * bc];
                for (o, &bv) in orow.iter_mut().zip(brow) {
                    *o += av * bv;
                }
            }
        }
        out
    }

    /// A frozen copy of the seed's `InferenceEncoder::encode_graph`.
    pub struct SeedEncoder {
        weights: Vec<Matrix>,
        layers: usize,
        hidden: usize,
        alpha: f64,
        sum_pool_scale: f64,
    }

    impl SeedEncoder {
        pub fn new(state: &super::EncoderState) -> SeedEncoder {
            SeedEncoder {
                weights: state.tensors.clone(),
                layers: state.config.layers,
                hidden: state.config.hidden_dim,
                alpha: state.config.alpha,
                sum_pool_scale: atlas_nn::SUM_POOL_SCALE,
            }
        }

        fn linear(&self, idx: usize, x: &Matrix) -> Matrix {
            let w = &self.weights[idx * 2];
            let b = &self.weights[idx * 2 + 1];
            let mut out = matmul(x, w);
            for r in 0..out.rows() {
                for c in 0..out.cols() {
                    let v = out.get(r, c) + b.get(0, c);
                    out.set(r, c, v);
                }
            }
            out
        }

        pub fn encode_graph(&self, adj: &SparseAdj, features: &Matrix) -> Vec<f64> {
            let n = features.rows();
            let relu = |m: Matrix| m.map(|v| v.max(0.0));
            let mut h = relu(self.linear(0, features));
            for l in 0..self.layers {
                let base = 1 + l * 4;
                let pq = self.linear(base, &h).map(|v| v.max(0.0) + 0.01);
                let pk = self.linear(base + 1, &h).map(|v| v.max(0.0) + 0.01);
                let v = self.linear(base + 2, &h);
                let kv = matmul_tn(&pk, &v); // d×d
                let num = matmul(&pq, &kv); // n×d
                let ksum = matmul_tn(&pk, &Matrix::full(n, 1, 1.0)); // d×1
                let denom = matmul(&pq, &ksum); // n×1
                let mut attn = num;
                for r in 0..n {
                    let dv = denom.get(r, 0);
                    for c in 0..attn.cols() {
                        attn.set(r, c, attn.get(r, c) / dv);
                    }
                }
                let prop = relu(self.linear(base + 3, &adj.matmul(&h)));
                let mut mixed = Matrix::zeros(n, self.hidden);
                for i in 0..mixed.as_slice().len() {
                    mixed.as_mut_slice()[i] = (self.alpha * attn.as_slice()[i]
                        + (1.0 - self.alpha) * prop.as_slice()[i])
                        .max(0.0);
                }
                h = mixed;
            }
            let nf = h.rows() as f64;
            let pooled = h.mean_rows();
            let w = &self.weights[(1 + self.layers * 4) * 2];
            let b = &self.weights[(1 + self.layers * 4) * 2 + 1];
            let out = matmul(&pooled, w);
            let scale = nf * self.sum_pool_scale;
            (0..out.cols())
                .map(|c| (out.get(0, c) + b.get(0, c)) * scale)
                .collect()
        }
    }
}

struct Args {
    out: String,
    cycles: usize,
    threads: usize,
    reps: usize,
    scales: Vec<f64>,
    gate_scale: f64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        out: "BENCH_infer.json".into(),
        // The production ExperimentConfig default trace length.
        cycles: 300,
        threads: 0,
        reps: 3,
        scales: vec![0.05, 0.1, 0.2],
        gate_scale: 0.05,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--out" => args.out = value("--out")?,
            "--cycles" => args.cycles = value("--cycles")?.parse().map_err(|e| format!("{e}"))?,
            "--threads" => {
                args.threads = value("--threads")?.parse().map_err(|e| format!("{e}"))?;
            }
            "--reps" => args.reps = value("--reps")?.parse().map_err(|e| format!("{e}"))?,
            "--scales" => {
                args.scales = value("--scales")?
                    .split(',')
                    .map(|s| s.trim().parse().map_err(|e| format!("bad scale: {e}")))
                    .collect::<Result<_, _>>()?;
            }
            "--gate-scale" => {
                args.gate_scale = value("--gate-scale")?.parse().map_err(|e| format!("{e}"))?;
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if args.cycles == 0 || args.reps == 0 || args.scales.is_empty() {
        return Err("--cycles, --reps, and --scales must be non-empty/positive".into());
    }
    if !args.scales.contains(&args.gate_scale) {
        args.scales.push(args.gate_scale);
    }
    Ok(args)
}

/// An `AtlasModel` whose heads are never evaluated: `embed_trace` only
/// touches the encoder, so tiny placeholder GBDTs keep the bench free of
/// a multi-second training phase while still exercising the real
/// serving-path entry point. The encoder is sized like the serving
/// benchmark's model (`ExperimentConfig::quick()`: hidden 24, 1 layer) —
/// this bench exists to explain `BENCH_serve.json`'s cold path.
fn stub_model() -> AtlasModel {
    let cfg = EncoderConfig {
        hidden_dim: 24,
        layers: 1,
        ..EncoderConfig::default()
    };
    let hidden = cfg.hidden_dim;
    let encoder = GraphEncoder::new(cfg).state();
    let x = [0.0, 1.0, 2.0, 3.0];
    let y = [0.0, 1.0, 2.0, 3.0];
    let tiny = || {
        Gbdt::fit(
            &x,
            1,
            &y,
            &GbdtConfig {
                n_estimators: 1,
                ..GbdtConfig::default()
            },
        )
    };
    let heads = PowerHeads {
        f_ct: tiny(),
        f_comb: tiny(),
        f_reg: tiny(),
        memory: MemoryModel {
            w_read: 0.0,
            w_write: 0.0,
            w_bit: 0.0,
            bias: 0.0,
        },
        embed_dim: hidden,
        side_features: false,
    };
    AtlasModel::new(encoder, heads)
}

/// The seed hot path: count-chunked threads, one scalar-kernel forward
/// per (sub-module, cycle), plus per-cycle side features. Returns the
/// embeddings in `data` order for the parity check.
fn embed_per_cycle(
    encoder: &seed_path::SeedEncoder,
    gate: &Design,
    lib: &Library,
    data: &[SubmoduleData],
    trace: &ToggleTrace,
    threads: usize,
) -> Vec<Vec<Vec<f64>>> {
    let cycles = trace.cycles();
    let threads = threads.clamp(1, data.len().max(1));
    let chunk = data.len().div_ceil(threads).max(1);
    let pieces: Vec<(usize, &[SubmoduleData])> = data
        .chunks(chunk)
        .enumerate()
        .map(|(i, piece)| (i * chunk, piece))
        .collect();
    let mut out: Vec<(usize, Vec<Vec<Vec<f64>>>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = pieces
            .into_iter()
            .map(|(first, piece)| {
                scope.spawn(move || {
                    let mut local = Vec::with_capacity(piece.len());
                    for smd in piece {
                        let per_sm: Vec<Vec<f64>> = (0..cycles)
                            .map(|t| {
                                let feats = smd.features_for_cycle(gate, trace, t);
                                encoder.encode_graph(smd.adj(), &feats)
                            })
                            .collect();
                        // Side features are part of stage one in both arms.
                        for t in 0..cycles {
                            std::hint::black_box(side_features(smd, gate, lib, trace, t));
                        }
                        local.push(per_sm);
                    }
                    (first, local)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("per-cycle worker"))
            .collect()
    });
    out.sort_by_key(|(first, _)| *first);
    out.into_iter().flat_map(|(_, local)| local).collect()
}

/// One arm's latency/throughput rollup.
#[derive(Debug, Serialize)]
struct Arm {
    /// Best-of-`reps` wall time for the whole trace, seconds.
    wall_s: f64,
    /// Embedded trace cycles per second at that wall time.
    cycles_per_s: f64,
}

/// One design scale's measurement.
#[derive(Debug, Serialize)]
struct ScaleRow {
    scale: f64,
    submodules: usize,
    cells: usize,
    per_cycle: Arm,
    batched: Arm,
    scalar_batched: Arm,
    f32: Arm,
    /// `batched.cycles_per_s / per_cycle.cycles_per_s`.
    speedup: f64,
    /// `batched.cycles_per_s / scalar_batched.cycles_per_s` — the SIMD
    /// micro-kernels' in-run contribution.
    simd_speedup: f64,
    /// `f32.cycles_per_s / batched.cycles_per_s`.
    f32_speedup: f64,
    /// Largest `|f32 − f64| / (1 + |f64|)` over every embedding element.
    f32_max_rel_delta: f64,
    /// Whether batched f64 embeddings are bit-identical to the seed path
    /// (must be true).
    parity: bool,
    /// Whether scalar-batched embeddings are bit-identical to the seed
    /// path (must be true — the scalar fallback defines the reference).
    scalar_parity: bool,
}

/// The CI gate row: the `--gate-scale` measurement with flat **numeric**
/// field names for the dependency-free scanner in
/// `scripts/check_bench.rs` (which reads numbers only — hence
/// `simd_active` as 0/1 rather than a bool).
#[derive(Debug, Serialize)]
struct GateRow {
    scale: f64,
    per_cycle_cycles_per_s: f64,
    batched_cycles_per_s: f64,
    speedup: f64,
    /// In-run SIMD-vs-scalar batched throughput ratio.
    simd_speedup: f64,
    /// 1 when the dispatch selected a SIMD kernel level, 0 when the
    /// scalar fallback ran (no AVX2, or `ATLAS_FORCE_SCALAR`).
    simd_active: u32,
    /// Largest f32-vs-f64 relative embedding delta at the gate scale.
    f32_max_rel_delta: f64,
    /// The accuracy bound `f32_max_rel_delta` is gated against
    /// ([`atlas_nn::F32_EMBED_TOLERANCE`], written out so the gate script
    /// needs no shared constant).
    f32_tolerance: f64,
    parity: bool,
}

#[derive(Debug, Serialize)]
struct Report {
    cycles: usize,
    threads: usize,
    reps: usize,
    /// ISA level runtime feature detection found on this machine.
    isa: String,
    /// f64 kernel variant the dispatch selected.
    kernel: String,
    /// f32 kernel variant the dispatch selected.
    f32_kernel: String,
    scales: Vec<ScaleRow>,
    gate: GateRow,
}

/// Bit-exact comparison of a batched f64 embedding table against the
/// seed path's rows (an f32 table never matches — the arms that demand
/// parity run at f64).
fn table_matches_f64(table: &EmbeddingTable, baseline: &[Vec<f64>]) -> bool {
    match table {
        EmbeddingTable::F64(rows) => rows.as_slice() == baseline,
        EmbeddingTable::F32(_) => false,
    }
}

/// Largest `|a − b| / (1 + |b|)` between an f32 embedding table and the
/// f64 baseline rows — the accuracy metric the f32 path is gated on.
fn max_rel_delta_f32(table: &EmbeddingTable, baseline: &[Vec<f64>]) -> f64 {
    let EmbeddingTable::F32(rows) = table else {
        return f64::INFINITY;
    };
    let mut worst = 0.0f64;
    for (row, base) in rows.iter().zip(baseline) {
        if row.len() != base.len() {
            return f64::INFINITY;
        }
        for (&a, &b) in row.iter().zip(base) {
            worst = worst.max((a as f64 - b).abs() / (1.0 + b.abs()));
        }
    }
    worst
}

fn bench_scale(
    model: &AtlasModel,
    lib: &Library,
    scale: f64,
    cycles: usize,
    threads: usize,
    reps: usize,
) -> Result<ScaleRow, String> {
    let gate = DesignConfig::c1().scaled(scale).generate();
    let trace = simulate(&gate, &mut PhasedWorkload::w1(1), cycles)
        .map_err(|e| format!("simulate: {e}"))?;
    let data = build_submodule_data(&gate, lib);
    let encoder = seed_path::SeedEncoder::new(model.encoder());
    let prepared_f64 = model.prepare(Precision::F64);
    let prepared_f32 = model.prepare(Precision::F32);

    // The arms alternate within each rep so machine noise (a shared host,
    // frequency scaling) hits all equally; best-of-reps per arm.
    let mut per_cycle_wall = f64::MAX;
    let mut per_cycle_out = Vec::new();
    let mut batched_wall = f64::MAX;
    let mut batched_out = None;
    let mut scalar_wall = f64::MAX;
    let mut scalar_out = None;
    let mut f32_wall = f64::MAX;
    let mut f32_out = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        per_cycle_out = embed_per_cycle(&encoder, &gate, lib, &data, &trace, threads);
        per_cycle_wall = per_cycle_wall.min(t0.elapsed().as_secs_f64());

        let t1 = Instant::now();
        batched_out =
            Some(model.embed_trace_with(&prepared_f64, &gate, lib, &data, &trace, threads));
        batched_wall = batched_wall.min(t1.elapsed().as_secs_f64());

        // Same path, dispatch pinned to the scalar fallback: the SIMD
        // kernels' isolated contribution, measured in this very run.
        let prev = simd::set_kernel(KernelLevel::Scalar).map_err(|e| e.to_string())?;
        let t2 = Instant::now();
        scalar_out =
            Some(model.embed_trace_with(&prepared_f64, &gate, lib, &data, &trace, threads));
        scalar_wall = scalar_wall.min(t2.elapsed().as_secs_f64());
        simd::set_kernel(prev).map_err(|e| e.to_string())?;

        let t3 = Instant::now();
        f32_out = Some(model.embed_trace_with(&prepared_f32, &gate, lib, &data, &trace, threads));
        f32_wall = f32_wall.min(t3.elapsed().as_secs_f64());
    }
    let batched_out = batched_out.expect("reps >= 1");
    let scalar_out = scalar_out.expect("reps >= 1");
    let f32_out = f32_out.expect("reps >= 1");

    let parity_with = |out: &atlas_core::TraceEmbeddings| {
        out.per_submodule().len() == per_cycle_out.len()
            && out
                .per_submodule()
                .iter()
                .zip(&per_cycle_out)
                .all(|(sm, baseline)| table_matches_f64(&sm.embeddings, baseline))
    };
    let parity = parity_with(&batched_out);
    let scalar_parity = parity_with(&scalar_out);
    let f32_max_rel_delta = f32_out
        .per_submodule()
        .iter()
        .zip(&per_cycle_out)
        .map(|(sm, baseline)| max_rel_delta_f32(&sm.embeddings, baseline))
        .fold(0.0f64, f64::max);

    let cps = |wall: f64| cycles as f64 / wall.max(1e-9);
    Ok(ScaleRow {
        scale,
        submodules: data.len(),
        cells: gate.cell_count(),
        per_cycle: Arm {
            wall_s: per_cycle_wall,
            cycles_per_s: cps(per_cycle_wall),
        },
        batched: Arm {
            wall_s: batched_wall,
            cycles_per_s: cps(batched_wall),
        },
        scalar_batched: Arm {
            wall_s: scalar_wall,
            cycles_per_s: cps(scalar_wall),
        },
        f32: Arm {
            wall_s: f32_wall,
            cycles_per_s: cps(f32_wall),
        },
        speedup: per_cycle_wall / batched_wall.max(1e-9),
        simd_speedup: scalar_wall / batched_wall.max(1e-9),
        f32_speedup: batched_wall / f32_wall.max(1e-9),
        f32_max_rel_delta,
        parity,
        scalar_parity,
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::FAILURE;
        }
    };
    let threads = if args.threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .min(8)
    } else {
        args.threads
    };

    let lib = Library::synthetic_40nm();
    let model = stub_model();

    println!(
        "isa {} — f64 kernel {}, f32 kernel {}",
        simd::isa_label(),
        simd::kernel_label(simd::active_kernel()),
        simd::f32_kernel_label()
    );

    let mut rows = Vec::new();
    for &scale in &args.scales {
        match bench_scale(&model, &lib, scale, args.cycles, threads, args.reps) {
            Ok(row) => {
                println!(
                    "scale {:.2}: {} submodules / {} cells — per-cycle {:.1} cyc/s, \
                     batched {:.1} cyc/s ({:.2}x, parity {}), simd {:.2}x (scalar parity {}), \
                     f32 {:.2}x (max rel delta {:.2e})",
                    row.scale,
                    row.submodules,
                    row.cells,
                    row.per_cycle.cycles_per_s,
                    row.batched.cycles_per_s,
                    row.speedup,
                    row.parity,
                    row.simd_speedup,
                    row.scalar_parity,
                    row.f32_speedup,
                    row.f32_max_rel_delta,
                );
                rows.push(row);
            }
            Err(e) => {
                eprintln!("error: scale {scale}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let gate_row = rows
        .iter()
        .find(|r| r.scale == args.gate_scale)
        .expect("gate scale was appended to --scales");
    let report = Report {
        cycles: args.cycles,
        threads,
        reps: args.reps,
        isa: simd::isa_label().to_owned(),
        kernel: simd::kernel_label(simd::active_kernel()).to_owned(),
        f32_kernel: simd::f32_kernel_label().to_owned(),
        gate: GateRow {
            scale: gate_row.scale,
            per_cycle_cycles_per_s: gate_row.per_cycle.cycles_per_s,
            batched_cycles_per_s: gate_row.batched.cycles_per_s,
            speedup: gate_row.speedup,
            simd_speedup: gate_row.simd_speedup,
            simd_active: u32::from(simd::active_kernel() > KernelLevel::Scalar),
            f32_max_rel_delta: gate_row.f32_max_rel_delta,
            f32_tolerance: F32_EMBED_TOLERANCE,
            parity: gate_row.parity,
        },
        scales: rows,
    };

    let any_parity_broken = report
        .scales
        .iter()
        .any(|r| !r.parity || !r.scalar_parity || r.f32_max_rel_delta > F32_EMBED_TOLERANCE);
    match serde_json::to_string_pretty(&report) {
        Ok(json) => {
            if let Err(e) = std::fs::write(&args.out, json) {
                eprintln!("error: write {}: {e}", args.out);
                return ExitCode::FAILURE;
            }
            println!("(wrote {})", args.out);
        }
        Err(e) => {
            eprintln!("error: serialize report: {e}");
            return ExitCode::FAILURE;
        }
    }
    if any_parity_broken {
        eprintln!(
            "error: an arm diverged from the per-cycle path (f64 parity broken \
             or f32 outside its {F32_EMBED_TOLERANCE:.0e} tolerance)"
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
