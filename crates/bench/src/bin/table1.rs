//! Table I — capability matrix of representative ML power models.
//!
//! This table is a literature summary, not an experiment; it is
//! regenerated verbatim (with provenance) so the reproduction's tables are
//! complete.

fn main() {
    println!("Table I: Summary of representative ML-based power models");
    println!("(reprinted from the paper; rows are prior work, not experiments)\n");
    let rows = [
        ("PRIMAL [DAC'19]", "RTL", "Yes", "Yes", "No", "No"),
        ("APOLLO [MICRO'21]", "RTL", "Yes", "Yes", "No", "No"),
        ("Sengupta et al. [ICCAD'22]", "RTL", "No", "No", "Yes", "No"),
        ("SNS [ISCA'22]", "RTL", "No", "No", "Yes", "No"),
        ("SNS V2 [MICRO'23]", "RTL", "No", "No", "Yes", "No"),
        ("MasterRTL [ICCAD'23]", "RTL", "Yes", "No", "Yes", "No"),
        ("PowPredictCT [DAC'24]", "RTL", "Yes", "No", "Yes", "Yes"),
        (
            "ATLAS (this reproduction)",
            "Netlist",
            "Yes",
            "Yes",
            "Yes",
            "Yes",
        ),
    ];
    println!(
        "{:<28} {:>8} {:>10} {:>11} {:>13} {:>14}",
        "Power Model", "Stage", "Workloads", "Time-Based", "Cross-Design", "Target Layout"
    );
    for (name, stage, wl, tb, cd, tl) in rows {
        println!("{name:<28} {stage:>8} {wl:>10} {tb:>11} {cd:>13} {tl:>14}");
    }
    println!("\nNote: GRANNITE estimates toggle rates rather than power and is not listed,");
    println!("matching the paper's footnote.");
}
