//! Ablation: contribution of each self-supervised pre-training task.
//!
//! Re-runs the training protocol with subsets of the five SSL tasks
//! (paper §IV) disabled and reports the downstream total-power MAPE on
//! the unseen C2/W1, plus the clock-tree MAPE — the group that depends
//! entirely on what the encoder learned (F_CT sees only the embedding).

use atlas_bench::{bench_config, pct, write_result};
use atlas_core::pipeline::train_atlas;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    variant: String,
    total_mape: f64,
    ct_mape: f64,
    comb_mape: f64,
}

fn main() {
    // Smaller budget than the headline run: five trainings.
    let mut base = bench_config();
    base.cycles = 160;
    base.scale = 0.35;
    base.pretrain.steps = 120;
    base.finetune.cycles_per_design = 24;
    base.finetune.gbdt.n_estimators = 100;

    let variants: Vec<(&str, Box<dyn Fn(&mut atlas_core::pretrain::PretrainConfig)>)> = vec![
        ("all five tasks", Box::new(|_| {})),
        (
            "no masked tasks (①②)",
            Box::new(|p| {
                p.task_mask_toggle = false;
                p.task_mask_type = false;
            }),
        ),
        ("no size task (③)", Box::new(|p| p.task_size = false)),
        (
            "no contrastive (④⑤)",
            Box::new(|p| {
                p.task_cl_gate = false;
                p.task_cl_cross = false;
            }),
        ),
        ("no cross-stage (⑤)", Box::new(|p| p.task_cl_cross = false)),
    ];

    let mut rows = Vec::new();
    for (name, tweak) in variants {
        let mut cfg = base.clone();
        tweak(&mut cfg.pretrain);
        println!("training variant: {name}...");
        let trained = train_atlas(&cfg);
        let row = trained.evaluate_test_design("C2", "W1");
        println!(
            "  → total {:>7}  clock-tree {:>7}  comb {:>7}",
            pct(row.atlas_mape_total),
            pct(row.atlas_mape_ct),
            pct(row.atlas_mape_comb)
        );
        rows.push(Row {
            variant: name.to_owned(),
            total_mape: row.atlas_mape_total,
            ct_mape: row.atlas_mape_ct,
            comb_mape: row.atlas_mape_comb,
        });
    }

    println!("\nSSL task ablation (unseen C2 under W1):\n");
    println!(
        "{:<26} {:>10} {:>12} {:>10}",
        "Pre-training variant", "Total", "Clock Tree", "Comb"
    );
    for r in &rows {
        println!(
            "{:<26} {:>10} {:>12} {:>10}",
            r.variant,
            pct(r.total_mape),
            pct(r.ct_mape),
            pct(r.comb_mape)
        );
    }
    write_result("ablation_ssl_tasks", &rows);
}
