//! §III-A ablation: non-overlapping sub-modules vs overlapping logic
//! cones.
//!
//! Prior works split circuits into per-register fanin cones, which
//! overlap: summing per-cone power over-counts shared logic. This binary
//! measures the over-count factor on our designs, quantifying the paper's
//! argument for sub-module decomposition (whose partition is exact by
//! construction).

use atlas_bench::{bench_config, write_result};
use atlas_liberty::CellClass;
use atlas_netlist::{CellId, Design};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    design: String,
    comb_cells: usize,
    cone_cell_sum: usize,
    overlap_factor: f64,
}

/// Cells in the combinational fanin cone of one register (stops at
/// sequential outputs and primary inputs, as cone-based works define it).
fn cone_size(design: &Design, reg: CellId, visited: &mut [u32], stamp: u32) -> usize {
    let mut stack: Vec<CellId> = design
        .cell(reg)
        .inputs()
        .iter()
        .filter_map(|&n| design.net(n).driver())
        .collect();
    let mut size = 0;
    while let Some(cell) = stack.pop() {
        if visited[cell.index()] == stamp {
            continue;
        }
        visited[cell.index()] = stamp;
        if design.cell(cell).class().is_sequential() {
            continue;
        }
        size += 1;
        for &input in design.cell(cell).inputs() {
            if let Some(driver) = design.net(input).driver() {
                stack.push(driver);
            }
        }
    }
    size
}

fn main() {
    let cfg = bench_config();
    let mut rows = Vec::new();
    for name in ["C1", "C2", "C3", "C4", "C5", "C6"] {
        let design = cfg.design(name).generate();
        let comb_cells = design
            .cells()
            .iter()
            .filter(|c| c.class().power_group() == atlas_liberty::PowerGroup::Combinational)
            .count();
        let mut visited = vec![u32::MAX; design.cell_count()];
        let mut cone_sum = 0usize;
        let mut stamp = 0u32;
        for id in design.cell_ids() {
            let class = design.cell(id).class();
            if class == CellClass::Dff || class == CellClass::Dffr {
                cone_sum += cone_size(&design, id, &mut visited, stamp);
                stamp += 1;
            }
        }
        rows.push(Row {
            design: name.to_owned(),
            comb_cells,
            cone_cell_sum: cone_sum,
            overlap_factor: cone_sum as f64 / comb_cells.max(1) as f64,
        });
    }

    println!("\nSub-modules vs logic cones (paper §III-A):\n");
    println!(
        "{:<8} {:>12} {:>16} {:>16}",
        "Design", "Comb cells", "Σ cone cells", "Over-count"
    );
    for r in &rows {
        println!(
            "{:<8} {:>12} {:>16} {:>15.2}x",
            r.design, r.comb_cells, r.cone_cell_sum, r.overlap_factor
        );
    }
    println!("\nSumming per-cone power would over-count combinational power by the factor");
    println!("above; the sub-module partition used by ATLAS sums to exactly 1.00x by");
    println!("construction (each cell belongs to exactly one sub-module).");
    write_result("ablation_cones", &rows);
}
