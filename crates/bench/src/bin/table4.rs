//! Table IV — runtime comparison between ATLAS and the traditional flow
//! for the 300-cycle workload, across all six designs.
//!
//! Absolute numbers are not comparable to the paper's (our layout
//! substrate is a simplified open implementation, not a commercial
//! signoff flow on 600K-cell designs — see EXPERIMENTS.md); the shape
//! under test is that ATLAS bypasses the layout step whose cost grows
//! fastest with design size.

use atlas_bench::{bench_config, load_or_train, write_result};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    design: String,
    cells: usize,
    atlas_pre_s: f64,
    atlas_infer_s: f64,
    atlas_total_s: f64,
    flow_pnr_s: f64,
    flow_sim_s: f64,
    flow_total_s: f64,
    speedup: f64,
}

fn main() {
    let cfg = bench_config();
    let trained = load_or_train(&cfg);

    let mut rows = Vec::new();
    for name in ["C1", "C2", "C3", "C4", "C5", "C6"] {
        println!("timing {name}...");
        let eval = trained.evaluate_test(name, "W1");
        let t = eval.timing;
        rows.push(Row {
            design: name.to_owned(),
            cells: eval.gate.cell_count(),
            atlas_pre_s: t.atlas_pre_s,
            atlas_infer_s: t.atlas_infer_s,
            atlas_total_s: t.atlas_total_s(),
            flow_pnr_s: t.flow_pnr_s,
            flow_sim_s: t.flow_sim_s,
            flow_total_s: t.flow_total_s(),
            speedup: t.speedup(),
        });
    }

    println!(
        "\nTable IV: runtime (seconds) for {} cycles of W1\n",
        cfg.cycles
    );
    println!(
        "{:<7} {:>7} | {:>8} {:>8} {:>8} | {:>8} {:>10} {:>8} | {:>8}",
        "Design", "Cells", "Pre.", "Infer", "Total", "P&R", "Simulation", "Total", "Speedup"
    );
    let mut sum = Row {
        design: "Average".into(),
        cells: 0,
        atlas_pre_s: 0.0,
        atlas_infer_s: 0.0,
        atlas_total_s: 0.0,
        flow_pnr_s: 0.0,
        flow_sim_s: 0.0,
        flow_total_s: 0.0,
        speedup: 0.0,
    };
    for r in &rows {
        println!(
            "{:<7} {:>7} | {:>8.2} {:>8.2} {:>8.2} | {:>8.2} {:>10.2} {:>8.2} | {:>7.2}x",
            r.design,
            r.cells,
            r.atlas_pre_s,
            r.atlas_infer_s,
            r.atlas_total_s,
            r.flow_pnr_s,
            r.flow_sim_s,
            r.flow_total_s,
            r.speedup
        );
        sum.cells += r.cells / rows.len();
        sum.atlas_pre_s += r.atlas_pre_s / rows.len() as f64;
        sum.atlas_infer_s += r.atlas_infer_s / rows.len() as f64;
        sum.atlas_total_s += r.atlas_total_s / rows.len() as f64;
        sum.flow_pnr_s += r.flow_pnr_s / rows.len() as f64;
        sum.flow_sim_s += r.flow_sim_s / rows.len() as f64;
        sum.flow_total_s += r.flow_total_s / rows.len() as f64;
    }
    sum.speedup = sum.flow_total_s / sum.atlas_total_s.max(1e-12);
    println!(
        "{:<7} {:>7} | {:>8.2} {:>8.2} {:>8.2} | {:>8.2} {:>10.2} {:>8.2} | {:>7.2}x",
        sum.design,
        sum.cells,
        sum.atlas_pre_s,
        sum.atlas_infer_s,
        sum.atlas_total_s,
        sum.flow_pnr_s,
        sum.flow_sim_s,
        sum.flow_total_s,
        sum.speedup
    );

    // Shape: the flow's P&R cost grows faster with design size than ATLAS
    // inference. Compare smallest vs largest design.
    let (first, last) = (&rows[0], &rows[rows.len() - 1]);
    let flow_growth = last.flow_pnr_s / first.flow_pnr_s.max(1e-9);
    let atlas_growth = last.atlas_total_s / first.atlas_total_s.max(1e-9);
    println!("\nScaling shape (C6 vs C1): P&R grew {flow_growth:.2}x, ATLAS {atlas_growth:.2}x.");
    println!("The paper's >1000x gap comes from commercial P&R taking ~10^5 s on 600K-cell");
    println!("designs; our open substitute is orders of magnitude cheaper at demo scale, so");
    println!("absolute speedups are NOT comparable — see EXPERIMENTS.md for the discussion.");
    rows.push(sum);
    write_result("table4", &rows);
}
