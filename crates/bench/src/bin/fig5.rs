//! Fig. 5 — per-cycle power traces over 300 cycles for C2 and C4 under
//! W1: combinational / clock-tree+register / total panels, for the label,
//! ATLAS, and the gate-level baseline, with MAPE annotations.
//!
//! Emits the series as CSV under `target/atlas-results/fig5_<design>.csv`
//! (cycle, label/atlas/baseline × comb/ctreg/total) — the exact data a
//! plotting script needs to redraw the figure.

use std::fs;

use atlas_bench::{bench_config, load_or_train, pct, results_dir, write_result};
use atlas_power::metrics::mape;
use serde::Serialize;

#[derive(Serialize)]
struct Summary {
    design: String,
    workload: String,
    atlas_mape_comb: f64,
    atlas_mape_ct_reg: f64,
    atlas_mape_total: f64,
    baseline_mape_comb: f64,
    baseline_mape_ct_reg: f64,
    baseline_mape_total: f64,
    atlas_pearson_total: f64,
}

fn main() {
    let cfg = bench_config();
    let trained = load_or_train(&cfg);
    let mut summaries = Vec::new();

    for design in ["C2", "C4"] {
        println!("tracing {design} under W1...");
        let eval = trained.evaluate_test(design, "W1");
        let panels = [
            (
                "comb",
                eval.labels
                    .group_series(atlas_liberty::PowerGroup::Combinational),
                eval.atlas
                    .group_series(atlas_liberty::PowerGroup::Combinational),
                eval.baseline
                    .group_series(atlas_liberty::PowerGroup::Combinational),
            ),
            (
                "ctreg",
                eval.labels.ct_reg_series(),
                eval.atlas.ct_reg_series(),
                eval.baseline.ct_reg_series(),
            ),
            (
                "total",
                eval.labels.non_memory_series(),
                eval.atlas.non_memory_series(),
                eval.baseline.non_memory_series(),
            ),
        ];

        // CSV dump.
        let mut csv = String::from("cycle");
        for (name, _, _, _) in &panels {
            csv.push_str(&format!(",label_{name},atlas_{name},baseline_{name}"));
        }
        csv.push('\n');
        for t in 0..cfg.cycles {
            csv.push_str(&t.to_string());
            for (_, label, atlas, base) in &panels {
                csv.push_str(&format!(
                    ",{:.6e},{:.6e},{:.6e}",
                    label[t], atlas[t], base[t]
                ));
            }
            csv.push('\n');
        }
        let path = results_dir().join(format!("fig5_{design}.csv"));
        fs::write(&path, csv).expect("write CSV");
        println!("(wrote {})", path.display());

        println!(
            "\nFig. 5 panel MAPEs for {design} under W1 ({} cycles):",
            cfg.cycles
        );
        println!("{:<22} {:>10} {:>12}", "panel", "ATLAS", "Gate-Level");
        let mut panel_mapes = Vec::new();
        for (name, label, atlas, base) in &panels {
            let ma = mape(label, atlas);
            let mb = mape(label, base);
            println!("{:<22} {:>10} {:>12}", name, pct(ma), pct(mb));
            panel_mapes.push((name.to_string(), ma, mb));
        }
        // ASCII sparkline of the total panel so the trace shape is visible
        // in the terminal.
        let (_, label, atlas, _) = &panels[2];
        println!("\n  total power trace (first 100 cycles; L=label, A=ATLAS):");
        print_spark("  L", &label[..100.min(label.len())]);
        print_spark("  A", &atlas[..100.min(atlas.len())]);

        summaries.push(Summary {
            design: design.to_owned(),
            workload: "W1".to_owned(),
            atlas_mape_comb: panel_mapes[0].1,
            atlas_mape_ct_reg: panel_mapes[1].1,
            atlas_mape_total: panel_mapes[2].1,
            baseline_mape_comb: panel_mapes[0].2,
            baseline_mape_ct_reg: panel_mapes[1].2,
            baseline_mape_total: panel_mapes[2].2,
            atlas_pearson_total: eval.row.atlas_pearson_total,
        });
        println!();
    }
    write_result("fig5", &summaries);
}

fn print_spark(label: &str, series: &[f64]) {
    const LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let min = series.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = series.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let span = (max - min).max(1e-12);
    let line: String = series
        .iter()
        .map(|&v| LEVELS[(((v - min) / span) * 7.0).round() as usize])
        .collect();
    println!("{label} {line}");
}
