//! Ablation: the paper's `n`/`I`/`C` side features (§V).
//!
//! The fine-tuned combinational/register heads use toggle-weighted cell
//! internal power and capacitance alongside the embedding. This ablation
//! trains once with and once without them.

use atlas_bench::{bench_config, pct, write_result};
use atlas_core::pipeline::train_atlas;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    variant: String,
    design: String,
    total_mape: f64,
    comb_mape: f64,
    reg_mape: f64,
}

fn main() {
    let mut base = bench_config();
    base.cycles = 160;
    base.scale = 0.35;
    base.pretrain.steps = 120;
    base.finetune.cycles_per_design = 24;
    base.finetune.gbdt.n_estimators = 100;

    let mut rows = Vec::new();
    for with_side in [true, false] {
        let mut cfg = base.clone();
        cfg.finetune.side_features = with_side;
        let name = if with_side {
            "embedding + n/I/C"
        } else {
            "embedding only"
        };
        println!("training: {name}...");
        let trained = train_atlas(&cfg);
        for design in ["C2", "C4"] {
            let row = trained.evaluate_test_design(design, "W1");
            println!(
                "  {design}: total {:>7}  comb {:>7}  reg {:>7}",
                pct(row.atlas_mape_total),
                pct(row.atlas_mape_comb),
                pct(row.atlas_mape_reg)
            );
            rows.push(Row {
                variant: name.to_owned(),
                design: design.to_owned(),
                total_mape: row.atlas_mape_total,
                comb_mape: row.atlas_mape_comb,
                reg_mape: row.atlas_mape_reg,
            });
        }
    }

    println!("\nSide-feature ablation (W1):\n");
    println!(
        "{:<20} {:<7} {:>8} {:>8} {:>8}",
        "Head features", "Design", "Total", "Comb", "Reg"
    );
    for r in &rows {
        println!(
            "{:<20} {:<7} {:>8} {:>8} {:>8}",
            r.variant,
            r.design,
            pct(r.total_mape),
            pct(r.comb_mape),
            pct(r.reg_mape)
        );
    }
    write_result("ablation_features", &rows);
}
