//! §VI-B — the memory power group, modeled separately from port toggles
//! and SRAM datasheet energies (the paper reports ~0.5% error and
//! excludes this easy group from the headline tables; we report it here).

use atlas_bench::{bench_config, load_or_train, pct, write_result};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    design: String,
    workload: String,
    label_mw: f64,
    predicted_mw: f64,
    mape: f64,
    share_of_total_pct: f64,
}

fn main() {
    let cfg = bench_config();
    let trained = load_or_train(&cfg);
    let mut rows = Vec::new();
    for design in ["C2", "C4"] {
        for workload in ["W1", "W2"] {
            let eval = trained.evaluate_test(design, workload);
            let label = eval.labels.mean_group(atlas_liberty::PowerGroup::Memory);
            let pred = eval.atlas.mean_group(atlas_liberty::PowerGroup::Memory);
            let total = eval.labels.total_series().iter().sum::<f64>() / cfg.cycles as f64;
            rows.push(Row {
                design: design.to_owned(),
                workload: workload.to_owned(),
                label_mw: label * 1e3,
                predicted_mw: pred * 1e3,
                mape: eval.row.atlas_mape_memory,
                share_of_total_pct: 100.0 * label / total,
            });
        }
    }
    println!("\nMemory power group (modeled separately, paper §VI-B):\n");
    println!(
        "{:<8} {:<4} {:>12} {:>12} {:>9} {:>16}",
        "Design", "WL", "Label (mW)", "Pred (mW)", "MAPE", "Share of total"
    );
    for r in &rows {
        println!(
            "{:<8} {:<4} {:>12.3} {:>12.3} {:>9} {:>15.1}%",
            r.design,
            r.workload,
            r.label_mw,
            r.predicted_mw,
            pct(r.mape),
            r.share_of_total_pct
        );
    }
    println!("\nPaper shape checks: the memory group is a large share of total power (the");
    println!("paper reports ~half), yet predictable to ~1% from port activity alone —");
    println!("which is exactly why the headline tables exclude it.");
    write_result("memory_group", &rows);
}
