//! Table II — gate counts of the six designs at the gate-level and
//! post-layout stages.

use atlas_bench::{bench_config, write_result};
use atlas_layout::run_layout;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    design: String,
    gate_level: usize,
    post_layout: usize,
    growth_pct: f64,
    buffers: usize,
    clock_cells: usize,
    reconstructed: usize,
}

fn main() {
    let cfg = bench_config();
    let lib = cfg.library();
    println!(
        "Table II: gate counts at the gate-level and post-layout stages (scale {:.2})\n",
        cfg.scale
    );
    let mut rows = Vec::new();
    for name in ["C1", "C2", "C3", "C4", "C5", "C6"] {
        let gate = cfg.design(name).generate();
        let result = run_layout(&gate, &lib, &cfg.layout);
        rows.push(Row {
            design: name.to_owned(),
            gate_level: result.report.gate_cells,
            post_layout: result.report.post_cells,
            growth_pct: 100.0
                * (result.report.post_cells as f64 / result.report.gate_cells as f64 - 1.0),
            buffers: result.report.buffers_added,
            clock_cells: result.report.clock_cells,
            reconstructed: result.report.reconstructed_added,
        });
    }
    println!(
        "{:<8} {:>11} {:>12} {:>8} {:>9} {:>12} {:>14}",
        "Design", "Gate-level", "Post-layout", "Growth", "Buffers", "Clock cells", "Reconstructed"
    );
    for r in &rows {
        println!(
            "{:<8} {:>11} {:>12} {:>7.2}% {:>9} {:>12} {:>14}",
            r.design,
            r.gate_level,
            r.post_layout,
            r.growth_pct,
            r.buffers,
            r.clock_cells,
            r.reconstructed
        );
    }
    println!("\nPaper shape check: post-layout counts exceed gate-level counts by a few");
    println!("percent on every design (timing optimization + CTS only add cells).");
    write_result("table2", &rows);
}
