//! Fig. 6 — component-level power analysis of C2 and C4 under W1: each
//! design's five components (frontend, lsu, ptw, dcache, core) with
//! label power, ATLAS-predicted power, and MAPE.

use atlas_bench::{bench_config, load_or_train, write_result};
use atlas_core::evaluate::component_table;

fn main() {
    let cfg = bench_config();
    let trained = load_or_train(&cfg);
    let mut all = Vec::new();

    for design in ["C2", "C4"] {
        println!("evaluating components of {design} under W1...");
        let eval = trained.evaluate_test(design, "W1");
        let table = component_table(&eval.labels, &eval.atlas, &eval.gate);
        println!("\nFig. 6 ({design} under W1): component-level power\n");
        println!(
            "{:<12} {:>12} {:>12} {:>9}",
            "Component", "Label (W)", "ATLAS (W)", "MAPE (%)"
        );
        for row in &table {
            println!(
                "{:<12} {:>12.4} {:>12.4} {:>9.2}",
                row.component, row.label_w, row.atlas_w, row.mape
            );
        }
        let worst = table.iter().map(|r| r.mape).fold(0.0f64, f64::max);
        println!(
            "\nPaper shape check: component errors exceed the total-power error but stay\nmoderate (paper: mostly <5%; worst here {worst:.2}%).\n"
        );
        all.push((design.to_owned(), table));
    }
    write_result("fig6", &all);
}
