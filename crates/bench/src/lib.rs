//! Shared harness for the table/figure reproduction binaries.
//!
//! Every table and figure of the paper has a binary under `src/bin/`:
//!
//! | Binary | Reproduces |
//! |---|---|
//! | `table1` | Table I (capability matrix of prior work vs ATLAS) |
//! | `table2` | Table II (gate counts at gate-level vs post-layout) |
//! | `table3` | Table III (MAPE per power group, ATLAS vs Gate-Level baseline) |
//! | `table4` | Table IV (runtime: ATLAS vs traditional flow) |
//! | `fig5`   | Fig. 5 (per-cycle power traces, C2/C4 under W1) |
//! | `fig6`   | Fig. 6 (component-level power, C2/C4) |
//! | `memory_group` | §VI-B (memory-group model accuracy) |
//! | `ablation_ssl_tasks` | pre-training task ablation |
//! | `ablation_features` | fine-tuning side-feature ablation |
//! | `ablation_cones` | §III-A sub-modules vs overlapping logic cones |
//!
//! Results print as human-readable tables and are also written as JSON
//! under `target/atlas-results/`, which EXPERIMENTS.md references.
//!
//! Training is cached under `target/atlas-cache/` keyed by a hash of the
//! experiment configuration, so the binaries can share one trained model.

use std::fs;
use std::path::PathBuf;

use atlas_core::pipeline::{train_atlas, ExperimentConfig, TrainedAtlas};
use atlas_core::AtlasModel;

/// The experiment configuration used by all paper-reproduction binaries.
///
/// Scale 0.5 keeps the six designs in the 3K–8K cell range so the full
/// protocol (layout + simulation + pre-training + fine-tuning + four
/// evaluations) completes in minutes on a laptop CPU; see DESIGN.md §2 on
/// the scale substitution.
pub fn bench_config() -> ExperimentConfig {
    let mut cfg = ExperimentConfig {
        cycles: 300,
        scale: 0.5,
        ..ExperimentConfig::default()
    };
    cfg.pretrain.steps = 220;
    cfg.pretrain.hidden_dim = 48;
    cfg.finetune.cycles_per_design = 36;
    cfg.finetune.gbdt.n_estimators = 160;
    cfg
}

/// Directory for machine-readable results.
pub fn results_dir() -> PathBuf {
    let dir = PathBuf::from("target/atlas-results");
    let _ = fs::create_dir_all(&dir);
    dir
}

/// Write a serializable result next to the printed table.
pub fn write_result<T: serde::Serialize>(name: &str, value: &T) {
    let path = results_dir().join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(json) => {
            if let Err(e) = fs::write(&path, json) {
                eprintln!("warning: could not write {}: {e}", path.display());
            } else {
                println!("(wrote {})", path.display());
            }
        }
        Err(e) => eprintln!("warning: could not serialize {name}: {e}"),
    }
}

fn config_hash(cfg: &ExperimentConfig) -> u64 {
    let bytes = serde_json::to_vec(cfg).unwrap_or_default();
    // FNV-1a.
    let mut h: u64 = 0xcbf29ce484222325;
    for b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Train ATLAS under `cfg`, reusing a cached model from a previous binary
/// run when the configuration is identical.
pub fn load_or_train(cfg: &ExperimentConfig) -> TrainedAtlas {
    let dir = PathBuf::from("target/atlas-cache");
    let _ = fs::create_dir_all(&dir);
    let path = dir.join(format!("model-{:016x}.json", config_hash(cfg)));
    if let Ok(json) = fs::read_to_string(&path) {
        if let Ok(model) = AtlasModel::from_json(&json) {
            println!("(loaded cached model {})", path.display());
            return TrainedAtlas {
                model,
                pretrain_stats: Default::default(),
                timing: Default::default(),
                config: cfg.clone(),
            };
        }
    }
    println!(
        "(training ATLAS: 4 designs × {} cycles — cached for later binaries)",
        cfg.cycles
    );
    let trained = train_atlas(cfg);
    if let Ok(json) = trained.model.to_json() {
        let _ = fs::write(&path, json);
    }
    println!(
        "(trained in {:.1}s prepare + {:.1}s pretrain + {:.1}s finetune)",
        trained.timing.prepare_s, trained.timing.pretrain_s, trained.timing.finetune_s
    );
    trained
}

/// Format a MAPE cell the way the paper prints them.
pub fn pct(v: f64) -> String {
    if (v - 100.0).abs() < 1e-9 {
        "100%".to_owned()
    } else {
        format!("{v:.2}%")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_hash_is_stable_and_sensitive() {
        let a = bench_config();
        let mut b = bench_config();
        assert_eq!(config_hash(&a), config_hash(&a));
        b.cycles += 1;
        assert_ne!(config_hash(&a), config_hash(&b));
    }

    #[test]
    fn pct_formatting() {
        assert_eq!(pct(100.0), "100%");
        assert_eq!(pct(5.123), "5.12%");
    }
}
