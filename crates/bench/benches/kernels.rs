//! Criterion benchmarks of every performance-relevant kernel: the pieces
//! whose runtimes compose Table IV.

use std::sync::Arc;
use std::time::Duration;

use atlas_core::features::build_submodule_data;
use atlas_designs::DesignConfig;
use atlas_gbdt::{Gbdt, GbdtConfig};
use atlas_layout::{global_route, place::place, run_layout, LayoutConfig, RouteConfig};
use atlas_liberty::Library;
use atlas_nn::{EncoderConfig, GraphEncoder, InferenceEncoder, Matrix, SparseAdj};
use atlas_power::PowerModel;
use atlas_sim::{simulate, PhasedWorkload};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_design() -> atlas_designs::DesignConfig {
    DesignConfig::c1().scaled(0.5)
}

/// Encoder forward pass (training path vs frozen inference path).
fn encoder_forward(c: &mut Criterion) {
    let cfg = EncoderConfig::default();
    let trained = GraphEncoder::new(cfg.clone());
    let frozen = InferenceEncoder::from_state(&trained.state());
    let n = 120;
    let edges: Vec<(u32, u32)> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
    let adj = Arc::new(SparseAdj::normalized_from_edges(n, &edges));
    let feats = Matrix::xavier(n, cfg.input_dim, 7);

    let mut g = c.benchmark_group("encoder_forward");
    g.bench_function("training_tape", |b| b.iter(|| trained.encode(&adj, &feats)));
    g.bench_function("inference_full", |b| b.iter(|| frozen.encode(&adj, &feats)));
    g.bench_function("inference_graph_only", |b| {
        b.iter(|| frozen.encode_graph(&adj, &feats))
    });
    g.finish();
}

/// Cycle-based logic simulation throughput.
fn simulation_throughput(c: &mut Criterion) {
    let design = bench_design().generate();
    c.bench_function("simulate_64_cycles", |b| {
        b.iter(|| simulate(&design, &mut PhasedWorkload::w1(1), 64).expect("simulates"))
    });
}

/// Golden power engine: model build and per-trace evaluation.
fn power_engine(c: &mut Criterion) {
    let lib = Library::synthetic_40nm();
    let gate = bench_design().generate();
    let post = run_layout(&gate, &lib, &LayoutConfig::default()).design;
    let trace = simulate(&post, &mut PhasedWorkload::w1(1), 64).expect("simulates");
    let mut g = c.benchmark_group("power_engine");
    g.bench_function("model_build", |b| b.iter(|| PowerModel::new(&post, &lib)));
    let model = PowerModel::new(&post, &lib);
    g.bench_function("evaluate_64_cycles", |b| b.iter(|| model.evaluate(&trace)));
    g.finish();
}

/// The layout flow (the paper's "P&R" column) and its routing stage.
fn layout_flow(c: &mut Criterion) {
    let lib = Library::synthetic_40nm();
    let gate = bench_design().generate();
    let mut g = c.benchmark_group("layout_flow");
    g.sample_size(10);
    g.bench_function("full_pnr", |b| {
        b.iter(|| run_layout(&gate, &lib, &LayoutConfig::default()))
    });
    let placement = place(&gate, &lib, 0.7);
    g.bench_function("global_route", |b| {
        b.iter(|| global_route(&gate, &placement, &RouteConfig::default()))
    });
    g.finish();
}

/// GBDT predictions (the fine-tuned heads' share of inference).
fn gbdt_predict(c: &mut Criterion) {
    let n = 2000;
    let d = 51;
    let x: Vec<f64> = (0..n * d)
        .map(|i| ((i * 2654435761) % 997) as f64 / 997.0)
        .collect();
    let y: Vec<f64> = (0..n).map(|i| x[i * d] * 3.0 + x[i * d + 1]).collect();
    let model = Gbdt::fit(
        &x,
        d,
        &y,
        &GbdtConfig {
            n_estimators: 160,
            ..GbdtConfig::default()
        },
    );
    c.bench_function("gbdt_predict_2000_rows", |b| {
        b.iter(|| model.predict_batch(&x))
    });
}

/// Per-sub-module feature extraction + embedding — the ATLAS inference
/// kernel (one sub-module over many cycles).
fn atlas_inference_kernel(c: &mut Criterion) {
    let lib = Library::synthetic_40nm();
    let design = bench_design().generate();
    let trace = simulate(&design, &mut PhasedWorkload::w1(1), 64).expect("simulates");
    let data = build_submodule_data(&design, &lib);
    let smd = data
        .iter()
        .max_by_key(|s| s.node_count())
        .expect("nonempty");
    let frozen = InferenceEncoder::from_state(&GraphEncoder::new(EncoderConfig::default()).state());
    c.bench_function(
        &format!("submodule_embed_per_cycle/{}_nodes", smd.node_count()),
        |b| {
            b.iter(|| {
                let feats = smd.features_for_cycle(&design, &trace, 13);
                frozen.encode_graph(smd.adj(), &feats)
            })
        },
    );
}

fn config() -> Criterion {
    Criterion::default()
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_secs(1))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = config();
    targets = encoder_forward, simulation_throughput, power_engine, layout_flow, gbdt_predict, atlas_inference_kernel
}
criterion_main!(benches);
