//! Golden per-cycle grouped power engine — the PrimeTime PX substitute.
//!
//! Given a design (gate-level or post-layout), the technology library, and
//! a per-cycle [`atlas_sim::ToggleTrace`], [`compute_power`] produces a
//! [`PowerTrace`]: watts per (cycle, sub-module, power group).
//!
//! The engine is **stage-agnostic**, which is exactly what makes it both
//! the label generator and the paper's baseline:
//!
//! * run on the post-layout netlist `Np` (wire caps annotated, clock tree
//!   present) it plays the role of signoff PTPX — the **golden labels**;
//! * run on the gate-level netlist `Ng` (no wire capacitance, no clock
//!   tree, ideal uncharged clock) it reproduces the **"Gate-Level PTPX"**
//!   baseline of Table III, including its characteristic error structure:
//!   100% MAPE on the (absent) clock-tree group, a large combinational
//!   underestimate (missing wire capacitance and buffers), and a small
//!   register-group error (register power is dominated by clock-pin
//!   internal energy, present at both stages).
//!
//! Accounting rules (per clock cycle of period `T`):
//!
//! | Contribution | Condition | Group |
//! |---|---|---|
//! | `½·C_net·V²` | net toggled this cycle | driver cell's group |
//! | internal LUT energy | cell output toggled | cell's group |
//! | register clock-pin energy | every cycle | Register |
//! | `C_net·V²` + 2× internal | every cycle, clock-cone nets / CK cells | Clock Tree |
//! | read/write energy | SRAM port accessed | Memory |
//! | leakage | every cycle | cell's group |
//!
//! # Examples
//!
//! ```
//! use atlas_designs::DesignConfig;
//! use atlas_liberty::{Library, PowerGroup};
//! use atlas_power::compute_power;
//! use atlas_sim::{simulate, PhasedWorkload};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let design = DesignConfig::tiny().generate();
//! let lib = Library::synthetic_40nm();
//! let trace = simulate(&design, &mut PhasedWorkload::w1(1), 32)?;
//! let power = compute_power(&design, &lib, &trace);
//! assert!(power.total(0) > 0.0);
//! // Gate-level netlists have no clock tree:
//! assert_eq!(power.group_total(0, PowerGroup::ClockTree), 0.0);
//! # Ok(())
//! # }
//! ```

mod engine;
pub mod metrics;
mod trace;

pub use engine::{compute_power, PowerModel};
pub use trace::PowerTrace;
