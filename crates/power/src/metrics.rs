//! Accuracy metrics shared by the evaluation harness.

/// Mean Absolute Percentage Error between a label series and a prediction
/// series (paper Eq. 8), in percent.
///
/// Cycles whose label is exactly zero contribute 100% when the prediction
/// is nonzero and 0% when it is zero — the convention that makes a
/// gate-level tool score 100% on the absent clock-tree group.
///
/// # Panics
///
/// Panics if the series lengths differ or are empty.
///
/// # Examples
///
/// ```
/// use atlas_power::metrics::mape;
///
/// assert_eq!(mape(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
/// assert_eq!(mape(&[1.0], &[1.5]), 50.0);
/// assert_eq!(mape(&[0.0], &[0.3]), 100.0);
/// ```
pub fn mape(labels: &[f64], predictions: &[f64]) -> f64 {
    assert_eq!(labels.len(), predictions.len(), "series lengths differ");
    assert!(!labels.is_empty(), "series are empty");
    let sum: f64 = labels
        .iter()
        .zip(predictions)
        .map(|(&y, &p)| {
            if y == 0.0 {
                if p == 0.0 {
                    0.0
                } else {
                    1.0
                }
            } else {
                ((y - p) / y).abs()
            }
        })
        .sum();
    100.0 * sum / labels.len() as f64
}

/// Pearson correlation coefficient between two series (used to check that
/// a predicted power trace *tracks* the label trace, Fig. 5).
///
/// Returns 0.0 when either series has zero variance.
///
/// # Panics
///
/// Panics if the series lengths differ or are empty.
pub fn pearson(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "series lengths differ");
    assert!(!a.is_empty(), "series are empty");
    let n = a.len() as f64;
    let ma = a.iter().sum::<f64>() / n;
    let mb = b.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        cov += (x - ma) * (y - mb);
        va += (x - ma) * (x - ma);
        vb += (y - mb) * (y - mb);
    }
    if va == 0.0 || vb == 0.0 {
        0.0
    } else {
        cov / (va.sqrt() * vb.sqrt())
    }
}

/// Normalized root-mean-square error (% of label mean). A scale-aware
/// companion to [`mape`] for near-zero label cycles.
///
/// # Panics
///
/// Panics if the series lengths differ or are empty, or if the label mean
/// is zero.
pub fn nrmse(labels: &[f64], predictions: &[f64]) -> f64 {
    assert_eq!(labels.len(), predictions.len(), "series lengths differ");
    assert!(!labels.is_empty(), "series are empty");
    let n = labels.len() as f64;
    let mean = labels.iter().sum::<f64>() / n;
    assert!(mean != 0.0, "label mean is zero");
    let mse: f64 = labels
        .iter()
        .zip(predictions)
        .map(|(&y, &p)| (y - p) * (y - p))
        .sum::<f64>()
        / n;
    100.0 * mse.sqrt() / mean.abs()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn mape_basics() {
        assert_eq!(mape(&[2.0, 4.0], &[1.0, 2.0]), 50.0);
        assert_eq!(mape(&[0.0, 0.0], &[0.0, 0.0]), 0.0);
        assert_eq!(mape(&[0.0, 0.0], &[1.0, 1.0]), 100.0);
    }

    #[test]
    #[should_panic(expected = "lengths differ")]
    fn mape_length_mismatch_panics() {
        let _ = mape(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn pearson_basics() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let up = [2.0, 4.0, 6.0, 8.0];
        let down = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&a, &up) - 1.0).abs() < 1e-12);
        assert!((pearson(&a, &down) + 1.0).abs() < 1e-12);
        assert_eq!(pearson(&a, &[5.0; 4]), 0.0);
    }

    #[test]
    fn nrmse_basics() {
        assert_eq!(nrmse(&[2.0, 2.0], &[2.0, 2.0]), 0.0);
        assert!((nrmse(&[2.0, 2.0], &[3.0, 1.0]) - 50.0).abs() < 1e-9);
    }

    proptest! {
        #[test]
        fn mape_is_zero_iff_equal(xs in proptest::collection::vec(0.1f64..10.0, 1..20)) {
            prop_assert!(mape(&xs, &xs) < 1e-12);
        }

        #[test]
        fn pearson_bounded(
            a in proptest::collection::vec(-10.0f64..10.0, 3..20),
        ) {
            let b: Vec<f64> = a.iter().map(|x| x * 2.0 + 1.0).collect();
            let r = pearson(&a, &b);
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r));
        }
    }
}
