//! The power computation engine.

use atlas_liberty::{CellClass, Library, PowerGroup};
use atlas_netlist::{CellId, Design, NetId, SinkPin};
use atlas_sim::ToggleTrace;

use crate::trace::PowerTrace;

/// Name of the CTS trunk sub-module whose clock power is redistributed
/// pro-rata over register-owning sub-modules (kept in sync with
/// `atlas_layout::cts::TRUNK_SUBMODULE`; duplicated to avoid a dependency
/// cycle).
const TRUNK_SUBMODULE: &str = "cts.trunk";

/// Precomputed per-design power model. Build once with
/// [`PowerModel::new`], then evaluate any number of toggle traces with
/// [`PowerModel::evaluate`]; [`compute_power`] is the one-shot shorthand.
#[derive(Debug, Clone)]
pub struct PowerModel<'a> {
    design: &'a Design,
    period_ns: f64,
    voltage: f64,
    /// Switched capacitance per net (pF): wire + sink pins.
    net_cap: Vec<f64>,
    /// Internal energy (pJ) per output toggle, per cell.
    cell_internal: Vec<f64>,
    cell_sm: Vec<u32>,
    cell_group: Vec<u8>,
    /// Constant watts per (sub-module, group) added every cycle:
    /// leakage + register clock-pin power + clock-tree power.
    baseline: Vec<f64>,
    /// Per-SRAM (in design id order): read/write watts when accessed.
    sram_cells: Vec<CellId>,
    sram_read_w: Vec<f64>,
    sram_write_w: Vec<f64>,
    sram_sm: Vec<u32>,
}

impl<'a> PowerModel<'a> {
    /// Precompute capacitances, internal energies, and per-cycle constants
    /// for `design` under `lib`.
    pub fn new(design: &'a Design, lib: &'a Library) -> PowerModel<'a> {
        let period_ns = lib.clock_period_ns();
        let voltage = lib.voltage();
        let to_w = 1e-3 / period_ns; // pJ per cycle → W
        let nsm = design.submodules().len();

        // --- Net capacitance: wire + sink pins ---
        let mut net_cap = vec![0.0f64; design.net_count()];
        for id in design.net_ids() {
            let net = design.net(id);
            let mut cap = net.wire_cap();
            for sink in net.sinks() {
                let cell = design.cell(sink.cell);
                if cell.class() == CellClass::Sram {
                    if let Some(m) = cell.sram().and_then(|c| lib.sram_at_least(c.words, c.bits)) {
                        cap += m.pin_cap();
                    }
                    continue;
                }
                if let Some(lc) = lib.cell(cell.class(), cell.drive()) {
                    cap += match sink.pin {
                        SinkPin::Input(_) | SinkPin::Reset => lc.input_cap(),
                        SinkPin::Clock => lc.clock_cap(),
                    };
                }
            }
            net_cap[id.index()] = cap;
        }

        // --- Per-cell internal energy per output toggle ---
        let est_slew = |net: NetId| -> f64 {
            match design.net(net).driver() {
                Some(d) => {
                    let c = design.cell(d);
                    lib.cell(c.class(), c.drive())
                        .map(|lc| lc.output_slew(net_cap[c.output().index()]))
                        .unwrap_or(0.05)
                }
                None => 0.05, // primary inputs arrive with a nominal slew
            }
        };
        let mut cell_internal = vec![0.0f64; design.cell_count()];
        let mut cell_sm = vec![0u32; design.cell_count()];
        let mut cell_group = vec![0u8; design.cell_count()];
        for id in design.cell_ids() {
            let cell = design.cell(id);
            cell_sm[id.index()] = cell.submodule().index() as u32;
            cell_group[id.index()] = cell.class().power_group().index() as u8;
            if cell.class() == CellClass::Sram {
                continue; // access energy handled per port event
            }
            if let Some(lc) = lib.cell(cell.class(), cell.drive()) {
                let load = net_cap[cell.output().index()];
                let slew = cell.inputs().first().map(|&n| est_slew(n)).unwrap_or(0.05);
                cell_internal[id.index()] = lc.switch_energy().lookup(slew, load);
            }
        }

        // --- Per-cycle constant baseline ---
        let mut baseline = vec![0.0f64; nsm * 4];
        let mut add = |sm: usize, group: PowerGroup, watts: f64| {
            baseline[sm * 4 + group.index()] += watts;
        };
        for id in design.cell_ids() {
            let cell = design.cell(id);
            let sm = cell.submodule().index();
            let group = cell.class().power_group();
            match cell.class() {
                CellClass::Sram => {
                    if let Some(m) = cell.sram().and_then(|c| lib.sram_at_least(c.words, c.bits)) {
                        add(sm, group, m.leakage() * 1e-9);
                    }
                }
                class => {
                    if let Some(lc) = lib.cell(class, cell.drive()) {
                        add(sm, group, lc.leakage() * 1e-9);
                        if class == CellClass::Dff || class == CellClass::Dffr {
                            // Clock-pin internal energy, every cycle.
                            add(sm, group, lc.clock_energy() * to_w);
                        }
                        if class == CellClass::Clk {
                            // The clock cone toggles twice per cycle:
                            // 2 × internal + full C·V² on the driven net.
                            add(sm, group, 2.0 * cell_internal[id.index()] * to_w);
                            let e_net = net_cap[cell.output().index()] * voltage * voltage;
                            add(sm, group, e_net * to_w);
                        }
                    }
                }
            }
        }
        // The clock root net: charged only when a clock tree exists (an
        // ideal clock at gate level carries no real wire).
        if let Some(root) = design.clock() {
            let root_sinks = design.net(root).sinks();
            let drives_tree = root_sinks
                .iter()
                .any(|s| design.cell(s.cell).class() == CellClass::Clk);
            if drives_tree {
                let sm = design.cell(root_sinks[0].cell).submodule().index();
                let e_net = net_cap[root.index()] * voltage * voltage;
                add(sm, PowerGroup::ClockTree, e_net * to_w);
            }
        }

        // --- Trunk redistribution: per-sub-module clock power must be
        // attributable to *gate-level* sub-modules. ---
        if let Some(trunk) = design
            .submodule_ids()
            .find(|&s| design.submodule(s).name() == TRUNK_SUBMODULE)
        {
            let trunk_idx = trunk.index();
            let trunk_ct = baseline[trunk_idx * 4 + PowerGroup::ClockTree.index()];
            if trunk_ct > 0.0 {
                let mut regs = vec![0usize; nsm];
                let mut total_regs = 0usize;
                for cell in design.cells() {
                    if matches!(cell.class(), CellClass::Dff | CellClass::Dffr) {
                        regs[cell.submodule().index()] += 1;
                        total_regs += 1;
                    }
                }
                if total_regs > 0 {
                    for (sm, &r) in regs.iter().enumerate() {
                        if r > 0 {
                            baseline[sm * 4 + PowerGroup::ClockTree.index()] +=
                                trunk_ct * r as f64 / total_regs as f64;
                        }
                    }
                    baseline[trunk_idx * 4 + PowerGroup::ClockTree.index()] = 0.0;
                }
            }
        }

        let sram_cells: Vec<CellId> = design
            .cell_ids()
            .filter(|&id| design.cell(id).class() == CellClass::Sram)
            .collect();
        let mut sram_read_w = Vec::with_capacity(sram_cells.len());
        let mut sram_write_w = Vec::with_capacity(sram_cells.len());
        let mut sram_sm = Vec::with_capacity(sram_cells.len());
        for &id in &sram_cells {
            let cell = design.cell(id);
            let m = cell.sram().and_then(|c| lib.sram_at_least(c.words, c.bits));
            sram_read_w.push(m.map(|m| m.read_energy() * to_w).unwrap_or(0.0));
            sram_write_w.push(m.map(|m| m.write_energy() * to_w).unwrap_or(0.0));
            sram_sm.push(cell.submodule().index() as u32);
        }

        PowerModel {
            design,
            period_ns,
            voltage,
            net_cap,
            cell_internal,
            cell_sm,
            cell_group,
            baseline,
            sram_cells,
            sram_read_w,
            sram_write_w,
            sram_sm,
        }
    }

    /// Switched capacitance (pF) of one net as the engine sees it.
    pub fn net_cap(&self, net: NetId) -> f64 {
        self.net_cap[net.index()]
    }

    /// Internal energy (pJ) charged per output toggle of one cell.
    pub fn cell_internal_energy(&self, cell: CellId) -> f64 {
        self.cell_internal[cell.index()]
    }

    /// Evaluate a toggle trace into a per-cycle power trace.
    ///
    /// # Panics
    ///
    /// Panics if `trace` was simulated on a structurally different design
    /// (SRAM ordering is used as the consistency check).
    pub fn evaluate(&self, trace: &ToggleTrace) -> PowerTrace {
        assert_eq!(
            trace.sram_cells(),
            &self.sram_cells[..],
            "toggle trace does not belong to this design"
        );
        let design = self.design;
        let nsm = design.submodules().len();
        let mut out = PowerTrace::new(
            design.name().to_owned(),
            trace.workload().to_owned(),
            trace.cycles(),
            nsm,
        );
        let to_w = 1e-3 / self.period_ns;
        let half_v2 = 0.5 * self.voltage * self.voltage;

        for t in 0..trace.cycles() {
            // Constants: leakage, register clock pins, clock tree.
            for sm in 0..nsm {
                for g in 0..4 {
                    let w = self.baseline[sm * 4 + g];
                    if w != 0.0 {
                        out.add(t, sm, g, w);
                    }
                }
            }
            // Event-driven: switching + internal on toggled nets.
            for net in trace.toggled_nets(t) {
                let Some(driver) = design.net(net).driver() else {
                    continue; // primary-input nets are charged to the testbench
                };
                let di = driver.index();
                let e_pj = half_v2 * self.net_cap[net.index()] + self.cell_internal[di];
                out.add(
                    t,
                    self.cell_sm[di] as usize,
                    self.cell_group[di] as usize,
                    e_pj * to_w,
                );
            }
            // SRAM port events.
            for (idx, _) in self.sram_cells.iter().enumerate() {
                let sm = self.sram_sm[idx] as usize;
                if trace.sram_read(t, idx) {
                    out.add(t, sm, PowerGroup::Memory.index(), self.sram_read_w[idx]);
                }
                if trace.sram_write(t, idx) {
                    out.add(t, sm, PowerGroup::Memory.index(), self.sram_write_w[idx]);
                }
            }
        }
        out
    }
}

/// One-shot: build the model and evaluate the trace.
pub fn compute_power(design: &Design, lib: &Library, trace: &ToggleTrace) -> PowerTrace {
    PowerModel::new(design, lib).evaluate(trace)
}

#[cfg(test)]
mod tests {
    use atlas_designs::DesignConfig;
    use atlas_layout::{run_layout, LayoutConfig};
    use atlas_sim::{simulate, ConstantWorkload, PhasedWorkload};

    use super::*;
    use crate::metrics::mape;

    fn gate_and_layout() -> (Design, Design) {
        let gate = DesignConfig::tiny().generate();
        let lib = Library::synthetic_40nm();
        let post = run_layout(&gate, &lib, &LayoutConfig::default()).design;
        (gate, post)
    }

    #[test]
    fn gate_level_has_no_clock_tree_power() {
        let (gate, post) = gate_and_layout();
        let lib = Library::synthetic_40nm();
        let tg = simulate(&gate, &mut PhasedWorkload::w1(1), 32).expect("simulates");
        let tp = simulate(&post, &mut PhasedWorkload::w1(1), 32).expect("simulates");
        let pg = compute_power(&gate, &lib, &tg);
        let pp = compute_power(&post, &lib, &tp);
        for t in 0..32 {
            assert_eq!(pg.group_total(t, PowerGroup::ClockTree), 0.0);
            assert!(pp.group_total(t, PowerGroup::ClockTree) > 0.0);
        }
    }

    #[test]
    fn post_layout_combinational_power_exceeds_gate_level() {
        let (gate, post) = gate_and_layout();
        let lib = Library::synthetic_40nm();
        let tg = simulate(&gate, &mut PhasedWorkload::w1(1), 64).expect("simulates");
        let tp = simulate(&post, &mut PhasedWorkload::w1(1), 64).expect("simulates");
        let pg = compute_power(&gate, &lib, &tg);
        let pp = compute_power(&post, &lib, &tp);
        let comb_gate = pg.mean_group(PowerGroup::Combinational);
        let comb_post = pp.mean_group(PowerGroup::Combinational);
        assert!(
            comb_post > comb_gate * 1.5,
            "wire caps + buffers must grow comb power: gate={comb_gate:.3e} post={comb_post:.3e}"
        );
    }

    #[test]
    fn register_power_is_stage_stable() {
        // Register power is dominated by clock-pin internal energy, which
        // exists at both stages (paper: 2.3% gate-level register MAPE).
        let (gate, post) = gate_and_layout();
        let lib = Library::synthetic_40nm();
        let tg = simulate(&gate, &mut PhasedWorkload::w1(1), 64).expect("simulates");
        let tp = simulate(&post, &mut PhasedWorkload::w1(1), 64).expect("simulates");
        let pg = compute_power(&gate, &lib, &tg);
        let pp = compute_power(&post, &lib, &tp);
        let err = mape(
            &pp.group_series(PowerGroup::Register),
            &pg.group_series(PowerGroup::Register),
        );
        assert!(
            err < 25.0,
            "register group gate-vs-layout MAPE {err:.1}% too large"
        );
    }

    #[test]
    fn clock_tree_power_is_nearly_constant() {
        let (_, post) = gate_and_layout();
        let lib = Library::synthetic_40nm();
        let tp = simulate(&post, &mut PhasedWorkload::w1(1), 64).expect("simulates");
        let pp = compute_power(&post, &lib, &tp);
        let ct = pp.group_series(PowerGroup::ClockTree);
        let min = ct.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = ct.iter().cloned().fold(0.0, f64::max);
        assert!(max > 0.0);
        assert!(
            (max - min) / max < 1e-9,
            "ungated tree power must be constant"
        );
    }

    #[test]
    fn activity_modulates_combinational_power() {
        let (_, post) = gate_and_layout();
        let lib = Library::synthetic_40nm();
        let hot = simulate(&post, &mut ConstantWorkload::new(0.4, 5), 64).expect("simulates");
        let cold = simulate(&post, &mut ConstantWorkload::new(0.01, 5), 64).expect("simulates");
        let ph = compute_power(&post, &lib, &hot);
        let pc = compute_power(&post, &lib, &cold);
        assert!(
            ph.mean_group(PowerGroup::Combinational)
                > pc.mean_group(PowerGroup::Combinational) * 1.5
        );
    }

    #[test]
    fn idle_design_still_burns_leakage_and_clock() {
        let (_, post) = gate_and_layout();
        let lib = Library::synthetic_40nm();
        let idle = simulate(&post, &mut ConstantWorkload::new(0.0, 1), 8).expect("simulates");
        let p = compute_power(&post, &lib, &idle);
        for t in 0..8 {
            assert!(p.total(t) > 0.0, "leakage + clock power never sleeps");
        }
    }

    #[test]
    fn memory_power_follows_accesses() {
        let (_, post) = gate_and_layout();
        let lib = Library::synthetic_40nm();
        let hot = simulate(&post, &mut ConstantWorkload::new(0.4, 5), 64).expect("simulates");
        let cold = simulate(&post, &mut ConstantWorkload::new(0.0, 5), 64).expect("simulates");
        let ph = compute_power(&post, &lib, &hot);
        let pc = compute_power(&post, &lib, &cold);
        assert!(ph.mean_group(PowerGroup::Memory) > pc.mean_group(PowerGroup::Memory));
    }

    #[test]
    fn submodule_power_sums_to_group_totals() {
        let (_, post) = gate_and_layout();
        let lib = Library::synthetic_40nm();
        let tr = simulate(&post, &mut PhasedWorkload::w1(2), 16).expect("simulates");
        let p = compute_power(&post, &lib, &tr);
        for t in 0..16 {
            for g in PowerGroup::ALL {
                let by_sm: f64 = post.submodule_ids().map(|sm| p.at(t, sm, g)).sum();
                let total = p.group_total(t, g);
                assert!((by_sm - total).abs() <= 1e-12 + total * 1e-9);
            }
        }
    }

    #[test]
    fn trunk_clock_power_redistributed() {
        let (_, post) = gate_and_layout();
        let lib = Library::synthetic_40nm();
        let tr = simulate(&post, &mut PhasedWorkload::w1(2), 8).expect("simulates");
        let p = compute_power(&post, &lib, &tr);
        let trunk = post
            .submodule_ids()
            .find(|&s| post.submodule(s).name() == "cts.trunk")
            .expect("layout created a trunk");
        assert_eq!(p.at(0, trunk, PowerGroup::ClockTree), 0.0);
        // Component rollup: the `cts` pseudo-component carries ~nothing.
        let comps = p.component_means(&post);
        let cts = comps
            .iter()
            .find(|(n, _)| n == "cts")
            .expect("cts component exists");
        let total: f64 = comps.iter().map(|(_, w)| w).sum();
        assert!(
            cts.1 < total * 0.01,
            "cts component should be ~empty after redistribution"
        );
    }

    #[test]
    fn component_rollup_covers_non_memory_total() {
        let (_, post) = gate_and_layout();
        let lib = Library::synthetic_40nm();
        let tr = simulate(&post, &mut PhasedWorkload::w1(2), 16).expect("simulates");
        let p = compute_power(&post, &lib, &tr);
        let comps = p.component_means(&post);
        let sum: f64 = comps.iter().map(|(_, w)| w).sum();
        let mean = p.mean_non_memory();
        assert!(
            (sum - mean).abs() < mean * 1e-9,
            "components partition the design"
        );
    }

    #[test]
    fn trace_design_mismatch_panics() {
        let (gate, post) = gate_and_layout();
        let lib = Library::synthetic_40nm();
        let tg = simulate(&gate, &mut PhasedWorkload::w1(1), 8).expect("simulates");
        let model = PowerModel::new(&post, &lib);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = model.evaluate(&tg);
        }));
        assert!(result.is_err());
    }

    #[test]
    fn memory_is_a_large_power_share() {
        // The paper notes SRAM is ~half of total power; our synthetic
        // designs should at least make it a substantial share.
        let (_, post) = gate_and_layout();
        let lib = Library::synthetic_40nm();
        let tr = simulate(&post, &mut PhasedWorkload::w1(3), 64).expect("simulates");
        let p = compute_power(&post, &lib, &tr);
        let mem = p.mean_group(PowerGroup::Memory);
        let total: f64 = PowerGroup::ALL.iter().map(|&g| p.mean_group(g)).sum();
        assert!(
            mem / total > 0.05,
            "memory share {:.1}% too small",
            100.0 * mem / total
        );
    }
}
