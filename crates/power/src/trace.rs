//! Per-cycle, per-sub-module, per-group power traces.

use atlas_liberty::PowerGroup;
use atlas_netlist::{Design, SubmoduleId};
use serde::{Deserialize, Serialize};

const NGROUPS: usize = PowerGroup::ALL.len();

/// Power in watts for every (cycle, sub-module, power group).
///
/// This is the shape of the golden data ATLAS learns from: summing over
/// sub-modules gives the per-cycle group traces of Fig. 5; summing over a
/// component's sub-modules gives the component powers of Fig. 6; summing
/// everything (minus memory) gives the headline total of Table III.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerTrace {
    design: String,
    workload: String,
    cycles: usize,
    n_submodules: usize,
    /// `data[(cycle * n_submodules + sm) * 4 + group]`, watts.
    data: Vec<f64>,
}

impl PowerTrace {
    /// Create an all-zero trace to accumulate into. Used by the golden
    /// engine and by ATLAS inference, so predictions and labels share one
    /// type and one set of rollup methods.
    pub fn new(design: String, workload: String, cycles: usize, n_submodules: usize) -> PowerTrace {
        PowerTrace {
            design,
            workload,
            cycles,
            n_submodules,
            data: vec![0.0; cycles * n_submodules * NGROUPS],
        }
    }

    /// Accumulate watts into one (cycle, sub-module, group) slot.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    #[inline]
    pub fn add(&mut self, cycle: usize, sm: usize, group: usize, watts: f64) {
        self.data[(cycle * self.n_submodules + sm) * NGROUPS + group] += watts;
    }

    /// Design name.
    pub fn design(&self) -> &str {
        &self.design
    }

    /// Workload name.
    pub fn workload(&self) -> &str {
        &self.workload
    }

    /// Number of cycles.
    pub fn cycles(&self) -> usize {
        self.cycles
    }

    /// Number of sub-modules.
    pub fn submodule_count(&self) -> usize {
        self.n_submodules
    }

    /// Power (W) of one sub-module's group in one cycle.
    pub fn at(&self, cycle: usize, sm: SubmoduleId, group: PowerGroup) -> f64 {
        self.data[(cycle * self.n_submodules + sm.index()) * NGROUPS + group.index()]
    }

    /// Design-level power (W) of one group in one cycle.
    pub fn group_total(&self, cycle: usize, group: PowerGroup) -> f64 {
        let base = cycle * self.n_submodules * NGROUPS + group.index();
        (0..self.n_submodules)
            .map(|sm| self.data[base + sm * NGROUPS])
            .sum()
    }

    /// Design-level total power (W) in one cycle, all groups.
    pub fn total(&self, cycle: usize) -> f64 {
        PowerGroup::ALL
            .iter()
            .map(|&g| self.group_total(cycle, g))
            .sum()
    }

    /// Total power excluding the memory group — the quantity the paper's
    /// headline tables report (§VI-B "Exclusion of Memory Group").
    pub fn non_memory_total(&self, cycle: usize) -> f64 {
        self.total(cycle) - self.group_total(cycle, PowerGroup::Memory)
    }

    /// Per-cycle series of one group.
    pub fn group_series(&self, group: PowerGroup) -> Vec<f64> {
        (0..self.cycles)
            .map(|t| self.group_total(t, group))
            .collect()
    }

    /// Per-cycle series of the design total (all groups).
    pub fn total_series(&self) -> Vec<f64> {
        (0..self.cycles).map(|t| self.total(t)).collect()
    }

    /// Per-cycle series of the non-memory total.
    pub fn non_memory_series(&self) -> Vec<f64> {
        (0..self.cycles).map(|t| self.non_memory_total(t)).collect()
    }

    /// Per-cycle series of clock-tree + register power (the middle panel
    /// of Fig. 5).
    pub fn ct_reg_series(&self) -> Vec<f64> {
        (0..self.cycles)
            .map(|t| {
                self.group_total(t, PowerGroup::ClockTree)
                    + self.group_total(t, PowerGroup::Register)
            })
            .collect()
    }

    /// Per-cycle series of one sub-module's group.
    pub fn submodule_series(&self, sm: SubmoduleId, group: PowerGroup) -> Vec<f64> {
        (0..self.cycles).map(|t| self.at(t, sm, group)).collect()
    }

    /// One sub-module's total (all groups) in one cycle.
    pub fn submodule_total(&self, cycle: usize, sm: SubmoduleId) -> f64 {
        PowerGroup::ALL.iter().map(|&g| self.at(cycle, sm, g)).sum()
    }

    /// Mean over cycles of the design-level group power.
    pub fn mean_group(&self, group: PowerGroup) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.group_series(group).iter().sum::<f64>() / self.cycles as f64
    }

    /// Mean over cycles of the non-memory total.
    pub fn mean_non_memory(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.non_memory_series().iter().sum::<f64>() / self.cycles as f64
    }

    /// Average power (W) per component (non-memory groups), in the
    /// design's component order — the Fig. 6 rollup.
    pub fn component_means(&self, design: &Design) -> Vec<(String, f64)> {
        let comps = design.components();
        let mut totals = vec![0.0; comps.len()];
        for (sm_idx, sm) in design.submodules().iter().enumerate() {
            let Some(ci) = comps.iter().position(|c| *c == sm.component()) else {
                continue;
            };
            for t in 0..self.cycles {
                for g in PowerGroup::ALL {
                    if g == PowerGroup::Memory {
                        continue;
                    }
                    totals[ci] += self.at(t, SubmoduleId::from_index(sm_idx), g);
                }
            }
        }
        comps
            .into_iter()
            .map(String::from)
            .zip(totals.into_iter().map(|w| w / self.cycles.max(1) as f64))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulation_and_rollups() {
        let mut p = PowerTrace::new("d".into(), "w".into(), 2, 3);
        p.add(0, 0, PowerGroup::Combinational.index(), 1.0);
        p.add(0, 1, PowerGroup::Register.index(), 2.0);
        p.add(0, 2, PowerGroup::Memory.index(), 4.0);
        p.add(1, 0, PowerGroup::ClockTree.index(), 8.0);
        assert_eq!(p.total(0), 7.0);
        assert_eq!(p.non_memory_total(0), 3.0);
        assert_eq!(p.group_total(1, PowerGroup::ClockTree), 8.0);
        assert_eq!(p.total_series(), vec![7.0, 8.0]);
        assert_eq!(p.ct_reg_series(), vec![2.0, 8.0]);
        assert_eq!(
            p.at(0, SubmoduleId::from_index(1), PowerGroup::Register),
            2.0
        );
        assert_eq!(p.submodule_total(0, SubmoduleId::from_index(1)), 2.0);
        assert!((p.mean_group(PowerGroup::ClockTree) - 4.0).abs() < 1e-12);
        assert!((p.mean_non_memory() - 5.5).abs() < 1e-12);
    }
}
