//! Sparse adjacency matrices for graph propagation.

use serde::{Deserialize, Serialize};

use crate::matrix::Matrix;
use crate::matrix32::Matrix32;
use crate::simd;

/// A symmetric, degree-normalized adjacency matrix in CSR form:
/// `Â = D^(-1/2) (A + Aᵀ + I) D^(-1/2)`.
///
/// Symmetrization keeps the backward pass free (`Âᵀ = Â`) at the cost of
/// edge direction — direction information still reaches the model through
/// the global attention branch and the toggle features.
///
/// # Examples
///
/// ```
/// use atlas_nn::{Matrix, SparseAdj};
///
/// let adj = SparseAdj::normalized_from_edges(3, &[(0, 1), (1, 2)]);
/// let x = Matrix::from_rows(&[&[1.0], &[0.0], &[0.0]]);
/// let y = adj.matmul(&x);
/// // Node 1 receives mass from node 0.
/// assert!(y.get(1, 0) > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SparseAdj {
    n: usize,
    row_ptr: Vec<u32>,
    col_idx: Vec<u32>,
    vals: Vec<f64>,
}

impl SparseAdj {
    /// Build the normalized adjacency from directed edges (`u → v` local
    /// node indices). Duplicate edges are merged; self-loops are added to
    /// every node.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is `>= n` or `n == 0`.
    pub fn normalized_from_edges(n: usize, edges: &[(u32, u32)]) -> SparseAdj {
        assert!(n > 0, "graph must have nodes");
        // Symmetrize + self loops, dedup.
        let mut pairs: Vec<(u32, u32)> = Vec::with_capacity(edges.len() * 2 + n);
        for &(u, v) in edges {
            assert!(
                (u as usize) < n && (v as usize) < n,
                "edge endpoint out of range"
            );
            pairs.push((u, v));
            pairs.push((v, u));
        }
        for i in 0..n as u32 {
            pairs.push((i, i));
        }
        pairs.sort_unstable();
        pairs.dedup();

        let mut degree = vec![0usize; n];
        for &(u, _) in &pairs {
            degree[u as usize] += 1;
        }
        let inv_sqrt: Vec<f64> = degree.iter().map(|&d| 1.0 / (d as f64).sqrt()).collect();

        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut col_idx = Vec::with_capacity(pairs.len());
        let mut vals = Vec::with_capacity(pairs.len());
        row_ptr.push(0u32);
        let mut row = 0usize;
        for &(u, v) in &pairs {
            while row < u as usize {
                row += 1;
                row_ptr.push(col_idx.len() as u32);
            }
            col_idx.push(v);
            vals.push(inv_sqrt[u as usize] * inv_sqrt[v as usize]);
        }
        while row < n {
            row += 1;
            row_ptr.push(col_idx.len() as u32);
        }
        SparseAdj {
            n,
            row_ptr,
            col_idx,
            vals,
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// CSR row offsets (`node_count() + 1` entries). Together with
    /// [`col_indices`](Self::col_indices) this is the complete graph
    /// structure — the normalized values are a pure function of it — so
    /// callers can fingerprint a graph without reaching into the values.
    pub fn row_offsets(&self) -> &[u32] {
        &self.row_ptr
    }

    /// CSR column indices, row-major (see
    /// [`row_offsets`](Self::row_offsets)).
    pub fn col_indices(&self) -> &[u32] {
        &self.col_idx
    }

    /// Sparse-dense product `Â × x` — the sparse-aware entry point (the
    /// dense [`Matrix::matmul`] kernel does not skip zeros; adjacency
    /// products always belong here).
    ///
    /// # Panics
    ///
    /// Panics if `x.rows() != node_count()`.
    pub fn matmul(&self, x: &Matrix) -> Matrix {
        self.matmul_stacked(x, 1)
    }

    /// Block-wise `Â × x` for cycle-stacked inputs: `x` is `blocks`
    /// vertically stacked `n×d` matrices (one per cycle) and the shared
    /// adjacency is applied to each `n`-row block independently —
    /// propagation, like attention, must not leak across cycles. Each
    /// block of the result is bit-identical to [`matmul`](Self::matmul)
    /// of that block alone.
    ///
    /// # Panics
    ///
    /// Panics if `x.rows() != node_count() * blocks`.
    pub fn matmul_stacked(&self, x: &Matrix, blocks: usize) -> Matrix {
        let mut out = Matrix::zeros(x.rows(), x.cols());
        self.matmul_stacked_into(x, blocks, &mut out);
        out
    }

    /// [`matmul_stacked`](Self::matmul_stacked) into a caller-provided
    /// buffer (fully overwritten), so hot paths can reuse scratch memory.
    ///
    /// # Panics
    ///
    /// Panics if `x.rows() != node_count() * blocks` or `out` is not
    /// shaped like `x`.
    pub fn matmul_stacked_into(&self, x: &Matrix, blocks: usize, out: &mut Matrix) {
        assert_eq!(x.rows(), self.n * blocks, "spmm shape mismatch");
        assert_eq!(out.shape(), x.shape(), "spmm output shape mismatch");
        let d = x.cols();
        out.fill(0.0);
        let level = simd::active_kernel();
        for b in 0..blocks {
            let base = b * self.n;
            for r in 0..self.n {
                let start = self.row_ptr[r] as usize;
                let end = self.row_ptr[r + 1] as usize;
                let orow_start = (base + r) * d;
                for e in start..end {
                    let c = self.col_idx[e] as usize;
                    let w = self.vals[e];
                    let xrow = x.row(base + c);
                    let orow = &mut out.as_mut_slice()[orow_start..orow_start + d];
                    simd::axpy_f64(level, w, xrow, orow);
                }
            }
        }
    }

    /// f32 sibling of [`matmul_stacked_into`](Self::matmul_stacked_into)
    /// for the reduced-precision inference path: the stored f64 adjacency
    /// weights are narrowed per use, so one CSR serves both precisions
    /// without a second copy of the graph.
    ///
    /// # Panics
    ///
    /// Panics if `x.rows() != node_count() * blocks` or `out` is not
    /// shaped like `x`.
    pub fn matmul_stacked_f32_into(&self, x: &Matrix32, blocks: usize, out: &mut Matrix32) {
        assert_eq!(x.rows(), self.n * blocks, "spmm shape mismatch");
        assert_eq!(out.shape(), x.shape(), "spmm output shape mismatch");
        let d = x.cols();
        out.fill(0.0);
        let simd_on = simd::f32_simd_active();
        for b in 0..blocks {
            let base = b * self.n;
            for r in 0..self.n {
                let start = self.row_ptr[r] as usize;
                let end = self.row_ptr[r + 1] as usize;
                let orow_start = (base + r) * d;
                for e in start..end {
                    let c = self.col_idx[e] as usize;
                    let w = self.vals[e] as f32;
                    let xrow = x.row(base + c);
                    let orow = &mut out.as_mut_slice()[orow_start..orow_start + d];
                    simd::axpy_f32(simd_on, w, xrow, orow);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symmetric_and_normalized() {
        let adj = SparseAdj::normalized_from_edges(3, &[(0, 1), (1, 2)]);
        // Dense reconstruction.
        let mut dense = Matrix::zeros(3, 3);
        for r in 0..3 {
            let mut x = Matrix::zeros(3, 1);
            x.set(r, 0, 1.0);
            let y = adj.matmul(&x);
            for c in 0..3 {
                dense.set(c, r, y.get(c, 0));
            }
        }
        // Symmetric.
        for r in 0..3 {
            for c in 0..3 {
                assert!((dense.get(r, c) - dense.get(c, r)).abs() < 1e-12);
            }
        }
        // Self loops present.
        for i in 0..3 {
            assert!(dense.get(i, i) > 0.0);
        }
    }

    #[test]
    fn spectral_radius_bounded() {
        // The symmetric normalized adjacency of A+I has eigenvalues in
        // [-1, 1], so it cannot grow the 2-norm of any vector.
        let adj = SparseAdj::normalized_from_edges(5, &[(0, 1), (0, 2), (0, 3), (3, 4)]);
        for seed in 0..5 {
            let x = Matrix::xavier(5, 1, seed);
            let y = adj.matmul(&x);
            assert!(
                y.norm() <= x.norm() + 1e-12,
                "‖Âx‖={} > ‖x‖={}",
                y.norm(),
                x.norm()
            );
        }
    }

    #[test]
    fn duplicate_edges_merged() {
        let a = SparseAdj::normalized_from_edges(2, &[(0, 1), (0, 1), (1, 0)]);
        let b = SparseAdj::normalized_from_edges(2, &[(0, 1)]);
        assert_eq!(a, b);
    }

    #[test]
    fn isolated_nodes_keep_identity() {
        let adj = SparseAdj::normalized_from_edges(2, &[]);
        let x = Matrix::from_rows(&[&[3.0], &[4.0]]);
        let y = adj.matmul(&x);
        assert!((y.get(0, 0) - 3.0).abs() < 1e-12);
        assert!((y.get(1, 0) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn stacked_product_matches_per_block() {
        let adj = SparseAdj::normalized_from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let blocks: Vec<Matrix> = (0..3).map(|i| Matrix::xavier(4, 5, 20 + i)).collect();
        let mut stacked = Matrix::zeros(12, 5);
        for (b, x) in blocks.iter().enumerate() {
            stacked.as_mut_slice()[b * 20..(b + 1) * 20].copy_from_slice(x.as_slice());
        }
        let got = adj.matmul_stacked(&stacked, 3);
        for (b, x) in blocks.iter().enumerate() {
            let want = adj.matmul(x);
            for r in 0..4 {
                assert_eq!(
                    got.row(b * 4 + r),
                    want.row(r),
                    "block {b} row {r} diverged"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "spmm shape mismatch")]
    fn stacked_product_rejects_partial_blocks() {
        let adj = SparseAdj::normalized_from_edges(3, &[(0, 1)]);
        let _ = adj.matmul_stacked(&Matrix::zeros(7, 2), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_edge_panics() {
        let _ = SparseAdj::normalized_from_edges(2, &[(0, 5)]);
    }
}
