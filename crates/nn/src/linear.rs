//! Parameterized modules: linear layers and small MLP heads.

use crate::matrix::Matrix;
use crate::tensor::Tensor;

/// A dense layer `y = x·W + b`.
///
/// # Examples
///
/// ```
/// use atlas_nn::{Linear, Matrix, Tensor};
///
/// let layer = Linear::new(4, 2, 7);
/// let x = Tensor::constant(Matrix::xavier(3, 4, 1));
/// assert_eq!(layer.forward(&x).shape(), (3, 2));
/// assert_eq!(layer.params().len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct Linear {
    w: Tensor,
    b: Tensor,
}

impl Linear {
    /// Xavier-initialized layer, deterministic in `seed`.
    pub fn new(input: usize, output: usize, seed: u64) -> Linear {
        Linear {
            w: Tensor::param(Matrix::xavier(input, output, seed)),
            b: Tensor::param(Matrix::zeros(1, output)),
        }
    }

    /// Apply the layer.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        x.matmul(&self.w).add_row(&self.b)
    }

    /// The trainable parameters (`[W, b]`).
    pub fn params(&self) -> Vec<Tensor> {
        vec![self.w.clone(), self.b.clone()]
    }

    /// Snapshot weights for serialization.
    pub fn state(&self) -> Vec<Matrix> {
        vec![self.w.value().clone(), self.b.value().clone()]
    }

    /// Restore weights from [`Linear::state`] output.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot does not contain two matrices of matching
    /// shapes.
    pub fn load_state(&self, state: &[Matrix]) {
        assert_eq!(state.len(), 2, "linear state is [W, b]");
        assert_eq!(state[0].shape(), self.w.shape(), "W shape mismatch");
        assert_eq!(state[1].shape(), self.b.shape(), "b shape mismatch");
        self.w.set_value(state[0].clone());
        self.b.set_value(state[1].clone());
    }
}

/// A two-layer MLP head: `Linear → ReLU → Linear`. The paper attaches
/// temporary heads like this to the encoder for each pre-training task
/// and discards them afterwards.
#[derive(Debug, Clone)]
pub struct MlpHead {
    l1: Linear,
    l2: Linear,
}

impl MlpHead {
    /// Build a head with the given widths, deterministic in `seed`.
    pub fn new(input: usize, hidden: usize, output: usize, seed: u64) -> MlpHead {
        MlpHead {
            l1: Linear::new(input, hidden, seed.wrapping_mul(2).wrapping_add(1)),
            l2: Linear::new(hidden, output, seed.wrapping_mul(2).wrapping_add(2)),
        }
    }

    /// Apply the head.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        self.l2.forward(&self.l1.forward(x).relu())
    }

    /// All trainable parameters.
    pub fn params(&self) -> Vec<Tensor> {
        let mut p = self.l1.params();
        p.extend(self.l2.params());
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adam::Adam;

    #[test]
    fn linear_shapes_and_state_roundtrip() {
        let l = Linear::new(3, 5, 1);
        let snap = l.state();
        let l2 = Linear::new(3, 5, 99);
        l2.load_state(&snap);
        assert_eq!(l2.state(), snap);
    }

    #[test]
    fn mlp_learns_xor() {
        // The classic nonlinear sanity check.
        let x = Tensor::constant(Matrix::from_rows(&[
            &[0.0, 0.0],
            &[0.0, 1.0],
            &[1.0, 0.0],
            &[1.0, 1.0],
        ]));
        let targets = [0usize, 1, 1, 0];
        let head = MlpHead::new(2, 16, 2, 3);
        let mut opt = Adam::new(head.params(), 0.02);
        let mut last = f64::INFINITY;
        for _ in 0..400 {
            let loss = head.forward(&x).softmax_cross_entropy(&targets);
            last = loss.value().get(0, 0);
            opt.zero_grad();
            loss.backward();
            opt.step();
        }
        assert!(last < 0.05, "xor loss stuck at {last}");
        // Check predictions.
        let logits = head.forward(&x);
        let v = logits.value();
        for (r, &t) in targets.iter().enumerate() {
            let pred = if v.get(r, 1) > v.get(r, 0) { 1 } else { 0 };
            assert_eq!(pred, t, "row {r}");
        }
    }

    #[test]
    #[should_panic(expected = "W shape mismatch")]
    fn load_state_validates_shape() {
        let l = Linear::new(3, 5, 1);
        let other = Linear::new(4, 5, 2);
        l.load_state(&other.state());
    }
}
