//! The SGFormer-style graph encoder (paper §IV).
//!
//! SGFormer \[13\] pairs one *simple global attention* of linear complexity
//! with a graph-propagation (GCN) branch, needs no positional encodings,
//! and scales to graphs with tens of thousands of nodes — the reason the
//! paper picked it for netlist sub-modules. This is a faithful small-scale
//! reimplementation:
//!
//! * attention branch: kernelized linear attention
//!   `φ(Q)·(φ(K)ᵀV) / φ(Q)·(φ(K)ᵀ1)` with `φ(x) = relu(x) + ε` —
//!   O(N·d²), never materializes the N×N matrix;
//! * propagation branch: `relu(Â·H·W)` over the normalized adjacency;
//! * the two are mixed with weight `α` per layer;
//! * readout: mean pooling over node embeddings → the sub-module's graph
//!   embedding `E_g`.

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::linear::Linear;
use crate::matrix::Matrix;
use crate::sparse::SparseAdj;
use crate::tensor::Tensor;

/// Encoder hyperparameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EncoderConfig {
    /// Node feature width.
    pub input_dim: usize,
    /// Hidden/embedding width.
    pub hidden_dim: usize,
    /// Number of attention+propagation layers.
    pub layers: usize,
    /// Mixing weight of the attention branch (`1-α` goes to propagation).
    pub alpha: f64,
    /// Weight-initialization seed.
    pub seed: u64,
}

impl Default for EncoderConfig {
    fn default() -> EncoderConfig {
        EncoderConfig {
            input_dim: 24,
            hidden_dim: 48,
            layers: 2,
            alpha: 0.5,
            seed: 17,
        }
    }
}

/// Sum-pooling normalizer keeping graph embeddings O(1)-ish. Public so
/// external reimplementations of the readout (e.g. the embed benchmark's
/// frozen baseline) stay pinned to the model's constant.
pub const SUM_POOL_SCALE: f64 = 0.05;

struct Layer {
    q: Linear,
    k: Linear,
    v: Linear,
    gcn: Linear,
}

/// The graph encoder: node features + sub-module graph → node embeddings
/// and one graph embedding.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use atlas_nn::{EncoderConfig, GraphEncoder, Matrix, SparseAdj};
///
/// let cfg = EncoderConfig { input_dim: 4, hidden_dim: 8, layers: 1, alpha: 0.5, seed: 1 };
/// let enc = GraphEncoder::new(cfg);
/// let adj = Arc::new(SparseAdj::normalized_from_edges(5, &[(0, 1), (1, 2), (3, 4)]));
/// let feats = Matrix::xavier(5, 4, 2);
/// let (nodes, graph) = enc.encode(&adj, &feats);
/// assert_eq!(nodes.shape(), (5, 8));
/// assert_eq!(graph.shape(), (1, 8));
/// ```
pub struct GraphEncoder {
    cfg: EncoderConfig,
    embed: Linear,
    layers: Vec<Layer>,
    out: Linear,
}

impl GraphEncoder {
    /// Build a freshly initialized encoder.
    pub fn new(cfg: EncoderConfig) -> GraphEncoder {
        let mut seed = cfg.seed.wrapping_mul(0x9E37_79B9);
        let mut next = || {
            seed = seed.wrapping_add(0x1234_5677);
            seed
        };
        let embed = Linear::new(cfg.input_dim, cfg.hidden_dim, next());
        let layers = (0..cfg.layers)
            .map(|_| Layer {
                q: Linear::new(cfg.hidden_dim, cfg.hidden_dim, next()),
                k: Linear::new(cfg.hidden_dim, cfg.hidden_dim, next()),
                v: Linear::new(cfg.hidden_dim, cfg.hidden_dim, next()),
                gcn: Linear::new(cfg.hidden_dim, cfg.hidden_dim, next()),
            })
            .collect();
        let out = Linear::new(cfg.hidden_dim, cfg.hidden_dim, next());
        GraphEncoder {
            cfg,
            embed,
            layers,
            out,
        }
    }

    /// The configuration this encoder was built with.
    pub fn config(&self) -> &EncoderConfig {
        &self.cfg
    }

    /// Embedding width (`hidden_dim`).
    pub fn embedding_dim(&self) -> usize {
        self.cfg.hidden_dim
    }

    /// Encode one sub-module graph: returns `(node_embeddings n×d,
    /// graph_embedding 1×d)`, both differentiable.
    pub fn encode(&self, adj: &Arc<SparseAdj>, features: &Matrix) -> (Tensor, Tensor) {
        assert_eq!(
            features.cols(),
            self.cfg.input_dim,
            "feature width mismatch"
        );
        assert_eq!(
            features.rows(),
            adj.node_count(),
            "feature/adjacency node count mismatch"
        );
        let n = features.rows();
        let x = Tensor::constant(features.clone());
        let mut h = self.embed.forward(&x).relu();
        let ones = Tensor::constant(Matrix::full(n, 1, 1.0));
        for layer in &self.layers {
            // Linear global attention, O(N·d²).
            let pq = layer.q.forward(&h).relu().add_scalar(0.01);
            let pk = layer.k.forward(&h).relu().add_scalar(0.01);
            let v = layer.v.forward(&h);
            let kv = pk.matmul_tn(&v); // d×d
            let num = pq.matmul(&kv); // n×d
            let ksum = pk.matmul_tn(&ones); // d×1
            let denom = pq.matmul(&ksum); // n×1
            let attn = num.col_div(&denom);
            // Graph propagation branch.
            let prop = layer.gcn.forward(&h.spmm(adj)).relu();
            h = attn
                .scale(self.cfg.alpha)
                .add(&prop.scale(1.0 - self.cfg.alpha))
                .relu();
        }
        let nodes = self.out.forward(&h);
        // Scaled *sum* pooling: power is extensive, so the graph embedding
        // must encode absolute size, not just composition (mean pooling
        // cannot distinguish a sub-module from two copies of it).
        let graph = nodes.mean_rows().scale(n as f64 * SUM_POOL_SCALE);
        (nodes, graph)
    }

    /// All trainable parameters.
    pub fn params(&self) -> Vec<Tensor> {
        let mut p = self.embed.params();
        for l in &self.layers {
            p.extend(l.q.params());
            p.extend(l.k.params());
            p.extend(l.v.params());
            p.extend(l.gcn.params());
        }
        p.extend(self.out.params());
        p
    }

    /// Snapshot all weights.
    pub fn state(&self) -> EncoderState {
        let mut tensors = self.embed.state();
        for l in &self.layers {
            tensors.extend(l.q.state());
            tensors.extend(l.k.state());
            tensors.extend(l.v.state());
            tensors.extend(l.gcn.state());
        }
        tensors.extend(self.out.state());
        EncoderState {
            config: self.cfg.clone(),
            tensors,
        }
    }

    /// Restore from a snapshot.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot's config does not match this encoder.
    pub fn load_state(&self, state: &EncoderState) {
        assert_eq!(state.config, self.cfg, "encoder config mismatch");
        let mut it = state.tensors.chunks(2);
        let mut next = || it.next().expect("state has enough tensors");
        self.embed.load_state(next());
        for l in &self.layers {
            l.q.load_state(next());
            l.k.load_state(next());
            l.v.load_state(next());
            l.gcn.load_state(next());
        }
        self.out.load_state(next());
    }

    /// Rebuild an encoder directly from a snapshot.
    pub fn from_state(state: &EncoderState) -> GraphEncoder {
        let enc = GraphEncoder::new(state.config.clone());
        enc.load_state(state);
        enc
    }
}

/// Serializable encoder weights (config + flat weight list).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EncoderState {
    /// Architecture the weights belong to.
    pub config: EncoderConfig,
    /// `[W, b]` pairs in layer order.
    pub tensors: Vec<Matrix>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adam::Adam;
    use crate::linear::MlpHead;

    fn toy_graph(n: usize, seed: u64) -> (Arc<SparseAdj>, Matrix) {
        let edges: Vec<(u32, u32)> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
        (
            Arc::new(SparseAdj::normalized_from_edges(n, &edges)),
            Matrix::xavier(n, 4, seed),
        )
    }

    fn small_cfg() -> EncoderConfig {
        EncoderConfig {
            input_dim: 4,
            hidden_dim: 8,
            layers: 2,
            alpha: 0.5,
            seed: 5,
        }
    }

    #[test]
    fn output_shapes() {
        let enc = GraphEncoder::new(small_cfg());
        let (adj, feats) = toy_graph(7, 1);
        let (nodes, graph) = enc.encode(&adj, &feats);
        assert_eq!(nodes.shape(), (7, 8));
        assert_eq!(graph.shape(), (1, 8));
    }

    #[test]
    fn deterministic_construction_and_forward() {
        let a = GraphEncoder::new(small_cfg());
        let b = GraphEncoder::new(small_cfg());
        let (adj, feats) = toy_graph(5, 2);
        let (_, ga) = a.encode(&adj, &feats);
        let (_, gb) = b.encode(&adj, &feats);
        assert_eq!(*ga.value(), *gb.value());
    }

    #[test]
    fn permutation_equivariance() {
        // Relabeling nodes (and permuting features/edges consistently) must
        // permute node embeddings and keep the graph embedding unchanged.
        let enc = GraphEncoder::new(small_cfg());
        let n = 6;
        let edges = [(0u32, 1u32), (1, 2), (2, 3), (4, 5)];
        let feats = Matrix::xavier(n, 4, 3);
        let adj = Arc::new(SparseAdj::normalized_from_edges(n, &edges));
        let (nodes, graph) = enc.encode(&adj, &feats);

        // Permutation: reverse order.
        let perm: Vec<usize> = (0..n).rev().collect();
        let mut pfeats = Matrix::zeros(n, 4);
        for (new, &old) in perm.iter().enumerate() {
            for c in 0..4 {
                pfeats.set(new, c, feats.get(old, c));
            }
        }
        let pedges: Vec<(u32, u32)> = edges
            .iter()
            .map(|&(u, v)| {
                let pu = perm.iter().position(|&o| o == u as usize).expect("in perm") as u32;
                let pv = perm.iter().position(|&o| o == v as usize).expect("in perm") as u32;
                (pu, pv)
            })
            .collect();
        let padj = Arc::new(SparseAdj::normalized_from_edges(n, &pedges));
        let (pnodes, pgraph) = enc.encode(&padj, &pfeats);

        for c in 0..8 {
            assert!(
                (graph.value().get(0, c) - pgraph.value().get(0, c)).abs() < 1e-9,
                "graph embedding changed under permutation"
            );
        }
        for (new, &old) in perm.iter().enumerate() {
            for c in 0..8 {
                assert!(
                    (nodes.value().get(old, c) - pnodes.value().get(new, c)).abs() < 1e-9,
                    "node embeddings not equivariant"
                );
            }
        }
    }

    #[test]
    fn learns_graph_size() {
        // Train encoder + regression head to predict node count — the
        // paper's Task #3 in miniature.
        let enc = GraphEncoder::new(small_cfg());
        let head = MlpHead::new(8, 8, 1, 9);
        let mut params = enc.params();
        params.extend(head.params());
        let mut opt = Adam::new(params, 0.01);
        let sizes = [3usize, 5, 8, 12];
        let graphs: Vec<(Arc<SparseAdj>, Matrix)> = sizes
            .iter()
            .enumerate()
            .map(|(i, &n)| toy_graph(n, 100 + i as u64))
            .collect();
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..60 {
            let mut losses = Vec::new();
            for ((adj, feats), &n) in graphs.iter().zip(&sizes) {
                let (_, graph) = enc.encode(adj, feats);
                let pred = head.forward(&graph);
                losses.push(pred.mse_loss(&Matrix::full(1, 1, n as f64 / 12.0)));
            }
            let loss = Tensor::concat_rows(&losses).mean_rows();
            first.get_or_insert(loss.value().get(0, 0));
            last = loss.value().get(0, 0);
            opt.zero_grad();
            loss.backward();
            opt.step();
        }
        let first = first.expect("ran at least once");
        assert!(
            last < first * 0.3,
            "size loss barely moved: {first} → {last}"
        );
    }

    #[test]
    fn state_roundtrip() {
        let enc = GraphEncoder::new(small_cfg());
        let snap = enc.state();
        let enc2 = GraphEncoder::from_state(&snap);
        let (adj, feats) = toy_graph(5, 4);
        let (_, g1) = enc.encode(&adj, &feats);
        let (_, g2) = enc2.encode(&adj, &feats);
        assert_eq!(*g1.value(), *g2.value());
    }

    #[test]
    #[should_panic(expected = "feature width")]
    fn rejects_bad_feature_width() {
        let enc = GraphEncoder::new(small_cfg());
        let (adj, _) = toy_graph(5, 4);
        let _ = enc.encode(&adj, &Matrix::zeros(5, 9));
    }
}
