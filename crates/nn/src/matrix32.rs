//! Dense row-major `f32` matrices for the reduced-precision inference
//! path.
//!
//! [`Matrix32`] mirrors the kernel family of [`Matrix`](crate::Matrix)
//! (blocked register tiles, fused epilogues, segmented reductions) at
//! half the bytes per element, which halves memory traffic in the
//! encoder forward and halves what a cached embedding costs the serving
//! LRU. It exists only for inference: training, checkpoints, and the
//! registry format stay f64, and weights are narrowed once at model
//! load ([`Matrix32::from_f64`]).
//!
//! There is no bit-parity contract here — f32 results are validated
//! against the f64 path by an accuracy-delta gate
//! ([`F32_EMBED_TOLERANCE`](crate::F32_EMBED_TOLERANCE)), which is what
//! lets the SIMD variants use FMA.

use crate::matrix::Matrix;
use crate::simd;

/// Output rows per register tile (same geometry as the f64 kernel).
const TILE_ROWS: usize = 4;
/// Output columns per register tile: 8 f32 lanes fill one AVX2 register,
/// so the 24-wide serving hidden width is exactly three full tiles and
/// needs no separate full-row specialization.
const TILE_COLS: usize = 8;
/// Row ranges shorter than this take a scalar row-at-a-time path with a
/// zero skip, like the f64 kernel's small-block path.
const SMALL_BLOCK_ROWS: usize = 16;
/// Widest output the small-block path supports with a stack accumulator.
const SMALL_BLOCK_COLS_MAX: usize = 64;

/// A dense row-major matrix of `f32` — the inference-only sibling of
/// [`Matrix`](crate::Matrix).
///
/// # Examples
///
/// ```
/// use atlas_nn::{Matrix, Matrix32};
///
/// let m64 = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let m32 = Matrix32::from_f64(&m64);
/// assert_eq!(m32.get(1, 0), 3.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Matrix32 {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix32 {
    /// All-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Matrix32 {
        Matrix32 {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Narrow an f64 matrix to f32, element by element (round to
    /// nearest). This is the one conversion point of the f32 inference
    /// path — weights pass through it once at model load.
    pub fn from_f64(m: &Matrix) -> Matrix32 {
        Matrix32 {
            rows: m.rows(),
            cols: m.cols(),
            data: m.as_slice().iter().map(|&v| v as f32).collect(),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Read one element.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Flat row-major data.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat row-major data.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// One row as a slice.
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// One row as a mutable slice.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Set every element to `value` (scratch-buffer reset).
    pub fn fill(&mut self, value: f32) {
        self.data.fill(value);
    }

    /// Matrix product `self × other` (blocked kernel).
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, other: &Matrix32) -> Matrix32 {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        let mut out = Matrix32::zeros(self.rows, other.cols);
        self.matmul_rows_into(other, 0, self.rows, &mut out);
        out
    }

    /// Blocked matmul over a row range — the f32 sibling of
    /// [`Matrix::matmul_rows_into`](crate::Matrix::matmul_rows_into).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch or an out-of-bounds row range.
    pub fn matmul_rows_into(
        &self,
        other: &Matrix32,
        row_start: usize,
        row_count: usize,
        out: &mut Matrix32,
    ) {
        self.matmul_tiled_rows(other, row_start, row_count, out, |orow, acc, _, _| {
            orow.copy_from_slice(acc);
        });
    }

    /// Fused affine + activation over a row range — the f32 sibling of
    /// [`Matrix::matmul_bias_act_rows_into`](crate::Matrix::matmul_bias_act_rows_into).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch, a bias not shaped `1 × other.cols()`, or
    /// an out-of-bounds row range.
    pub fn matmul_bias_act_rows_into(
        &self,
        other: &Matrix32,
        bias: &Matrix32,
        act: impl Fn(f32) -> f32,
        row_start: usize,
        row_count: usize,
        out: &mut Matrix32,
    ) {
        assert_eq!(bias.shape(), (1, other.cols), "bias shape mismatch");
        self.matmul_tiled_rows(other, row_start, row_count, out, |orow, acc, _, j| {
            let brow = &bias.data[j..j + acc.len()];
            for ((o, &v), &b) in orow.iter_mut().zip(acc).zip(brow) {
                *o = act(v + b);
            }
        });
    }

    /// Fused layer-mix epilogue — the f32 sibling of
    /// [`Matrix::matmul_bias_act_mix_rows_into`](crate::Matrix::matmul_bias_act_mix_rows_into).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch, a bias not shaped `1 × other.cols()`, or
    /// an out-of-bounds row range.
    #[allow(clippy::too_many_arguments)]
    pub fn matmul_bias_act_mix_rows_into(
        &self,
        other: &Matrix32,
        bias: &Matrix32,
        act: impl Fn(f32) -> f32,
        mix: f32,
        row_start: usize,
        row_count: usize,
        out: &mut Matrix32,
    ) {
        assert_eq!(bias.shape(), (1, other.cols), "bias shape mismatch");
        self.matmul_tiled_rows(other, row_start, row_count, out, |orow, acc, _, j| {
            let brow = &bias.data[j..j + acc.len()];
            for ((o, &v), &b) in orow.iter_mut().zip(acc).zip(brow) {
                *o = (mix * *o + (1.0 - mix) * act(v + b)).max(0.0);
            }
        });
    }

    /// Mix epilogue with per-block mean pooling fused into the same
    /// write-back — the f32 sibling of
    /// [`Matrix::matmul_bias_act_mix_pool_rows_into`](crate::Matrix::matmul_bias_act_mix_pool_rows_into).
    /// The pool sums accumulate in f32; the divide at the end matches the
    /// f64 kernel's operation order.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch, a `block_rows` that does not divide the
    /// output rows, or a `pool` of the wrong length.
    #[allow(clippy::too_many_arguments)]
    pub fn matmul_bias_act_mix_pool_rows_into(
        &self,
        other: &Matrix32,
        bias: &Matrix32,
        act: impl Fn(f32) -> f32,
        mix: f32,
        out: &mut Matrix32,
        block_rows: usize,
        pool: &mut [f32],
    ) {
        assert_eq!(bias.shape(), (1, other.cols), "bias shape mismatch");
        let rows = out.rows;
        let nd = other.cols;
        assert!(
            block_rows > 0 && rows.is_multiple_of(block_rows),
            "pool block size must divide the row count"
        );
        assert_eq!(pool.len(), (rows / block_rows) * nd, "pool buffer shape");
        pool.fill(0.0);
        self.matmul_tiled_rows(other, 0, rows, out, |orow, acc, row, j| {
            let brow = &bias.data[j..j + acc.len()];
            for ((o, &v), &b) in orow.iter_mut().zip(acc).zip(brow) {
                *o = (mix * *o + (1.0 - mix) * act(v + b)).max(0.0);
            }
            let prow = &mut pool[(row / block_rows) * nd + j..][..acc.len()];
            for (p, &o) in prow.iter_mut().zip(orow.iter()) {
                *p += o;
            }
        });
        let n = block_rows as f32;
        for v in pool {
            *v /= n;
        }
    }

    /// Fused attention-normalize epilogue — the f32 sibling of
    /// [`Matrix::matmul_div_rows_into`](crate::Matrix::matmul_div_rows_into).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch, a `denom` narrower than one column, or
    /// an out-of-bounds row range.
    pub fn matmul_div_rows_into(
        &self,
        other: &Matrix32,
        denom: &Matrix32,
        row_start: usize,
        row_count: usize,
        out: &mut Matrix32,
    ) {
        assert!(denom.cols >= 1, "denominator needs a column");
        assert!(
            row_start + row_count <= denom.rows,
            "denominator row range out of bounds"
        );
        self.matmul_tiled_rows(other, row_start, row_count, out, |orow, acc, row, _| {
            let dv = denom.data[row * denom.cols];
            for (o, &v) in orow.iter_mut().zip(acc) {
                *o = v / dv;
            }
        });
    }

    /// Zero-skipping affine + activation for sparse left operands — the
    /// f32 sibling of
    /// [`Matrix::matmul_bias_act_sparse_rows_into`](crate::Matrix::matmul_bias_act_sparse_rows_into)
    /// (the embed layer's feature matrices stay ~85% exact zeros in
    /// either precision).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch, a bias not shaped `1 × other.cols()`, or
    /// an out-of-bounds row range.
    pub fn matmul_bias_act_sparse_rows_into(
        &self,
        other: &Matrix32,
        bias: &Matrix32,
        act: impl Fn(f32) -> f32,
        row_start: usize,
        row_count: usize,
        out: &mut Matrix32,
    ) {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        assert_eq!(out.cols, other.cols, "matmul output width mismatch");
        assert_eq!(bias.shape(), (1, other.cols), "bias shape mismatch");
        assert!(
            row_start + row_count <= self.rows && row_start + row_count <= out.rows,
            "matmul row range out of bounds"
        );
        let kd = self.cols;
        let nd = other.cols;
        let simd_on = simd::f32_simd_active();
        for i in row_start..row_start + row_count {
            let orow = &mut out.data[i * nd..(i + 1) * nd];
            orow.fill(0.0);
            let arow = &self.data[i * kd..(i + 1) * kd];
            for (k, &a) in arow.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let brow = &other.data[k * nd..(k + 1) * nd];
                simd::axpy_f32(simd_on, a, brow, orow);
            }
            for (o, &b) in orow.iter_mut().zip(&bias.data) {
                *o = act(*o + b);
            }
        }
    }

    /// Segmented `selfᵀ × other` over a shared row range — the f32
    /// sibling of
    /// [`Matrix::matmul_tn_block_into`](crate::Matrix::matmul_tn_block_into).
    ///
    /// # Panics
    ///
    /// Panics on an out-of-bounds row range or an output shape mismatch.
    pub fn matmul_tn_block_into(
        &self,
        other: &Matrix32,
        row_start: usize,
        row_count: usize,
        out: &mut Matrix32,
    ) {
        assert!(
            row_start + row_count <= self.rows && row_start + row_count <= other.rows,
            "matmul_tn row range out of bounds"
        );
        assert_eq!(
            out.shape(),
            (self.cols, other.cols),
            "matmul_tn output shape mismatch"
        );
        let (ac, bc) = (self.cols, other.cols);
        let arange = &self.data[row_start * ac..(row_start + row_count) * ac];
        let brange = &other.data[row_start * bc..(row_start + row_count) * bc];
        let simd_on = simd::f32_simd_active();
        if row_count < SMALL_BLOCK_ROWS {
            out.data.fill(0.0);
            for (arow, brow) in arange.chunks_exact(ac).zip(brange.chunks_exact(bc)) {
                for (i, &a) in arow.iter().enumerate() {
                    if a == 0.0 {
                        continue;
                    }
                    let orow = &mut out.data[i * bc..(i + 1) * bc];
                    simd::axpy_f32(simd_on, a, brow, orow);
                }
            }
            return;
        }
        let mut i = 0;
        while i < ac {
            let mr = TILE_ROWS.min(ac - i);
            let mut j = 0;
            while j < bc {
                let nr = TILE_COLS.min(bc - j);
                let mut acc = [[0.0f32; TILE_COLS]; TILE_ROWS];
                if mr == TILE_ROWS && nr == TILE_COLS {
                    simd::tn_tile4x8_f32(simd_on, arange, brange, ac, bc, i, j, &mut acc);
                } else {
                    for (arow, brow) in arange.chunks_exact(ac).zip(brange.chunks_exact(bc)) {
                        let a = &arow[i..i + mr];
                        let b = &brow[j..j + nr];
                        for (accr, &av) in acc.iter_mut().zip(a) {
                            for (o, &bv) in accr[..nr].iter_mut().zip(b) {
                                *o += av * bv;
                            }
                        }
                    }
                }
                for (r, accr) in acc.iter().enumerate().take(mr) {
                    out.data[(i + r) * bc + j..(i + r) * bc + j + nr].copy_from_slice(&accr[..nr]);
                }
                j += nr;
            }
            i += mr;
        }
    }

    /// Column sums over a row range into a caller slice — the f32 sibling
    /// of [`Matrix::col_sums_block_into`](crate::Matrix::col_sums_block_into).
    ///
    /// # Panics
    ///
    /// Panics if `dst.len() != cols` or the row range exceeds `self`.
    pub fn col_sums_block_into(&self, row_start: usize, row_count: usize, dst: &mut [f32]) {
        assert_eq!(dst.len(), self.cols, "col_sums destination width");
        assert!(
            row_start + row_count <= self.rows,
            "col_sums row range out of bounds"
        );
        dst.fill(0.0);
        for r in row_start..row_start + row_count {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            for (o, &v) in dst.iter_mut().zip(row) {
                if v != 0.0 {
                    *o += v;
                }
            }
        }
    }

    /// Column-wise mean over a row range into a caller slice — the f32
    /// sibling of
    /// [`Matrix::mean_rows_block_into`](crate::Matrix::mean_rows_block_into).
    ///
    /// # Panics
    ///
    /// Panics if `dst.len() != cols` or the row range exceeds `self`.
    pub fn mean_rows_block_into(&self, row_start: usize, row_count: usize, dst: &mut [f32]) {
        assert_eq!(dst.len(), self.cols, "mean_rows destination width");
        assert!(
            row_start + row_count <= self.rows,
            "mean_rows row range out of bounds"
        );
        dst.fill(0.0);
        for r in row_start..row_start + row_count {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            for (o, &v) in dst.iter_mut().zip(row) {
                *o += v;
            }
        }
        let n = row_count.max(1) as f32;
        for v in dst {
            *v /= n;
        }
    }

    /// The register-tiled kernel core shared by the `matmul*` entry
    /// points — same blocking as the f64 core, with the f32 micro-kernels
    /// dispatched on [`simd::f32_simd_active`].
    fn matmul_tiled_rows(
        &self,
        other: &Matrix32,
        row_start: usize,
        row_count: usize,
        out: &mut Matrix32,
        mut write: impl FnMut(&mut [f32], &[f32], usize, usize),
    ) {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        assert_eq!(out.cols, other.cols, "matmul output width mismatch");
        assert!(
            row_start + row_count <= self.rows && row_start + row_count <= out.rows,
            "matmul row range out of bounds"
        );
        let kd = self.cols;
        let nd = other.cols;
        let simd_on = simd::f32_simd_active();
        if row_count < SMALL_BLOCK_ROWS && nd <= SMALL_BLOCK_COLS_MAX {
            let mut acc = [0.0f32; SMALL_BLOCK_COLS_MAX];
            for i in row_start..row_start + row_count {
                let acc = &mut acc[..nd];
                acc.fill(0.0);
                let arow = &self.data[i * kd..(i + 1) * kd];
                for (k, &a) in arow.iter().enumerate() {
                    if a == 0.0 {
                        continue;
                    }
                    let brow = &other.data[k * nd..(k + 1) * nd];
                    simd::axpy_f32(simd_on, a, brow, acc);
                }
                write(&mut out.data[i * nd..(i + 1) * nd], acc, i, 0);
            }
            return;
        }
        let row_end = row_start + row_count;
        let mut i = row_start;
        while i < row_end {
            let mr = TILE_ROWS.min(row_end - i);
            let mut j = 0;
            while j < nd {
                let nr = TILE_COLS.min(nd - j);
                let mut acc = [[0.0f32; TILE_COLS]; TILE_ROWS];
                if mr == TILE_ROWS && nr == TILE_COLS {
                    let a0 = &self.data[i * kd..(i + 1) * kd];
                    let a1 = &self.data[(i + 1) * kd..(i + 2) * kd];
                    let a2 = &self.data[(i + 2) * kd..(i + 3) * kd];
                    let a3 = &self.data[(i + 3) * kd..(i + 4) * kd];
                    simd::tile4x8_f32(simd_on, [a0, a1, a2, a3], &other.data, nd, j, &mut acc);
                } else {
                    for k in 0..kd {
                        let b = &other.data[k * nd + j..k * nd + j + nr];
                        for (r, accr) in acc.iter_mut().enumerate().take(mr) {
                            let a = self.data[(i + r) * kd + k];
                            for (o, &bv) in accr[..nr].iter_mut().zip(b) {
                                *o += a * bv;
                            }
                        }
                    }
                }
                for (r, accr) in acc.iter().enumerate().take(mr) {
                    let orow = &mut out.data[(i + r) * nd + j..(i + r) * nd + j + nr];
                    write(orow, &accr[..nr], i + r, j);
                }
                j += nr;
            }
            i += mr;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Naive f32 reference with k-ascending accumulation.
    fn matmul_reference(a: &Matrix32, b: &Matrix32) -> Matrix32 {
        assert_eq!(a.cols(), b.rows());
        let mut out = Matrix32::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut acc = 0.0f32;
                for k in 0..a.cols() {
                    acc += a.get(i, k) * b.get(k, j);
                }
                out.data[i * b.cols() + j] = acc;
            }
        }
        out
    }

    fn xavier32(rows: usize, cols: usize, seed: u64) -> Matrix32 {
        Matrix32::from_f64(&Matrix::xavier(rows, cols, seed))
    }

    #[test]
    fn narrowing_preserves_shape_and_values() {
        let m = Matrix::from_rows(&[&[1.5, -2.0], &[0.25, 4.0]]);
        let m32 = Matrix32::from_f64(&m);
        assert_eq!(m32.shape(), (2, 2));
        assert_eq!(m32.get(0, 1), -2.0);
        assert_eq!(m32.row(1), &[0.25, 4.0]);
    }

    #[test]
    fn blocked_matmul_is_close_to_reference() {
        // FMA may single-round, so the contract is closeness, not bit
        // equality — shapes straddle every kernel path.
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (3, 5, 7),
            (5, 24, 9),
            (9, 7, 17),
            (17, 48, 24),
            (20, 24, 24),
            (33, 48, 48),
        ] {
            let a = xavier32(m, k, (m * 31 + n) as u64);
            let b = xavier32(k, n, (k * 17 + n) as u64);
            let got = a.matmul(&b);
            let want = matmul_reference(&a, &b);
            for r in 0..m {
                for c in 0..n {
                    let (g, w) = (got.get(r, c), want.get(r, c));
                    assert!(
                        (g - w).abs() <= 1e-4 * (1.0 + w.abs()),
                        "{m}x{k}x{n} at ({r},{c}): {g} vs {w}"
                    );
                }
            }
        }
    }

    #[test]
    fn tn_block_matches_dense_product() {
        let a = xavier32(20, 12, 41);
        let b = xavier32(20, 9, 42);
        let mut got = Matrix32::zeros(12, 9);
        a.matmul_tn_block_into(&b, 0, 20, &mut got);
        // Reference through the (already verified) dense kernel.
        let mut at = Matrix32::zeros(12, 20);
        for r in 0..20 {
            for c in 0..12 {
                at.data[c * 20 + r] = a.get(r, c);
            }
        }
        let want = at.matmul(&b);
        for r in 0..12 {
            for c in 0..9 {
                let (g, w) = (got.get(r, c), want.get(r, c));
                assert!((g - w).abs() <= 1e-4 * (1.0 + w.abs()), "({r},{c})");
            }
        }
    }

    #[test]
    fn pool_fused_epilogue_matches_separate_pooling() {
        let (blocks, n, hidden) = (3usize, 21usize, 24usize);
        let rows = blocks * n;
        let x = xavier32(rows, hidden, 51);
        let w = xavier32(hidden, hidden, 52);
        let b = xavier32(1, hidden, 53);
        let prior = xavier32(rows, hidden, 54);
        let act = |v: f32| v.max(0.0);

        let mut expect_out = prior.clone();
        x.matmul_bias_act_mix_rows_into(&w, &b, act, 0.4, 0, rows, &mut expect_out);
        let mut expect_pool = vec![0.0f32; blocks * hidden];
        for blk in 0..blocks {
            expect_out.mean_rows_block_into(
                blk * n,
                n,
                &mut expect_pool[blk * hidden..(blk + 1) * hidden],
            );
        }

        let mut out = prior.clone();
        let mut pool = vec![f32::NAN; blocks * hidden];
        x.matmul_bias_act_mix_pool_rows_into(&w, &b, act, 0.4, &mut out, n, &mut pool);
        assert_eq!(out, expect_out);
        assert_eq!(pool, expect_pool);
    }
}
