//! Contrastive losses.

use crate::tensor::Tensor;

/// The InfoNCE loss (van den Oord et al. \[14\]) with in-batch negatives —
/// the objective of the paper's Tasks #4 (gate-level contrastive) and #5
/// (cross-stage alignment).
///
/// `anchors` and `positives` are `B × d` batches where row `i` of
/// `positives` is the positive sample of row `i` of `anchors`; every other
/// row in the batch is a negative. Embeddings are cosine-normalized and
/// compared at temperature `tau`.
///
/// # Panics
///
/// Panics if the shapes differ or the batch is empty.
///
/// # Examples
///
/// ```
/// use atlas_nn::{info_nce, Matrix, Tensor};
///
/// let a = Tensor::param(Matrix::xavier(4, 8, 1));
/// let p = Tensor::constant(Matrix::xavier(4, 8, 1)); // identical pairs
/// let loss = info_nce(&a, &p, 0.1);
/// // Matching pairs score much better than random negatives:
/// assert!(loss.value().get(0, 0) < 0.7);
/// ```
pub fn info_nce(anchors: &Tensor, positives: &Tensor, tau: f64) -> Tensor {
    let (b, d) = anchors.shape();
    assert_eq!((b, d), positives.shape(), "anchor/positive shape mismatch");
    assert!(b > 0, "empty batch");
    assert!(tau > 0.0, "temperature must be positive");
    let a = anchors.l2_normalize_rows();
    let p = positives.l2_normalize_rows();
    let logits = a.matmul_nt(&p).scale(1.0 / tau);
    let targets: Vec<usize> = (0..b).collect();
    logits.softmax_cross_entropy(&targets)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adam::Adam;
    use crate::linear::Linear;
    use crate::matrix::Matrix;

    #[test]
    fn perfect_alignment_beats_random() {
        let m = Matrix::xavier(8, 16, 3);
        let a = Tensor::constant(m.clone());
        let p = Tensor::constant(m);
        let aligned = info_nce(&a, &p, 0.1).value().get(0, 0);

        let q = Tensor::constant(Matrix::xavier(8, 16, 99));
        let random = info_nce(&a, &q, 0.1).value().get(0, 0);
        assert!(aligned < random, "aligned={aligned} random={random}");
    }

    #[test]
    fn learning_aligns_two_views() {
        // Learn a projection W so that X·W aligns with a fixed target view.
        let x = Tensor::constant(Matrix::xavier(6, 8, 1));
        let y = Tensor::constant(Matrix::xavier(6, 8, 2));
        let proj = Linear::new(8, 8, 7);
        let mut opt = Adam::new(proj.params(), 0.02);
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..150 {
            let loss = info_nce(&proj.forward(&x), &y, 0.2);
            first.get_or_insert(loss.value().get(0, 0));
            last = loss.value().get(0, 0);
            opt.zero_grad();
            loss.backward();
            opt.step();
        }
        assert!(
            last < first.expect("ran") * 0.5,
            "contrastive loss did not improve: {first:?} → {last}"
        );
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn shape_mismatch_panics() {
        let a = Tensor::constant(Matrix::zeros(2, 4));
        let p = Tensor::constant(Matrix::zeros(3, 4));
        let _ = info_nce(&a, &p, 0.1);
    }
}
