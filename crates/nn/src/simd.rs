//! Runtime-dispatched SIMD micro-kernels for the dense matrix layer.
//!
//! Every innermost loop of the blocked matmul family lives here, in two
//! implementations per kernel:
//!
//! * a **scalar** reference — the exact loops the register-tiled kernels
//!   in [`matrix`](crate::Matrix) shipped with, preserved verbatim so the
//!   fallback is bit-identical to the historical blocked reference;
//! * an **AVX2** variant written with `std::arch` intrinsics.
//!
//! Which one runs is decided once per process by
//! [`active_kernel`]: the first call probes the host CPU
//! (`is_x86_feature_detected!`) and caches the answer in an atomic, so
//! the hot path pays one relaxed load per kernel entry, not a cpuid.
//! Setting `ATLAS_FORCE_SCALAR=1` in the environment pins the scalar
//! path regardless of hardware — CI uses this to run the full test
//! suite over the fallback on modern runners.
//!
//! # The f64 bit-parity guarantee
//!
//! The repo's batching story rests on kernels being bit-identical to the
//! naive k-ascending reference, so SIMD must not change a single ULP.
//! The `f64` AVX2 kernels therefore use **separate multiply and add**
//! (`_mm256_mul_pd` + `_mm256_add_pd`), never FMA: each of the four
//! lanes performs exactly the `acc = acc + a*b` (two roundings) sequence
//! the scalar loop performs for that element, in the same k order, so
//! vector and scalar results are bit-identical — proptests in
//! `matrix.rs` pin this across tile-edge shapes.
//!
//! # The f32 path
//!
//! The reduced-precision kernels (`tile4x8_f32` and friends) have no
//! bit-parity obligation — the f32 inference path is validated by an
//! accuracy-delta gate against f64, not bitwise — so they use FMA
//! (`_mm256_fmadd_ps`) when the host has it, which is both faster and
//! slightly *more* accurate (single rounding per multiply-add).

use std::sync::atomic::{AtomicU8, Ordering};

/// Which micro-kernel family the dense matrix layer dispatches to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum KernelLevel {
    /// Portable scalar loops — bit-identical to the historical blocked
    /// reference on every platform.
    Scalar = 0,
    /// Hand-written AVX2 intrinsics (f64: mul+add for bit parity;
    /// f32: FMA when the host has it).
    Avx2 = 1,
}

const LEVEL_UNSET: u8 = u8::MAX;

/// The level every kernel entry point dispatches on, decided lazily on
/// first use. `LEVEL_UNSET` until then.
static ACTIVE_LEVEL: AtomicU8 = AtomicU8::new(LEVEL_UNSET);

fn level_from_u8(v: u8) -> KernelLevel {
    match v {
        1 => KernelLevel::Avx2,
        _ => KernelLevel::Scalar,
    }
}

/// The best kernel level this host supports, ignoring any override.
pub fn detected_kernel() -> KernelLevel {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            return KernelLevel::Avx2;
        }
    }
    KernelLevel::Scalar
}

/// Whether the host has FMA (used only by the f32 kernels; the f64
/// kernels never FMA, to preserve bit parity with the scalar fallback).
pub fn detected_fma() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("fma")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// `ATLAS_FORCE_SCALAR` pins the scalar fallback when set to anything
/// other than `0`, the empty string, or `false`.
fn env_forces_scalar() -> bool {
    match std::env::var("ATLAS_FORCE_SCALAR") {
        Ok(v) => !(v.is_empty() || v == "0" || v.eq_ignore_ascii_case("false")),
        Err(_) => false,
    }
}

/// The kernel level in effect for this process.
///
/// First call: probe the CPU, honor `ATLAS_FORCE_SCALAR`, cache the
/// result. Later calls: one relaxed atomic load.
#[inline]
pub fn active_kernel() -> KernelLevel {
    match ACTIVE_LEVEL.load(Ordering::Relaxed) {
        LEVEL_UNSET => {
            let level = if env_forces_scalar() {
                KernelLevel::Scalar
            } else {
                detected_kernel()
            };
            ACTIVE_LEVEL.store(level as u8, Ordering::Relaxed);
            level
        }
        v => level_from_u8(v),
    }
}

/// Override the dispatched kernel level (e.g. a benchmark timing the
/// scalar fallback against the vector path in one process). Returns the
/// previously active level; rejects levels the host cannot run.
///
/// Not synchronized against concurrently *running* kernels — call it
/// between computations, not during them.
pub fn set_kernel(level: KernelLevel) -> Result<KernelLevel, String> {
    if level > detected_kernel() {
        return Err(format!(
            "kernel level {level:?} not supported on this host (detected {:?})",
            detected_kernel()
        ));
    }
    let prev = active_kernel();
    ACTIVE_LEVEL.store(level as u8, Ordering::Relaxed);
    Ok(prev)
}

/// Human-readable name of a kernel level, for bench reports and logs.
pub fn kernel_label(level: KernelLevel) -> &'static str {
    match level {
        KernelLevel::Scalar => "scalar",
        KernelLevel::Avx2 => "avx2",
    }
}

/// Name of the f32 kernel variant the *active* level would run.
pub fn f32_kernel_label() -> &'static str {
    if active_kernel() == KernelLevel::Avx2 && detected_fma() {
        "avx2+fma"
    } else {
        "scalar"
    }
}

/// A summary of the host's relevant ISA extensions (independent of any
/// override), so a bench report can attribute throughput to runner
/// class: e.g. `"avx512f+avx2+fma"`, `"avx2"`, or `"baseline"`.
pub fn isa_label() -> &'static str {
    #[cfg(target_arch = "x86_64")]
    {
        let avx512 = std::arch::is_x86_feature_detected!("avx512f");
        let avx2 = std::arch::is_x86_feature_detected!("avx2");
        let fma = std::arch::is_x86_feature_detected!("fma");
        match (avx512, avx2, fma) {
            (true, _, true) => "avx512f+avx2+fma",
            (true, _, false) => "avx512f+avx2",
            (false, true, true) => "avx2+fma",
            (false, true, false) => "avx2",
            _ => "baseline",
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        "baseline"
    }
}

/// Whether the f32 kernels run their vector variant under the active
/// level (requires AVX2 dispatch *and* host FMA).
#[inline]
pub(crate) fn f32_simd_active() -> bool {
    active_kernel() == KernelLevel::Avx2 && detected_fma()
}

// ---------------------------------------------------------------------
// f64 kernels (bit-parity family)
// ---------------------------------------------------------------------

/// 4×8 register tile: `acc[r][c] += Σ_k a[r][k] · b[k·ldb + j + c]`.
///
/// All four `a` rows must share one length `kd`, and `b` must hold at
/// least `kd` rows of `ldb ≥ j+8` columns.
#[inline]
pub(crate) fn tile4x8_f64(
    level: KernelLevel,
    a: [&[f64]; 4],
    b: &[f64],
    ldb: usize,
    j: usize,
    acc: &mut [[f64; 8]; 4],
) {
    #[cfg(target_arch = "x86_64")]
    if level == KernelLevel::Avx2 {
        // SAFETY: shape preconditions checked by the debug asserts in the
        // kernel and guaranteed by the blocked drivers in `matrix.rs`;
        // AVX2 availability is guaranteed by the dispatch contract
        // (`level == Avx2` only ever flows from `detected_kernel`).
        unsafe { tile4x8_f64_avx2(a, b, ldb, j, acc) };
        return;
    }
    let _ = level;
    tile4x8_f64_scalar(a, b, ldb, j, acc);
}

fn tile4x8_f64_scalar(a: [&[f64]; 4], b: &[f64], ldb: usize, j: usize, acc: &mut [[f64; 8]; 4]) {
    let [a0, a1, a2, a3] = a;
    for ((((&a0k, &a1k), &a2k), &a3k), brow) in
        a0.iter().zip(a1).zip(a2).zip(a3).zip(b.chunks_exact(ldb))
    {
        let b: &[f64; 8] = brow[j..j + 8].try_into().expect("tile width");
        for c in 0..8 {
            acc[0][c] += a0k * b[c];
            acc[1][c] += a1k * b[c];
            acc[2][c] += a2k * b[c];
            acc[3][c] += a3k * b[c];
        }
    }
}

/// # Safety
///
/// Requires AVX2. The four `a` rows must share one length `kd`, and
/// `b.len() ≥ (kd-1)·ldb + j + 8`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn tile4x8_f64_avx2(
    a: [&[f64]; 4],
    b: &[f64],
    ldb: usize,
    j: usize,
    acc: &mut [[f64; 8]; 4],
) {
    use std::arch::x86_64::*;
    let kd = a[0].len();
    debug_assert!(a.iter().all(|r| r.len() == kd));
    debug_assert!(kd == 0 || b.len() >= (kd - 1) * ldb + j + 8);
    let mut c00 = _mm256_loadu_pd(acc[0].as_ptr());
    let mut c01 = _mm256_loadu_pd(acc[0].as_ptr().add(4));
    let mut c10 = _mm256_loadu_pd(acc[1].as_ptr());
    let mut c11 = _mm256_loadu_pd(acc[1].as_ptr().add(4));
    let mut c20 = _mm256_loadu_pd(acc[2].as_ptr());
    let mut c21 = _mm256_loadu_pd(acc[2].as_ptr().add(4));
    let mut c30 = _mm256_loadu_pd(acc[3].as_ptr());
    let mut c31 = _mm256_loadu_pd(acc[3].as_ptr().add(4));
    let bp = b.as_ptr();
    for k in 0..kd {
        let brow = bp.add(k * ldb + j);
        let b0 = _mm256_loadu_pd(brow);
        let b1 = _mm256_loadu_pd(brow.add(4));
        // mul+add, not FMA: two roundings per element, exactly like the
        // scalar loop, so results are bit-identical.
        let a0 = _mm256_set1_pd(*a[0].get_unchecked(k));
        c00 = _mm256_add_pd(c00, _mm256_mul_pd(a0, b0));
        c01 = _mm256_add_pd(c01, _mm256_mul_pd(a0, b1));
        let a1 = _mm256_set1_pd(*a[1].get_unchecked(k));
        c10 = _mm256_add_pd(c10, _mm256_mul_pd(a1, b0));
        c11 = _mm256_add_pd(c11, _mm256_mul_pd(a1, b1));
        let a2 = _mm256_set1_pd(*a[2].get_unchecked(k));
        c20 = _mm256_add_pd(c20, _mm256_mul_pd(a2, b0));
        c21 = _mm256_add_pd(c21, _mm256_mul_pd(a2, b1));
        let a3 = _mm256_set1_pd(*a[3].get_unchecked(k));
        c30 = _mm256_add_pd(c30, _mm256_mul_pd(a3, b0));
        c31 = _mm256_add_pd(c31, _mm256_mul_pd(a3, b1));
    }
    _mm256_storeu_pd(acc[0].as_mut_ptr(), c00);
    _mm256_storeu_pd(acc[0].as_mut_ptr().add(4), c01);
    _mm256_storeu_pd(acc[1].as_mut_ptr(), c10);
    _mm256_storeu_pd(acc[1].as_mut_ptr().add(4), c11);
    _mm256_storeu_pd(acc[2].as_mut_ptr(), c20);
    _mm256_storeu_pd(acc[2].as_mut_ptr().add(4), c21);
    _mm256_storeu_pd(acc[3].as_mut_ptr(), c30);
    _mm256_storeu_pd(acc[3].as_mut_ptr().add(4), c31);
}

/// 4-row × 24-column full-row tile (the serving hidden width):
/// `acc[r][c] += Σ_k a[r][k] · b[k·24 + c]`.
#[inline]
pub(crate) fn tile4x24_f64(
    level: KernelLevel,
    a: [&[f64]; 4],
    b: &[f64],
    acc: &mut [[f64; 24]; 4],
) {
    #[cfg(target_arch = "x86_64")]
    if level == KernelLevel::Avx2 {
        // SAFETY: as for `tile4x8_f64` — shapes from the blocked driver,
        // AVX2 from the dispatch contract.
        unsafe { tile4x24_f64_avx2(a, b, acc) };
        return;
    }
    let _ = level;
    tile4x24_f64_scalar(a, b, acc);
}

fn tile4x24_f64_scalar(a: [&[f64]; 4], b: &[f64], acc: &mut [[f64; 24]; 4]) {
    let [a0, a1, a2, a3] = a;
    for ((((&a0k, &a1k), &a2k), &a3k), brow) in
        a0.iter().zip(a1).zip(a2).zip(a3).zip(b.chunks_exact(24))
    {
        let b: &[f64; 24] = brow.try_into().expect("row width");
        for c in 0..24 {
            acc[0][c] += a0k * b[c];
            acc[1][c] += a1k * b[c];
            acc[2][c] += a2k * b[c];
            acc[3][c] += a3k * b[c];
        }
    }
}

/// # Safety
///
/// Requires AVX2. The four `a` rows must share one length `kd`, and
/// `b.len() ≥ kd·24`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn tile4x24_f64_avx2(a: [&[f64]; 4], b: &[f64], acc: &mut [[f64; 24]; 4]) {
    use std::arch::x86_64::*;
    let kd = a[0].len();
    debug_assert!(a.iter().all(|r| r.len() == kd));
    debug_assert!(b.len() >= kd * 24);
    let bp = b.as_ptr();
    // Two column halves of 12: per half, 4 rows × 3 ymm accumulators
    // (12) + 3 b registers + 1 broadcast = a full 16-register file.
    // Column halves are independent per element, so splitting them never
    // reorders any element's k-ascending mul+add chain.
    for half in 0..2usize {
        let joff = half * 12;
        let mut c: [[__m256d; 3]; 4] = [[_mm256_setzero_pd(); 3]; 4];
        for (r, cr) in c.iter_mut().enumerate() {
            for (g, creg) in cr.iter_mut().enumerate() {
                *creg = _mm256_loadu_pd(acc[r].as_ptr().add(joff + g * 4));
            }
        }
        for k in 0..kd {
            let brow = bp.add(k * 24 + joff);
            let b0 = _mm256_loadu_pd(brow);
            let b1 = _mm256_loadu_pd(brow.add(4));
            let b2 = _mm256_loadu_pd(brow.add(8));
            for (r, cr) in c.iter_mut().enumerate() {
                // mul+add, not FMA: bit parity with the scalar loop.
                let av = _mm256_set1_pd(*a[r].get_unchecked(k));
                cr[0] = _mm256_add_pd(cr[0], _mm256_mul_pd(av, b0));
                cr[1] = _mm256_add_pd(cr[1], _mm256_mul_pd(av, b1));
                cr[2] = _mm256_add_pd(cr[2], _mm256_mul_pd(av, b2));
            }
        }
        for (r, cr) in c.iter().enumerate() {
            for (g, creg) in cr.iter().enumerate() {
                _mm256_storeu_pd(acc[r].as_mut_ptr().add(joff + g * 4), *creg);
            }
        }
    }
}

/// Shared-row 4×8 tile of the `selfᵀ × other` kernel:
/// `acc[r][c] += Σ_row a[row·ac + i + r] · b[row·bc + j + c]`
/// over `rows` shared rows.
#[inline]
#[allow(clippy::too_many_arguments)]
pub(crate) fn tn_tile4x8_f64(
    level: KernelLevel,
    a: &[f64],
    b: &[f64],
    ac: usize,
    bc: usize,
    i: usize,
    j: usize,
    acc: &mut [[f64; 8]; 4],
) {
    #[cfg(target_arch = "x86_64")]
    if level == KernelLevel::Avx2 {
        // SAFETY: shape preconditions from the blocked driver in
        // `matrix.rs`; AVX2 from the dispatch contract.
        unsafe { tn_tile4x8_f64_avx2(a, b, ac, bc, i, j, acc) };
        return;
    }
    let _ = level;
    tn_tile4x8_f64_scalar(a, b, ac, bc, i, j, acc);
}

#[allow(clippy::too_many_arguments)]
fn tn_tile4x8_f64_scalar(
    a: &[f64],
    b: &[f64],
    ac: usize,
    bc: usize,
    i: usize,
    j: usize,
    acc: &mut [[f64; 8]; 4],
) {
    for (arow, brow) in a.chunks_exact(ac).zip(b.chunks_exact(bc)) {
        let a: &[f64; 4] = arow[i..i + 4].try_into().expect("tile height");
        let b: &[f64; 8] = brow[j..j + 8].try_into().expect("tile width");
        for c in 0..8 {
            acc[0][c] += a[0] * b[c];
            acc[1][c] += a[1] * b[c];
            acc[2][c] += a[2] * b[c];
            acc[3][c] += a[3] * b[c];
        }
    }
}

/// # Safety
///
/// Requires AVX2. `a`/`b` must hold the same whole number of rows of
/// `ac` / `bc` columns, with `i+4 ≤ ac` and `j+8 ≤ bc`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
unsafe fn tn_tile4x8_f64_avx2(
    a: &[f64],
    b: &[f64],
    ac: usize,
    bc: usize,
    i: usize,
    j: usize,
    acc: &mut [[f64; 8]; 4],
) {
    use std::arch::x86_64::*;
    let rows = a.len() / ac.max(1);
    debug_assert_eq!(a.len(), rows * ac);
    debug_assert!(b.len() >= rows * bc);
    debug_assert!(i + 4 <= ac && j + 8 <= bc);
    let mut c00 = _mm256_loadu_pd(acc[0].as_ptr());
    let mut c01 = _mm256_loadu_pd(acc[0].as_ptr().add(4));
    let mut c10 = _mm256_loadu_pd(acc[1].as_ptr());
    let mut c11 = _mm256_loadu_pd(acc[1].as_ptr().add(4));
    let mut c20 = _mm256_loadu_pd(acc[2].as_ptr());
    let mut c21 = _mm256_loadu_pd(acc[2].as_ptr().add(4));
    let mut c30 = _mm256_loadu_pd(acc[3].as_ptr());
    let mut c31 = _mm256_loadu_pd(acc[3].as_ptr().add(4));
    let ap = a.as_ptr();
    let bp = b.as_ptr();
    for row in 0..rows {
        let arow = ap.add(row * ac + i);
        let brow = bp.add(row * bc + j);
        let b0 = _mm256_loadu_pd(brow);
        let b1 = _mm256_loadu_pd(brow.add(4));
        let a0 = _mm256_set1_pd(*arow);
        c00 = _mm256_add_pd(c00, _mm256_mul_pd(a0, b0));
        c01 = _mm256_add_pd(c01, _mm256_mul_pd(a0, b1));
        let a1 = _mm256_set1_pd(*arow.add(1));
        c10 = _mm256_add_pd(c10, _mm256_mul_pd(a1, b0));
        c11 = _mm256_add_pd(c11, _mm256_mul_pd(a1, b1));
        let a2 = _mm256_set1_pd(*arow.add(2));
        c20 = _mm256_add_pd(c20, _mm256_mul_pd(a2, b0));
        c21 = _mm256_add_pd(c21, _mm256_mul_pd(a2, b1));
        let a3 = _mm256_set1_pd(*arow.add(3));
        c30 = _mm256_add_pd(c30, _mm256_mul_pd(a3, b0));
        c31 = _mm256_add_pd(c31, _mm256_mul_pd(a3, b1));
    }
    _mm256_storeu_pd(acc[0].as_mut_ptr(), c00);
    _mm256_storeu_pd(acc[0].as_mut_ptr().add(4), c01);
    _mm256_storeu_pd(acc[1].as_mut_ptr(), c10);
    _mm256_storeu_pd(acc[1].as_mut_ptr().add(4), c11);
    _mm256_storeu_pd(acc[2].as_mut_ptr(), c20);
    _mm256_storeu_pd(acc[2].as_mut_ptr().add(4), c21);
    _mm256_storeu_pd(acc[3].as_mut_ptr(), c30);
    _mm256_storeu_pd(acc[3].as_mut_ptr().add(4), c31);
}

/// `dst[c] += a · src[c]` — the axpy inside the sparse/SpMM/small-block
/// paths. Lanes are independent, so the vector variant is bit-identical
/// to the scalar loop.
#[inline]
pub(crate) fn axpy_f64(level: KernelLevel, a: f64, src: &[f64], dst: &mut [f64]) {
    #[cfg(target_arch = "x86_64")]
    if level == KernelLevel::Avx2 {
        // SAFETY: slices carry their own lengths; AVX2 from the dispatch
        // contract.
        unsafe { axpy_f64_avx2(a, src, dst) };
        return;
    }
    let _ = level;
    for (o, &s) in dst.iter_mut().zip(src) {
        *o += a * s;
    }
}

/// # Safety
///
/// Requires AVX2.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn axpy_f64_avx2(a: f64, src: &[f64], dst: &mut [f64]) {
    use std::arch::x86_64::*;
    let n = dst.len().min(src.len());
    let av = _mm256_set1_pd(a);
    let sp = src.as_ptr();
    let dp = dst.as_mut_ptr();
    let mut c = 0usize;
    while c + 4 <= n {
        let d = _mm256_loadu_pd(dp.add(c));
        let s = _mm256_loadu_pd(sp.add(c));
        _mm256_storeu_pd(dp.add(c), _mm256_add_pd(d, _mm256_mul_pd(av, s)));
        c += 4;
    }
    if c < n {
        // Masked tail instead of a scalar remainder loop: lanes below
        // `n - c` are live; dead lanes load as zero, compute garbage,
        // and are never stored (masked lanes cannot fault, so reading
        // past the slice is fine). Each live lane still performs the
        // exact mul-then-add sequence of the scalar loop, so the f64
        // bit-parity rule holds through the tail.
        let live = _mm256_cmpgt_epi64(
            _mm256_set1_epi64x((n - c) as i64),
            _mm256_setr_epi64x(0, 1, 2, 3),
        );
        let d = _mm256_maskload_pd(dp.add(c), live);
        let s = _mm256_maskload_pd(sp.add(c), live);
        _mm256_maskstore_pd(dp.add(c), live, _mm256_add_pd(d, _mm256_mul_pd(av, s)));
    }
}

// ---------------------------------------------------------------------
// f32 kernels (accuracy-delta family — FMA allowed)
// ---------------------------------------------------------------------

/// f32 4×8 register tile: `acc[r][c] += Σ_k a[r][k] · b[k·ldb + j + c]`.
/// `simd` selects the AVX2+FMA variant ([`f32_simd_active`] decides).
#[inline]
pub(crate) fn tile4x8_f32(
    simd: bool,
    a: [&[f32]; 4],
    b: &[f32],
    ldb: usize,
    j: usize,
    acc: &mut [[f32; 8]; 4],
) {
    #[cfg(target_arch = "x86_64")]
    if simd {
        // SAFETY: shape preconditions from the blocked driver in
        // `matrix32.rs`; AVX2+FMA availability from `f32_simd_active`.
        unsafe { tile4x8_f32_fma(a, b, ldb, j, acc) };
        return;
    }
    let _ = simd;
    let [a0, a1, a2, a3] = a;
    for ((((&a0k, &a1k), &a2k), &a3k), brow) in
        a0.iter().zip(a1).zip(a2).zip(a3).zip(b.chunks_exact(ldb))
    {
        let b: &[f32; 8] = brow[j..j + 8].try_into().expect("tile width");
        for c in 0..8 {
            acc[0][c] += a0k * b[c];
            acc[1][c] += a1k * b[c];
            acc[2][c] += a2k * b[c];
            acc[3][c] += a3k * b[c];
        }
    }
}

/// # Safety
///
/// Requires AVX2 and FMA. The four `a` rows must share one length `kd`,
/// and `b.len() ≥ (kd-1)·ldb + j + 8`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn tile4x8_f32_fma(
    a: [&[f32]; 4],
    b: &[f32],
    ldb: usize,
    j: usize,
    acc: &mut [[f32; 8]; 4],
) {
    use std::arch::x86_64::*;
    let kd = a[0].len();
    debug_assert!(a.iter().all(|r| r.len() == kd));
    debug_assert!(kd == 0 || b.len() >= (kd - 1) * ldb + j + 8);
    let mut c0 = _mm256_loadu_ps(acc[0].as_ptr());
    let mut c1 = _mm256_loadu_ps(acc[1].as_ptr());
    let mut c2 = _mm256_loadu_ps(acc[2].as_ptr());
    let mut c3 = _mm256_loadu_ps(acc[3].as_ptr());
    let bp = b.as_ptr();
    for k in 0..kd {
        let bv = _mm256_loadu_ps(bp.add(k * ldb + j));
        c0 = _mm256_fmadd_ps(_mm256_set1_ps(*a[0].get_unchecked(k)), bv, c0);
        c1 = _mm256_fmadd_ps(_mm256_set1_ps(*a[1].get_unchecked(k)), bv, c1);
        c2 = _mm256_fmadd_ps(_mm256_set1_ps(*a[2].get_unchecked(k)), bv, c2);
        c3 = _mm256_fmadd_ps(_mm256_set1_ps(*a[3].get_unchecked(k)), bv, c3);
    }
    _mm256_storeu_ps(acc[0].as_mut_ptr(), c0);
    _mm256_storeu_ps(acc[1].as_mut_ptr(), c1);
    _mm256_storeu_ps(acc[2].as_mut_ptr(), c2);
    _mm256_storeu_ps(acc[3].as_mut_ptr(), c3);
}

/// f32 shared-row 4×8 tile of the `selfᵀ × other` kernel.
#[inline]
#[allow(clippy::too_many_arguments)]
pub(crate) fn tn_tile4x8_f32(
    simd: bool,
    a: &[f32],
    b: &[f32],
    ac: usize,
    bc: usize,
    i: usize,
    j: usize,
    acc: &mut [[f32; 8]; 4],
) {
    #[cfg(target_arch = "x86_64")]
    if simd {
        // SAFETY: shape preconditions from the blocked driver in
        // `matrix32.rs`; AVX2+FMA availability from `f32_simd_active`.
        unsafe { tn_tile4x8_f32_fma(a, b, ac, bc, i, j, acc) };
        return;
    }
    let _ = simd;
    for (arow, brow) in a.chunks_exact(ac).zip(b.chunks_exact(bc)) {
        let a: &[f32; 4] = arow[i..i + 4].try_into().expect("tile height");
        let b: &[f32; 8] = brow[j..j + 8].try_into().expect("tile width");
        for c in 0..8 {
            acc[0][c] += a[0] * b[c];
            acc[1][c] += a[1] * b[c];
            acc[2][c] += a[2] * b[c];
            acc[3][c] += a[3] * b[c];
        }
    }
}

/// # Safety
///
/// Requires AVX2 and FMA. `a`/`b` must hold the same whole number of
/// rows of `ac` / `bc` columns, with `i+4 ≤ ac` and `j+8 ≤ bc`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
#[allow(clippy::too_many_arguments)]
unsafe fn tn_tile4x8_f32_fma(
    a: &[f32],
    b: &[f32],
    ac: usize,
    bc: usize,
    i: usize,
    j: usize,
    acc: &mut [[f32; 8]; 4],
) {
    use std::arch::x86_64::*;
    let rows = a.len() / ac.max(1);
    debug_assert!(b.len() >= rows * bc);
    debug_assert!(i + 4 <= ac && j + 8 <= bc);
    let mut c0 = _mm256_loadu_ps(acc[0].as_ptr());
    let mut c1 = _mm256_loadu_ps(acc[1].as_ptr());
    let mut c2 = _mm256_loadu_ps(acc[2].as_ptr());
    let mut c3 = _mm256_loadu_ps(acc[3].as_ptr());
    let ap = a.as_ptr();
    let bp = b.as_ptr();
    for row in 0..rows {
        let arow = ap.add(row * ac + i);
        let bv = _mm256_loadu_ps(bp.add(row * bc + j));
        c0 = _mm256_fmadd_ps(_mm256_set1_ps(*arow), bv, c0);
        c1 = _mm256_fmadd_ps(_mm256_set1_ps(*arow.add(1)), bv, c1);
        c2 = _mm256_fmadd_ps(_mm256_set1_ps(*arow.add(2)), bv, c2);
        c3 = _mm256_fmadd_ps(_mm256_set1_ps(*arow.add(3)), bv, c3);
    }
    _mm256_storeu_ps(acc[0].as_mut_ptr(), c0);
    _mm256_storeu_ps(acc[1].as_mut_ptr(), c1);
    _mm256_storeu_ps(acc[2].as_mut_ptr(), c2);
    _mm256_storeu_ps(acc[3].as_mut_ptr(), c3);
}

/// f32 `dst[c] += a · src[c]`.
#[inline]
pub(crate) fn axpy_f32(simd: bool, a: f32, src: &[f32], dst: &mut [f32]) {
    #[cfg(target_arch = "x86_64")]
    if simd {
        // SAFETY: slices carry their own lengths; AVX2+FMA availability
        // from `f32_simd_active`.
        unsafe { axpy_f32_fma(a, src, dst) };
        return;
    }
    let _ = simd;
    for (o, &s) in dst.iter_mut().zip(src) {
        *o += a * s;
    }
}

/// # Safety
///
/// Requires AVX2 and FMA.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn axpy_f32_fma(a: f32, src: &[f32], dst: &mut [f32]) {
    use std::arch::x86_64::*;
    let n = dst.len().min(src.len());
    let av = _mm256_set1_ps(a);
    let sp = src.as_ptr();
    let dp = dst.as_mut_ptr();
    let mut c = 0usize;
    while c + 8 <= n {
        let d = _mm256_loadu_ps(dp.add(c));
        let s = _mm256_loadu_ps(sp.add(c));
        _mm256_storeu_ps(dp.add(c), _mm256_fmadd_ps(av, s, d));
        c += 8;
    }
    if c < n {
        // Masked tail: live lanes below `n - c` run the same FMA as the
        // vector body; dead lanes load zero and are never stored.
        let live = _mm256_cmpgt_epi32(
            _mm256_set1_epi32((n - c) as i32),
            _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7),
        );
        let d = _mm256_maskload_ps(dp.add(c), live);
        let s = _mm256_maskload_ps(sp.add(c), live);
        _mm256_maskstore_ps(dp.add(c), live, _mm256_fmadd_ps(av, s, d));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(n: usize, scale: f64) -> Vec<f64> {
        (0..n)
            .map(|i| ((i * 2654435761 % 1000) as f64 / 500.0 - 1.0) * scale)
            .collect()
    }

    #[test]
    fn levels_are_ordered_and_labeled() {
        assert!(KernelLevel::Scalar < KernelLevel::Avx2);
        assert_eq!(kernel_label(KernelLevel::Scalar), "scalar");
        assert_eq!(kernel_label(KernelLevel::Avx2), "avx2");
        assert!(!isa_label().is_empty());
    }

    #[test]
    fn active_kernel_is_supported_and_stable() {
        let first = active_kernel();
        assert!(first <= detected_kernel());
        assert_eq!(active_kernel(), first);
    }

    #[test]
    fn avx2_tile4x8_is_bit_identical_to_scalar() {
        if detected_kernel() < KernelLevel::Avx2 {
            return;
        }
        for kd in [0usize, 1, 2, 7, 24, 48] {
            let rows: Vec<Vec<f64>> = (0..4).map(|r| seq(kd, 1.0 + r as f64)).collect();
            let a = [
                rows[0].as_slice(),
                rows[1].as_slice(),
                rows[2].as_slice(),
                rows[3].as_slice(),
            ];
            let b = seq(kd * 16, 0.7);
            let mut scalar = [[0.1f64; 8]; 4];
            let mut vector = scalar;
            tile4x8_f64(KernelLevel::Scalar, a, &b, 16, 8, &mut scalar);
            tile4x8_f64(KernelLevel::Avx2, a, &b, 16, 8, &mut vector);
            assert_eq!(scalar, vector, "kd {kd}");
        }
    }

    #[test]
    fn avx2_tile4x24_is_bit_identical_to_scalar() {
        if detected_kernel() < KernelLevel::Avx2 {
            return;
        }
        for kd in [1usize, 5, 24, 37] {
            let rows: Vec<Vec<f64>> = (0..4).map(|r| seq(kd, 0.5 + r as f64)).collect();
            let a = [
                rows[0].as_slice(),
                rows[1].as_slice(),
                rows[2].as_slice(),
                rows[3].as_slice(),
            ];
            let b = seq(kd * 24, 1.3);
            let mut scalar = [[0.0f64; 24]; 4];
            let mut vector = scalar;
            tile4x24_f64(KernelLevel::Scalar, a, &b, &mut scalar);
            tile4x24_f64(KernelLevel::Avx2, a, &b, &mut vector);
            assert_eq!(scalar, vector, "kd {kd}");
        }
    }

    #[test]
    fn avx2_tn_tile_is_bit_identical_to_scalar() {
        if detected_kernel() < KernelLevel::Avx2 {
            return;
        }
        let (ac, bc, rows) = (12usize, 20usize, 23usize);
        let a = seq(rows * ac, 0.9);
        let b = seq(rows * bc, 1.1);
        for (i, j) in [(0usize, 0usize), (4, 8), (8, 12)] {
            let mut scalar = [[0.2f64; 8]; 4];
            let mut vector = scalar;
            tn_tile4x8_f64(KernelLevel::Scalar, &a, &b, ac, bc, i, j, &mut scalar);
            tn_tile4x8_f64(KernelLevel::Avx2, &a, &b, ac, bc, i, j, &mut vector);
            assert_eq!(scalar, vector, "offsets ({i}, {j})");
        }
    }

    #[test]
    fn avx2_axpy_is_bit_identical_to_scalar() {
        if detected_kernel() < KernelLevel::Avx2 {
            return;
        }
        for n in [0usize, 1, 3, 4, 7, 8, 24, 101] {
            let src = seq(n, 1.7);
            let mut scalar = seq(n, 0.3);
            let mut vector = scalar.clone();
            axpy_f64(KernelLevel::Scalar, -0.37, &src, &mut scalar);
            axpy_f64(KernelLevel::Avx2, -0.37, &src, &mut vector);
            assert_eq!(scalar, vector, "len {n}");
        }
    }

    #[test]
    fn f32_kernels_agree_within_fma_tolerance() {
        // The f32 vector variants may single-round (FMA), so the contract
        // is closeness, not bit equality.
        if detected_kernel() < KernelLevel::Avx2 || !detected_fma() {
            return;
        }
        let kd = 33usize;
        let rows: Vec<Vec<f32>> = (0..4)
            .map(|r| seq(kd, 1.0 + r as f64).iter().map(|&v| v as f32).collect())
            .collect();
        let a = [
            rows[0].as_slice(),
            rows[1].as_slice(),
            rows[2].as_slice(),
            rows[3].as_slice(),
        ];
        let b: Vec<f32> = seq(kd * 8, 0.8).iter().map(|&v| v as f32).collect();
        let mut scalar = [[0.0f32; 8]; 4];
        let mut vector = scalar;
        tile4x8_f32(false, a, &b, 8, 0, &mut scalar);
        tile4x8_f32(true, a, &b, 8, 0, &mut vector);
        for (sr, vr) in scalar.iter().zip(&vector) {
            for (&s, &v) in sr.iter().zip(vr) {
                assert!((s - v).abs() <= 1e-4 * (1.0 + s.abs()), "{s} vs {v}");
            }
        }

        // Every masked-tail length (n mod 8 from 0 to 7) plus the empty
        // and sub-width cases.
        for n in [0usize, 1, 5, 8, 9, 16, 23, 37, 42, 63] {
            let src: Vec<f32> = seq(n, 1.1).iter().map(|&v| v as f32).collect();
            let mut s32: Vec<f32> = seq(n, 0.2).iter().map(|&v| v as f32).collect();
            let mut v32 = s32.clone();
            axpy_f32(false, 0.61, &src, &mut s32);
            axpy_f32(true, 0.61, &src, &mut v32);
            for (&s, &v) in s32.iter().zip(&v32) {
                assert!(
                    (s - v).abs() <= 1e-5 * (1.0 + s.abs()),
                    "len {n}: {s} vs {v}"
                );
            }
        }
    }
}
