//! Dense row-major `f64` matrices.

use atlas_netlist_shim::DetRng;
use serde::{Deserialize, Serialize};

// The deterministic RNG lives in atlas-netlist; keep this crate free of
// circuit dependencies by vendoring the tiny generator locally.
mod atlas_netlist_shim {
    /// xoshiro256** seeded by SplitMix64 (identical to
    /// `atlas_netlist::detrng::DetRng`, duplicated so `atlas-nn` stays a
    /// pure ML crate with no EDA dependencies).
    #[derive(Debug, Clone)]
    pub struct DetRng {
        s: [u64; 4],
    }

    impl DetRng {
        pub fn new(seed: u64) -> DetRng {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            let mut s = [next(), next(), next(), next()];
            if s.iter().all(|&x| x == 0) {
                s[0] = 1;
            }
            DetRng { s }
        }

        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        /// Uniform in [0, 1).
        pub fn uniform(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

/// A dense row-major matrix of `f64`.
///
/// # Examples
///
/// ```
/// use atlas_nn::Matrix;
///
/// let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// assert_eq!(m.get(1, 0), 3.0);
/// let mt = m.transpose();
/// assert_eq!(mt.get(0, 1), 3.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// All-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Matrix filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f64) -> Matrix {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Build from row slices.
    ///
    /// # Panics
    ///
    /// Panics if rows have unequal lengths or the input is empty.
    pub fn from_rows(rows: &[&[f64]]) -> Matrix {
        assert!(!rows.is_empty(), "matrix needs at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows");
            data.extend_from_slice(r);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Build from a flat row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Matrix {
        assert_eq!(data.len(), rows * cols, "shape/data mismatch");
        Matrix { rows, cols, data }
    }

    /// Xavier/Glorot-uniform random initialization, deterministic in `seed`.
    pub fn xavier(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut rng = DetRng::new(seed);
        let bound = (6.0 / (rows + cols) as f64).sqrt();
        let data = (0..rows * cols)
            .map(|_| (rng.uniform() * 2.0 - 1.0) * bound)
            .collect();
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Read one element.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    /// Write one element.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.cols + c] = v;
    }

    /// Flat row-major data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable flat row-major data.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// One row as a slice.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix product `self × other`.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        // ikj loop order: streams `other` rows, vectorizes the inner loop.
        for i in 0..self.rows {
            let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let brow = &other.data[k * other.cols..(k + 1) * other.cols];
                for (o, &b) in out_row.iter_mut().zip(brow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `selfᵀ × other` without materializing the transpose.
    pub fn matmul_tn(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "matmul_tn shape mismatch");
        let mut out = Matrix::zeros(self.cols, other.cols);
        for k in 0..self.rows {
            let arow = &self.data[k * self.cols..(k + 1) * self.cols];
            let brow = &other.data[k * other.cols..(k + 1) * other.cols];
            for (i, &a) in arow.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let orow = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (o, &b) in orow.iter_mut().zip(brow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self × otherᵀ` without materializing the transpose.
    pub fn matmul_nt(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "matmul_nt shape mismatch");
        let mut out = Matrix::zeros(self.rows, other.rows);
        for i in 0..self.rows {
            let arow = &self.data[i * self.cols..(i + 1) * self.cols];
            for j in 0..other.rows {
                let brow = &other.data[j * other.cols..(j + 1) * other.cols];
                let mut acc = 0.0;
                for (&a, &b) in arow.iter().zip(brow) {
                    acc += a * b;
                }
                out.data[i * out.cols + j] = acc;
            }
        }
        out
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Elementwise map.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Elementwise combine with another same-shaped matrix.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn zip(&self, other: &Matrix, f: impl Fn(f64, f64) -> f64) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "zip shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// In-place `self += other`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "add shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Column-wise mean, as a `1 × cols` matrix.
    pub fn mean_rows(&self) -> Matrix {
        let mut out = Matrix::zeros(1, self.cols);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c] += self.data[r * self.cols + c];
            }
        }
        let n = self.rows.max(1) as f64;
        for v in &mut out.data {
            *v /= n;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn construction_and_access() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m.get(1, 2), 6.0);
        assert_eq!(m.row(0), &[1.0, 2.0, 3.0]);
        let mut m2 = m.clone();
        m2.set(0, 0, 9.0);
        assert_eq!(m2.get(0, 0), 9.0);
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn fused_transpose_products() {
        let a = Matrix::xavier(4, 3, 1);
        let b = Matrix::xavier(4, 5, 2);
        let expect = a.transpose().matmul(&b);
        let got = a.matmul_tn(&b);
        assert!((0..3).all(|r| (0..5).all(|c| (expect.get(r, c) - got.get(r, c)).abs() < 1e-12)));

        let a = Matrix::xavier(4, 3, 3);
        let b = Matrix::xavier(5, 3, 4);
        let expect = a.matmul(&b.transpose());
        let got = a.matmul_nt(&b);
        assert!((0..4).all(|r| (0..5).all(|c| (expect.get(r, c) - got.get(r, c)).abs() < 1e-12)));
    }

    #[test]
    fn mean_rows() {
        let m = Matrix::from_rows(&[&[1.0, 3.0], &[3.0, 5.0]]);
        assert_eq!(m.mean_rows(), Matrix::from_rows(&[&[2.0, 4.0]]));
    }

    #[test]
    fn xavier_is_deterministic_and_bounded() {
        let a = Matrix::xavier(10, 10, 7);
        let b = Matrix::xavier(10, 10, 7);
        assert_eq!(a, b);
        let bound = (6.0 / 20.0f64).sqrt();
        assert!(a.as_slice().iter().all(|v| v.abs() <= bound));
        assert!(a.norm() > 0.0);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn bad_matmul_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    proptest! {
        #[test]
        fn transpose_involution(rows in 1usize..6, cols in 1usize..6, seed in 0u64..100) {
            let m = Matrix::xavier(rows, cols, seed);
            prop_assert_eq!(m.transpose().transpose(), m);
        }

        #[test]
        fn matmul_identity(n in 1usize..6, seed in 0u64..100) {
            let m = Matrix::xavier(n, n, seed);
            let mut eye = Matrix::zeros(n, n);
            for i in 0..n {
                eye.set(i, i, 1.0);
            }
            let prod = m.matmul(&eye);
            for r in 0..n {
                for c in 0..n {
                    prop_assert!((prod.get(r, c) - m.get(r, c)).abs() < 1e-12);
                }
            }
        }
    }
}
