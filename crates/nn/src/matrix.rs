//! Dense row-major `f64` matrices.

use atlas_netlist_shim::DetRng;
use serde::{Deserialize, Serialize};

use crate::simd::{self, KernelLevel};

// The deterministic RNG lives in atlas-netlist; keep this crate free of
// circuit dependencies by vendoring the tiny generator locally.
mod atlas_netlist_shim {
    /// xoshiro256** seeded by SplitMix64 (identical to
    /// `atlas_netlist::detrng::DetRng`, duplicated so `atlas-nn` stays a
    /// pure ML crate with no EDA dependencies).
    #[derive(Debug, Clone)]
    pub struct DetRng {
        s: [u64; 4],
    }

    impl DetRng {
        pub fn new(seed: u64) -> DetRng {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            let mut s = [next(), next(), next(), next()];
            if s.iter().all(|&x| x == 0) {
                s[0] = 1;
            }
            DetRng { s }
        }

        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        /// Uniform in [0, 1).
        pub fn uniform(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

/// Output rows per register tile of the blocked matmul kernel.
const TILE_ROWS: usize = 4;
/// Output columns per register tile of the blocked matmul kernel
/// (`TILE_ROWS × TILE_COLS` f64 accumulators stay within one vector
/// register file on AVX2-class hardware).
const TILE_COLS: usize = 8;
/// Output width that takes the full-row specialization of the kernel
/// (one k-loop for the whole row instead of one per `TILE_COLS` group).
const FULL_ROW_COLS: usize = 24;
/// Row ranges shorter than this take a scalar row-at-a-time path: for a
/// per-cycle attention block on a small sub-module, register-tile setup
/// costs more than it saves.
const SMALL_BLOCK_ROWS: usize = 16;
/// Widest output the scalar small-block path supports with a stack
/// accumulator; wider products always tile.
const SMALL_BLOCK_COLS_MAX: usize = 64;

/// A dense row-major matrix of `f64`.
///
/// # Examples
///
/// ```
/// use atlas_nn::Matrix;
///
/// let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// assert_eq!(m.get(1, 0), 3.0);
/// let mt = m.transpose();
/// assert_eq!(mt.get(0, 1), 3.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// All-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Matrix filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f64) -> Matrix {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Build from row slices.
    ///
    /// # Panics
    ///
    /// Panics if rows have unequal lengths or the input is empty.
    pub fn from_rows(rows: &[&[f64]]) -> Matrix {
        assert!(!rows.is_empty(), "matrix needs at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows");
            data.extend_from_slice(r);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Build from a flat row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Matrix {
        assert_eq!(data.len(), rows * cols, "shape/data mismatch");
        Matrix { rows, cols, data }
    }

    /// Xavier/Glorot-uniform random initialization, deterministic in `seed`.
    pub fn xavier(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut rng = DetRng::new(seed);
        let bound = (6.0 / (rows + cols) as f64).sqrt();
        let data = (0..rows * cols)
            .map(|_| (rng.uniform() * 2.0 - 1.0) * bound)
            .collect();
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Read one element.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    /// Write one element.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.cols + c] = v;
    }

    /// Flat row-major data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable flat row-major data.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// One row as a slice.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// One row as a mutable slice.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix product `self × other`.
    ///
    /// Runs the blocked dense kernel
    /// ([`matmul_rows_into`](Self::matmul_rows_into)). Genuinely sparse
    /// operands belong on
    /// [`SparseAdj::matmul`](crate::SparseAdj::matmul), the CSR entry
    /// point — this kernel does not skip zero elements.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        self.matmul_rows_into(other, 0, self.rows, &mut out);
        out
    }

    /// [`matmul`](Self::matmul) pinned to an explicit kernel level,
    /// bypassing dispatch — the SIMD-vs-scalar parity tests compare both
    /// levels inside one process with this.
    #[cfg(test)]
    pub(crate) fn matmul_level(&self, other: &Matrix, level: KernelLevel) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        self.matmul_tiled_rows(other, 0, self.rows, &mut out, level, |orow, acc, _, _| {
            orow.copy_from_slice(acc);
        });
        out
    }

    /// Blocked matmul kernel: writes `self[row_start .. row_start+row_count]
    /// × other` into the same row range of `out`, overwriting it (rows
    /// outside the range are untouched). Accepting the output buffer lets
    /// hot paths reuse scratch matrices instead of paying an allocation
    /// and a cold-page write per product.
    ///
    /// The kernel is register-tiled: each 4×8 output tile accumulates in
    /// locals across the whole inner dimension, so output elements are
    /// written once instead of once per `k` and the `other` panel is
    /// reused across four rows. Per output element the accumulation order
    /// is `k`-ascending — identical to the naive ikj loop — so tiling
    /// never changes results bitwise, and the row-range form is
    /// bit-identical to a standalone [`matmul`](Self::matmul) of the
    /// extracted rows. That is what lets the inference path stack
    /// per-cycle matrices into one tall operand (one kernel call per
    /// layer per chunk) while staying bit-identical to the per-cycle
    /// forward.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch, if `out` is not as wide as
    /// `other`, or if the row range exceeds `self` or `out`.
    pub fn matmul_rows_into(
        &self,
        other: &Matrix,
        row_start: usize,
        row_count: usize,
        out: &mut Matrix,
    ) {
        // Overwrite, not accumulate: each tile's `acc` already holds the
        // full k-sum (and a sum that starts at +0.0 can never be -0.0, so
        // this is bit-identical to adding into a zeroed buffer).
        let level = simd::active_kernel();
        self.matmul_tiled_rows(
            other,
            row_start,
            row_count,
            out,
            level,
            |orow, acc, _, _| {
                orow.copy_from_slice(acc);
            },
        );
    }

    /// Fused affine + activation: writes `act(self[range]·other + bias)`
    /// into the same row range of `out` — one linear layer of the
    /// inference hot path in a single kernel pass, instead of a matmul
    /// sweep, a bias sweep, and an activation sweep over the output.
    /// Per element it performs exactly `act(ksum + bias_j)` — the same
    /// operation sequence as the separate passes — so fusion never
    /// changes results bitwise.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch, a bias not shaped `1 × other.cols()`, or
    /// an out-of-bounds row range.
    pub fn matmul_bias_act_rows_into(
        &self,
        other: &Matrix,
        bias: &Matrix,
        act: impl Fn(f64) -> f64,
        row_start: usize,
        row_count: usize,
        out: &mut Matrix,
    ) {
        assert_eq!(bias.shape(), (1, other.cols), "bias shape mismatch");
        let level = simd::active_kernel();
        self.matmul_tiled_rows(
            other,
            row_start,
            row_count,
            out,
            level,
            |orow, acc, _, j| {
                let brow = &bias.data[j..j + acc.len()];
                for ((o, &v), &b) in orow.iter_mut().zip(acc).zip(brow) {
                    *o = act(v + b);
                }
            },
        );
    }

    /// [`matmul_tiled_rows`](Self::matmul_tiled_rows) specialized to
    /// 24-column outputs: 4 rows × the full output width accumulate per
    /// k-step, with a single-row tail. Accumulation stays `k`-ascending
    /// per element, so this is bit-identical to the generic tiling.
    fn matmul_tiled_rows_w24(
        &self,
        other: &Matrix,
        row_start: usize,
        row_count: usize,
        out: &mut Matrix,
        level: KernelLevel,
        mut write: impl FnMut(&mut [f64], &[f64], usize, usize),
    ) {
        const NR: usize = FULL_ROW_COLS;
        let kd = self.cols;
        let row_end = row_start + row_count;
        let mut i = row_start;
        while i + TILE_ROWS <= row_end {
            let mut acc = [[0.0f64; NR]; TILE_ROWS];
            let a0 = &self.data[i * kd..(i + 1) * kd];
            let a1 = &self.data[(i + 1) * kd..(i + 2) * kd];
            let a2 = &self.data[(i + 2) * kd..(i + 3) * kd];
            let a3 = &self.data[(i + 3) * kd..(i + 4) * kd];
            simd::tile4x24_f64(level, [a0, a1, a2, a3], &other.data, &mut acc);
            for (r, accr) in acc.iter().enumerate() {
                write(
                    &mut out.data[(i + r) * NR..(i + r + 1) * NR],
                    accr,
                    i + r,
                    0,
                );
            }
            i += TILE_ROWS;
        }
        while i < row_end {
            let mut acc = [0.0f64; NR];
            let arow = &self.data[i * kd..(i + 1) * kd];
            for (&ak, brow) in arow.iter().zip(other.data.chunks_exact(NR)) {
                for (o, &bv) in acc.iter_mut().zip(brow) {
                    *o += ak * bv;
                }
            }
            write(&mut out.data[i * NR..(i + 1) * NR], &acc, i, 0);
            i += 1;
        }
    }

    /// Fused layer-mix epilogue: for the row range,
    /// `out = max(mix·out + (1-mix)·act(self·other + bias), 0)` — the
    /// SGFormer attention/propagation blend in the propagation linear's
    /// write-back, saving a full read-modify-write sweep over both
    /// branches. Per element the operations match the unfused sequence
    /// exactly, so fusion never changes results bitwise.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch, a bias not shaped `1 × other.cols()`, or
    /// an out-of-bounds row range.
    pub fn matmul_bias_act_mix_rows_into(
        &self,
        other: &Matrix,
        bias: &Matrix,
        act: impl Fn(f64) -> f64,
        mix: f64,
        row_start: usize,
        row_count: usize,
        out: &mut Matrix,
    ) {
        assert_eq!(bias.shape(), (1, other.cols), "bias shape mismatch");
        let level = simd::active_kernel();
        self.matmul_tiled_rows(
            other,
            row_start,
            row_count,
            out,
            level,
            |orow, acc, _, j| {
                let brow = &bias.data[j..j + acc.len()];
                for ((o, &v), &b) in orow.iter_mut().zip(acc).zip(brow) {
                    *o = (mix * *o + (1.0 - mix) * act(v + b)).max(0.0);
                }
            },
        );
    }

    /// [`matmul_bias_act_mix_rows_into`](Self::matmul_bias_act_mix_rows_into)
    /// with per-block mean pooling fused into the same write-back: as each
    /// finished tile row of `out` is stored, it is also accumulated into
    /// `pool[row / block_rows]`, and once the whole range is written every
    /// pool row is divided by `block_rows`. For the batched encoder this
    /// folds the last layer's pooling sweep (a full re-read of `out`) into
    /// the layer's own epilogue.
    ///
    /// `pool` is a flat `(rows / block_rows) × other.cols()` row-major
    /// buffer, fully overwritten. The tiled drivers store tile rows in
    /// ascending row order within each block and the division happens
    /// after the sums — the exact operation sequence of
    /// [`mean_rows_block_into`](Self::mean_rows_block_into) per block — so
    /// the pooled rows are bit-identical to running that kernel on the
    /// finished `out`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch, a bias not shaped `1 × other.cols()`, a
    /// row range that is not the whole `0 .. rows` of `out`, a
    /// `block_rows` that does not divide `rows`, or a `pool` of the wrong
    /// length.
    #[allow(clippy::too_many_arguments)]
    pub fn matmul_bias_act_mix_pool_rows_into(
        &self,
        other: &Matrix,
        bias: &Matrix,
        act: impl Fn(f64) -> f64,
        mix: f64,
        out: &mut Matrix,
        block_rows: usize,
        pool: &mut [f64],
    ) {
        assert_eq!(bias.shape(), (1, other.cols), "bias shape mismatch");
        let rows = out.rows;
        let nd = other.cols;
        assert!(
            block_rows > 0 && rows.is_multiple_of(block_rows),
            "pool block size must divide the row count"
        );
        assert_eq!(pool.len(), (rows / block_rows) * nd, "pool buffer shape");
        pool.fill(0.0);
        let level = simd::active_kernel();
        self.matmul_tiled_rows(other, 0, rows, out, level, |orow, acc, row, j| {
            let brow = &bias.data[j..j + acc.len()];
            for ((o, &v), &b) in orow.iter_mut().zip(acc).zip(brow) {
                *o = (mix * *o + (1.0 - mix) * act(v + b)).max(0.0);
            }
            let prow = &mut pool[(row / block_rows) * nd + j..][..acc.len()];
            for (p, &o) in prow.iter_mut().zip(orow.iter()) {
                *p += o;
            }
        });
        let n = block_rows as f64;
        for v in pool {
            *v /= n;
        }
    }

    /// Fused attention-normalize epilogue: for the row range,
    /// `out[r] = (self[r]·other) / denom[r]` — the linear-attention
    /// numerator divided by its per-row normalizer in the kernel
    /// write-back, saving a read-modify-write sweep over the attention
    /// buffer. Per element this is exactly `ksum / denom_r`, the same
    /// operations as the unfused sequence, so results match bitwise.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch, a `denom` narrower than one column, or
    /// an out-of-bounds row range (on `self`, `out`, or `denom`).
    pub fn matmul_div_rows_into(
        &self,
        other: &Matrix,
        denom: &Matrix,
        row_start: usize,
        row_count: usize,
        out: &mut Matrix,
    ) {
        assert!(denom.cols >= 1, "denominator needs a column");
        assert!(
            row_start + row_count <= denom.rows,
            "denominator row range out of bounds"
        );
        let level = simd::active_kernel();
        self.matmul_tiled_rows(
            other,
            row_start,
            row_count,
            out,
            level,
            |orow, acc, row, _| {
                let dv = denom.data[row * denom.cols];
                for (o, &v) in orow.iter_mut().zip(acc) {
                    *o = v / dv;
                }
            },
        );
    }

    /// Zero-skipping sibling of
    /// [`matmul_bias_act_rows_into`](Self::matmul_bias_act_rows_into)
    /// for sparse left operands. The
    /// encoder's feature matrices are ~85% exact zeros (one-hot type
    /// channels plus a toggle bit), so the embed layer runs row-wise
    /// axpy with an `a == 0.0` skip instead of the dense register tile.
    /// Skipping a zero term never changes bits (the accumulators are
    /// never -0.0), so results equal the dense kernel's exactly.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch, a bias not shaped `1 × other.cols()`, or
    /// an out-of-bounds row range.
    pub fn matmul_bias_act_sparse_rows_into(
        &self,
        other: &Matrix,
        bias: &Matrix,
        act: impl Fn(f64) -> f64,
        row_start: usize,
        row_count: usize,
        out: &mut Matrix,
    ) {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        assert_eq!(out.cols, other.cols, "matmul output width mismatch");
        assert_eq!(bias.shape(), (1, other.cols), "bias shape mismatch");
        assert!(
            row_start + row_count <= self.rows && row_start + row_count <= out.rows,
            "matmul row range out of bounds"
        );
        let kd = self.cols;
        let nd = other.cols;
        let level = simd::active_kernel();
        for i in row_start..row_start + row_count {
            let orow = &mut out.data[i * nd..(i + 1) * nd];
            orow.fill(0.0);
            let arow = &self.data[i * kd..(i + 1) * kd];
            for (k, &a) in arow.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let brow = &other.data[k * nd..(k + 1) * nd];
                simd::axpy_f64(level, a, brow, orow);
            }
            for (o, &b) in orow.iter_mut().zip(&bias.data) {
                *o = act(*o + b);
            }
        }
    }

    /// The register-tiled kernel core shared by the `matmul*` entry
    /// points. `write(out_tile_row, acc_row, row, j)` stores one finished
    /// tile row of output row `row`, starting at output column `j`.
    /// `level` selects the micro-kernel family (scalar or SIMD) — every
    /// level is bit-identical; public entry points pass
    /// [`simd::active_kernel`].
    fn matmul_tiled_rows(
        &self,
        other: &Matrix,
        row_start: usize,
        row_count: usize,
        out: &mut Matrix,
        level: KernelLevel,
        mut write: impl FnMut(&mut [f64], &[f64], usize, usize),
    ) {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        assert_eq!(out.cols, other.cols, "matmul output width mismatch");
        assert!(
            row_start + row_count <= self.rows && row_start + row_count <= out.rows,
            "matmul row range out of bounds"
        );
        let kd = self.cols;
        let nd = other.cols;
        if row_count < SMALL_BLOCK_ROWS && nd <= SMALL_BLOCK_COLS_MAX {
            // Scalar row-at-a-time path for short row ranges, with the
            // zero skip the tile cannot afford (skipping an exact-zero
            // term never changes bits: the accumulators are never -0.0).
            let mut acc = [0.0f64; SMALL_BLOCK_COLS_MAX];
            for i in row_start..row_start + row_count {
                let acc = &mut acc[..nd];
                acc.fill(0.0);
                let arow = &self.data[i * kd..(i + 1) * kd];
                for (k, &a) in arow.iter().enumerate() {
                    if a == 0.0 {
                        continue;
                    }
                    let brow = &other.data[k * nd..(k + 1) * nd];
                    simd::axpy_f64(level, a, brow, acc);
                }
                write(&mut out.data[i * nd..(i + 1) * nd], acc, i, 0);
            }
            return;
        }
        if nd == FULL_ROW_COLS {
            // 24-wide outputs (the serving encoder's hidden width and the
            // feature width) take a full-row tile: one k-loop covers all
            // three 8-lane groups, cutting the per-k broadcast loads 3x.
            self.matmul_tiled_rows_w24(other, row_start, row_count, out, level, write);
            return;
        }
        let row_end = row_start + row_count;
        let mut i = row_start;
        while i < row_end {
            let mr = TILE_ROWS.min(row_end - i);
            let mut j = 0;
            while j < nd {
                let nr = TILE_COLS.min(nd - j);
                let mut acc = [[0.0f64; TILE_COLS]; TILE_ROWS];
                if mr == TILE_ROWS && nr == TILE_COLS {
                    // Full tile: the dispatched 4×8 micro-kernel (scalar
                    // zips or AVX2 mul+add — bit-identical either way).
                    let a0 = &self.data[i * kd..(i + 1) * kd];
                    let a1 = &self.data[(i + 1) * kd..(i + 2) * kd];
                    let a2 = &self.data[(i + 2) * kd..(i + 3) * kd];
                    let a3 = &self.data[(i + 3) * kd..(i + 4) * kd];
                    simd::tile4x8_f64(level, [a0, a1, a2, a3], &other.data, nd, j, &mut acc);
                } else {
                    // Edge tile: same k-ascending accumulation, ragged shape.
                    for k in 0..kd {
                        let b = &other.data[k * nd + j..k * nd + j + nr];
                        for (r, accr) in acc.iter_mut().enumerate().take(mr) {
                            let a = self.data[(i + r) * kd + k];
                            for (o, &bv) in accr[..nr].iter_mut().zip(b) {
                                *o += a * bv;
                            }
                        }
                    }
                }
                for (r, accr) in acc.iter().enumerate().take(mr) {
                    let orow = &mut out.data[(i + r) * nd + j..(i + r) * nd + j + nr];
                    write(orow, &accr[..nr], i + r, j);
                }
                j += nr;
            }
            i += mr;
        }
    }

    /// `selfᵀ × other` without materializing the transpose.
    ///
    /// Keeps the scalar zero-skipping loop: the training path runs this
    /// kernel over post-relu activations and sparse feature matrices,
    /// where skipping zero rows beats a dense register tile.
    pub fn matmul_tn(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "matmul_tn shape mismatch");
        let mut out = Matrix::zeros(self.cols, other.cols);
        for k in 0..self.rows {
            let arow = &self.data[k * self.cols..(k + 1) * self.cols];
            let brow = &other.data[k * other.cols..(k + 1) * other.cols];
            for (i, &a) in arow.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let orow = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (o, &b) in orow.iter_mut().zip(brow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Segmented [`matmul_tn`](Self::matmul_tn): `selfᵀ × other` restricted
    /// to the shared row range `row_start .. row_start+row_count` of both
    /// operands — the per-cycle `kv = φ(K)ᵀ·V` reduction of the batched
    /// attention path, which must not mix rows across cycle blocks.
    ///
    /// Register-tiled like [`matmul_rows_into`](Self::matmul_rows_into)
    /// (the attention path feeds it dense `φ(K) ≥ 0.01` operands, so a
    /// zero skip buys nothing there). Per output element the accumulation
    /// is `k`-ascending, and a sum starting at +0.0 can never be -0.0, so
    /// results are bit-identical to `matmul_tn` over the extracted rows
    /// for all finite inputs.
    ///
    /// # Panics
    ///
    /// Panics if the row range exceeds either operand.
    pub fn matmul_tn_block(&self, other: &Matrix, row_start: usize, row_count: usize) -> Matrix {
        let mut out = Matrix::zeros(self.cols, other.cols);
        self.matmul_tn_block_into(other, row_start, row_count, &mut out);
        out
    }

    /// [`matmul_tn_block`](Self::matmul_tn_block) into a caller-provided
    /// `self.cols() × other.cols()` buffer (fully overwritten), so hot
    /// paths can reuse scratch memory.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-bounds row range or an output shape mismatch.
    pub fn matmul_tn_block_into(
        &self,
        other: &Matrix,
        row_start: usize,
        row_count: usize,
        out: &mut Matrix,
    ) {
        self.matmul_tn_block_into_level(other, row_start, row_count, out, simd::active_kernel());
    }

    /// [`matmul_tn_block_into`](Self::matmul_tn_block_into) pinned to an
    /// explicit kernel level (the parity tests compare levels directly).
    fn matmul_tn_block_into_level(
        &self,
        other: &Matrix,
        row_start: usize,
        row_count: usize,
        out: &mut Matrix,
        level: KernelLevel,
    ) {
        assert!(
            row_start + row_count <= self.rows && row_start + row_count <= other.rows,
            "matmul_tn row range out of bounds"
        );
        assert_eq!(
            out.shape(),
            (self.cols, other.cols),
            "matmul_tn output shape mismatch"
        );
        let (ac, bc) = (self.cols, other.cols);
        let arange = &self.data[row_start * ac..(row_start + row_count) * ac];
        let brange = &other.data[row_start * bc..(row_start + row_count) * bc];
        if row_count < SMALL_BLOCK_ROWS {
            // Scalar path for short shared-row ranges (small sub-module
            // attention blocks) — identical to `matmul_tn` over the range.
            out.data.fill(0.0);
            for (arow, brow) in arange.chunks_exact(ac).zip(brange.chunks_exact(bc)) {
                for (i, &a) in arow.iter().enumerate() {
                    if a == 0.0 {
                        continue;
                    }
                    let orow = &mut out.data[i * bc..(i + 1) * bc];
                    simd::axpy_f64(level, a, brow, orow);
                }
            }
            return;
        }
        let mut i = 0;
        while i < ac {
            let mr = TILE_ROWS.min(ac - i);
            let mut j = 0;
            while j < bc {
                let nr = TILE_COLS.min(bc - j);
                let mut acc = [[0.0f64; TILE_COLS]; TILE_ROWS];
                if mr == TILE_ROWS && nr == TILE_COLS {
                    simd::tn_tile4x8_f64(level, arange, brange, ac, bc, i, j, &mut acc);
                } else {
                    for (arow, brow) in arange.chunks_exact(ac).zip(brange.chunks_exact(bc)) {
                        let a = &arow[i..i + mr];
                        let b = &brow[j..j + nr];
                        for (accr, &av) in acc.iter_mut().zip(a) {
                            for (o, &bv) in accr[..nr].iter_mut().zip(b) {
                                *o += av * bv;
                            }
                        }
                    }
                }
                for (r, accr) in acc.iter().enumerate().take(mr) {
                    out.data[(i + r) * bc + j..(i + r) * bc + j + nr].copy_from_slice(&accr[..nr]);
                }
                j += nr;
            }
            i += mr;
        }
    }

    /// Column sums over the row range `row_start .. row_start+row_count`,
    /// as a `1 × cols` matrix — the per-cycle `ksum = φ(K)ᵀ·1` reduction
    /// of the batched attention path. Bit-identical to
    /// `matmul_tn_block(ones, ..)` (it mirrors that kernel's zero skip,
    /// and `a × 1.0` is exactly `a`).
    ///
    /// # Panics
    ///
    /// Panics if the row range exceeds `self`.
    pub fn col_sums_block(&self, row_start: usize, row_count: usize) -> Matrix {
        let mut out = Matrix::zeros(1, self.cols);
        self.col_sums_block_into(row_start, row_count, &mut out.data);
        out
    }

    /// [`col_sums_block`](Self::col_sums_block) into a caller slice of
    /// length `cols` (fully overwritten), for allocation-free hot paths.
    ///
    /// # Panics
    ///
    /// Panics if `dst.len() != cols` or the row range exceeds `self`.
    pub fn col_sums_block_into(&self, row_start: usize, row_count: usize, dst: &mut [f64]) {
        assert_eq!(dst.len(), self.cols, "col_sums destination width");
        assert!(
            row_start + row_count <= self.rows,
            "col_sums row range out of bounds"
        );
        dst.fill(0.0);
        for r in row_start..row_start + row_count {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            for (o, &v) in dst.iter_mut().zip(row) {
                if v != 0.0 {
                    *o += v;
                }
            }
        }
    }

    /// `self × otherᵀ` without materializing the transpose.
    pub fn matmul_nt(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "matmul_nt shape mismatch");
        let mut out = Matrix::zeros(self.rows, other.rows);
        for i in 0..self.rows {
            let arow = &self.data[i * self.cols..(i + 1) * self.cols];
            for j in 0..other.rows {
                let brow = &other.data[j * other.cols..(j + 1) * other.cols];
                let mut acc = 0.0;
                for (&a, &b) in arow.iter().zip(brow) {
                    acc += a * b;
                }
                out.data[i * out.cols + j] = acc;
            }
        }
        out
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Elementwise map.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// In-place elementwise map — [`map`](Self::map) without the
    /// allocation, for scratch-buffer hot paths.
    pub fn apply(&mut self, f: impl Fn(f64) -> f64) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Set every element to `value` (scratch-buffer reset).
    pub fn fill(&mut self, value: f64) {
        self.data.fill(value);
    }

    /// Elementwise combine with another same-shaped matrix.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn zip(&self, other: &Matrix, f: impl Fn(f64, f64) -> f64) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "zip shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// In-place `self += other`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "add shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// In-place broadcast add of a `1 × cols` bias row to every row — the
    /// affine step of every inference-path linear layer.
    ///
    /// # Panics
    ///
    /// Panics unless `bias` is `1 × self.cols()`.
    pub fn add_row_bias(&mut self, bias: &Matrix) {
        assert_eq!(bias.shape(), (1, self.cols), "bias shape mismatch");
        for row in self.data.chunks_mut(self.cols.max(1)) {
            for (o, &b) in row.iter_mut().zip(&bias.data) {
                *o += b;
            }
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Column-wise mean, as a `1 × cols` matrix.
    pub fn mean_rows(&self) -> Matrix {
        self.mean_rows_block(0, self.rows)
    }

    /// Column-wise mean over the row range `row_start ..
    /// row_start+row_count` — the per-cycle pooling step of the batched
    /// inference path. Bit-identical to [`mean_rows`](Self::mean_rows) of
    /// the extracted rows (same row-ascending summation, same divisor).
    ///
    /// # Panics
    ///
    /// Panics if the row range exceeds `self`.
    pub fn mean_rows_block(&self, row_start: usize, row_count: usize) -> Matrix {
        let mut out = Matrix::zeros(1, self.cols);
        self.mean_rows_block_into(row_start, row_count, &mut out.data);
        out
    }

    /// [`mean_rows_block`](Self::mean_rows_block) into a caller slice of
    /// length `cols`, for allocation-free per-cycle pooling.
    ///
    /// # Panics
    ///
    /// Panics if `dst.len() != cols` or the row range exceeds `self`.
    pub fn mean_rows_block_into(&self, row_start: usize, row_count: usize, dst: &mut [f64]) {
        assert_eq!(dst.len(), self.cols, "mean_rows destination width");
        assert!(
            row_start + row_count <= self.rows,
            "mean_rows row range out of bounds"
        );
        dst.fill(0.0);
        for r in row_start..row_start + row_count {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            for (o, &v) in dst.iter_mut().zip(row) {
                *o += v;
            }
        }
        let n = row_count.max(1) as f64;
        for v in dst {
            *v /= n;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn construction_and_access() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m.get(1, 2), 6.0);
        assert_eq!(m.row(0), &[1.0, 2.0, 3.0]);
        let mut m2 = m.clone();
        m2.set(0, 0, 9.0);
        assert_eq!(m2.get(0, 0), 9.0);
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn fused_transpose_products() {
        let a = Matrix::xavier(4, 3, 1);
        let b = Matrix::xavier(4, 5, 2);
        let expect = a.transpose().matmul(&b);
        let got = a.matmul_tn(&b);
        assert!((0..3).all(|r| (0..5).all(|c| (expect.get(r, c) - got.get(r, c)).abs() < 1e-12)));

        let a = Matrix::xavier(4, 3, 3);
        let b = Matrix::xavier(5, 3, 4);
        let expect = a.matmul(&b.transpose());
        let got = a.matmul_nt(&b);
        assert!((0..4).all(|r| (0..5).all(|c| (expect.get(r, c) - got.get(r, c)).abs() < 1e-12)));
    }

    #[test]
    fn mean_rows() {
        let m = Matrix::from_rows(&[&[1.0, 3.0], &[3.0, 5.0]]);
        assert_eq!(m.mean_rows(), Matrix::from_rows(&[&[2.0, 4.0]]));
    }

    #[test]
    fn xavier_is_deterministic_and_bounded() {
        let a = Matrix::xavier(10, 10, 7);
        let b = Matrix::xavier(10, 10, 7);
        assert_eq!(a, b);
        let bound = (6.0 / 20.0f64).sqrt();
        assert!(a.as_slice().iter().all(|v| v.abs() <= bound));
        assert!(a.norm() > 0.0);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn bad_matmul_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    /// Reference matmul: per-output-element dot product with k ascending —
    /// the accumulation order the blocked kernel must reproduce bitwise.
    fn matmul_reference(a: &Matrix, b: &Matrix) -> Matrix {
        assert_eq!(a.cols(), b.rows());
        let mut out = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut acc = 0.0;
                for k in 0..a.cols() {
                    acc += a.get(i, k) * b.get(k, j);
                }
                out.set(i, j, acc);
            }
        }
        out
    }

    /// Copy a row range into a standalone matrix.
    fn extract_rows(m: &Matrix, start: usize, count: usize) -> Matrix {
        let rows: Vec<&[f64]> = (start..start + count).map(|r| m.row(r)).collect();
        Matrix::from_rows(&rows)
    }

    #[test]
    fn blocked_kernel_handles_every_tile_edge() {
        // Shapes straddling every kernel path: the 4×8 register tile with
        // full tiles, ragged row tails, ragged column tails, and sub-tile
        // matrices; the scalar small-block path (few rows); and the
        // 24-wide full-row specialization with (20, 17) and without (16)
        // a single-row tail.
        for &(m, k, n) in &[
            (1, 1, 1),
            (3, 5, 7),
            (4, 48, 8),
            (5, 24, 9),
            (8, 2, 16),
            (9, 7, 17),
            (13, 48, 48),
            (16, 5, 24),
            (17, 48, 24),
            (20, 24, 24),
            (33, 48, 48),
        ] {
            let a = Matrix::xavier(m, k, (m * 31 + n) as u64);
            let b = Matrix::xavier(k, n, (k * 17 + n) as u64);
            assert_eq!(
                a.matmul(&b),
                matmul_reference(&a, &b),
                "blocked kernel diverged at {m}×{k}×{n}"
            );
        }
    }

    #[test]
    fn blocked_kernel_is_branch_free_on_zeros() {
        // Zeros in either operand must flow through the kernel (no sparse
        // skip) and still match the reference exactly.
        let mut a = Matrix::xavier(6, 10, 3);
        for i in 0..a.as_slice().len() {
            if i % 3 == 0 {
                a.as_mut_slice()[i] = 0.0;
            }
        }
        let b = Matrix::xavier(10, 12, 4);
        assert_eq!(a.matmul(&b), matmul_reference(&a, &b));
    }

    #[test]
    fn matmul_rows_into_matches_standalone_matmul() {
        // Output widths cover the generic tile (9), the 24-wide full-row
        // path, and a two-tile width (48); ranges cover the scalar
        // small-block path (< 16 rows) and the tiled paths (≥ 16).
        for width in [9usize, 24, 48] {
            let a = Matrix::xavier(40, 6, 5);
            let b = Matrix::xavier(6, width, 6 + width as u64);
            for (start, count) in [(0usize, 40usize), (0, 4), (3, 20), (39, 1), (2, 0), (7, 17)] {
                let mut out = Matrix::zeros(40, width);
                a.matmul_rows_into(&b, start, count, &mut out);
                for r in 0..40 {
                    if r < start || r >= start + count {
                        assert!(out.row(r).iter().all(|&v| v == 0.0), "row {r} touched");
                    } else {
                        let single = extract_rows(&a, r, 1).matmul(&b);
                        assert_eq!(out.row(r), single.row(0), "row {r} diverged");
                    }
                }
            }
        }
    }

    #[test]
    fn matmul_tn_block_matches_extracted_rows() {
        // Widths cover the generic tile and range lengths both the scalar
        // (<16 shared rows) and tiled (≥16) paths.
        for width in [6usize, 24] {
            let a = Matrix::xavier(40, 5, 7);
            let b = Matrix::xavier(40, width, 8 + width as u64);
            for (start, count) in [(0usize, 40usize), (2, 5), (39, 1), (3, 20)] {
                let got = a.matmul_tn_block(&b, start, count);
                let want =
                    extract_rows(&a, start, count).matmul_tn(&extract_rows(&b, start, count));
                assert_eq!(got, want, "range {start}+{count} width {width} diverged");
            }
        }
    }

    #[test]
    fn col_sums_block_matches_ones_product() {
        let mut a = Matrix::xavier(9, 7, 11);
        a.set(4, 2, 0.0); // exercise the zero skip
        for (start, count) in [(0usize, 9usize), (3, 4), (8, 1), (5, 0)] {
            let got = a.col_sums_block(start, count);
            let want = a
                .matmul_tn_block(&Matrix::full(9, 1, 1.0), start, count)
                .transpose();
            assert_eq!(got, want, "range {start}+{count} diverged");
        }
    }

    #[test]
    fn mean_rows_block_matches_extracted_rows() {
        let m = Matrix::xavier(8, 5, 13);
        for (start, count) in [(0usize, 8usize), (2, 3), (7, 1)] {
            assert_eq!(
                m.mean_rows_block(start, count),
                extract_rows(&m, start, count).mean_rows(),
                "range {start}+{count} diverged"
            );
        }
    }

    #[test]
    fn fused_pool_epilogue_matches_separate_pooling() {
        // The pool-fused mix kernel must equal the plain mix kernel
        // followed by mean_rows_block_into, bitwise, for block sizes that
        // route through the small-block, generic-tile, and w24 paths.
        for &(blocks, n, hidden) in &[(3usize, 5usize, 9usize), (2, 21, 24), (4, 4, 48)] {
            let rows = blocks * n;
            let x = Matrix::xavier(rows, hidden, 91);
            let w = Matrix::xavier(hidden, hidden, 92);
            let b = Matrix::xavier(1, hidden, 93);
            let prior = Matrix::xavier(rows, hidden, 94);
            let act = |v: f64| v.max(0.0);

            let mut expect_out = prior.clone();
            x.matmul_bias_act_mix_rows_into(&w, &b, act, 0.4, 0, rows, &mut expect_out);
            let mut expect_pool = vec![0.0; blocks * hidden];
            for blk in 0..blocks {
                expect_out.mean_rows_block_into(
                    blk * n,
                    n,
                    &mut expect_pool[blk * hidden..(blk + 1) * hidden],
                );
            }

            let mut out = prior.clone();
            let mut pool = vec![f64::NAN; blocks * hidden];
            x.matmul_bias_act_mix_pool_rows_into(&w, &b, act, 0.4, &mut out, n, &mut pool);
            assert_eq!(out, expect_out, "{blocks}x{n}x{hidden} out diverged");
            assert_eq!(pool, expect_pool, "{blocks}x{n}x{hidden} pool diverged");
        }
    }

    #[test]
    fn add_row_bias_broadcasts() {
        let mut m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        m.add_row_bias(&Matrix::from_rows(&[&[10.0, 20.0]]));
        assert_eq!(m, Matrix::from_rows(&[&[11.0, 22.0], &[13.0, 24.0]]));
    }

    #[test]
    #[should_panic(expected = "bias shape mismatch")]
    fn add_row_bias_rejects_bad_shape() {
        let mut m = Matrix::zeros(2, 3);
        m.add_row_bias(&Matrix::zeros(1, 2));
    }

    proptest! {
        #[test]
        fn blocked_matmul_is_bit_identical_to_reference(
            m in 1usize..40, k in 1usize..14, n in 1usize..27, seed in 0u64..50
        ) {
            // m spans the scalar (<16) and tiled (≥16) row paths; n spans
            // the generic tile and the 24-wide full-row specialization.
            let a = Matrix::xavier(m, k, seed);
            let b = Matrix::xavier(k, n, seed + 1000);
            prop_assert_eq!(a.matmul(&b), matmul_reference(&a, &b));
        }

        /// The satellite parity guarantee: the hand-written SIMD kernels
        /// are bit-identical to the scalar fallback across tile-edge
        /// shapes — row counts straddling the %4 tile height and the <16
        /// small-block cutoff, widths straddling the %8 tile width, the
        /// 24-wide full-row specialization, and ragged edges of both.
        /// (Vacuously scalar-vs-scalar on hosts without AVX2; the CI
        /// forced-scalar lane covers that side explicitly.)
        #[test]
        fn simd_matmul_is_bit_identical_to_scalar(
            m in 1usize..40, k in 1usize..30, n in 1usize..60, seed in 0u64..200
        ) {
            let a = Matrix::xavier(m, k, seed);
            let b = Matrix::xavier(k, n, seed + 5000);
            prop_assert_eq!(
                a.matmul_level(&b, simd::detected_kernel()),
                a.matmul_level(&b, KernelLevel::Scalar)
            );
        }

        /// Same guarantee for the shared-row transpose kernel feeding the
        /// attention reductions, across both its scalar (<16 shared rows)
        /// and tiled paths.
        #[test]
        fn simd_matmul_tn_is_bit_identical_to_scalar(
            rows in 1usize..40, ac in 1usize..14, bc in 1usize..30, seed in 0u64..200
        ) {
            let a = Matrix::xavier(rows, ac, seed);
            let b = Matrix::xavier(rows, bc, seed + 7000);
            let mut scalar = Matrix::zeros(ac, bc);
            let mut vector = Matrix::zeros(ac, bc);
            a.matmul_tn_block_into_level(&b, 0, rows, &mut scalar, KernelLevel::Scalar);
            a.matmul_tn_block_into_level(&b, 0, rows, &mut vector, simd::detected_kernel());
            prop_assert_eq!(scalar, vector);
        }

        #[test]
        fn transpose_involution(rows in 1usize..6, cols in 1usize..6, seed in 0u64..100) {
            let m = Matrix::xavier(rows, cols, seed);
            prop_assert_eq!(m.transpose().transpose(), m);
        }

        #[test]
        fn matmul_identity(n in 1usize..6, seed in 0u64..100) {
            let m = Matrix::xavier(n, n, seed);
            let mut eye = Matrix::zeros(n, n);
            for i in 0..n {
                eye.set(i, i, 1.0);
            }
            let prod = m.matmul(&eye);
            for r in 0..n {
                for c in 0..n {
                    prop_assert!((prod.get(r, c) - m.get(r, c)).abs() < 1e-12);
                }
            }
        }
    }
}
