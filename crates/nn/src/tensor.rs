//! Reverse-mode automatic differentiation over [`Matrix`] values.
//!
//! A [`Tensor`] is a node in a dynamically built computation DAG. Nodes
//! are reference-counted; node ids increase in creation order, so visiting
//! reachable nodes in descending id order is a valid reverse topological
//! order for backpropagation.

use std::cell::{Cell, Ref, RefCell};
use std::collections::HashMap;
use std::rc::Rc;
use std::sync::Arc;

use crate::matrix::Matrix;
use crate::sparse::SparseAdj;

thread_local! {
    static NEXT_ID: Cell<u64> = const { Cell::new(0) };
}

fn next_id() -> u64 {
    NEXT_ID.with(|c| {
        let id = c.get();
        c.set(id + 1);
        id
    })
}

type BackwardFn = Box<dyn Fn(&Matrix, &[Tensor])>;

struct Node {
    id: u64,
    value: RefCell<Matrix>,
    grad: RefCell<Option<Matrix>>,
    parents: Vec<Tensor>,
    backward: Option<BackwardFn>,
}

/// A matrix-valued node of the autodiff graph.
///
/// Cloning is cheap (reference-counted). Operations build new nodes;
/// [`Tensor::backward`] propagates gradients to every reachable parameter.
///
/// # Examples
///
/// ```
/// use atlas_nn::{Matrix, Tensor};
///
/// let x = Tensor::param(Matrix::from_rows(&[&[3.0]]));
/// let y = x.mul(&x); // y = x²
/// y.backward();
/// assert_eq!(x.grad().expect("has grad").get(0, 0), 6.0); // dy/dx = 2x
/// ```
#[derive(Clone)]
pub struct Tensor {
    node: Rc<Node>,
}

impl std::fmt::Debug for Tensor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tensor")
            .field("id", &self.node.id)
            .field("shape", &self.node.value.borrow().shape())
            .finish()
    }
}

impl Tensor {
    fn new(value: Matrix, parents: Vec<Tensor>, backward: Option<BackwardFn>) -> Tensor {
        Tensor {
            node: Rc::new(Node {
                id: next_id(),
                value: RefCell::new(value),
                grad: RefCell::new(None),
                parents,
                backward,
            }),
        }
    }

    /// A trainable leaf (gradients are accumulated into it).
    pub fn param(value: Matrix) -> Tensor {
        Tensor::new(value, Vec::new(), None)
    }

    /// A non-trainable leaf (gradients still flow *through* ops but are
    /// simply accumulated and ignored).
    pub fn constant(value: Matrix) -> Tensor {
        Tensor::new(value, Vec::new(), None)
    }

    /// Borrow the current value.
    pub fn value(&self) -> Ref<'_, Matrix> {
        self.node.value.borrow()
    }

    /// Replace the value (used by optimizers).
    pub fn set_value(&self, value: Matrix) {
        *self.node.value.borrow_mut() = value;
    }

    /// `(rows, cols)` of the value.
    pub fn shape(&self) -> (usize, usize) {
        self.node.value.borrow().shape()
    }

    /// Clone of the accumulated gradient, if any.
    pub fn grad(&self) -> Option<Matrix> {
        self.node.grad.borrow().clone()
    }

    /// Clear the accumulated gradient.
    pub fn zero_grad(&self) {
        *self.node.grad.borrow_mut() = None;
    }

    fn accumulate(&self, g: &Matrix) {
        let mut slot = self.node.grad.borrow_mut();
        match slot.as_mut() {
            Some(existing) => existing.add_assign(g),
            None => *slot = Some(g.clone()),
        }
    }

    /// Run backpropagation from this scalar (1×1) tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not scalar-shaped.
    pub fn backward(&self) {
        assert_eq!(self.shape(), (1, 1), "backward() starts from a scalar loss");
        // Collect reachable nodes.
        let mut seen: HashMap<u64, Tensor> = HashMap::new();
        let mut stack = vec![self.clone()];
        while let Some(t) = stack.pop() {
            if seen.insert(t.node.id, t.clone()).is_none() {
                for p in &t.node.parents {
                    stack.push(p.clone());
                }
            }
        }
        let mut order: Vec<Tensor> = seen.into_values().collect();
        order.sort_by_key(|t| std::cmp::Reverse(t.node.id));

        self.accumulate(&Matrix::full(1, 1, 1.0));
        for t in order {
            let Some(back) = &t.node.backward else {
                continue;
            };
            let grad = t.node.grad.borrow().clone();
            if let Some(g) = grad {
                back(&g, &t.node.parents);
            }
        }
    }

    // ------------------------------------------------------------------
    // Elementwise and broadcast operations
    // ------------------------------------------------------------------

    /// Elementwise sum.
    pub fn add(&self, other: &Tensor) -> Tensor {
        let v = self.value().zip(&other.value(), |a, b| a + b);
        Tensor::new(
            v,
            vec![self.clone(), other.clone()],
            Some(Box::new(|g, ps| {
                ps[0].accumulate(g);
                ps[1].accumulate(g);
            })),
        )
    }

    /// Elementwise difference.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        let v = self.value().zip(&other.value(), |a, b| a - b);
        Tensor::new(
            v,
            vec![self.clone(), other.clone()],
            Some(Box::new(|g, ps| {
                ps[0].accumulate(g);
                ps[1].accumulate(&g.map(|x| -x));
            })),
        )
    }

    /// Hadamard (elementwise) product.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        let v = self.value().zip(&other.value(), |a, b| a * b);
        Tensor::new(
            v,
            vec![self.clone(), other.clone()],
            Some(Box::new(|g, ps| {
                let a = ps[0].value().clone();
                let b = ps[1].value().clone();
                ps[0].accumulate(&g.zip(&b, |x, y| x * y));
                ps[1].accumulate(&g.zip(&a, |x, y| x * y));
            })),
        )
    }

    /// Multiply by a scalar constant.
    pub fn scale(&self, s: f64) -> Tensor {
        let v = self.value().map(|x| x * s);
        Tensor::new(
            v,
            vec![self.clone()],
            Some(Box::new(move |g, ps| {
                ps[0].accumulate(&g.map(|x| x * s));
            })),
        )
    }

    /// Add a scalar constant.
    pub fn add_scalar(&self, c: f64) -> Tensor {
        let v = self.value().map(|x| x + c);
        Tensor::new(
            v,
            vec![self.clone()],
            Some(Box::new(|g, ps| {
                ps[0].accumulate(g);
            })),
        )
    }

    /// Rectified linear unit.
    pub fn relu(&self) -> Tensor {
        let v = self.value().map(|x| x.max(0.0));
        Tensor::new(
            v,
            vec![self.clone()],
            Some(Box::new(|g, ps| {
                let a = ps[0].value().clone();
                ps[0].accumulate(&g.zip(&a, |gx, ax| if ax > 0.0 { gx } else { 0.0 }));
            })),
        )
    }

    /// Add a `1 × cols` bias row to every row.
    ///
    /// # Panics
    ///
    /// Panics if `bias` is not `1 × self.cols`.
    pub fn add_row(&self, bias: &Tensor) -> Tensor {
        let v = {
            let a = self.value();
            let b = bias.value();
            assert_eq!(b.shape(), (1, a.cols()), "bias must be 1 × cols");
            let mut out = a.clone();
            for r in 0..out.rows() {
                for c in 0..out.cols() {
                    let v = out.get(r, c) + b.get(0, c);
                    out.set(r, c, v);
                }
            }
            out
        };
        Tensor::new(
            v,
            vec![self.clone(), bias.clone()],
            Some(Box::new(|g, ps| {
                ps[0].accumulate(g);
                // Bias gradient: column sums.
                let mut bg = Matrix::zeros(1, g.cols());
                for r in 0..g.rows() {
                    for c in 0..g.cols() {
                        bg.set(0, c, bg.get(0, c) + g.get(r, c));
                    }
                }
                ps[1].accumulate(&bg);
            })),
        )
    }

    /// Divide each row by the matching entry of an `n × 1` column tensor.
    ///
    /// # Panics
    ///
    /// Panics if `denom` is not `rows × 1`.
    pub fn col_div(&self, denom: &Tensor) -> Tensor {
        let v = {
            let a = self.value();
            let d = denom.value();
            assert_eq!(d.shape(), (a.rows(), 1), "denominator must be rows × 1");
            let mut out = a.clone();
            for r in 0..out.rows() {
                let dv = d.get(r, 0);
                for c in 0..out.cols() {
                    out.set(r, c, out.get(r, c) / dv);
                }
            }
            out
        };
        Tensor::new(
            v,
            vec![self.clone(), denom.clone()],
            Some(Box::new(|g, ps| {
                let a = ps[0].value().clone();
                let d = ps[1].value().clone();
                let mut ga = Matrix::zeros(a.rows(), a.cols());
                let mut gd = Matrix::zeros(d.rows(), 1);
                for r in 0..a.rows() {
                    let dv = d.get(r, 0);
                    let mut acc = 0.0;
                    for c in 0..a.cols() {
                        ga.set(r, c, g.get(r, c) / dv);
                        acc += g.get(r, c) * (-a.get(r, c) / (dv * dv));
                    }
                    gd.set(r, 0, acc);
                }
                ps[0].accumulate(&ga);
                ps[1].accumulate(&gd);
            })),
        )
    }

    // ------------------------------------------------------------------
    // Matrix products
    // ------------------------------------------------------------------

    /// Matrix product `self × other`.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        let v = self.value().matmul(&other.value());
        Tensor::new(
            v,
            vec![self.clone(), other.clone()],
            Some(Box::new(|g, ps| {
                let a = ps[0].value().clone();
                let b = ps[1].value().clone();
                ps[0].accumulate(&g.matmul_nt(&b));
                ps[1].accumulate(&a.matmul_tn(g));
            })),
        )
    }

    /// `selfᵀ × other`.
    pub fn matmul_tn(&self, other: &Tensor) -> Tensor {
        let v = self.value().matmul_tn(&other.value());
        Tensor::new(
            v,
            vec![self.clone(), other.clone()],
            Some(Box::new(|g, ps| {
                let a = ps[0].value().clone();
                let b = ps[1].value().clone();
                ps[0].accumulate(&b.matmul_nt(g));
                ps[1].accumulate(&a.matmul(g));
            })),
        )
    }

    /// `self × otherᵀ`.
    pub fn matmul_nt(&self, other: &Tensor) -> Tensor {
        let v = self.value().matmul_nt(&other.value());
        Tensor::new(
            v,
            vec![self.clone(), other.clone()],
            Some(Box::new(|g, ps| {
                let a = ps[0].value().clone();
                let b = ps[1].value().clone();
                ps[0].accumulate(&g.matmul(&b));
                ps[1].accumulate(&g.matmul_tn(&a));
            })),
        )
    }

    /// Multiply by a constant sparse (symmetric, normalized) adjacency:
    /// `out = A × self`.
    pub fn spmm(&self, adj: &Arc<SparseAdj>) -> Tensor {
        let v = adj.matmul(&self.value());
        let adj_b = Arc::clone(adj);
        Tensor::new(
            v,
            vec![self.clone()],
            Some(Box::new(move |g, ps| {
                // A is symmetric, so Aᵀ g = A g.
                ps[0].accumulate(&adj_b.matmul(g));
            })),
        )
    }

    // ------------------------------------------------------------------
    // Shape operations
    // ------------------------------------------------------------------

    /// Column-wise mean over rows: `n × d → 1 × d` (graph readout).
    pub fn mean_rows(&self) -> Tensor {
        let v = self.value().mean_rows();
        Tensor::new(
            v,
            vec![self.clone()],
            Some(Box::new(|g, ps| {
                let (n, d) = ps[0].shape();
                let mut ga = Matrix::zeros(n, d);
                for r in 0..n {
                    for c in 0..d {
                        ga.set(r, c, g.get(0, c) / n as f64);
                    }
                }
                ps[0].accumulate(&ga);
            })),
        )
    }

    /// Gather rows by index: `out[i] = self[indices[i]]`.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn select_rows(&self, indices: &[usize]) -> Tensor {
        let v = {
            let a = self.value();
            let mut out = Matrix::zeros(indices.len(), a.cols());
            for (i, &idx) in indices.iter().enumerate() {
                assert!(idx < a.rows(), "row index {idx} out of range");
                for c in 0..a.cols() {
                    out.set(i, c, a.get(idx, c));
                }
            }
            out
        };
        let idx: Vec<usize> = indices.to_vec();
        Tensor::new(
            v,
            vec![self.clone()],
            Some(Box::new(move |g, ps| {
                let (n, d) = ps[0].shape();
                let mut ga = Matrix::zeros(n, d);
                for (i, &r) in idx.iter().enumerate() {
                    for c in 0..d {
                        ga.set(r, c, ga.get(r, c) + g.get(i, c));
                    }
                }
                ps[0].accumulate(&ga);
            })),
        )
    }

    /// Stack tensors vertically (all must share the column count).
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty or column counts differ.
    pub fn concat_rows(parts: &[Tensor]) -> Tensor {
        assert!(!parts.is_empty(), "concat of nothing");
        let cols = parts[0].shape().1;
        let total: usize = parts.iter().map(|p| p.shape().0).sum();
        let mut v = Matrix::zeros(total, cols);
        let mut row = 0;
        for p in parts {
            let pv = p.value();
            assert_eq!(pv.cols(), cols, "concat column mismatch");
            for r in 0..pv.rows() {
                for c in 0..cols {
                    v.set(row, c, pv.get(r, c));
                }
                row += 1;
            }
        }
        let sizes: Vec<usize> = parts.iter().map(|p| p.shape().0).collect();
        Tensor::new(
            v,
            parts.to_vec(),
            Some(Box::new(move |g, ps| {
                let mut row = 0;
                for (p, &rows) in ps.iter().zip(&sizes) {
                    let cols = g.cols();
                    let mut gp = Matrix::zeros(rows, cols);
                    for r in 0..rows {
                        for c in 0..cols {
                            gp.set(r, c, g.get(row + r, c));
                        }
                    }
                    row += rows;
                    p.accumulate(&gp);
                }
            })),
        )
    }

    /// L2-normalize each row (cosine-space embeddings for contrastive
    /// learning).
    pub fn l2_normalize_rows(&self) -> Tensor {
        const EPS: f64 = 1e-12;
        let v = {
            let a = self.value();
            let mut out = a.clone();
            for r in 0..a.rows() {
                let norm = a.row(r).iter().map(|x| x * x).sum::<f64>().sqrt() + EPS;
                for c in 0..a.cols() {
                    out.set(r, c, a.get(r, c) / norm);
                }
            }
            out
        };
        Tensor::new(
            v,
            vec![self.clone()],
            Some(Box::new(|g, ps| {
                let a = ps[0].value().clone();
                let (n, d) = a.shape();
                let mut ga = Matrix::zeros(n, d);
                for r in 0..n {
                    let norm = a.row(r).iter().map(|x| x * x).sum::<f64>().sqrt() + EPS;
                    let dot: f64 = (0..d).map(|c| a.get(r, c) * g.get(r, c)).sum();
                    for c in 0..d {
                        let val = g.get(r, c) / norm - a.get(r, c) * dot / (norm * norm * norm);
                        ga.set(r, c, val);
                    }
                }
                ps[0].accumulate(&ga);
            })),
        )
    }

    // ------------------------------------------------------------------
    // Losses (fused, numerically stable)
    // ------------------------------------------------------------------

    /// Mean softmax cross-entropy of `self` (logits, `n × k`) against
    /// integer class targets. Returns a scalar tensor.
    ///
    /// # Panics
    ///
    /// Panics if `targets.len()` differs from the row count or any target
    /// is out of range.
    pub fn softmax_cross_entropy(&self, targets: &[usize]) -> Tensor {
        let (probs, loss) = {
            let logits = self.value();
            let (n, k) = logits.shape();
            assert_eq!(targets.len(), n, "one target per row");
            let mut probs = Matrix::zeros(n, k);
            let mut loss = 0.0;
            for (r, &t) in targets.iter().enumerate() {
                let row = logits.row(r);
                let max = row.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                let mut z = 0.0;
                for (c, &logit) in row.iter().enumerate() {
                    let e = (logit - max).exp();
                    probs.set(r, c, e);
                    z += e;
                }
                for c in 0..k {
                    probs.set(r, c, probs.get(r, c) / z);
                }
                assert!(t < k, "target {t} out of range");
                loss -= probs.get(r, t).max(1e-300).ln();
            }
            (probs, loss / n as f64)
        };
        let targets: Vec<usize> = targets.to_vec();
        Tensor::new(
            Matrix::full(1, 1, loss),
            vec![self.clone()],
            Some(Box::new(move |g, ps| {
                let scale = g.get(0, 0) / targets.len() as f64;
                let mut gl = probs.clone();
                for (r, &t) in targets.iter().enumerate() {
                    gl.set(r, t, gl.get(r, t) - 1.0);
                }
                ps[0].accumulate(&gl.map(|x| x * scale));
            })),
        )
    }

    /// Mean squared error against a constant target. Returns a scalar.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn mse_loss(&self, target: &Matrix) -> Tensor {
        let loss = {
            let p = self.value();
            assert_eq!(p.shape(), target.shape(), "mse shape mismatch");
            let n = (p.rows() * p.cols()) as f64;
            p.zip(target, |a, b| (a - b) * (a - b)).sum() / n
        };
        let target = target.clone();
        Tensor::new(
            Matrix::full(1, 1, loss),
            vec![self.clone()],
            Some(Box::new(move |g, ps| {
                let p = ps[0].value().clone();
                let n = (p.rows() * p.cols()) as f64;
                let scale = 2.0 * g.get(0, 0) / n;
                ps[0].accumulate(&p.zip(&target, |a, b| scale * (a - b)));
            })),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Finite-difference gradient check of `loss_of` with respect to `p`.
    fn grad_check(p: &Tensor, loss_of: impl Fn() -> Tensor) {
        let loss = loss_of();
        p.zero_grad();
        loss.backward();
        let analytic = p.grad().expect("parameter receives gradient");
        let (rows, cols) = p.shape();
        let eps = 1e-5;
        for r in 0..rows {
            for c in 0..cols {
                let orig = p.value().get(r, c);
                let mut m = p.value().clone();
                m.set(r, c, orig + eps);
                p.set_value(m);
                let up = loss_of().value().get(0, 0);
                let mut m = p.value().clone();
                m.set(r, c, orig - eps);
                p.set_value(m);
                let down = loss_of().value().get(0, 0);
                let mut m = p.value().clone();
                m.set(r, c, orig);
                p.set_value(m);
                let numeric = (up - down) / (2.0 * eps);
                let a = analytic.get(r, c);
                assert!(
                    (a - numeric).abs() < 1e-5 * (1.0 + a.abs().max(numeric.abs())),
                    "grad mismatch at ({r},{c}): analytic={a} numeric={numeric}"
                );
            }
        }
    }

    #[test]
    fn grad_matmul_chain() {
        let w = Tensor::param(Matrix::xavier(3, 2, 1));
        let x = Tensor::constant(Matrix::xavier(4, 3, 2));
        let t = Matrix::xavier(4, 2, 3);
        grad_check(&w, || x.matmul(&w).mse_loss(&t));
    }

    #[test]
    fn grad_relu_bias() {
        let w = Tensor::param(Matrix::xavier(3, 3, 4));
        let b = Tensor::param(Matrix::xavier(1, 3, 5));
        let x = Tensor::constant(Matrix::xavier(5, 3, 6));
        let t = Matrix::xavier(5, 3, 7);
        grad_check(&w, || x.matmul(&w).add_row(&b).relu().mse_loss(&t));
        grad_check(&b, || x.matmul(&w).add_row(&b).relu().mse_loss(&t));
    }

    #[test]
    fn grad_softmax_ce() {
        let w = Tensor::param(Matrix::xavier(3, 4, 8));
        let x = Tensor::constant(Matrix::xavier(6, 3, 9));
        let targets = [0usize, 1, 2, 3, 1, 0];
        grad_check(&w, || x.matmul(&w).softmax_cross_entropy(&targets));
    }

    #[test]
    fn grad_l2_normalize_and_nt() {
        let a = Tensor::param(Matrix::xavier(3, 4, 10));
        let b = Tensor::constant(Matrix::xavier(3, 4, 11));
        let targets = [0usize, 1, 2];
        grad_check(&a, || {
            a.l2_normalize_rows()
                .matmul_nt(&b.l2_normalize_rows())
                .scale(5.0)
                .softmax_cross_entropy(&targets)
        });
    }

    #[test]
    fn grad_col_div_mean() {
        let a = Tensor::param(Matrix::xavier(4, 3, 12).map(|x| x + 3.0));
        let d = Tensor::param(Matrix::xavier(4, 1, 13).map(|x| x.abs() + 1.0));
        let t = Matrix::xavier(1, 3, 14);
        grad_check(&a, || a.col_div(&d).mean_rows().mse_loss(&t));
        grad_check(&d, || a.col_div(&d).mean_rows().mse_loss(&t));
    }

    #[test]
    fn grad_select_concat() {
        let a = Tensor::param(Matrix::xavier(5, 3, 15));
        let b = Tensor::param(Matrix::xavier(2, 3, 16));
        let t = Matrix::xavier(4, 3, 17);
        let f = || {
            let sel = a.select_rows(&[0, 2]);
            Tensor::concat_rows(&[sel, b.clone()]).mse_loss(&t)
        };
        grad_check(&a, f);
        grad_check(&b, f);
    }

    #[test]
    fn grad_matmul_tn_spmm() {
        let adj = Arc::new(SparseAdj::normalized_from_edges(
            4,
            &[(0, 1), (1, 2), (2, 3)],
        ));
        let w = Tensor::param(Matrix::xavier(3, 3, 18));
        let x = Tensor::constant(Matrix::xavier(4, 3, 19));
        let t = Matrix::xavier(3, 3, 20);
        grad_check(&w, || {
            let h = x.matmul(&w).spmm(&adj);
            h.matmul_tn(&h).mse_loss(&t)
        });
    }

    #[test]
    fn grad_elementwise_ops() {
        let a = Tensor::param(Matrix::xavier(3, 3, 21));
        let b = Tensor::constant(Matrix::xavier(3, 3, 22));
        let t = Matrix::xavier(3, 3, 23);
        grad_check(&a, || {
            a.mul(&b)
                .add(&a.scale(0.5))
                .sub(&b)
                .add_scalar(0.1)
                .mse_loss(&t)
        });
    }

    #[test]
    fn backward_accumulates_shared_subgraphs() {
        // y = x + x should give dy/dx = 2.
        let x = Tensor::param(Matrix::full(1, 1, 5.0));
        let y = x.add(&x);
        y.backward();
        assert_eq!(x.grad().expect("grad").get(0, 0), 2.0);
    }

    #[test]
    #[should_panic(expected = "scalar")]
    fn backward_requires_scalar() {
        let x = Tensor::param(Matrix::zeros(2, 2));
        x.backward();
    }

    #[test]
    fn zero_grad_clears() {
        let x = Tensor::param(Matrix::full(1, 1, 2.0));
        let y = x.mul(&x);
        y.backward();
        assert!(x.grad().is_some());
        x.zero_grad();
        assert!(x.grad().is_none());
    }
}
