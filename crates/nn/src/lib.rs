//! From-scratch neural-network substrate — the PyTorch/PyG substitute.
//!
//! ATLAS pre-trains a graph-transformer encoder (SGFormer \[13\]) with five
//! self-supervised losses. This crate provides everything that needs, in
//! plain Rust with no C dependencies:
//!
//! * [`Matrix`] — a dense row-major `f64` matrix;
//! * [`Tensor`] — reverse-mode automatic differentiation over matrices
//!   (a dynamic tape of `Rc` nodes, like a tiny PyTorch);
//! * [`Linear`], [`MlpHead`] — parameterized modules;
//! * [`Adam`] — the optimizer used in the paper (lr `1e-4`);
//! * [`Matrix32`] + [`InferenceEncoderF32`] — the opt-in reduced-precision
//!   inference path ([`Precision`]), accuracy-gated against f64 by
//!   [`F32_EMBED_TOLERANCE`];
//! * [`simd`] — runtime-dispatched SIMD micro-kernels (AVX2/FMA with a
//!   bit-identical scalar fallback) behind every dense kernel above;
//! * [`SparseAdj`] — normalized sparse adjacency with `spmm`;
//! * [`GraphEncoder`] — the SGFormer-style encoder: one O(N·d²)
//!   kernelized global-attention branch mixed with a graph-propagation
//!   branch, no positional encodings (paper §IV);
//! * [`info_nce`] — the contrastive loss of Tasks #4/#5.
//!
//! # Examples
//!
//! Fit a scalar function with gradient descent:
//!
//! ```
//! use atlas_nn::{Adam, Matrix, Tensor};
//!
//! let w = Tensor::param(Matrix::zeros(1, 1));
//! let x = Tensor::constant(Matrix::from_rows(&[&[1.0], &[2.0], &[3.0]]));
//! let target = Matrix::from_rows(&[&[2.0], &[4.0], &[6.0]]);
//! let mut opt = Adam::new(vec![w.clone()], 0.1);
//! for _ in 0..500 {
//!     let loss = x.matmul(&w).mse_loss(&target);
//!     opt.zero_grad();
//!     loss.backward();
//!     opt.step();
//! }
//! assert!((w.value().get(0, 0) - 2.0).abs() < 1e-3);
//! ```

mod adam;
mod encoder;
mod infer;
mod infer32;
mod linear;
mod loss;
mod matrix;
mod matrix32;
pub mod simd;
mod sparse;
mod tensor;

pub use adam::Adam;
pub use encoder::{EncoderConfig, EncoderState, GraphEncoder, SUM_POOL_SCALE};
pub use infer::InferenceEncoder;
pub use infer32::{InferenceEncoderF32, Precision, F32_EMBED_TOLERANCE};
pub use linear::{Linear, MlpHead};
pub use loss::info_nce;
pub use matrix::Matrix;
pub use matrix32::Matrix32;
pub use simd::KernelLevel;
pub use sparse::SparseAdj;
pub use tensor::Tensor;
