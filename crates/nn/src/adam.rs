//! The Adam optimizer (Kingma & Ba), as used by the paper (lr = 1e-4).

use crate::matrix::Matrix;
use crate::tensor::Tensor;

/// Adam with bias-corrected first/second moments.
///
/// # Examples
///
/// See the crate-level example: build params, call
/// [`zero_grad`](Adam::zero_grad) → `loss.backward()` → [`step`](Adam::step)
/// per iteration.
#[derive(Debug)]
pub struct Adam {
    params: Vec<Tensor>,
    m: Vec<Matrix>,
    v: Vec<Matrix>,
    lr: f64,
    beta1: f64,
    beta2: f64,
    eps: f64,
    t: u64,
}

impl Adam {
    /// Standard Adam (β₁ = 0.9, β₂ = 0.999, ε = 1e-8).
    pub fn new(params: Vec<Tensor>, lr: f64) -> Adam {
        let m = params
            .iter()
            .map(|p| {
                let (r, c) = p.shape();
                Matrix::zeros(r, c)
            })
            .collect();
        let v = params
            .iter()
            .map(|p| {
                let (r, c) = p.shape();
                Matrix::zeros(r, c)
            })
            .collect();
        Adam {
            params,
            m,
            v,
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
        }
    }

    /// Learning rate.
    pub fn lr(&self) -> f64 {
        self.lr
    }

    /// Change the learning rate (e.g. for decay schedules).
    pub fn set_lr(&mut self, lr: f64) {
        self.lr = lr;
    }

    /// Number of parameters tracked.
    pub fn param_count(&self) -> usize {
        self.params.len()
    }

    /// Clear every parameter's gradient.
    pub fn zero_grad(&self) {
        for p in &self.params {
            p.zero_grad();
        }
    }

    /// Apply one update from the accumulated gradients. Parameters without
    /// a gradient (not touched by the last backward pass) are skipped.
    pub fn step(&mut self) {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (i, p) in self.params.iter().enumerate() {
            let Some(g) = p.grad() else { continue };
            let m = &mut self.m[i];
            let v = &mut self.v[i];
            let mut new_value = p.value().clone();
            for idx in 0..g.as_slice().len() {
                let gi = g.as_slice()[idx];
                let mi = self.beta1 * m.as_slice()[idx] + (1.0 - self.beta1) * gi;
                let vi = self.beta2 * v.as_slice()[idx] + (1.0 - self.beta2) * gi * gi;
                m.as_mut_slice()[idx] = mi;
                v.as_mut_slice()[idx] = vi;
                let m_hat = mi / bc1;
                let v_hat = vi / bc2;
                new_value.as_mut_slice()[idx] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
            }
            p.set_value(new_value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimizes_quadratic() {
        // min (x - 3)²
        let x = Tensor::param(Matrix::zeros(1, 1));
        let target = Matrix::full(1, 1, 3.0);
        let mut opt = Adam::new(vec![x.clone()], 0.1);
        for _ in 0..300 {
            let loss = x.mse_loss(&target);
            opt.zero_grad();
            loss.backward();
            opt.step();
        }
        assert!((x.value().get(0, 0) - 3.0).abs() < 1e-3);
    }

    #[test]
    fn skips_params_without_grad() {
        let used = Tensor::param(Matrix::full(1, 1, 1.0));
        let unused = Tensor::param(Matrix::full(1, 1, 42.0));
        let mut opt = Adam::new(vec![used.clone(), unused.clone()], 0.1);
        let loss = used.mse_loss(&Matrix::zeros(1, 1));
        opt.zero_grad();
        loss.backward();
        opt.step();
        assert_eq!(unused.value().get(0, 0), 42.0);
        assert!(used.value().get(0, 0) < 1.0);
    }

    #[test]
    fn lr_adjustable() {
        let x = Tensor::param(Matrix::zeros(1, 1));
        let mut opt = Adam::new(vec![x], 0.1);
        opt.set_lr(0.01);
        assert_eq!(opt.lr(), 0.01);
        assert_eq!(opt.param_count(), 1);
    }
}
