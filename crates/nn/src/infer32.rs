//! The reduced-precision (f32) inference encoder.
//!
//! [`InferenceEncoderF32`] is the f32 sibling of
//! [`InferenceEncoder`](crate::InferenceEncoder): the same cycle-blocked
//! SGFormer forward, evaluated in `f32` over weights narrowed once from
//! the trained `f64` state. Halving the element size halves the memory
//! traffic of every kernel pass, doubles the cycles that fit a chunk
//! budget, and halves what a cached trace embedding costs the serving
//! LRU — doubling the effective `--cache-mb`.
//!
//! # Accuracy contract
//!
//! Unlike the f64 path, which guarantees bit parity between batched and
//! per-cycle evaluation, the f32 path promises *closeness to f64*:
//! every embedding element stays within [`F32_EMBED_TOLERANCE`] of the
//! f64 result under the relative metric `|a − b| / (1 + |b|)`. The
//! proptests here and the accuracy gate in `infer_bench` (enforced by
//! `scripts/check_bench.rs`) both pin that single shared constant.

use std::str::FromStr;

use crate::encoder::EncoderState;
use crate::infer::{CHUNK_BUDGET_BYTES, MAX_CYCLE_CHUNK};
use crate::matrix32::Matrix32;
use crate::sparse::SparseAdj;

/// Maximum per-element deviation of an f32 trace embedding from its f64
/// counterpart, under the relative metric `|a − b| / (1 + |b|)`. Shared
/// by the accuracy proptests in this module and the `infer_bench` gate,
/// so the tested tolerance and the CI-enforced tolerance cannot drift
/// apart.
pub const F32_EMBED_TOLERANCE: f64 = 1e-3;

/// Numeric precision of an inference encoder and the embeddings it
/// produces.
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize,
)]
pub enum Precision {
    /// Full precision: bit-parity guarantees, 8 bytes per element.
    #[default]
    F64,
    /// Reduced precision: accuracy-delta guarantees
    /// ([`F32_EMBED_TOLERANCE`]), 4 bytes per element, half the cache
    /// cost per embedding.
    F32,
}

impl Precision {
    /// Stable lowercase name (`"f64"` / `"f32"`), for stats and flags.
    pub fn label(self) -> &'static str {
        match self {
            Precision::F64 => "f64",
            Precision::F32 => "f32",
        }
    }

    /// Bytes per embedding element at this precision.
    pub fn bytes_per_element(self) -> usize {
        match self {
            Precision::F64 => 8,
            Precision::F32 => 4,
        }
    }
}

impl std::fmt::Display for Precision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl FromStr for Precision {
    type Err = String;

    fn from_str(s: &str) -> Result<Precision, String> {
        match s.trim().to_ascii_lowercase().as_str() {
            "f64" | "double" => Ok(Precision::F64),
            "f32" | "single" => Ok(Precision::F32),
            other => Err(format!("unknown precision `{other}` (expected f64 or f32)")),
        }
    }
}

/// Reusable cycle-blocked temporaries, all `(blocks·n) × hidden` — the
/// f32 mirror of the f64 path's scratch set.
#[derive(Debug, Default)]
struct Scratch32 {
    h: Matrix32,
    pq: Matrix32,
    pk: Matrix32,
    v: Matrix32,
    attn: Matrix32,
    spmm: Matrix32,
    denom: Matrix32,
    kv: Matrix32,
    ksum: Matrix32,
}

impl Scratch32 {
    fn ensure(&mut self, rows: usize, cols: usize) {
        for m in [
            &mut self.h,
            &mut self.pq,
            &mut self.pk,
            &mut self.v,
            &mut self.attn,
            &mut self.spmm,
        ] {
            if m.shape() != (rows, cols) {
                *m = Matrix32::zeros(rows, cols);
            }
        }
        if self.denom.shape() != (rows, 1) {
            self.denom = Matrix32::zeros(rows, 1);
        }
        if self.kv.shape() != (cols, cols) {
            self.kv = Matrix32::zeros(cols, cols);
        }
        if self.ksum.shape() != (cols, 1) {
            self.ksum = Matrix32::zeros(cols, 1);
        }
    }
}

/// A frozen f32 evaluator of a trained encoder (weights narrowed once at
/// construction). `Send + Sync` like its f64 sibling, so the same
/// threaded embedding pipeline drives either precision.
#[derive(Debug, Clone)]
pub struct InferenceEncoderF32 {
    input_dim: usize,
    hidden_dim: usize,
    alpha: f32,
    /// `[W, b]` pairs: embed, then (q, k, v, gcn) per layer, then out.
    weights: Vec<Matrix32>,
    layers: usize,
}

impl InferenceEncoderF32 {
    /// Narrow a trained encoder's state to f32 — the once-per-load
    /// conversion point of the reduced-precision path.
    pub fn from_state(state: &EncoderState) -> InferenceEncoderF32 {
        InferenceEncoderF32 {
            input_dim: state.config.input_dim,
            hidden_dim: state.config.hidden_dim,
            alpha: state.config.alpha as f32,
            weights: state.tensors.iter().map(Matrix32::from_f64).collect(),
            layers: state.config.layers,
        }
    }

    /// Embedding width.
    pub fn embedding_dim(&self) -> usize {
        self.hidden_dim
    }

    /// Feature width each cycle block must provide.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Cycles per chunk of the batched forward — the same live-byte
    /// budget as the f64 path, which f32 rows fill half as fast, so
    /// chunks run up to twice as deep on large graphs.
    pub fn cycle_chunk(&self, nodes: usize) -> usize {
        let row_bytes = nodes.max(1) * self.input_dim.max(self.hidden_dim).max(1) * 4;
        (CHUNK_BUDGET_BYTES / row_bytes).clamp(1, MAX_CYCLE_CHUNK)
    }

    /// Batched graph embedding with streamed feature fill —
    /// the f32 sibling of
    /// [`InferenceEncoder::encode_graph_batch_fill`](crate::InferenceEncoder::encode_graph_batch_fill).
    /// `fill_features(i, dst)` writes cycle `i`'s `n × input_dim` f32
    /// feature block into the stacked operand.
    ///
    /// # Panics
    ///
    /// Panics on feature-shape mismatch.
    pub fn encode_graph_batch_fill<F>(
        &self,
        adj: &SparseAdj,
        count: usize,
        chunk: usize,
        mut fill_features: F,
    ) -> Vec<Vec<f32>>
    where
        F: FnMut(usize, &mut [f32]),
    {
        if count == 0 {
            return Vec::new();
        }
        let n = adj.node_count();
        let chunk = chunk.clamp(1, count);
        let block_len = n * self.input_dim;
        let hd = self.hidden_dim;
        let mut pooled = Matrix32::zeros(count, hd);
        let mut scratch = Scratch32::default();
        let mut stacked = Matrix32::zeros(0, 0);
        let mut start = 0;
        while start < count {
            let b = chunk.min(count - start);
            if stacked.shape() != (b * n, self.input_dim) {
                stacked = Matrix32::zeros(b * n, self.input_dim);
            }
            for i in 0..b {
                fill_features(
                    start + i,
                    &mut stacked.as_mut_slice()[i * block_len..(i + 1) * block_len],
                );
            }
            self.hidden_blocks(
                adj,
                &stacked,
                b,
                &mut scratch,
                &mut pooled.as_mut_slice()[start * hd..(start + b) * hd],
            );
            start += b;
        }
        // One output projection for the whole batch.
        let w = &self.weights[(1 + self.layers * 4) * 2];
        let bias = &self.weights[(1 + self.layers * 4) * 2 + 1];
        let out = pooled.matmul(w);
        let scale = (n as f64 * crate::encoder::SUM_POOL_SCALE) as f32;
        (0..count)
            .map(|r| {
                out.row(r)
                    .iter()
                    .zip(bias.row(0))
                    .map(|(&v, &bv)| (v + bv) * scale)
                    .collect()
            })
            .collect()
    }

    /// Single-cycle graph embedding (convenience over the batch path, so
    /// both run the one cycle-blocked forward).
    ///
    /// # Panics
    ///
    /// Panics on feature-shape mismatch.
    pub fn encode_graph(&self, adj: &SparseAdj, features: &Matrix32) -> Vec<f32> {
        assert_eq!(
            features.shape(),
            (adj.node_count(), self.input_dim),
            "feature shape mismatch"
        );
        self.encode_graph_batch_fill(adj, 1, 1, |_, dst| dst.copy_from_slice(features.as_slice()))
            .pop()
            .expect("one embedding")
    }

    /// The cycle-blocked hidden pass — mirrors the f64
    /// `hidden_blocks`, with per-block pooling always fused (the f32
    /// path serves only the batched graph-embedding hot path).
    fn hidden_blocks(
        &self,
        adj: &SparseAdj,
        stacked: &Matrix32,
        blocks: usize,
        scr: &mut Scratch32,
        pool: &mut [f32],
    ) {
        let n = adj.node_count();
        assert_eq!(stacked.cols(), self.input_dim, "feature width mismatch");
        assert_eq!(stacked.rows(), n * blocks, "node count mismatch");

        let rows = n * blocks;
        scr.ensure(rows, self.hidden_dim);
        stacked.matmul_bias_act_sparse_rows_into(
            &self.weights[0],
            &self.weights[1],
            |v| v.max(0.0),
            0,
            rows,
            &mut scr.h,
        );
        for l in 0..self.layers {
            let base = 1 + l * 4;
            let w = |i: usize| &self.weights[i * 2];
            let b = |i: usize| &self.weights[i * 2 + 1];
            scr.h
                .matmul_bias_act_rows_into(w(base), b(base), |v| v.max(0.0) + 0.01, 0, rows, {
                    &mut scr.pq
                });
            scr.h.matmul_bias_act_rows_into(
                w(base + 1),
                b(base + 1),
                |v| v.max(0.0) + 0.01,
                0,
                rows,
                &mut scr.pk,
            );
            scr.h
                .matmul_bias_act_rows_into(w(base + 2), b(base + 2), |v| v, 0, rows, &mut scr.v);
            for blk in 0..blocks {
                let r0 = blk * n;
                scr.pk.matmul_tn_block_into(&scr.v, r0, n, &mut scr.kv);
                scr.pk.col_sums_block_into(r0, n, scr.ksum.as_mut_slice());
                scr.pq.matmul_rows_into(&scr.ksum, r0, n, &mut scr.denom);
                scr.pq
                    .matmul_div_rows_into(&scr.kv, &scr.denom, r0, n, &mut scr.attn);
            }
            adj.matmul_stacked_f32_into(&scr.h, blocks, &mut scr.spmm);
            if l + 1 == self.layers {
                scr.spmm.matmul_bias_act_mix_pool_rows_into(
                    w(base + 3),
                    b(base + 3),
                    |v| v.max(0.0),
                    self.alpha,
                    &mut scr.attn,
                    n,
                    pool,
                );
            } else {
                scr.spmm.matmul_bias_act_mix_rows_into(
                    w(base + 3),
                    b(base + 3),
                    |v| v.max(0.0),
                    self.alpha,
                    0,
                    rows,
                    &mut scr.attn,
                );
            }
            std::mem::swap(&mut scr.h, &mut scr.attn);
        }
        if self.layers == 0 {
            let hd = self.hidden_dim;
            for blk in 0..blocks {
                scr.h
                    .mean_rows_block_into(blk * n, n, &mut pool[blk * hd..(blk + 1) * hd]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::{EncoderConfig, GraphEncoder};
    use crate::infer::InferenceEncoder;
    use crate::matrix::Matrix;

    #[test]
    fn precision_parses_and_prints() {
        assert_eq!("f64".parse::<Precision>(), Ok(Precision::F64));
        assert_eq!("F32".parse::<Precision>(), Ok(Precision::F32));
        assert_eq!(" single ".parse::<Precision>(), Ok(Precision::F32));
        assert!("f16".parse::<Precision>().is_err());
        assert_eq!(Precision::F32.to_string(), "f32");
        assert_eq!(Precision::default(), Precision::F64);
        assert_eq!(Precision::F64.bytes_per_element(), 8);
        assert_eq!(Precision::F32.bytes_per_element(), 4);
    }

    #[test]
    fn is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<InferenceEncoderF32>();
    }

    #[test]
    fn f32_chunks_run_deeper_than_f64() {
        let cfg = EncoderConfig::default();
        let state = GraphEncoder::new(cfg).state();
        let f64_enc = InferenceEncoder::from_state(&state);
        let f32_enc = InferenceEncoderF32::from_state(&state);
        assert_eq!(f32_enc.embedding_dim(), f64_enc.embedding_dim());
        // Half the row bytes: chunks at least as deep everywhere, strictly
        // deeper somewhere between the clamp ends.
        let mut strictly_deeper = false;
        for n in [1usize, 10, 100, 500, 1000, 5000, 50_000] {
            let c64 = f64_enc.cycle_chunk(n);
            let c32 = f32_enc.cycle_chunk(n);
            assert!(c32 >= c64, "f32 chunk shrank at n={n}");
            strictly_deeper |= c32 > c64;
        }
        assert!(strictly_deeper, "halved bytes never deepened a chunk");
    }

    fn max_rel_delta(a: &[f32], b: &[f64]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(&x, &y)| (x as f64 - y).abs() / (1.0 + y.abs()))
            .fold(0.0, f64::max)
    }

    #[test]
    fn f32_embeddings_track_f64_within_tolerance() {
        let cfg = EncoderConfig {
            input_dim: 24,
            hidden_dim: 24,
            layers: 2,
            alpha: 0.5,
            seed: 7,
        };
        let state = GraphEncoder::new(cfg).state();
        let f64_enc = InferenceEncoder::from_state(&state);
        let f32_enc = InferenceEncoderF32::from_state(&state);
        let n = 21;
        let edges: Vec<(u32, u32)> = (0..n as u32).map(|i| (i, (i + 1) % n as u32)).collect();
        let adj = SparseAdj::normalized_from_edges(n, &edges);
        for seed in 0..4 {
            let feats = Matrix::xavier(n, 24, 400 + seed);
            let want = f64_enc.encode_graph(&adj, &feats);
            let got = f32_enc.encode_graph(&adj, &Matrix32::from_f64(&feats));
            let delta = max_rel_delta(&got, &want);
            assert!(
                delta <= F32_EMBED_TOLERANCE,
                "f32 drifted: rel delta {delta} > {F32_EMBED_TOLERANCE}"
            );
        }
    }

    #[test]
    fn f32_batch_chunking_stays_within_tolerance_of_f64() {
        let cfg = EncoderConfig {
            input_dim: 6,
            hidden_dim: 10,
            layers: 1,
            alpha: 0.4,
            seed: 11,
        };
        let state = GraphEncoder::new(cfg).state();
        let f64_enc = InferenceEncoder::from_state(&state);
        let f32_enc = InferenceEncoderF32::from_state(&state);
        let n = 5;
        let adj = SparseAdj::normalized_from_edges(n, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let feats: Vec<Matrix> = (0..7).map(|i| Matrix::xavier(n, 6, 600 + i)).collect();
        let want: Vec<Vec<f64>> = feats
            .iter()
            .map(|f| f64_enc.encode_graph(&adj, f))
            .collect();
        for chunk in [1usize, 3, 7] {
            let got = f32_enc.encode_graph_batch_fill(&adj, 7, chunk, |i, dst| {
                for (d, &s) in dst.iter_mut().zip(feats[i].as_slice()) {
                    *d = s as f32;
                }
            });
            for (t, (g, w)) in got.iter().zip(&want).enumerate() {
                let delta = max_rel_delta(g, w);
                assert!(
                    delta <= F32_EMBED_TOLERANCE,
                    "cycle {t} chunk {chunk}: rel delta {delta} > {F32_EMBED_TOLERANCE}"
                );
            }
        }
    }
}

#[cfg(test)]
mod accuracy_proptests {
    use proptest::prelude::*;

    use super::*;
    use crate::encoder::{EncoderConfig, GraphEncoder};
    use crate::infer::InferenceEncoder;
    use crate::matrix::Matrix;

    proptest! {
        #![proptest_config(ProptestConfig {
            cases: 24,
            .. ProptestConfig::default()
        })]

        /// The accuracy-delta contract of the f32 path: for random encoder
        /// configurations, graphs, and cycle counts, every element of every
        /// f32 embedding stays within [`F32_EMBED_TOLERANCE`] of its f64
        /// counterpart under the relative metric `|a − b| / (1 + |b|)` —
        /// the same metric and constant `infer_bench` gates in CI.
        #[test]
        fn f32_accuracy_delta_is_bounded(
            layers in 0usize..4,
            n in 1usize..12,
            cycles in 1usize..10,
            chunk in 1usize..6,
            alpha_pct in 0u64..101,
            seed in 0u64..1000,
        ) {
            let cfg = EncoderConfig {
                input_dim: 5,
                hidden_dim: 9,
                layers,
                alpha: alpha_pct as f64 / 100.0,
                seed,
            };
            let state = GraphEncoder::new(cfg).state();
            let f64_enc = InferenceEncoder::from_state(&state);
            let f32_enc = InferenceEncoderF32::from_state(&state);
            let mut edges: Vec<(u32, u32)> =
                (0..n as u32).map(|i| (i, (i + 1) % n as u32)).collect();
            if n > 3 {
                let stride = 2 + (seed as usize % (n - 2));
                edges.extend(
                    (0..n as u32).map(|i| (i, (i as usize + stride) as u32 % n as u32)),
                );
            }
            let adj = SparseAdj::normalized_from_edges(n, &edges);
            let feats: Vec<Matrix> =
                (0..cycles).map(|i| Matrix::xavier(n, 5, seed * 131 + i as u64)).collect();

            let got = f32_enc.encode_graph_batch_fill(&adj, cycles, chunk, |i, dst| {
                for (d, &s) in dst.iter_mut().zip(feats[i].as_slice()) {
                    *d = s as f32;
                }
            });
            prop_assert_eq!(got.len(), cycles);
            for (t, f) in feats.iter().enumerate() {
                let want = f64_enc.encode_graph(&adj, f);
                for (c, (&a, &b)) in got[t].iter().zip(&want).enumerate() {
                    let delta = (a as f64 - b).abs() / (1.0 + b.abs());
                    prop_assert!(
                        delta <= F32_EMBED_TOLERANCE,
                        "cycle {} col {}: rel delta {} > {}",
                        t, c, delta, F32_EMBED_TOLERANCE
                    );
                }
            }
        }
    }
}
