//! Tape-free encoder evaluation for deployment.
//!
//! [`GraphEncoder`](crate::GraphEncoder) builds an autodiff tape on every
//! forward pass — necessary for training, wasteful at inference. An
//! [`InferenceEncoder`] holds plain weight matrices and evaluates the
//! identical function with raw matrix math. It is `Send + Sync`, so
//! per-cycle sub-module embeddings can be computed on worker threads
//! (ATLAS's inference-speed claim, Table IV, depends on this path).
//!
//! # Cross-cycle batching
//!
//! At serving time the same sub-module graph is encoded once per trace
//! cycle, under feature matrices that differ only in the toggle channel.
//! Instead of running `cycles` separate small forwards, the batch path
//! ([`encode_graph_batch_with`](InferenceEncoder::encode_graph_batch_with))
//! stacks a chunk of `B` per-cycle feature matrices into one `(B·n) ×
//! input_dim` operand and runs the embed layer and every layer's q/k/v/gcn
//! linears as **one matmul per layer per chunk**. The cycle structure
//! survives as block semantics: the attention reductions (`kv = φ(K)ᵀ·V`,
//! `ksum = φ(K)ᵀ·1`) and the `Â·H` propagation are segmented per `n`-row
//! cycle block, because neither attention nor propagation may leak across
//! cycles. Every segmented kernel accumulates in the same per-element
//! order as its per-cycle counterpart, so batched results are
//! **bit-identical** to the per-cycle path for any chunk size.

use crate::encoder::EncoderState;
use crate::matrix::Matrix;
use crate::sparse::SparseAdj;

/// Soft cap on the live bytes of any one cycle-stacked matrix inside the
/// batched forward. A handful of `(B·n) × hidden` temporaries are alive
/// at once during a layer and the pass structure sweeps them repeatedly,
/// so this is sized to keep the whole working set near the last-level
/// cache rather than to fit RAM.
pub(crate) const CHUNK_BUDGET_BYTES: usize = 512 << 10;

/// Upper bound on cycles per chunk. Empirically the batched forward is
/// fastest with shallow chunks: they amortize scratch reuse and the
/// output projection while keeping every temporary cache-resident —
/// locality beats batch depth once per-chunk fixed costs are amortized.
pub(crate) const MAX_CYCLE_CHUNK: usize = 4;

/// Reusable large temporaries of the cycle-blocked hidden pass, all
/// `(blocks·n) × hidden`. Allocated lazily to the working shape and then
/// recycled across layers and chunks — the batched path's advantage is
/// amortizing exactly these buffers (and their cold first-touch cost)
/// over a whole chunk of cycles.
#[derive(Debug, Default)]
struct Scratch {
    h: Matrix,
    pq: Matrix,
    pk: Matrix,
    v: Matrix,
    attn: Matrix,
    spmm: Matrix,
    /// Attention normalizers, `rows × 1`.
    denom: Matrix,
    /// Per-block `φ(K)ᵀ·V`, `hidden × hidden`.
    kv: Matrix,
    /// Per-block `φ(K)ᵀ·1`, `hidden × 1`.
    ksum: Matrix,
}

impl Scratch {
    /// Make every buffer exactly `rows × cols`, reallocating only on
    /// shape change (at most twice per batch: main chunk + tail chunk).
    fn ensure(&mut self, rows: usize, cols: usize) {
        for m in [
            &mut self.h,
            &mut self.pq,
            &mut self.pk,
            &mut self.v,
            &mut self.attn,
            &mut self.spmm,
        ] {
            if m.shape() != (rows, cols) {
                *m = Matrix::zeros(rows, cols);
            }
        }
        if self.denom.shape() != (rows, 1) {
            self.denom = Matrix::zeros(rows, 1);
        }
        if self.kv.shape() != (cols, cols) {
            self.kv = Matrix::zeros(cols, cols);
        }
        if self.ksum.shape() != (cols, 1) {
            self.ksum = Matrix::zeros(cols, 1);
        }
    }
}

/// A frozen, thread-safe evaluator of a trained encoder.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use atlas_nn::{EncoderConfig, GraphEncoder, InferenceEncoder, Matrix, SparseAdj};
///
/// let cfg = EncoderConfig { input_dim: 4, hidden_dim: 8, layers: 1, alpha: 0.5, seed: 1 };
/// let trained = GraphEncoder::new(cfg);
/// let frozen = InferenceEncoder::from_state(&trained.state());
/// let adj = SparseAdj::normalized_from_edges(3, &[(0, 1)]);
/// let feats = Matrix::xavier(3, 4, 2);
/// let (_nodes, graph) = frozen.encode(&adj, &feats);
/// // Bit-identical to the training-path forward:
/// let (_, g2) = trained.encode(&Arc::new(adj), &feats);
/// for (a, b) in graph.iter().zip(g2.value().row(0)) {
///     assert_eq!(a, b);
/// }
/// ```
#[derive(Debug, Clone)]
pub struct InferenceEncoder {
    input_dim: usize,
    hidden_dim: usize,
    alpha: f64,
    /// `[W, b]` pairs: embed, then (q, k, v, gcn) per layer, then out.
    weights: Vec<Matrix>,
    layers: usize,
}

impl InferenceEncoder {
    /// Freeze a trained encoder's state.
    pub fn from_state(state: &EncoderState) -> InferenceEncoder {
        InferenceEncoder {
            input_dim: state.config.input_dim,
            hidden_dim: state.config.hidden_dim,
            alpha: state.config.alpha,
            weights: state.tensors.clone(),
            layers: state.config.layers,
        }
    }

    /// Embedding width.
    pub fn embedding_dim(&self) -> usize {
        self.hidden_dim
    }

    /// Cycles per chunk of the batched forward for a graph of `nodes`
    /// nodes: as many as fit the 512 KiB live-memory cap per stacked
    /// matrix, at least 1 (so arbitrarily large graphs still stream cycle
    /// by cycle) and at most 4. Chunk size never affects results — only
    /// memory and throughput.
    pub fn cycle_chunk(&self, nodes: usize) -> usize {
        let row_bytes = nodes.max(1) * self.input_dim.max(self.hidden_dim).max(1) * 8;
        (CHUNK_BUDGET_BYTES / row_bytes).clamp(1, MAX_CYCLE_CHUNK)
    }

    /// One affine layer: `x·W + b` for weight pair `idx`.
    fn affine(&self, idx: usize, x: &Matrix) -> Matrix {
        let mut out = x.matmul(&self.weights[idx * 2]);
        out.add_row_bias(&self.weights[idx * 2 + 1]);
        out
    }

    /// [`affine`](Self::affine) with a fused activation, into a reused
    /// scratch buffer: one kernel pass computes `act(x·W + b)`.
    fn affine_act_into(&self, idx: usize, x: &Matrix, act: impl Fn(f64) -> f64, out: &mut Matrix) {
        x.matmul_bias_act_rows_into(
            &self.weights[idx * 2],
            &self.weights[idx * 2 + 1],
            act,
            0,
            x.rows(),
            out,
        );
    }

    /// Evaluate: returns `(node_embeddings, graph_embedding)`.
    ///
    /// # Panics
    ///
    /// Panics on feature-shape mismatch.
    pub fn encode(&self, adj: &SparseAdj, features: &Matrix) -> (Matrix, Vec<f64>) {
        let h = self.hidden(adj, features);
        let nodes = self.affine(1 + self.layers * 4, &h);
        let s = nodes.rows() as f64 * crate::encoder::SUM_POOL_SCALE;
        let graph = nodes.mean_rows().row(0).iter().map(|v| v * s).collect();
        (nodes, graph)
    }

    /// The shared pre-projection hidden state of one cycle.
    fn hidden(&self, adj: &SparseAdj, features: &Matrix) -> Matrix {
        let mut scratch = Scratch::default();
        self.hidden_blocks(adj, features, 1, &mut scratch, None);
        scratch.h
    }

    /// The hidden pass over `blocks` cycle-stacked feature matrices:
    /// `stacked` is `(blocks·n) × input_dim`, one `n`-row block per cycle.
    /// The result is left in `scratch.h`.
    ///
    /// Linear layers run on the whole stack (one matmul per layer); the
    /// attention reductions and the adjacency propagation are segmented
    /// per block. With `blocks == 1` this *is* the per-cycle forward —
    /// there is only one code path, and every segmented kernel documents
    /// (and tests pin) bit-identity with its whole-matrix counterpart.
    /// All large temporaries live in `scratch`, so a caller looping over
    /// chunks allocates them once, not once per chunk per layer.
    ///
    /// When `pool` is given (a flat `blocks × hidden_dim` buffer), the
    /// per-block column means of the final hidden state are produced as a
    /// by-product: the last layer's fused mix epilogue accumulates each
    /// written row into its block's pool row as it stores it, so the
    /// batched encode skips a full re-read of `h` per chunk. The fused
    /// accumulation runs row-ascending per block with the divide last —
    /// the exact [`Matrix::mean_rows_block_into`] operation sequence — so
    /// pooled results are bit-identical to the unfused sweep.
    fn hidden_blocks(
        &self,
        adj: &SparseAdj,
        stacked: &Matrix,
        blocks: usize,
        scr: &mut Scratch,
        mut pool: Option<&mut [f64]>,
    ) {
        let n = adj.node_count();
        assert_eq!(stacked.cols(), self.input_dim, "feature width mismatch");
        assert_eq!(stacked.rows(), n * blocks, "node count mismatch");

        let rows = n * blocks;
        scr.ensure(rows, self.hidden_dim);
        // Feature matrices are mostly exact zeros (one-hot type channels +
        // a toggle bit), so the embed layer takes the zero-skipping kernel;
        // every later layer runs on dense activations and takes the
        // register tile. Both kernels are bit-identical on the same input.
        stacked.matmul_bias_act_sparse_rows_into(
            &self.weights[0],
            &self.weights[1],
            |v| v.max(0.0),
            0,
            rows,
            &mut scr.h,
        );
        for l in 0..self.layers {
            let base = 1 + l * 4;
            self.affine_act_into(base, &scr.h, |v| v.max(0.0) + 0.01, &mut scr.pq);
            self.affine_act_into(base + 1, &scr.h, |v| v.max(0.0) + 0.01, &mut scr.pk);
            self.affine_act_into(base + 2, &scr.h, |v| v, &mut scr.v);
            // Segmented linear attention: kv, ksum, and the normalizer are
            // per-cycle reductions over each n-row block.
            for b in 0..blocks {
                let r0 = b * n;
                scr.pk.matmul_tn_block_into(&scr.v, r0, n, &mut scr.kv); // d×d
                scr.pk.col_sums_block_into(r0, n, scr.ksum.as_mut_slice()); // d×1
                scr.pq.matmul_rows_into(&scr.ksum, r0, n, &mut scr.denom); // n×1
                                                                           // Numerator with the normalizer divided in at write-back.
                scr.pq
                    .matmul_div_rows_into(&scr.kv, &scr.denom, r0, n, &mut scr.attn);
            }
            // Propagation branch: Â applied to each cycle block, then the
            // gcn linear with relu and the α-mix fused into its write-back
            // over the attention buffer, which becomes the next layer's
            // input.
            adj.matmul_stacked_into(&scr.h, blocks, &mut scr.spmm);
            if let (true, Some(pool)) = (l + 1 == self.layers, pool.as_deref_mut()) {
                // Last layer with pooling requested: fold the per-block
                // mean into this epilogue's write-back.
                scr.spmm.matmul_bias_act_mix_pool_rows_into(
                    &self.weights[(base + 3) * 2],
                    &self.weights[(base + 3) * 2 + 1],
                    |v| v.max(0.0),
                    self.alpha,
                    &mut scr.attn,
                    n,
                    pool,
                );
            } else {
                scr.spmm.matmul_bias_act_mix_rows_into(
                    &self.weights[(base + 3) * 2],
                    &self.weights[(base + 3) * 2 + 1],
                    |v| v.max(0.0),
                    self.alpha,
                    0,
                    rows,
                    &mut scr.attn,
                );
            }
            std::mem::swap(&mut scr.h, &mut scr.attn);
        }
        if self.layers == 0 {
            // No layer epilogue to fuse into: pool the embed output the
            // unfused way.
            if let Some(pool) = pool {
                let hd = self.hidden_dim;
                for b in 0..blocks {
                    scr.h
                        .mean_rows_block_into(b * n, n, &mut pool[b * hd..(b + 1) * hd]);
                }
            }
        }
    }

    /// Evaluate only the graph embedding — the inference hot path.
    ///
    /// Exploits that the output layer is affine: the mean of `h·W + b`
    /// over rows equals `mean(h)·W + b`, so the final projection runs on a
    /// single row instead of all `n` nodes. Identical result to
    /// [`encode`](Self::encode)'s graph output.
    ///
    /// # Panics
    ///
    /// Panics on feature-shape mismatch.
    pub fn encode_graph(&self, adj: &SparseAdj, features: &Matrix) -> Vec<f64> {
        let h = self.hidden(adj, features);
        let n = h.rows() as f64;
        let pooled = h.mean_rows();
        let w = &self.weights[(1 + self.layers * 4) * 2];
        let b = &self.weights[(1 + self.layers * 4) * 2 + 1];
        let out = pooled.matmul(w);
        let scale = n * crate::encoder::SUM_POOL_SCALE;
        out.row(0)
            .iter()
            .zip(b.row(0))
            .map(|(&v, &bv)| (v + bv) * scale)
            .collect()
    }

    /// Batched [`encode_graph`](Self::encode_graph): embed the same graph
    /// under many feature matrices (one per cycle) in one call.
    ///
    /// Cycles are processed in memory-capped chunks through the
    /// cycle-blocked forward: one matmul
    /// per layer per chunk instead of per cycle, segmented attention and
    /// propagation per cycle block, and one output projection for the
    /// whole batch. Results are bit-identical to calling
    /// [`encode_graph`](Self::encode_graph) per feature matrix, because
    /// every output element is the same dot-product sequence.
    ///
    /// # Panics
    ///
    /// Panics on feature-shape mismatch in any batch entry.
    pub fn encode_graph_batch(&self, adj: &SparseAdj, features: &[Matrix]) -> Vec<Vec<f64>> {
        self.encode_graph_batch_with(adj, features.len(), |i| features[i].clone())
    }

    /// [`encode_graph_batch`](Self::encode_graph_batch) with streamed
    /// feature construction: `make_features(i)` is called once per batch
    /// entry and the matrix is dropped as soon as it is copied into the
    /// current cycle chunk, so at most one chunk of features (bounded by
    /// [`cycle_chunk`](Self::cycle_chunk), never a whole trace on a large
    /// sub-module) is live at a time regardless of batch size.
    ///
    /// # Panics
    ///
    /// Panics on feature-shape mismatch in any batch entry.
    pub fn encode_graph_batch_with<F>(
        &self,
        adj: &SparseAdj,
        count: usize,
        make_features: F,
    ) -> Vec<Vec<f64>>
    where
        F: FnMut(usize) -> Matrix,
    {
        let chunk = self.cycle_chunk(adj.node_count());
        self.encode_graph_batch_chunked(adj, count, chunk, make_features)
    }

    /// [`encode_graph_batch_with`](Self::encode_graph_batch_with) with an
    /// explicit cycle-chunk size (clamped to `1..=count`). Exposed so
    /// callers scheduling their own chunks (and the chunk-boundary parity
    /// tests) can pick `chunk`; results are bit-identical for every
    /// choice.
    ///
    /// # Panics
    ///
    /// Panics on feature-shape mismatch in any batch entry.
    pub fn encode_graph_batch_chunked<F>(
        &self,
        adj: &SparseAdj,
        count: usize,
        chunk: usize,
        mut make_features: F,
    ) -> Vec<Vec<f64>>
    where
        F: FnMut(usize) -> Matrix,
    {
        let n = adj.node_count();
        let shape = (n, self.input_dim);
        self.encode_graph_batch_fill(adj, count, chunk, |i, dst| {
            let feats = make_features(i);
            assert_eq!(
                feats.shape(),
                shape,
                "feature shape mismatch in batch entry {i}"
            );
            dst.copy_from_slice(feats.as_slice());
        })
    }

    /// The zero-copy core of the batched encode: `fill_features(i, dst)`
    /// writes cycle `i`'s `n × input_dim` feature block directly into the
    /// row-major `dst` slice of the current chunk's stacked operand, so
    /// callers that synthesize features (static features + a toggle bit)
    /// can skip building a per-cycle [`Matrix`] entirely.
    ///
    /// # Panics
    ///
    /// Panics on feature-shape mismatch in any batch entry.
    pub fn encode_graph_batch_fill<F>(
        &self,
        adj: &SparseAdj,
        count: usize,
        chunk: usize,
        mut fill_features: F,
    ) -> Vec<Vec<f64>>
    where
        F: FnMut(usize, &mut [f64]),
    {
        if count == 0 {
            return Vec::new();
        }
        let n = adj.node_count();
        let chunk = chunk.clamp(1, count);
        let block_len = n * self.input_dim;
        let mut pooled = Matrix::zeros(count, self.hidden_dim);
        let mut scratch = Scratch::default();
        let mut stacked = Matrix::zeros(0, 0);
        let mut start = 0;
        while start < count {
            let b = chunk.min(count - start);
            if stacked.shape() != (b * n, self.input_dim) {
                stacked = Matrix::zeros(b * n, self.input_dim);
            }
            for i in 0..b {
                fill_features(
                    start + i,
                    &mut stacked.as_mut_slice()[i * block_len..(i + 1) * block_len],
                );
            }
            // Per-cycle pooling is fused into the last layer's mix
            // epilogue inside `hidden_blocks` — no separate sweep.
            let hd = self.hidden_dim;
            self.hidden_blocks(
                adj,
                &stacked,
                b,
                &mut scratch,
                Some(&mut pooled.as_mut_slice()[start * hd..(start + b) * hd]),
            );
            start += b;
        }
        // One output projection for the whole batch.
        let w = &self.weights[(1 + self.layers * 4) * 2];
        let bias = &self.weights[(1 + self.layers * 4) * 2 + 1];
        let out = pooled.matmul(w);
        let scale = n as f64 * crate::encoder::SUM_POOL_SCALE;
        (0..count)
            .map(|r| {
                out.row(r)
                    .iter()
                    .zip(bias.row(0))
                    .map(|(&v, &bv)| (v + bv) * scale)
                    .collect()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use super::*;
    use crate::encoder::{EncoderConfig, GraphEncoder};

    #[test]
    fn matches_training_forward_exactly() {
        let cfg = EncoderConfig {
            input_dim: 6,
            hidden_dim: 12,
            layers: 2,
            alpha: 0.5,
            seed: 3,
        };
        let trained = GraphEncoder::new(cfg);
        let frozen = InferenceEncoder::from_state(&trained.state());
        for seed in 0..4 {
            let n = 5 + seed as usize;
            let edges: Vec<(u32, u32)> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
            let adj = SparseAdj::normalized_from_edges(n, &edges);
            let feats = Matrix::xavier(n, 6, 50 + seed);
            let (nodes_f, graph_f) = frozen.encode(&adj, &feats);
            let (nodes_t, graph_t) = trained.encode(&Arc::new(adj), &feats);
            for r in 0..n {
                for c in 0..12 {
                    assert!(
                        (nodes_f.get(r, c) - nodes_t.value().get(r, c)).abs() < 1e-12,
                        "node embedding mismatch"
                    );
                }
            }
            for (a, b) in graph_f.iter().zip(graph_t.value().row(0)) {
                assert!((a - b).abs() < 1e-12, "graph embedding mismatch");
            }
        }
    }

    #[test]
    fn is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<InferenceEncoder>();
    }
}

#[cfg(test)]
mod graph_fast_path_tests {
    use super::*;
    use crate::encoder::{EncoderConfig, GraphEncoder};

    #[test]
    fn encode_graph_batch_is_bit_identical() {
        let cfg = EncoderConfig {
            input_dim: 7,
            hidden_dim: 12,
            layers: 2,
            alpha: 0.5,
            seed: 21,
        };
        let frozen = InferenceEncoder::from_state(&GraphEncoder::new(cfg).state());
        let n = 6;
        let edges: Vec<(u32, u32)> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
        let adj = SparseAdj::normalized_from_edges(n, &edges);
        let batch: Vec<Matrix> = (0..5).map(|i| Matrix::xavier(n, 7, 100 + i)).collect();
        let batched = frozen.encode_graph_batch(&adj, &batch);
        assert_eq!(batched.len(), batch.len());
        for (feats, got) in batch.iter().zip(&batched) {
            let single = frozen.encode_graph(&adj, feats);
            assert_eq!(&single, got, "batched embedding diverged");
        }
        assert!(frozen.encode_graph_batch(&adj, &[]).is_empty());
    }

    #[test]
    fn encode_graph_matches_full_encode() {
        let cfg = EncoderConfig {
            input_dim: 5,
            hidden_dim: 10,
            layers: 2,
            alpha: 0.5,
            seed: 9,
        };
        let frozen = InferenceEncoder::from_state(&GraphEncoder::new(cfg).state());
        for n in [1usize, 3, 9] {
            let edges: Vec<(u32, u32)> = (0..n.saturating_sub(1) as u32)
                .map(|i| (i, i + 1))
                .collect();
            let adj = SparseAdj::normalized_from_edges(n, &edges);
            let feats = Matrix::xavier(n, 5, n as u64);
            let (_, full) = frozen.encode(&adj, &feats);
            let fast = frozen.encode_graph(&adj, &feats);
            for (a, b) in full.iter().zip(&fast) {
                assert!((a - b).abs() < 1e-9, "fast path diverged: {a} vs {b}");
            }
        }
    }

    #[test]
    fn serving_width_batch_is_bit_identical() {
        // The serving configuration (hidden 24) routes the linears through
        // the kernel's 24-wide full-row specialization on graphs with
        // ≥ 16 nodes per cycle block; pin batched-vs-per-cycle parity at
        // exactly that width and size.
        let cfg = EncoderConfig {
            input_dim: 24,
            hidden_dim: 24,
            layers: 1,
            alpha: 0.5,
            seed: 33,
        };
        let frozen = InferenceEncoder::from_state(&GraphEncoder::new(cfg).state());
        let n = 21;
        let edges: Vec<(u32, u32)> = (0..n as u32).map(|i| (i, (i + 1) % n as u32)).collect();
        let adj = SparseAdj::normalized_from_edges(n, &edges);
        let feats: Vec<Matrix> = (0..9).map(|i| Matrix::xavier(n, 24, 900 + i)).collect();
        for chunk in [1usize, 4, 16] {
            let batched = frozen.encode_graph_batch_chunked(&adj, 9, chunk, |i| feats[i].clone());
            for (t, f) in feats.iter().enumerate() {
                assert_eq!(
                    batched[t],
                    frozen.encode_graph(&adj, f),
                    "cycle {t} chunk {chunk} diverged"
                );
            }
        }
    }

    #[test]
    fn cycle_chunk_bounds() {
        let cfg = EncoderConfig::default();
        let frozen = InferenceEncoder::from_state(&GraphEncoder::new(cfg).state());
        // Huge graphs still stream cycle by cycle.
        assert_eq!(frozen.cycle_chunk(usize::MAX / 1024), 1);
        // Tiny graphs are capped, not unbounded.
        assert_eq!(frozen.cycle_chunk(1), 4);
        // Mid-size graphs land in between, monotonically non-increasing.
        let mut last = usize::MAX;
        for n in [10, 100, 1000, 10_000, 100_000] {
            let c = frozen.cycle_chunk(n);
            assert!((1..=4).contains(&c));
            assert!(c <= last, "chunk grew with node count");
            last = c;
        }
    }
}

#[cfg(test)]
mod batched_parity_proptests {
    use proptest::prelude::*;

    use super::*;
    use crate::encoder::{EncoderConfig, GraphEncoder};

    /// A deterministic ring-with-chords graph so proptests exercise both
    /// sparse and denser adjacency rows.
    fn test_adj(n: usize, seed: u64) -> SparseAdj {
        let mut edges: Vec<(u32, u32)> = (0..n as u32).map(|i| (i, (i + 1) % n as u32)).collect();
        if n > 3 {
            let stride = 2 + (seed as usize % (n - 2));
            edges.extend((0..n as u32).map(|i| (i, (i as usize + stride) as u32 % n as u32)));
        }
        SparseAdj::normalized_from_edges(n, &edges)
    }

    proptest! {
        #![proptest_config(ProptestConfig {
            cases: 24,
            .. ProptestConfig::default()
        })]

        /// The tentpole invariant: the layer-batched forward is
        /// bit-identical to the per-cycle path for every combination of
        /// layer depth, mixing weight, node count, cycle count, and chunk
        /// size — including chunks that do not divide the cycle count and
        /// chunks larger than the whole batch.
        #[test]
        fn layer_batched_hidden_is_bit_identical(
            layers in 1usize..4,
            n in 1usize..12,
            cycles in 1usize..14,
            chunk in 1usize..17,
            alpha_pct in 0u64..101,
            seed in 0u64..1000,
        ) {
            let cfg = EncoderConfig {
                input_dim: 5,
                hidden_dim: 9,
                layers,
                alpha: alpha_pct as f64 / 100.0,
                seed,
            };
            let frozen = InferenceEncoder::from_state(&GraphEncoder::new(cfg).state());
            let adj = test_adj(n, seed);
            let feats: Vec<Matrix> =
                (0..cycles).map(|i| Matrix::xavier(n, 5, seed * 131 + i as u64)).collect();

            let batched = frozen.encode_graph_batch_chunked(
                &adj, cycles, chunk, |i| feats[i].clone(),
            );
            prop_assert_eq!(batched.len(), cycles);
            for (t, f) in feats.iter().enumerate() {
                let per_cycle = frozen.encode_graph(&adj, f);
                prop_assert_eq!(&batched[t], &per_cycle, "cycle {} diverged", t);
            }
        }

        /// Chunk size is an implementation detail: any two chunkings of
        /// the same batch agree bitwise (covers `B` not dividing `cycles`
        /// and `cycles < B` against each other, not just the per-cycle
        /// reference).
        #[test]
        fn chunkings_agree_with_each_other(
            cycles in 1usize..12,
            chunk_a in 1usize..15,
            chunk_b in 1usize..15,
            seed in 0u64..500,
        ) {
            let cfg = EncoderConfig {
                input_dim: 4,
                hidden_dim: 8,
                layers: 2,
                alpha: 0.5,
                seed,
            };
            let frozen = InferenceEncoder::from_state(&GraphEncoder::new(cfg).state());
            let n = 5;
            let adj = test_adj(n, seed);
            let feats: Vec<Matrix> =
                (0..cycles).map(|i| Matrix::xavier(n, 4, seed * 977 + i as u64)).collect();
            let a = frozen.encode_graph_batch_chunked(&adj, cycles, chunk_a, |i| feats[i].clone());
            let b = frozen.encode_graph_batch_chunked(&adj, cycles, chunk_b, |i| feats[i].clone());
            prop_assert_eq!(a, b);
        }
    }
}
