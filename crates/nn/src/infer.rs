//! Tape-free encoder evaluation for deployment.
//!
//! [`GraphEncoder`](crate::GraphEncoder) builds an autodiff tape on every
//! forward pass — necessary for training, wasteful at inference. An
//! [`InferenceEncoder`] holds plain weight matrices and evaluates the
//! identical function with raw matrix math. It is `Send + Sync`, so
//! per-cycle sub-module embeddings can be computed on worker threads
//! (ATLAS's inference-speed claim, Table IV, depends on this path).

use crate::encoder::EncoderState;
use crate::matrix::Matrix;
use crate::sparse::SparseAdj;

/// A frozen, thread-safe evaluator of a trained encoder.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use atlas_nn::{EncoderConfig, GraphEncoder, InferenceEncoder, Matrix, SparseAdj};
///
/// let cfg = EncoderConfig { input_dim: 4, hidden_dim: 8, layers: 1, alpha: 0.5, seed: 1 };
/// let trained = GraphEncoder::new(cfg);
/// let frozen = InferenceEncoder::from_state(&trained.state());
/// let adj = SparseAdj::normalized_from_edges(3, &[(0, 1)]);
/// let feats = Matrix::xavier(3, 4, 2);
/// let (_nodes, graph) = frozen.encode(&adj, &feats);
/// // Bit-identical to the training-path forward:
/// let (_, g2) = trained.encode(&Arc::new(adj), &feats);
/// for (a, b) in graph.iter().zip(g2.value().row(0)) {
///     assert_eq!(a, b);
/// }
/// ```
#[derive(Debug, Clone)]
pub struct InferenceEncoder {
    input_dim: usize,
    hidden_dim: usize,
    alpha: f64,
    /// `[W, b]` pairs: embed, then (q, k, v, gcn) per layer, then out.
    weights: Vec<Matrix>,
    layers: usize,
}

impl InferenceEncoder {
    /// Freeze a trained encoder's state.
    pub fn from_state(state: &EncoderState) -> InferenceEncoder {
        InferenceEncoder {
            input_dim: state.config.input_dim,
            hidden_dim: state.config.hidden_dim,
            alpha: state.config.alpha,
            weights: state.tensors.clone(),
            layers: state.config.layers,
        }
    }

    /// Embedding width.
    pub fn embedding_dim(&self) -> usize {
        self.hidden_dim
    }

    /// Evaluate: returns `(node_embeddings, graph_embedding)`.
    ///
    /// # Panics
    ///
    /// Panics on feature-shape mismatch.
    pub fn encode(&self, adj: &SparseAdj, features: &Matrix) -> (Matrix, Vec<f64>) {
        let h = self.hidden(adj, features);
        let w = &self.weights[(1 + self.layers * 4) * 2];
        let b = &self.weights[(1 + self.layers * 4) * 2 + 1];
        let mut nodes = h.matmul(w);
        for r in 0..nodes.rows() {
            for c in 0..nodes.cols() {
                let v = nodes.get(r, c) + b.get(0, c);
                nodes.set(r, c, v);
            }
        }
        let s = nodes.rows() as f64 * crate::encoder::SUM_POOL_SCALE;
        let graph = nodes.mean_rows().map(|v| v * s).row(0).to_vec();
        (nodes, graph)
    }

    /// The shared pre-projection hidden state.
    fn hidden(&self, adj: &SparseAdj, features: &Matrix) -> Matrix {
        assert_eq!(features.cols(), self.input_dim, "feature width mismatch");
        assert_eq!(features.rows(), adj.node_count(), "node count mismatch");
        let linear = |idx: usize, x: &Matrix| -> Matrix {
            let w = &self.weights[idx * 2];
            let b = &self.weights[idx * 2 + 1];
            let mut out = x.matmul(w);
            for r in 0..out.rows() {
                for c in 0..out.cols() {
                    let v = out.get(r, c) + b.get(0, c);
                    out.set(r, c, v);
                }
            }
            out
        };
        let relu = |m: Matrix| m.map(|v| v.max(0.0));

        let mut h = relu(linear(0, features));
        let n = features.rows();
        for l in 0..self.layers {
            let base = 1 + l * 4;
            let pq = linear(base, &h).map(|v| v.max(0.0) + 0.01);
            let pk = linear(base + 1, &h).map(|v| v.max(0.0) + 0.01);
            let v = linear(base + 2, &h);
            let kv = pk.matmul_tn(&v); // d×d
            let num = pq.matmul(&kv); // n×d
            let ksum = pk.matmul_tn(&Matrix::full(n, 1, 1.0)); // d×1
            let denom = pq.matmul(&ksum); // n×1
            let mut attn = num;
            for r in 0..n {
                let dv = denom.get(r, 0);
                for c in 0..attn.cols() {
                    attn.set(r, c, attn.get(r, c) / dv);
                }
            }
            let prop = relu(linear(base + 3, &h.spmm_by(adj)));
            let mut mixed = Matrix::zeros(n, self.hidden_dim);
            for i in 0..mixed.as_slice().len() {
                mixed.as_mut_slice()[i] = (self.alpha * attn.as_slice()[i]
                    + (1.0 - self.alpha) * prop.as_slice()[i])
                    .max(0.0);
            }
            h = mixed;
        }
        h
    }

    /// Evaluate only the graph embedding — the inference hot path.
    ///
    /// Exploits that the output layer is affine: the mean of `h·W + b`
    /// over rows equals `mean(h)·W + b`, so the final projection runs on a
    /// single row instead of all `n` nodes. Identical result to
    /// [`encode`](Self::encode)'s graph output.
    ///
    /// # Panics
    ///
    /// Panics on feature-shape mismatch.
    pub fn encode_graph(&self, adj: &SparseAdj, features: &Matrix) -> Vec<f64> {
        let h = self.hidden(adj, features);
        let n = h.rows() as f64;
        let pooled = h.mean_rows();
        let w = &self.weights[(1 + self.layers * 4) * 2];
        let b = &self.weights[(1 + self.layers * 4) * 2 + 1];
        let mut out = pooled.matmul(w);
        let scale = n * crate::encoder::SUM_POOL_SCALE;
        for c in 0..out.cols() {
            let v = (out.get(0, c) + b.get(0, c)) * scale;
            out.set(0, c, v);
        }
        out.row(0).to_vec()
    }

    /// Batched [`encode_graph`](Self::encode_graph): embed the same graph
    /// under many feature matrices (one per cycle) in one call.
    ///
    /// The per-cycle pooled hidden states are stacked into a single
    /// `B×hidden` matrix so the output projection runs as **one** matmul
    /// for the whole batch instead of `B` single-row products — the
    /// serving path's inner loop. Results are bit-identical to calling
    /// [`encode_graph`](Self::encode_graph) per feature matrix, because
    /// each output row is the same dot-product sequence.
    ///
    /// # Panics
    ///
    /// Panics on feature-shape mismatch in any batch entry.
    pub fn encode_graph_batch(&self, adj: &SparseAdj, features: &[Matrix]) -> Vec<Vec<f64>> {
        self.encode_graph_batch_with(adj, features.len(), |i| features[i].clone())
    }

    /// [`encode_graph_batch`](Self::encode_graph_batch) with streamed
    /// feature construction: `make_features(i)` is called once per batch
    /// entry and the matrix is dropped as soon as it is pooled, so only
    /// one `n×input_dim` feature matrix is live at a time regardless of
    /// batch size (a whole-trace batch over a large sub-module would
    /// otherwise hold gigabytes of features at once).
    ///
    /// # Panics
    ///
    /// Panics on feature-shape mismatch in any batch entry.
    pub fn encode_graph_batch_with<F>(
        &self,
        adj: &SparseAdj,
        count: usize,
        mut make_features: F,
    ) -> Vec<Vec<f64>>
    where
        F: FnMut(usize) -> Matrix,
    {
        if count == 0 {
            return Vec::new();
        }
        let n = adj.node_count() as f64;
        let mut pooled = Matrix::zeros(count, self.hidden_dim);
        for row in 0..count {
            let feats = make_features(row);
            let h = self.hidden(adj, &feats);
            let mean = h.mean_rows();
            for c in 0..self.hidden_dim {
                pooled.set(row, c, mean.get(0, c));
            }
        }
        let w = &self.weights[(1 + self.layers * 4) * 2];
        let b = &self.weights[(1 + self.layers * 4) * 2 + 1];
        let mut out = pooled.matmul(w);
        let scale = n * crate::encoder::SUM_POOL_SCALE;
        for r in 0..out.rows() {
            for c in 0..out.cols() {
                let v = (out.get(r, c) + b.get(0, c)) * scale;
                out.set(r, c, v);
            }
        }
        (0..out.rows()).map(|r| out.row(r).to_vec()).collect()
    }
}

impl Matrix {
    /// `Â × self` convenience used by the inference path.
    fn spmm_by(&self, adj: &SparseAdj) -> Matrix {
        adj.matmul(self)
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use super::*;
    use crate::encoder::{EncoderConfig, GraphEncoder};

    #[test]
    fn matches_training_forward_exactly() {
        let cfg = EncoderConfig {
            input_dim: 6,
            hidden_dim: 12,
            layers: 2,
            alpha: 0.5,
            seed: 3,
        };
        let trained = GraphEncoder::new(cfg);
        let frozen = InferenceEncoder::from_state(&trained.state());
        for seed in 0..4 {
            let n = 5 + seed as usize;
            let edges: Vec<(u32, u32)> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
            let adj = SparseAdj::normalized_from_edges(n, &edges);
            let feats = Matrix::xavier(n, 6, 50 + seed);
            let (nodes_f, graph_f) = frozen.encode(&adj, &feats);
            let (nodes_t, graph_t) = trained.encode(&Arc::new(adj), &feats);
            for r in 0..n {
                for c in 0..12 {
                    assert!(
                        (nodes_f.get(r, c) - nodes_t.value().get(r, c)).abs() < 1e-12,
                        "node embedding mismatch"
                    );
                }
            }
            for (a, b) in graph_f.iter().zip(graph_t.value().row(0)) {
                assert!((a - b).abs() < 1e-12, "graph embedding mismatch");
            }
        }
    }

    #[test]
    fn is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<InferenceEncoder>();
    }
}

#[cfg(test)]
mod graph_fast_path_tests {
    use super::*;
    use crate::encoder::{EncoderConfig, GraphEncoder};

    #[test]
    fn encode_graph_batch_is_bit_identical() {
        let cfg = EncoderConfig {
            input_dim: 7,
            hidden_dim: 12,
            layers: 2,
            alpha: 0.5,
            seed: 21,
        };
        let frozen = InferenceEncoder::from_state(&GraphEncoder::new(cfg).state());
        let n = 6;
        let edges: Vec<(u32, u32)> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
        let adj = SparseAdj::normalized_from_edges(n, &edges);
        let batch: Vec<Matrix> = (0..5).map(|i| Matrix::xavier(n, 7, 100 + i)).collect();
        let batched = frozen.encode_graph_batch(&adj, &batch);
        assert_eq!(batched.len(), batch.len());
        for (feats, got) in batch.iter().zip(&batched) {
            let single = frozen.encode_graph(&adj, feats);
            assert_eq!(&single, got, "batched embedding diverged");
        }
        assert!(frozen.encode_graph_batch(&adj, &[]).is_empty());
    }

    #[test]
    fn encode_graph_matches_full_encode() {
        let cfg = EncoderConfig {
            input_dim: 5,
            hidden_dim: 10,
            layers: 2,
            alpha: 0.5,
            seed: 9,
        };
        let frozen = InferenceEncoder::from_state(&GraphEncoder::new(cfg).state());
        for n in [1usize, 3, 9] {
            let edges: Vec<(u32, u32)> = (0..n.saturating_sub(1) as u32)
                .map(|i| (i, i + 1))
                .collect();
            let adj = SparseAdj::normalized_from_edges(n, &edges);
            let feats = Matrix::xavier(n, 5, n as u64);
            let (_, full) = frozen.encode(&adj, &feats);
            let fast = frozen.encode_graph(&adj, &feats);
            for (a, b) in full.iter().zip(&fast) {
                assert!((a - b).abs() < 1e-9, "fast path diverged: {a} vs {b}");
            }
        }
    }
}
