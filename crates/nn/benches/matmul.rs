//! Microbenchmarks of the dense matmul kernels in isolation, so kernel
//! changes are measurable without running a whole embed trace.
//!
//! Shapes mirror the inference hot path: `rows × d` activations against
//! `d × d` weights at the serving width (24) and the training-default
//! width (48), tall cycle-stacked operands, the segmented attention
//! reductions, and the sparse feature-to-embed product.

use std::time::Duration;

use atlas_nn::Matrix;
use criterion::{criterion_group, criterion_main, Criterion};

/// Post-relu-like operand: ~half exact zeros, like a hidden state.
fn hidden_like(rows: usize, cols: usize, seed: u64) -> Matrix {
    Matrix::xavier(rows, cols, seed).map(|v| v.max(0.0))
}

/// Feature-like operand: ~85% exact zeros (one-hot plus a few channels).
fn feature_like(rows: usize, cols: usize) -> Matrix {
    let mut f = Matrix::zeros(rows, cols);
    for i in 0..rows {
        f.set(i, i % (cols.saturating_sub(6)).max(1), 1.0);
        f.set(i, cols - 2, 0.3);
        f.set(i, cols - 1, 0.7);
    }
    f
}

fn dense_linears(c: &mut Criterion) {
    let mut g = c.benchmark_group("matmul_linear");
    for &(rows, d) in &[(168usize, 24usize), (672, 24), (168, 48), (672, 48)] {
        let a = hidden_like(rows, d, 1);
        let w = Matrix::xavier(d, d, 2);
        let bias = Matrix::xavier(1, d, 3);
        g.bench_function(&format!("plain/{rows}x{d}x{d}"), |b| {
            b.iter(|| a.matmul(&w))
        });
        let mut out = Matrix::zeros(rows, d);
        g.bench_function(&format!("fused_bias_relu/{rows}x{d}x{d}"), |b| {
            b.iter(|| a.matmul_bias_act_rows_into(&w, &bias, |v| v.max(0.0), 0, rows, &mut out))
        });
    }
    g.finish();
}

fn attention_reductions(c: &mut Criterion) {
    let mut g = c.benchmark_group("matmul_attention");
    for &(n, d) in &[(20usize, 24usize), (168, 24), (168, 48)] {
        let blocks = 4;
        let pk = hidden_like(blocks * n, d, 4).map(|v| v + 0.01);
        let v = hidden_like(blocks * n, d, 5);
        g.bench_function(&format!("kv_blocks/{blocks}x{n}x{d}"), |b| {
            b.iter(|| {
                for blk in 0..blocks {
                    std::hint::black_box(pk.matmul_tn_block(&v, blk * n, n));
                }
            })
        });
        g.bench_function(&format!("ksum_blocks/{blocks}x{n}x{d}"), |b| {
            b.iter(|| {
                for blk in 0..blocks {
                    std::hint::black_box(pk.col_sums_block(blk * n, n));
                }
            })
        });
    }
    g.finish();
}

fn sparse_embed(c: &mut Criterion) {
    let mut g = c.benchmark_group("matmul_embed");
    for &rows in &[168usize, 672] {
        let feats = feature_like(rows, 24);
        let w = Matrix::xavier(24, 24, 6);
        let bias = Matrix::xavier(1, 24, 7);
        let mut out = Matrix::zeros(rows, 24);
        g.bench_function(&format!("sparse_skip/{rows}x24x24"), |b| {
            b.iter(|| {
                feats.matmul_bias_act_sparse_rows_into(&w, &bias, |v| v.max(0.0), 0, rows, &mut out)
            })
        });
        g.bench_function(&format!("dense_tile/{rows}x24x24"), |b| {
            b.iter(|| feats.matmul_bias_act_rows_into(&w, &bias, |v| v.max(0.0), 0, rows, &mut out))
        });
    }
    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500))
        .sample_size(30)
}

criterion_group! {
    name = benches;
    config = config();
    targets = dense_linears, attention_reductions, sparse_embed
}
criterion_main!(benches);
