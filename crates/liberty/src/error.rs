//! Error type for the liblite text format.

use std::fmt;

/// Machine-readable classification of a [`ParseLibError`].
///
/// Branch on the kind, not on the message text: messages are wording,
/// kinds are API.
#[non_exhaustive]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ParseLibErrorKind {
    /// A token appeared where the grammar expected something else.
    UnexpectedToken,
    /// The input ended in the middle of a construct.
    UnexpectedEnd,
    /// A number was malformed, non-finite, or out of range for its field.
    BadNumber,
    /// An identifier named no known keyword, class, or field.
    Unknown,
    /// A required field was absent.
    MissingField,
    /// A name or field appeared more than once.
    Duplicate,
    /// An explicit ingestion cap (see [`crate::limits`]) was exceeded.
    LimitExceeded,
    /// A semantic constraint (LUT shape, axis ordering) failed.
    Invalid,
}

impl ParseLibErrorKind {
    /// Stable lowercase label for logs and wire errors.
    pub fn label(self) -> &'static str {
        match self {
            ParseLibErrorKind::UnexpectedToken => "unexpected_token",
            ParseLibErrorKind::UnexpectedEnd => "unexpected_end",
            ParseLibErrorKind::BadNumber => "bad_number",
            ParseLibErrorKind::Unknown => "unknown",
            ParseLibErrorKind::MissingField => "missing_field",
            ParseLibErrorKind::Duplicate => "duplicate",
            ParseLibErrorKind::LimitExceeded => "limit_exceeded",
            ParseLibErrorKind::Invalid => "invalid",
        }
    }
}

/// Error produced while parsing a liblite library file.
///
/// Carries a [`ParseLibErrorKind`], the 1-based line and column of the
/// offending token, its absolute byte offset into the input, and a
/// message that names both what was expected and what was found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseLibError {
    kind: ParseLibErrorKind,
    line: usize,
    column: usize,
    offset: usize,
    message: String,
}

impl ParseLibError {
    pub(crate) fn new(
        kind: ParseLibErrorKind,
        line: usize,
        column: usize,
        offset: usize,
        message: impl Into<String>,
    ) -> ParseLibError {
        ParseLibError {
            kind,
            line,
            column,
            offset,
            message: message.into(),
        }
    }

    /// Machine-readable classification of the failure.
    pub fn kind(&self) -> ParseLibErrorKind {
        self.kind
    }

    /// 1-based line number of the offending token.
    pub fn line(&self) -> usize {
        self.line
    }

    /// 1-based character column of the offending token within its line.
    pub fn column(&self) -> usize {
        self.column
    }

    /// Absolute byte offset of the offending token in the input.
    pub fn offset(&self) -> usize {
        self.offset
    }

    /// Human-readable description of the failure.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for ParseLibError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "liblite parse error at line {}, column {} (byte {}): {}",
            self.line, self.column, self.offset, self.message
        )
    }
}

impl std::error::Error for ParseLibError {}
