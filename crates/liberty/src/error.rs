//! Error type for the liblite text format.

use std::fmt;

/// Error produced while parsing a liblite library file.
///
/// Carries the 1-based line number where parsing failed and a description of
/// what was expected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseLibError {
    line: usize,
    message: String,
}

impl ParseLibError {
    pub(crate) fn new(line: usize, message: impl Into<String>) -> ParseLibError {
        ParseLibError {
            line,
            message: message.into(),
        }
    }

    /// 1-based line number of the offending token.
    pub fn line(&self) -> usize {
        self.line
    }

    /// Human-readable description of the failure.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for ParseLibError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "liblite parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseLibError {}
