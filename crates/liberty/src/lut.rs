//! 2-D energy lookup tables with bilinear interpolation, mirroring the
//! `internal_power` tables of a liberty file.

use serde::{Deserialize, Serialize};

/// A 2-D lookup table of per-switch internal energy (pJ), indexed by input
/// slew (ns) and output load (pF).
///
/// Lookups bilinearly interpolate inside the table and clamp outside it,
/// which is how production power tools treat out-of-characterization points.
///
/// # Examples
///
/// ```
/// use atlas_liberty::EnergyLut;
///
/// let lut = EnergyLut::new(
///     vec![0.01, 0.1],
///     vec![0.001, 0.01],
///     vec![1.0, 2.0, 3.0, 4.0],
/// ).expect("well-formed lut");
/// // Exact grid point:
/// assert_eq!(lut.lookup(0.01, 0.001), 1.0);
/// // Interpolated midpoint:
/// let mid = lut.lookup(0.055, 0.0055);
/// assert!((mid - 2.5).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnergyLut {
    slew_axis: Vec<f64>,
    load_axis: Vec<f64>,
    /// Row-major `slew_axis.len() × load_axis.len()` values.
    values: Vec<f64>,
}

impl EnergyLut {
    /// Create a lookup table.
    ///
    /// # Errors
    ///
    /// Returns `Err` with a description if either axis is empty or not
    /// strictly increasing, or if `values.len() != slews.len() * loads.len()`.
    pub fn new(slews: Vec<f64>, loads: Vec<f64>, values: Vec<f64>) -> Result<EnergyLut, String> {
        if slews.is_empty() || loads.is_empty() {
            return Err("energy LUT axes must be non-empty".to_owned());
        }
        if !is_strictly_increasing(&slews) {
            return Err("slew axis must be strictly increasing".to_owned());
        }
        if !is_strictly_increasing(&loads) {
            return Err("load axis must be strictly increasing".to_owned());
        }
        if values.len() != slews.len() * loads.len() {
            return Err(format!(
                "energy LUT needs {} values (got {})",
                slews.len() * loads.len(),
                values.len()
            ));
        }
        Ok(EnergyLut {
            slew_axis: slews,
            load_axis: loads,
            values,
        })
    }

    /// A degenerate 1×1 table that always returns `value`.
    pub fn constant(value: f64) -> EnergyLut {
        EnergyLut {
            slew_axis: vec![0.0],
            load_axis: vec![0.0],
            values: vec![value],
        }
    }

    /// The slew (ns) axis.
    pub fn slew_axis(&self) -> &[f64] {
        &self.slew_axis
    }

    /// The load (pF) axis.
    pub fn load_axis(&self) -> &[f64] {
        &self.load_axis
    }

    /// Row-major table values (pJ).
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Bilinearly interpolated energy (pJ) at the given input slew (ns) and
    /// output load (pF). Clamps outside the characterized region.
    pub fn lookup(&self, slew: f64, load: f64) -> f64 {
        let (si, sf) = bracket(&self.slew_axis, slew);
        let (li, lf) = bracket(&self.load_axis, load);
        let ncols = self.load_axis.len();
        let v = |r: usize, c: usize| self.values[r * ncols + c];
        let s_hi = (si + 1).min(self.slew_axis.len() - 1);
        let l_hi = (li + 1).min(self.load_axis.len() - 1);
        let a = v(si, li) * (1.0 - lf) + v(si, l_hi) * lf;
        let b = v(s_hi, li) * (1.0 - lf) + v(s_hi, l_hi) * lf;
        a * (1.0 - sf) + b * sf
    }

    /// The mean of all table values — a load/slew-independent summary used
    /// for coarse features.
    pub fn mean(&self) -> f64 {
        self.values.iter().sum::<f64>() / self.values.len() as f64
    }

    /// Returns a copy of the table with all values multiplied by `factor`.
    pub fn scaled(&self, factor: f64) -> EnergyLut {
        EnergyLut {
            slew_axis: self.slew_axis.clone(),
            load_axis: self.load_axis.clone(),
            values: self.values.iter().map(|v| v * factor).collect(),
        }
    }
}

fn is_strictly_increasing(xs: &[f64]) -> bool {
    xs.windows(2).all(|w| w[0] < w[1])
}

/// Find the interpolation bracket for `x` in a sorted axis: returns the lower
/// index and the fractional position in `[0, 1]` toward the next index
/// (clamped at the ends).
fn bracket(axis: &[f64], x: f64) -> (usize, f64) {
    if axis.len() == 1 || x <= axis[0] {
        return (0, 0.0);
    }
    let last = axis.len() - 1;
    if x >= axis[last] {
        return (last, 0.0);
    }
    // axis is small (typically 4 entries); linear scan is fastest.
    let mut i = 0;
    while axis[i + 1] < x {
        i += 1;
    }
    let frac = (x - axis[i]) / (axis[i + 1] - axis[i]);
    (i, frac)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample_lut() -> EnergyLut {
        EnergyLut::new(
            vec![0.01, 0.05, 0.2, 0.8],
            vec![0.001, 0.01, 0.05, 0.2],
            (0..16).map(|i| 1.0 + i as f64).collect(),
        )
        .expect("well-formed")
    }

    #[test]
    fn rejects_bad_shapes() {
        assert!(EnergyLut::new(vec![], vec![0.0], vec![]).is_err());
        assert!(EnergyLut::new(vec![0.0], vec![], vec![]).is_err());
        assert!(EnergyLut::new(vec![0.1, 0.1], vec![0.0], vec![1.0, 2.0]).is_err());
        assert!(EnergyLut::new(vec![0.2, 0.1], vec![0.0], vec![1.0, 2.0]).is_err());
        assert!(EnergyLut::new(vec![0.1, 0.2], vec![0.0], vec![1.0]).is_err());
    }

    #[test]
    fn exact_grid_points() {
        let lut = sample_lut();
        for (si, &s) in lut.slew_axis().to_vec().iter().enumerate() {
            for (li, &l) in lut.load_axis().to_vec().iter().enumerate() {
                let expect = 1.0 + (si * 4 + li) as f64;
                assert!((lut.lookup(s, l) - expect).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn clamping_outside_range() {
        let lut = sample_lut();
        assert_eq!(lut.lookup(-1.0, -1.0), 1.0);
        assert_eq!(lut.lookup(10.0, 10.0), 16.0);
        assert_eq!(lut.lookup(-1.0, 10.0), 4.0);
    }

    #[test]
    fn constant_table() {
        let lut = EnergyLut::constant(3.25);
        assert_eq!(lut.lookup(0.5, 0.5), 3.25);
        assert_eq!(lut.mean(), 3.25);
    }

    #[test]
    fn scaling() {
        let lut = sample_lut().scaled(2.0);
        assert!((lut.lookup(0.01, 0.001) - 2.0).abs() < 1e-12);
        assert!((lut.mean() - sample_lut().mean() * 2.0).abs() < 1e-9);
    }

    proptest! {
        /// Interpolated values never leave the [min, max] envelope of the table.
        #[test]
        fn lookup_within_envelope(slew in -1.0f64..2.0, load in -1.0f64..2.0) {
            let lut = sample_lut();
            let v = lut.lookup(slew, load);
            prop_assert!((1.0 - 1e-9..=16.0 + 1e-9).contains(&v));
        }

        /// Lookup is monotone in load for a table monotone in load.
        #[test]
        fn lookup_monotone_in_load(slew in 0.0f64..1.0, l1 in 0.0f64..0.3, l2 in 0.0f64..0.3) {
            let lut = sample_lut();
            let (lo, hi) = if l1 <= l2 { (l1, l2) } else { (l2, l1) };
            prop_assert!(lut.lookup(slew, lo) <= lut.lookup(slew, hi) + 1e-9);
        }
    }
}
