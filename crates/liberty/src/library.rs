//! The technology library container and the deterministic synthetic
//! 40nm-class library used across the reproduction.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::cell::{LibCell, SramMacro};
use crate::lut::EnergyLut;
use crate::types::{CellClass, Drive};

/// A technology library: a set of characterized standard cells plus SRAM
/// macros, with the operating point (voltage, nominal clock period).
///
/// # Examples
///
/// ```
/// use atlas_liberty::{CellClass, Drive, Library};
///
/// let lib = Library::synthetic_40nm();
/// assert_eq!(lib.voltage(), 1.1);
/// // Every (class, drive) point except SRAM is characterized:
/// for class in CellClass::ALL {
///     if class != CellClass::Sram {
///         assert!(lib.cell(class, Drive::X1).is_some());
///     }
/// }
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Library {
    name: String,
    voltage: f64,
    clock_period_ns: f64,
    cells: Vec<LibCell>,
    srams: Vec<SramMacro>,
    #[serde(skip)]
    index: HashMap<(CellClass, Drive), usize>,
    #[serde(skip)]
    name_index: HashMap<String, usize>,
    #[serde(skip)]
    sram_index: HashMap<String, usize>,
}

impl Library {
    /// Assemble a library from parts, building the lookup indices.
    pub fn new(
        name: impl Into<String>,
        voltage: f64,
        clock_period_ns: f64,
        cells: Vec<LibCell>,
        srams: Vec<SramMacro>,
    ) -> Library {
        let mut lib = Library {
            name: name.into(),
            voltage,
            clock_period_ns,
            cells,
            srams,
            index: HashMap::new(),
            name_index: HashMap::new(),
            sram_index: HashMap::new(),
        };
        lib.rebuild_index();
        lib
    }

    /// Rebuild the internal indices (needed after deserialization).
    pub fn rebuild_index(&mut self) {
        self.index = self
            .cells
            .iter()
            .enumerate()
            .map(|(i, c)| ((c.class(), c.drive()), i))
            .collect();
        self.name_index = self
            .cells
            .iter()
            .enumerate()
            .map(|(i, c)| (c.name().to_owned(), i))
            .collect();
        self.sram_index = self
            .srams
            .iter()
            .enumerate()
            .map(|(i, s)| (s.name().to_owned(), i))
            .collect();
    }

    /// Library name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Supply voltage in volts.
    pub fn voltage(&self) -> f64 {
        self.voltage
    }

    /// Nominal clock period in ns (1.0 ns = the paper's 1 GHz).
    pub fn clock_period_ns(&self) -> f64 {
        self.clock_period_ns
    }

    /// Clock frequency in Hz.
    pub fn clock_freq_hz(&self) -> f64 {
        1e9 / self.clock_period_ns
    }

    /// Look up the cell at a `(class, drive)` point.
    pub fn cell(&self, class: CellClass, drive: Drive) -> Option<&LibCell> {
        self.index.get(&(class, drive)).map(|&i| &self.cells[i])
    }

    /// Look up a cell by its library name (e.g. `NAND2_X2`).
    pub fn cell_named(&self, name: &str) -> Option<&LibCell> {
        self.name_index.get(name).map(|&i| &self.cells[i])
    }

    /// Look up an SRAM macro by name.
    pub fn sram(&self, name: &str) -> Option<&SramMacro> {
        self.sram_index.get(name).map(|&i| &self.srams[i])
    }

    /// Pick the smallest SRAM macro with at least `words × bits` geometry.
    pub fn sram_at_least(&self, words: u32, bits: u32) -> Option<&SramMacro> {
        self.srams
            .iter()
            .filter(|s| s.words() >= words && s.bits() >= bits)
            .min_by_key(|s| s.capacity_bits())
    }

    /// All standard cells.
    pub fn cells(&self) -> &[LibCell] {
        &self.cells
    }

    /// All SRAM macros.
    pub fn srams(&self) -> &[SramMacro] {
        &self.srams
    }

    /// The deterministic synthetic 40nm-class library used by the whole
    /// reproduction (the TSMC 40nm LP substitute).
    ///
    /// Values are derived from a per-class complexity factor so that
    /// magnitudes are plausible for a 40nm LP process at 1.1 V / 1 GHz:
    /// femtojoule-scale gate energies, ~1–4 fF input pins, nW-scale cell
    /// leakage, picojoule-scale SRAM accesses.
    pub fn synthetic_40nm() -> Library {
        let mut cells = Vec::new();
        for class in CellClass::ALL {
            if class == CellClass::Sram {
                continue;
            }
            for drive in Drive::ALL {
                cells.push(make_cell(class, drive));
            }
        }
        let srams = vec![
            make_sram(256, 32),
            make_sram(512, 64),
            make_sram(1024, 32),
            make_sram(1024, 64),
            make_sram(2048, 64),
        ];
        Library::new("atlas40", 1.1, 1.0, cells, srams)
    }
}

impl PartialEq for Library {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name
            && self.voltage == other.voltage
            && self.clock_period_ns == other.clock_period_ns
            && self.cells == other.cells
            && self.srams == other.srams
    }
}

/// Per-class relative complexity factor (≈ normalized transistor count),
/// the single knob all synthetic values derive from.
fn complexity(class: CellClass) -> f64 {
    match class {
        CellClass::Inv => 1.0,
        CellClass::Buf => 1.4,
        CellClass::And2 => 1.8,
        CellClass::Nand2 => 1.3,
        CellClass::Or2 => 1.9,
        CellClass::Nor2 => 1.35,
        CellClass::Xor2 => 2.6,
        CellClass::Xnor2 => 2.65,
        CellClass::Mux2 => 2.4,
        CellClass::Aoi21 => 1.9,
        CellClass::Oai21 => 1.95,
        CellClass::Aoi22 => 2.3,
        CellClass::HalfAdder => 2.8,
        CellClass::FullAdder => 4.2,
        CellClass::Dff => 5.5,
        CellClass::Dffr => 6.2,
        CellClass::Clk => 1.6,
        CellClass::Sram => 0.0,
    }
}

fn make_cell(class: CellClass, drive: Drive) -> LibCell {
    let k = complexity(class);
    let m = drive.multiplier();
    // Input cap grows sub-linearly with drive; fF-scale.
    let cap_mult = 0.7 + 0.3 * m;
    let input_cap = (0.0010 + 0.0004 * k) * cap_mult;
    let is_seq = class.is_sequential();
    let clock_cap = if is_seq { 0.0009 * cap_mult } else { 0.0 };
    let leakage = 6.0 * k * (0.6 + 0.4 * m);
    let drive_res = 4.0 / m;
    let max_load = 0.020 * m;
    let area = 0.53 * k * (0.8 + 0.2 * m);

    // Internal energy per output toggle, fJ-scale, rising with slew
    // (short-circuit current) and mildly with load.
    let e0 = 0.0008 * k * (0.8 + 0.2 * m);
    let slews = vec![0.01, 0.05, 0.2, 0.8];
    let loads: Vec<f64> = [0.001, 0.01, 0.05, 0.2].iter().map(|l| l * m).collect();
    let max_slew = 0.8;
    let max_load_axis = loads[3];
    let mut values = Vec::with_capacity(16);
    for &s in &slews {
        for &l in &loads {
            values.push(e0 * (1.0 + 0.30 * (s / max_slew) + 0.50 * (l / max_load_axis)));
        }
    }
    let lut = EnergyLut::new(slews, loads, values).expect("synthetic LUT is well-formed");

    // Registers burn clock-pin internal energy every cycle (both edges).
    // Dominant over data-toggle energy, as in real flop characterization —
    // this is what keeps the register power group nearly constant per
    // cycle and stage-stable (paper footnote 3 and Table III).
    let clock_energy = if is_seq {
        0.020 * (1.0 + 0.3 * (m - 1.0) / 7.0)
    } else {
        0.0
    };

    let name = format!("{}_{}", class.keyword().to_uppercase(), drive);
    LibCell::new(
        name,
        class,
        drive,
        area,
        input_cap,
        clock_cap,
        leakage,
        drive_res,
        max_load,
        lut,
        clock_energy,
    )
}

fn make_sram(words: u32, bits: u32) -> SramMacro {
    let w = words as f64;
    let b = bits as f64;
    let read_energy = 2.0 + 0.004 * w + 0.05 * b;
    let write_energy = read_energy * 1.15;
    let leakage = 0.15 * w * b / 8.0; // nW
    let pin_cap = 0.004;
    let area = 0.25 * w * b;
    SramMacro::new(
        format!("SRAM_{words}x{bits}"),
        words,
        bits,
        read_energy,
        write_energy,
        leakage,
        pin_cap,
        area,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_library_is_complete() {
        let lib = Library::synthetic_40nm();
        for class in CellClass::ALL {
            if class == CellClass::Sram {
                continue;
            }
            for drive in Drive::ALL {
                let cell = lib.cell(class, drive);
                assert!(cell.is_some(), "missing {class} {drive}");
                let cell = cell.expect("present");
                assert!(cell.input_cap() > 0.0);
                assert!(cell.leakage() > 0.0);
                assert!(cell.area() > 0.0);
                assert!(cell.switch_energy().mean() > 0.0);
            }
        }
        assert_eq!(lib.cells().len(), 17 * 4);
        assert!(!lib.srams().is_empty());
    }

    #[test]
    fn synthetic_library_is_deterministic() {
        assert_eq!(Library::synthetic_40nm(), Library::synthetic_40nm());
    }

    #[test]
    fn drive_scaling_monotone() {
        let lib = Library::synthetic_40nm();
        let x1 = lib.cell(CellClass::Nand2, Drive::X1).expect("exists");
        let x8 = lib.cell(CellClass::Nand2, Drive::X8).expect("exists");
        assert!(x8.input_cap() > x1.input_cap());
        assert!(x8.drive_res() < x1.drive_res());
        assert!(x8.max_load() > x1.max_load());
        assert!(x8.leakage() > x1.leakage());
    }

    #[test]
    fn registers_have_clock_energy_and_cap() {
        let lib = Library::synthetic_40nm();
        let dff = lib.cell(CellClass::Dff, Drive::X1).expect("exists");
        assert!(dff.clock_energy() > 0.0);
        assert!(dff.clock_cap() > 0.0);
        let nand = lib.cell(CellClass::Nand2, Drive::X1).expect("exists");
        assert_eq!(nand.clock_energy(), 0.0);
        assert_eq!(nand.clock_cap(), 0.0);
    }

    #[test]
    fn cell_name_lookup() {
        let lib = Library::synthetic_40nm();
        let c = lib.cell_named("NAND2_X2").expect("exists");
        assert_eq!(c.class(), CellClass::Nand2);
        assert_eq!(c.drive(), Drive::X2);
        assert!(lib.cell_named("NAND3_X9").is_none());
    }

    #[test]
    fn sram_selection() {
        let lib = Library::synthetic_40nm();
        let s = lib
            .sram_at_least(300, 32)
            .expect("a big-enough macro exists");
        assert!(s.words() >= 300 && s.bits() >= 32);
        // Picks the smallest adequate macro.
        assert_eq!(s.name(), "SRAM_512x64");
        assert!(lib.sram("SRAM_512x64").is_some());
        assert!(lib.sram("SRAM_7x7").is_none());
    }

    #[test]
    fn xor_costs_more_than_nand() {
        let lib = Library::synthetic_40nm();
        let xor = lib.cell(CellClass::Xor2, Drive::X1).expect("exists");
        let nand = lib.cell(CellClass::Nand2, Drive::X1).expect("exists");
        assert!(xor.switch_energy().mean() > nand.switch_energy().mean());
        assert!(xor.area() > nand.area());
    }

    #[test]
    fn frequency_helper() {
        let lib = Library::synthetic_40nm();
        assert!((lib.clock_freq_hz() - 1e9).abs() < 1.0);
    }
}
