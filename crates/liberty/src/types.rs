//! Core enumerations shared by the whole workspace: the 18 functional cell
//! classes, drive strengths, and power groups.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

/// The 18 functional cell classes used by ATLAS for its one-hot node-type
/// feature (paper §III-C1).
///
/// Clock-related cells (clock buffers, clock gates, clock muxes) are all
/// folded into the single [`CellClass::Clk`] class, exactly as the paper
/// folds them into a single `CK` type. SRAM macros get their own class so
/// the memory power group can be separated.
///
/// # Examples
///
/// ```
/// use atlas_liberty::CellClass;
///
/// assert_eq!(CellClass::COUNT, 18);
/// assert_eq!(CellClass::Nand2.input_pins(), 2);
/// assert!(CellClass::Dff.is_sequential());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum CellClass {
    /// Inverter.
    Inv,
    /// Non-inverting buffer.
    Buf,
    /// 2-input AND.
    And2,
    /// 2-input NAND.
    Nand2,
    /// 2-input OR.
    Or2,
    /// 2-input NOR.
    Nor2,
    /// 2-input XOR.
    Xor2,
    /// 2-input XNOR.
    Xnor2,
    /// 2-to-1 multiplexer (`S ? B : A`, pins `A`, `B`, `S`).
    Mux2,
    /// AND-OR-invert 2-1: `!(A&B | C)`.
    Aoi21,
    /// OR-AND-invert 2-1: `!((A|B) & C)`.
    Oai21,
    /// AND-OR-invert 2-2: `!(A&B | C&D)`.
    Aoi22,
    /// Half adder (sum output is modeled; carry realized with a companion cell).
    HalfAdder,
    /// Full adder (sum output is modeled; carry realized with a companion cell).
    FullAdder,
    /// D flip-flop.
    Dff,
    /// D flip-flop with synchronous reset.
    Dffr,
    /// Clock-network cell (clock buffer / clock gate / clock mux), the
    /// paper's `CK` type.
    Clk,
    /// SRAM macro (memory power group).
    Sram,
}

impl CellClass {
    /// Number of distinct cell classes (the node-type one-hot width).
    pub const COUNT: usize = 18;

    /// All classes in canonical (one-hot index) order.
    pub const ALL: [CellClass; CellClass::COUNT] = [
        CellClass::Inv,
        CellClass::Buf,
        CellClass::And2,
        CellClass::Nand2,
        CellClass::Or2,
        CellClass::Nor2,
        CellClass::Xor2,
        CellClass::Xnor2,
        CellClass::Mux2,
        CellClass::Aoi21,
        CellClass::Oai21,
        CellClass::Aoi22,
        CellClass::HalfAdder,
        CellClass::FullAdder,
        CellClass::Dff,
        CellClass::Dffr,
        CellClass::Clk,
        CellClass::Sram,
    ];

    /// Stable index of this class in [`CellClass::ALL`] (one-hot position).
    pub fn index(self) -> usize {
        CellClass::ALL
            .iter()
            .position(|&c| c == self)
            .expect("every class is in ALL")
    }

    /// Inverse of [`CellClass::index`]; `None` if out of range.
    pub fn from_index(idx: usize) -> Option<CellClass> {
        CellClass::ALL.get(idx).copied()
    }

    /// Number of logic input pins (excluding clock/reset pins).
    pub fn input_pins(self) -> usize {
        match self {
            CellClass::Inv | CellClass::Buf | CellClass::Clk => 1,
            CellClass::And2
            | CellClass::Nand2
            | CellClass::Or2
            | CellClass::Nor2
            | CellClass::Xor2
            | CellClass::Xnor2
            | CellClass::HalfAdder => 2,
            CellClass::Mux2 | CellClass::Aoi21 | CellClass::Oai21 | CellClass::FullAdder => 3,
            CellClass::Aoi22 => 4,
            CellClass::Dff | CellClass::Dffr => 1,
            // SRAM macro instances expose single-bit port digests:
            // read-enable, write-enable, address, write-data.
            CellClass::Sram => 4,
        }
    }

    /// Whether this cell is clocked (has a clock pin).
    pub fn is_sequential(self) -> bool {
        matches!(self, CellClass::Dff | CellClass::Dffr | CellClass::Sram)
    }

    /// Whether this is a plain combinational logic cell.
    pub fn is_combinational(self) -> bool {
        self.power_group() == PowerGroup::Combinational
    }

    /// The power group this class is accounted under (paper §V).
    pub fn power_group(self) -> PowerGroup {
        match self {
            CellClass::Dff | CellClass::Dffr => PowerGroup::Register,
            CellClass::Clk => PowerGroup::ClockTree,
            CellClass::Sram => PowerGroup::Memory,
            _ => PowerGroup::Combinational,
        }
    }

    /// Canonical liblite keyword for this class.
    pub fn keyword(self) -> &'static str {
        match self {
            CellClass::Inv => "inv",
            CellClass::Buf => "buf",
            CellClass::And2 => "and2",
            CellClass::Nand2 => "nand2",
            CellClass::Or2 => "or2",
            CellClass::Nor2 => "nor2",
            CellClass::Xor2 => "xor2",
            CellClass::Xnor2 => "xnor2",
            CellClass::Mux2 => "mux2",
            CellClass::Aoi21 => "aoi21",
            CellClass::Oai21 => "oai21",
            CellClass::Aoi22 => "aoi22",
            CellClass::HalfAdder => "addh",
            CellClass::FullAdder => "addf",
            CellClass::Dff => "dff",
            CellClass::Dffr => "dffr",
            CellClass::Clk => "clk",
            CellClass::Sram => "sram",
        }
    }
}

impl fmt::Display for CellClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.keyword())
    }
}

impl FromStr for CellClass {
    type Err = ParseCellClassError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        CellClass::ALL
            .iter()
            .copied()
            .find(|c| c.keyword() == s)
            .ok_or_else(|| ParseCellClassError(s.to_owned()))
    }
}

/// Error returned when parsing a [`CellClass`] from an unknown keyword.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseCellClassError(String);

impl fmt::Display for ParseCellClassError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown cell class keyword `{}`", self.0)
    }
}

impl std::error::Error for ParseCellClassError {}

/// Discrete drive strengths available for every standard cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Drive {
    /// Unit drive.
    X1,
    /// Double drive.
    X2,
    /// Quadruple drive.
    X4,
    /// Octuple drive.
    X8,
}

impl Drive {
    /// All drive strengths in increasing order.
    pub const ALL: [Drive; 4] = [Drive::X1, Drive::X2, Drive::X4, Drive::X8];

    /// Relative drive multiplier (output current) versus X1.
    pub fn multiplier(self) -> f64 {
        match self {
            Drive::X1 => 1.0,
            Drive::X2 => 2.0,
            Drive::X4 => 4.0,
            Drive::X8 => 8.0,
        }
    }

    /// The next stronger drive, saturating at [`Drive::X8`].
    pub fn upsized(self) -> Drive {
        match self {
            Drive::X1 => Drive::X2,
            Drive::X2 => Drive::X4,
            Drive::X4 | Drive::X8 => Drive::X8,
        }
    }

    /// Numeric suffix used in cell names (`1`, `2`, `4`, `8`).
    pub fn suffix(self) -> u32 {
        self.multiplier() as u32
    }

    /// Parse from the numeric suffix.
    pub fn from_suffix(suffix: u32) -> Option<Drive> {
        match suffix {
            1 => Some(Drive::X1),
            2 => Some(Drive::X2),
            4 => Some(Drive::X4),
            8 => Some(Drive::X8),
            _ => None,
        }
    }
}

impl fmt::Display for Drive {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "X{}", self.suffix())
    }
}

/// The four power groups ATLAS reports (paper §V and §VI-B).
///
/// The paper's headline tables cover [`Combinational`](PowerGroup::Combinational),
/// [`Register`](PowerGroup::Register) and [`ClockTree`](PowerGroup::ClockTree);
/// the [`Memory`](PowerGroup::Memory) group is modeled separately and excluded
/// from the headline MAPE tables, which we mirror.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum PowerGroup {
    /// Combinational logic cells.
    Combinational,
    /// Flip-flops, dominated by their clock-pin internal power (paper fn. 3).
    Register,
    /// Clock network cells, present only in the post-layout netlist.
    ClockTree,
    /// SRAM macros.
    Memory,
}

impl PowerGroup {
    /// All groups in canonical order.
    pub const ALL: [PowerGroup; 4] = [
        PowerGroup::Combinational,
        PowerGroup::Register,
        PowerGroup::ClockTree,
        PowerGroup::Memory,
    ];

    /// Stable index in [`PowerGroup::ALL`].
    pub fn index(self) -> usize {
        PowerGroup::ALL
            .iter()
            .position(|&g| g == self)
            .expect("every group is in ALL")
    }

    /// Short label used in printed tables.
    pub fn label(self) -> &'static str {
        match self {
            PowerGroup::Combinational => "Combinational",
            PowerGroup::Register => "Register",
            PowerGroup::ClockTree => "Clock Tree",
            PowerGroup::Memory => "Memory",
        }
    }
}

impl fmt::Display for PowerGroup {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_count_is_18() {
        assert_eq!(CellClass::ALL.len(), 18);
        assert_eq!(CellClass::COUNT, 18);
    }

    #[test]
    fn class_index_roundtrip() {
        for (i, c) in CellClass::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
            assert_eq!(CellClass::from_index(i), Some(*c));
        }
        assert_eq!(CellClass::from_index(18), None);
    }

    #[test]
    fn class_keyword_roundtrip() {
        for c in CellClass::ALL {
            let parsed: CellClass = c.keyword().parse().expect("keyword parses");
            assert_eq!(parsed, c);
        }
        assert!("bogus".parse::<CellClass>().is_err());
    }

    #[test]
    fn sequential_classes() {
        assert!(CellClass::Dff.is_sequential());
        assert!(CellClass::Dffr.is_sequential());
        assert!(CellClass::Sram.is_sequential());
        assert!(!CellClass::Nand2.is_sequential());
        assert!(!CellClass::Clk.is_sequential());
    }

    #[test]
    fn power_group_mapping() {
        assert_eq!(CellClass::Nand2.power_group(), PowerGroup::Combinational);
        assert_eq!(CellClass::Dff.power_group(), PowerGroup::Register);
        assert_eq!(CellClass::Clk.power_group(), PowerGroup::ClockTree);
        assert_eq!(CellClass::Sram.power_group(), PowerGroup::Memory);
        let comb = CellClass::ALL
            .iter()
            .filter(|c| c.power_group() == PowerGroup::Combinational)
            .count();
        assert_eq!(comb, 14);
    }

    #[test]
    fn pin_counts() {
        assert_eq!(CellClass::Inv.input_pins(), 1);
        assert_eq!(CellClass::Mux2.input_pins(), 3);
        assert_eq!(CellClass::Aoi22.input_pins(), 4);
        assert_eq!(CellClass::FullAdder.input_pins(), 3);
        assert_eq!(CellClass::Dff.input_pins(), 1);
    }

    #[test]
    fn drive_ordering_and_upsize() {
        assert!(Drive::X1 < Drive::X8);
        assert_eq!(Drive::X1.upsized(), Drive::X2);
        assert_eq!(Drive::X8.upsized(), Drive::X8);
        assert_eq!(Drive::X4.multiplier(), 4.0);
        assert_eq!(Drive::from_suffix(4), Some(Drive::X4));
        assert_eq!(Drive::from_suffix(3), None);
        assert_eq!(Drive::X2.to_string(), "X2");
    }

    #[test]
    fn group_labels_and_index() {
        for (i, g) in PowerGroup::ALL.iter().enumerate() {
            assert_eq!(g.index(), i);
            assert!(!g.label().is_empty());
        }
        assert_eq!(PowerGroup::ClockTree.to_string(), "Clock Tree");
    }
}
