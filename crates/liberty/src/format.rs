//! The `liblite` text format: a minimal liberty-like serialization of a
//! [`Library`], with a writer and a recursive-descent parser.
//!
//! The format exists so the reproduction exercises the same "parse the
//! technology library from a file" code path the paper's flow uses with
//! real `.lib` files.
//!
//! ```text
//! library atlas40 {
//!   voltage 1.1;
//!   clock_period 1;
//!   cell INV_X1 {
//!     class inv; drive 1; area 0.53; input_cap 0.0014; clock_cap 0;
//!     leakage 6; drive_res 4; max_load 0.055; clock_energy 0;
//!     energy_lut slew [0.01 0.05 0.2 0.8] load [0.001 0.01 0.05 0.2]
//!       values [0.0008 ... ];
//!   }
//!   sram SRAM_512x64 {
//!     words 512; bits 64; read_energy 7.2; write_energy 8.3;
//!     leakage 614.4; pin_cap 0.004; area 8192;
//!   }
//! }
//! ```
//!
//! The parser is **total over arbitrary input**: any byte sequence either
//! parses or returns a typed [`ParseLibError`] — it never panics, never
//! loops, and never allocates beyond the caps in [`limits`]. The lexer is
//! streaming (one token of lookahead), so peak memory tracks the parsed
//! structure, which the caps bound, not the raw input.

use std::collections::HashSet;
use std::fmt::Write as _;
use std::iter::Peekable;
use std::str::CharIndices;

use crate::cell::{LibCell, SramMacro};
use crate::error::{ParseLibError, ParseLibErrorKind};
use crate::library::Library;
use crate::lut::EnergyLut;
use crate::types::{CellClass, Drive};

/// Hard ingestion caps for the liblite parser.
///
/// Inputs exceeding any cap fail with
/// [`ParseLibErrorKind::LimitExceeded`] before the excess is allocated;
/// together they bound the memory and time any hostile input can cost.
pub mod limits {
    /// Largest accepted input, in bytes.
    pub const MAX_INPUT_BYTES: usize = 16 << 20;
    /// Longest accepted identifier or number literal, in bytes.
    pub const MAX_IDENT_BYTES: usize = 256;
    /// Most `cell` + `sram` entries per library.
    pub const MAX_MACROS: usize = 4096;
    /// Longest `slew`/`load` axis in an `energy_lut`.
    pub const MAX_AXIS_LEN: usize = 64;
    /// Most entries in an `energy_lut` `values` list.
    pub const MAX_LUT_VALUES: usize = MAX_AXIS_LEN * MAX_AXIS_LEN;
    /// Deepest accepted `{` nesting (the grammar itself needs 2).
    pub const MAX_BRACE_DEPTH: usize = 8;
}

impl Library {
    /// Serialize this library to liblite text.
    pub fn to_liblite(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "library {} {{", self.name());
        let _ = writeln!(out, "  voltage {};", fmt_num(self.voltage()));
        let _ = writeln!(out, "  clock_period {};", fmt_num(self.clock_period_ns()));
        for cell in self.cells() {
            write_cell(&mut out, cell);
        }
        for sram in self.srams() {
            write_sram(&mut out, sram);
        }
        out.push_str("}\n");
        out
    }

    /// Parse a library from liblite text.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseLibError`] — carrying a
    /// [`ParseLibErrorKind`], the 1-based line and
    /// column, and the byte offset of the offending token — on any
    /// syntactic or semantic problem: unknown keywords, malformed or
    /// non-finite numbers, duplicate names or fields, LUT shape
    /// mismatches, missing required fields, or an input exceeding the
    /// caps in [`limits`]. The parser never panics on any input.
    ///
    /// # Examples
    ///
    /// ```
    /// use atlas_liberty::Library;
    ///
    /// # fn main() -> Result<(), atlas_liberty::ParseLibError> {
    /// let lib = Library::synthetic_40nm();
    /// let text = lib.to_liblite();
    /// let back = Library::from_liblite(&text)?;
    /// assert_eq!(lib, back);
    /// # Ok(())
    /// # }
    /// ```
    pub fn from_liblite(text: &str) -> Result<Library, ParseLibError> {
        if text.len() > limits::MAX_INPUT_BYTES {
            return Err(ParseLibError::new(
                ParseLibErrorKind::LimitExceeded,
                1,
                1,
                0,
                format!(
                    "input of {} bytes exceeds the {}-byte cap",
                    text.len(),
                    limits::MAX_INPUT_BYTES
                ),
            ));
        }
        check_brace_depth(text)?;
        Parser::new(text).parse_library()
    }
}

fn fmt_num(v: f64) -> String {
    // Full round-trip precision without trailing noise for integral values.
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        let s = format!("{v:.17}");
        // Trim to the shortest representation that round-trips.
        let short = format!("{v}");
        if short.parse::<f64>() == Ok(v) {
            short
        } else {
            s
        }
    }
}

fn write_cell(out: &mut String, cell: &LibCell) {
    let _ = writeln!(out, "  cell {} {{", cell.name());
    let _ = writeln!(
        out,
        "    class {}; drive {}; area {}; input_cap {}; clock_cap {};",
        cell.class().keyword(),
        cell.drive().suffix(),
        fmt_num(cell.area()),
        fmt_num(cell.input_cap()),
        fmt_num(cell.clock_cap()),
    );
    let _ = writeln!(
        out,
        "    leakage {}; drive_res {}; max_load {}; clock_energy {};",
        fmt_num(cell.leakage()),
        fmt_num(cell.drive_res()),
        fmt_num(cell.max_load()),
        fmt_num(cell.clock_energy()),
    );
    let lut = cell.switch_energy();
    let _ = write!(out, "    energy_lut slew [");
    let _ = write!(
        out,
        "{}",
        lut.slew_axis()
            .iter()
            .map(|v| fmt_num(*v))
            .collect::<Vec<_>>()
            .join(" ")
    );
    let _ = write!(out, "] load [");
    let _ = write!(
        out,
        "{}",
        lut.load_axis()
            .iter()
            .map(|v| fmt_num(*v))
            .collect::<Vec<_>>()
            .join(" ")
    );
    let _ = write!(out, "] values [");
    let _ = write!(
        out,
        "{}",
        lut.values()
            .iter()
            .map(|v| fmt_num(*v))
            .collect::<Vec<_>>()
            .join(" ")
    );
    let _ = writeln!(out, "];");
    let _ = writeln!(out, "  }}");
}

fn write_sram(out: &mut String, sram: &SramMacro) {
    let _ = writeln!(out, "  sram {} {{", sram.name());
    let _ = writeln!(
        out,
        "    words {}; bits {}; read_energy {}; write_energy {};",
        sram.words(),
        sram.bits(),
        fmt_num(sram.read_energy()),
        fmt_num(sram.write_energy()),
    );
    let _ = writeln!(
        out,
        "    leakage {}; pin_cap {}; area {};",
        fmt_num(sram.leakage()),
        fmt_num(sram.pin_cap()),
        fmt_num(sram.area()),
    );
    let _ = writeln!(out, "  }}");
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Ident(String),
    Number(f64),
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Semi,
}

/// Where a token starts: 1-based line and character column, absolute
/// byte offset.
#[derive(Debug, Clone, Copy)]
struct Span {
    line: usize,
    column: usize,
    offset: usize,
}

#[derive(Debug, Clone)]
struct Tok {
    token: Token,
    span: Span,
}

/// One O(n) prescan enforcing [`limits::MAX_BRACE_DEPTH`] over the whole
/// input before parsing starts — the recursive-descent grammar itself is
/// depth-2, so without this a `{{{{…` bomb would be reported as a mere
/// unexpected token instead of the cap it violates.
fn check_brace_depth(text: &str) -> Result<(), ParseLibError> {
    let mut depth = 0usize;
    let mut line = 1usize;
    let mut column = 1usize;
    let mut in_comment = false;
    for (offset, ch) in text.char_indices() {
        match ch {
            '\n' => {
                line += 1;
                column = 1;
                in_comment = false;
                continue;
            }
            _ if in_comment => {}
            '#' => in_comment = true,
            '{' => {
                depth += 1;
                if depth > limits::MAX_BRACE_DEPTH {
                    return Err(err_at(
                        ParseLibErrorKind::LimitExceeded,
                        Span {
                            line,
                            column,
                            offset,
                        },
                        format!(
                            "brace nesting exceeds the depth cap of {}",
                            limits::MAX_BRACE_DEPTH
                        ),
                    ));
                }
            }
            '}' => depth = depth.saturating_sub(1),
            _ => {}
        }
        column += 1;
    }
    Ok(())
}

/// What a token (or its absence) looks like in an error message.
fn describe(token: Option<&Token>) -> String {
    match token {
        None => "end of input".to_owned(),
        Some(Token::Ident(s)) => format!("identifier `{s}`"),
        Some(Token::Number(n)) => format!("number `{}`", fmt_num(*n)),
        Some(Token::LBrace) => "`{`".to_owned(),
        Some(Token::RBrace) => "`}`".to_owned(),
        Some(Token::LBracket) => "`[`".to_owned(),
        Some(Token::RBracket) => "`]`".to_owned(),
        Some(Token::Semi) => "`;`".to_owned(),
    }
}

/// Streaming tokenizer: one pass over the chars, no token buffer, so a
/// hostile input cannot make it allocate more than one identifier.
struct Lexer<'a> {
    text: &'a str,
    chars: Peekable<CharIndices<'a>>,
    line: usize,
    column: usize,
}

impl<'a> Lexer<'a> {
    fn new(text: &'a str) -> Lexer<'a> {
        Lexer {
            text,
            chars: text.char_indices().peekable(),
            line: 1,
            column: 1,
        }
    }

    /// Span at the current cursor (end of input once exhausted).
    fn here(&mut self) -> Span {
        let offset = self
            .chars
            .peek()
            .map(|&(i, _)| i)
            .unwrap_or(self.text.len());
        Span {
            line: self.line,
            column: self.column,
            offset,
        }
    }

    fn bump(&mut self) -> Option<char> {
        let next = self.chars.next().map(|(_, c)| c);
        match next {
            Some('\n') => {
                self.line += 1;
                self.column = 1;
            }
            Some(_) => self.column += 1,
            None => {}
        }
        next
    }

    /// Consume a run of word characters starting at the cursor and
    /// return the slice. Signs and dots are included so `1e-5` lexes as
    /// one token and `3ff` fails as one bad number, not `3` + `ff`.
    fn word(&mut self, start: usize) -> &'a str {
        let mut end = start;
        while let Some(&(i, c)) = self.chars.peek() {
            if c.is_ascii_alphanumeric() || matches!(c, '_' | '.' | '-' | '+') {
                end = i + c.len_utf8();
                self.bump();
            } else {
                break;
            }
        }
        &self.text[start..end]
    }

    fn next_tok(&mut self) -> Result<Option<Tok>, ParseLibError> {
        loop {
            let span = self.here();
            let Some(&(offset, ch)) = self.chars.peek() else {
                return Ok(None);
            };
            match ch {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '#' => {
                    // Comment to end of line.
                    while let Some(&(_, c)) = self.chars.peek() {
                        if c == '\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                '{' => {
                    self.bump();
                    return Ok(Some(Tok {
                        token: Token::LBrace,
                        span,
                    }));
                }
                '}' => {
                    self.bump();
                    return Ok(Some(Tok {
                        token: Token::RBrace,
                        span,
                    }));
                }
                '[' => {
                    self.bump();
                    return Ok(Some(Tok {
                        token: Token::LBracket,
                        span,
                    }));
                }
                ']' => {
                    self.bump();
                    return Ok(Some(Tok {
                        token: Token::RBracket,
                        span,
                    }));
                }
                ';' => {
                    self.bump();
                    return Ok(Some(Tok {
                        token: Token::Semi,
                        span,
                    }));
                }
                c if c.is_ascii_alphabetic() || c == '_' => {
                    let word = self.word(offset);
                    if word.len() > limits::MAX_IDENT_BYTES {
                        return Err(err_at(
                            ParseLibErrorKind::LimitExceeded,
                            span,
                            format!(
                                "identifier of {} bytes exceeds the {}-byte cap",
                                word.len(),
                                limits::MAX_IDENT_BYTES
                            ),
                        ));
                    }
                    return Ok(Some(Tok {
                        token: Token::Ident(word.to_owned()),
                        span,
                    }));
                }
                c if c.is_ascii_digit() || matches!(c, '+' | '-' | '.') => {
                    let word = self.word(offset);
                    if word.len() > limits::MAX_IDENT_BYTES {
                        return Err(err_at(
                            ParseLibErrorKind::LimitExceeded,
                            span,
                            format!(
                                "number literal of {} bytes exceeds the {}-byte cap",
                                word.len(),
                                limits::MAX_IDENT_BYTES
                            ),
                        ));
                    }
                    return match word.parse::<f64>() {
                        Ok(n) if n.is_finite() => Ok(Some(Tok {
                            token: Token::Number(n),
                            span,
                        })),
                        Ok(_) => Err(err_at(
                            ParseLibErrorKind::BadNumber,
                            span,
                            format!("non-finite number `{word}`"),
                        )),
                        Err(_) => Err(err_at(
                            ParseLibErrorKind::BadNumber,
                            span,
                            format!(
                                "malformed number `{word}` \
                                 (identifiers may not start with a digit or sign)"
                            ),
                        )),
                    };
                }
                other => {
                    return Err(err_at(
                        ParseLibErrorKind::UnexpectedToken,
                        span,
                        format!("unexpected character `{}`", other.escape_default()),
                    ));
                }
            }
        }
    }
}

fn err_at(kind: ParseLibErrorKind, span: Span, msg: impl Into<String>) -> ParseLibError {
    ParseLibError::new(kind, span.line, span.column, span.offset, msg)
}

struct Parser<'a> {
    lexer: Lexer<'a>,
    peeked: Option<Tok>,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Parser<'a> {
        Parser {
            lexer: Lexer::new(text),
            peeked: None,
        }
    }

    fn peek(&mut self) -> Result<Option<&Tok>, ParseLibError> {
        if self.peeked.is_none() {
            self.peeked = self.lexer.next_tok()?;
        }
        Ok(self.peeked.as_ref())
    }

    fn next(&mut self) -> Result<Option<Tok>, ParseLibError> {
        if let Some(tok) = self.peeked.take() {
            return Ok(Some(tok));
        }
        self.lexer.next_tok()
    }

    /// Span of the *next* token (end of input once exhausted) — where an
    /// "expected X, found Y" error points.
    fn here(&mut self) -> Span {
        match &self.peeked {
            Some(tok) => tok.span,
            None => self.lexer.here(),
        }
    }

    fn unexpected(&mut self, expected: &str) -> ParseLibError {
        let span = self.here();
        // Peek is best-effort here: a lexer error while peeking is itself
        // the failure to report.
        let (kind, found) = match self.peek() {
            Ok(tok) => (
                if tok.is_some() {
                    ParseLibErrorKind::UnexpectedToken
                } else {
                    ParseLibErrorKind::UnexpectedEnd
                },
                describe(tok.map(|t| &t.token)),
            ),
            Err(e) => return e,
        };
        err_at(kind, span, format!("expected {expected}, found {found}"))
    }

    fn expect_ident(&mut self) -> Result<(String, Span), ParseLibError> {
        match self.peek()? {
            Some(Tok {
                token: Token::Ident(_),
                ..
            }) => match self.next()? {
                Some(Tok {
                    token: Token::Ident(s),
                    span,
                }) => Ok((s, span)),
                _ => Err(self.unexpected("identifier")),
            },
            _ => Err(self.unexpected("identifier")),
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<Span, ParseLibError> {
        match self.peek()? {
            Some(Tok {
                token: Token::Ident(s),
                ..
            }) if s == kw => {
                let tok = self.next()?;
                Ok(tok.map(|t| t.span).unwrap_or_else(|| self.here()))
            }
            _ => Err(self.unexpected(&format!("`{kw}`"))),
        }
    }

    fn expect_number(&mut self) -> Result<(f64, Span), ParseLibError> {
        match self.peek()? {
            Some(Tok {
                token: Token::Number(_),
                ..
            }) => match self.next()? {
                Some(Tok {
                    token: Token::Number(n),
                    span,
                }) => Ok((n, span)),
                _ => Err(self.unexpected("number")),
            },
            _ => Err(self.unexpected("number")),
        }
    }

    fn expect_token(&mut self, want: &Token, name: &str) -> Result<Span, ParseLibError> {
        match self.peek()? {
            Some(tok) if tok.token == *want => {
                let tok = self.next()?;
                Ok(tok.map(|t| t.span).unwrap_or_else(|| self.here()))
            }
            _ => Err(self.unexpected(name)),
        }
    }

    /// `[ n n n ... ]` with a length cap; `what` names the list in
    /// errors.
    fn number_list(&mut self, what: &str, cap: usize) -> Result<Vec<f64>, ParseLibError> {
        self.expect_token(&Token::LBracket, "`[`")?;
        let mut out = Vec::new();
        loop {
            match self.peek()?.map(|t| &t.token) {
                Some(Token::Number(_)) => {
                    let (n, span) = self.expect_number()?;
                    if out.len() >= cap {
                        return Err(err_at(
                            ParseLibErrorKind::LimitExceeded,
                            span,
                            format!("{what} list exceeds the cap of {cap} entries"),
                        ));
                    }
                    out.push(n);
                }
                Some(Token::RBracket) => {
                    self.next()?;
                    return Ok(out);
                }
                _ => return Err(self.unexpected(&format!("number or `]` in {what} list"))),
            }
        }
    }

    fn parse_library(&mut self) -> Result<Library, ParseLibError> {
        self.expect_keyword("library")?;
        let (name, _) = self.expect_ident()?;
        self.expect_token(&Token::LBrace, "`{`")?;
        let mut voltage: Option<f64> = None;
        let mut clock_period: Option<f64> = None;
        let mut cells = Vec::new();
        let mut srams = Vec::new();
        let mut macro_names: HashSet<String> = HashSet::new();
        let close = loop {
            match self.peek()?.map(|t| (&t.token, t.span)) {
                Some((Token::RBrace, span)) => {
                    self.next()?;
                    break span;
                }
                Some((Token::Ident(kw), span)) => {
                    let kw = kw.clone();
                    match kw.as_str() {
                        "voltage" => {
                            self.next()?;
                            if voltage.is_some() {
                                return Err(err_at(
                                    ParseLibErrorKind::Duplicate,
                                    span,
                                    "duplicate `voltage`",
                                ));
                            }
                            voltage = Some(self.expect_number()?.0);
                            self.expect_token(&Token::Semi, "`;`")?;
                        }
                        "clock_period" => {
                            self.next()?;
                            if clock_period.is_some() {
                                return Err(err_at(
                                    ParseLibErrorKind::Duplicate,
                                    span,
                                    "duplicate `clock_period`",
                                ));
                            }
                            clock_period = Some(self.expect_number()?.0);
                            self.expect_token(&Token::Semi, "`;`")?;
                        }
                        "cell" => {
                            self.next()?;
                            if cells.len() + srams.len() >= limits::MAX_MACROS {
                                return Err(err_at(
                                    ParseLibErrorKind::LimitExceeded,
                                    span,
                                    format!(
                                        "library exceeds the cap of {} cells + srams",
                                        limits::MAX_MACROS
                                    ),
                                ));
                            }
                            cells.push(self.parse_cell(&mut macro_names)?);
                        }
                        "sram" => {
                            self.next()?;
                            if cells.len() + srams.len() >= limits::MAX_MACROS {
                                return Err(err_at(
                                    ParseLibErrorKind::LimitExceeded,
                                    span,
                                    format!(
                                        "library exceeds the cap of {} cells + srams",
                                        limits::MAX_MACROS
                                    ),
                                ));
                            }
                            srams.push(self.parse_sram(&mut macro_names)?);
                        }
                        other => {
                            return Err(err_at(
                                ParseLibErrorKind::Unknown,
                                span,
                                format!("unknown library item `{other}`"),
                            ));
                        }
                    }
                }
                _ => return Err(self.unexpected("a library item or `}`")),
            }
        };
        if self.peek()?.is_some() {
            return Err(self.unexpected("end of input after the closing `}`"));
        }
        let voltage = voltage.ok_or_else(|| {
            err_at(
                ParseLibErrorKind::MissingField,
                close,
                "library is missing `voltage`",
            )
        })?;
        let clock_period = clock_period.ok_or_else(|| {
            err_at(
                ParseLibErrorKind::MissingField,
                close,
                "library is missing `clock_period`",
            )
        })?;
        Ok(Library::new(name, voltage, clock_period, cells, srams))
    }

    fn parse_cell(&mut self, taken: &mut HashSet<String>) -> Result<LibCell, ParseLibError> {
        let (name, name_span) = self.expect_ident()?;
        if !taken.insert(name.clone()) {
            return Err(err_at(
                ParseLibErrorKind::Duplicate,
                name_span,
                format!("duplicate cell or sram name `{name}`"),
            ));
        }
        self.expect_token(&Token::LBrace, "`{`")?;
        let mut class = None;
        let mut drive = None;
        let mut fields: std::collections::HashMap<String, f64> = Default::default();
        let mut lut = None;
        loop {
            match self.peek()?.map(|t| (&t.token, t.span)) {
                Some((Token::RBrace, _)) => {
                    self.next()?;
                    break;
                }
                Some((Token::Ident(kw), span)) => {
                    let kw = kw.clone();
                    self.next()?;
                    match kw.as_str() {
                        "class" => {
                            if class.is_some() {
                                return Err(err_at(
                                    ParseLibErrorKind::Duplicate,
                                    span,
                                    format!("duplicate `class` in cell `{name}`"),
                                ));
                            }
                            let (word, word_span) = self.expect_ident()?;
                            class = Some(word.parse::<CellClass>().map_err(|e| {
                                err_at(
                                    ParseLibErrorKind::Unknown,
                                    word_span,
                                    format!("bad cell class: {e}"),
                                )
                            })?);
                            self.expect_token(&Token::Semi, "`;`")?;
                        }
                        "drive" => {
                            if drive.is_some() {
                                return Err(err_at(
                                    ParseLibErrorKind::Duplicate,
                                    span,
                                    format!("duplicate `drive` in cell `{name}`"),
                                ));
                            }
                            let (n, n_span) = self.expect_number()?;
                            // `as u32` would silently truncate 1.5 → X1
                            // and wrap huge values; require an exact
                            // suffix instead.
                            let suffix = (n.fract() == 0.0 && (0.0..=8.0).contains(&n))
                                .then_some(n as u32)
                                .and_then(Drive::from_suffix);
                            drive = Some(suffix.ok_or_else(|| {
                                err_at(
                                    ParseLibErrorKind::BadNumber,
                                    n_span,
                                    format!(
                                        "bad drive suffix `{}` (expected 1, 2, 4, or 8)",
                                        fmt_num(n)
                                    ),
                                )
                            })?);
                            self.expect_token(&Token::Semi, "`;`")?;
                        }
                        "energy_lut" => {
                            if lut.is_some() {
                                return Err(err_at(
                                    ParseLibErrorKind::Duplicate,
                                    span,
                                    format!("duplicate `energy_lut` in cell `{name}`"),
                                ));
                            }
                            self.expect_keyword("slew")?;
                            let slews = self.number_list("slew", limits::MAX_AXIS_LEN)?;
                            self.expect_keyword("load")?;
                            let loads = self.number_list("load", limits::MAX_AXIS_LEN)?;
                            self.expect_keyword("values")?;
                            let values = self.number_list("values", limits::MAX_LUT_VALUES)?;
                            self.expect_token(&Token::Semi, "`;`")?;
                            lut = Some(
                                EnergyLut::new(slews, loads, values)
                                    .map_err(|e| err_at(ParseLibErrorKind::Invalid, span, e))?,
                            );
                        }
                        "area" | "input_cap" | "clock_cap" | "leakage" | "drive_res"
                        | "max_load" | "clock_energy" => {
                            let (v, _) = self.expect_number()?;
                            self.expect_token(&Token::Semi, "`;`")?;
                            if fields.insert(kw.clone(), v).is_some() {
                                return Err(err_at(
                                    ParseLibErrorKind::Duplicate,
                                    span,
                                    format!("duplicate `{kw}` in cell `{name}`"),
                                ));
                            }
                        }
                        other => {
                            return Err(err_at(
                                ParseLibErrorKind::Unknown,
                                span,
                                format!("unknown cell field `{other}`"),
                            ));
                        }
                    }
                }
                _ => return Err(self.unexpected("a cell field or `}`")),
            }
        }
        let get = |f: &std::collections::HashMap<String, f64>, key: &str| {
            f.get(key).copied().ok_or_else(|| {
                err_at(
                    ParseLibErrorKind::MissingField,
                    name_span,
                    format!("cell `{name}` missing `{key}`"),
                )
            })
        };
        Ok(LibCell::new(
            name.clone(),
            class.ok_or_else(|| {
                err_at(
                    ParseLibErrorKind::MissingField,
                    name_span,
                    format!("cell `{name}` missing `class`"),
                )
            })?,
            drive.ok_or_else(|| {
                err_at(
                    ParseLibErrorKind::MissingField,
                    name_span,
                    format!("cell `{name}` missing `drive`"),
                )
            })?,
            get(&fields, "area")?,
            get(&fields, "input_cap")?,
            get(&fields, "clock_cap")?,
            get(&fields, "leakage")?,
            get(&fields, "drive_res")?,
            get(&fields, "max_load")?,
            lut.ok_or_else(|| {
                err_at(
                    ParseLibErrorKind::MissingField,
                    name_span,
                    format!("cell `{name}` missing `energy_lut`"),
                )
            })?,
            get(&fields, "clock_energy")?,
        ))
    }

    fn parse_sram(&mut self, taken: &mut HashSet<String>) -> Result<SramMacro, ParseLibError> {
        let (name, name_span) = self.expect_ident()?;
        if !taken.insert(name.clone()) {
            return Err(err_at(
                ParseLibErrorKind::Duplicate,
                name_span,
                format!("duplicate cell or sram name `{name}`"),
            ));
        }
        self.expect_token(&Token::LBrace, "`{`")?;
        let mut fields: std::collections::HashMap<String, (f64, Span)> = Default::default();
        loop {
            match self.peek()?.map(|t| (&t.token, t.span)) {
                Some((Token::RBrace, _)) => {
                    self.next()?;
                    break;
                }
                Some((Token::Ident(kw), span)) => {
                    let kw = kw.clone();
                    self.next()?;
                    match kw.as_str() {
                        "words" | "bits" | "read_energy" | "write_energy" | "leakage"
                        | "pin_cap" | "area" => {
                            let (v, v_span) = self.expect_number()?;
                            self.expect_token(&Token::Semi, "`;`")?;
                            if fields.insert(kw.clone(), (v, v_span)).is_some() {
                                return Err(err_at(
                                    ParseLibErrorKind::Duplicate,
                                    span,
                                    format!("duplicate `{kw}` in sram `{name}`"),
                                ));
                            }
                        }
                        other => {
                            return Err(err_at(
                                ParseLibErrorKind::Unknown,
                                span,
                                format!("unknown sram field `{other}`"),
                            ));
                        }
                    }
                }
                _ => return Err(self.unexpected("an sram field or `}`")),
            }
        }
        let get = |key: &str| {
            fields.get(key).copied().ok_or_else(|| {
                err_at(
                    ParseLibErrorKind::MissingField,
                    name_span,
                    format!("sram `{name}` missing `{key}`"),
                )
            })
        };
        // `as u32` would wrap 2^33 to 0 and truncate fractions; require
        // an exact in-range integer.
        let geometry = |key: &str| -> Result<u32, ParseLibError> {
            let (v, span) = get(key)?;
            if v.fract() == 0.0 && (0.0..=u32::MAX as f64).contains(&v) {
                Ok(v as u32)
            } else {
                Err(err_at(
                    ParseLibErrorKind::BadNumber,
                    span,
                    format!(
                        "sram `{name}` field `{key}` must be an integer in [0, {}], got `{}`",
                        u32::MAX,
                        fmt_num(v)
                    ),
                ))
            }
        };
        Ok(SramMacro::new(
            name.clone(),
            geometry("words")?,
            geometry("bits")?,
            get("read_energy")?.0,
            get("write_energy")?.0,
            get("leakage")?.0,
            get("pin_cap")?.0,
            get("area")?.0,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_synthetic_library() {
        let lib = Library::synthetic_40nm();
        let text = lib.to_liblite();
        let back = Library::from_liblite(&text).expect("round-trips");
        assert_eq!(lib, back);
    }

    #[test]
    fn parses_minimal_library() {
        let text = "\
library mini {
  voltage 1.1;
  clock_period 1;
  cell INV_X1 {
    class inv; drive 1; area 0.5; input_cap 0.001; clock_cap 0;
    leakage 5; drive_res 4; max_load 0.05; clock_energy 0;
    energy_lut slew [0.01 0.1] load [0.001 0.01] values [1 2 3 4];
  }
}";
        let lib = Library::from_liblite(text).expect("parses");
        assert_eq!(lib.name(), "mini");
        assert_eq!(lib.cells().len(), 1);
        let c = lib.cell_named("INV_X1").expect("present");
        assert_eq!(c.switch_energy().lookup(0.01, 0.001), 1.0);
    }

    #[test]
    fn comments_are_ignored() {
        let text = "\
library mini { # a library
  voltage 1.1; # volts
  clock_period 1;
}";
        let lib = Library::from_liblite(text).expect("parses");
        assert_eq!(lib.voltage(), 1.1);
    }

    #[test]
    fn error_carries_line_number() {
        let text = "library broken {\n  voltage banana;\n}";
        let err = Library::from_liblite(text).expect_err("must fail");
        assert_eq!(err.line(), 2);
        assert!(err.message().contains("expected number"));
    }

    #[test]
    fn error_carries_column_offset_and_found_token() {
        let text = "library broken {\n  voltage banana;\n}";
        let err = Library::from_liblite(text).expect_err("must fail");
        assert_eq!(err.kind(), ParseLibErrorKind::UnexpectedToken);
        // `banana` starts at column 11 of line 2; the library header and
        // newline are 17 bytes, plus two spaces and `voltage `.
        assert_eq!(err.column(), 11);
        assert_eq!(err.offset(), 27);
        assert!(
            err.message().contains("identifier `banana`"),
            "message must name the found token: {}",
            err.message()
        );
    }

    #[test]
    fn missing_voltage_is_an_error() {
        let text = "library broken {\n  clock_period 1;\n}";
        let err = Library::from_liblite(text).expect_err("must fail");
        assert_eq!(err.kind(), ParseLibErrorKind::MissingField);
        assert!(err.to_string().contains("voltage"));
    }

    #[test]
    fn bad_lut_shape_is_an_error() {
        let text = "\
library broken {
  voltage 1.1;
  clock_period 1;
  cell INV_X1 {
    class inv; drive 1; area 0.5; input_cap 0.001; clock_cap 0;
    leakage 5; drive_res 4; max_load 0.05; clock_energy 0;
    energy_lut slew [0.01 0.1] load [0.001 0.01] values [1 2 3];
  }
}";
        let err = Library::from_liblite(text).expect_err("must fail");
        assert_eq!(err.kind(), ParseLibErrorKind::Invalid);
    }

    #[test]
    fn unknown_field_is_an_error() {
        let text = "\
library broken {
  voltage 1.1;
  clock_period 1;
  cell INV_X1 { wattage 9; }
}";
        let err = Library::from_liblite(text).expect_err("must fail");
        assert_eq!(err.kind(), ParseLibErrorKind::Unknown);
        assert!(err.message().contains("unknown cell field"));
    }

    #[test]
    fn truncated_input_is_unexpected_end() {
        let text = "library cut {\n  voltage 1.1;\n  cell INV_X1 {";
        let err = Library::from_liblite(text).expect_err("must fail");
        assert_eq!(err.kind(), ParseLibErrorKind::UnexpectedEnd);
        assert!(err.message().contains("end of input"));
    }

    #[test]
    fn non_finite_numbers_are_rejected() {
        for bad in ["-inf", "1e999", "-1e999"] {
            let text = format!("library l {{ voltage {bad}; clock_period 1; }}");
            let err = Library::from_liblite(&text).expect_err("must fail");
            assert_eq!(err.kind(), ParseLibErrorKind::BadNumber, "{bad}");
        }
        // `inf`/`nan` lex as identifiers, which is still a typed error
        // where a number is required.
        for bad in ["inf", "nan"] {
            let text = format!("library l {{ voltage {bad}; clock_period 1; }}");
            let err = Library::from_liblite(&text).expect_err("must fail");
            assert_eq!(err.kind(), ParseLibErrorKind::UnexpectedToken, "{bad}");
        }
    }

    #[test]
    fn duplicate_names_and_fields_are_rejected() {
        let dup_field = "library l { voltage 1; voltage 2; clock_period 1; }";
        let err = Library::from_liblite(dup_field).expect_err("must fail");
        assert_eq!(err.kind(), ParseLibErrorKind::Duplicate);

        let dup_sram = "\
library l { voltage 1; clock_period 1;
  sram S { words 8; bits 8; read_energy 1; write_energy 1; leakage 1; pin_cap 1; area 1; }
  sram S { words 8; bits 8; read_energy 1; write_energy 1; leakage 1; pin_cap 1; area 1; }
}";
        let err = Library::from_liblite(dup_sram).expect_err("must fail");
        assert_eq!(err.kind(), ParseLibErrorKind::Duplicate);
    }

    #[test]
    fn fractional_or_huge_geometry_is_rejected() {
        for bad in ["1.5", "8589934592", "-1"] {
            let text = format!(
                "library l {{ voltage 1; clock_period 1;\n  sram S {{ words {bad}; bits 8; \
                 read_energy 1; write_energy 1; leakage 1; pin_cap 1; area 1; }}\n}}"
            );
            let err = Library::from_liblite(&text).expect_err("must fail");
            assert_eq!(err.kind(), ParseLibErrorKind::BadNumber, "words {bad}");
        }
    }

    #[test]
    fn fractional_drive_is_rejected() {
        let text = "\
library l { voltage 1; clock_period 1;
  cell C { class inv; drive 1.5; area 1; input_cap 1; clock_cap 0;
    leakage 1; drive_res 1; max_load 1; clock_energy 0;
    energy_lut slew [0.01 0.1] load [0.001 0.01] values [1 2 3 4];
  }
}";
        let err = Library::from_liblite(text).expect_err("must fail");
        assert_eq!(err.kind(), ParseLibErrorKind::BadNumber);
    }

    #[test]
    fn caps_are_enforced() {
        // Oversized input.
        let big = " ".repeat(limits::MAX_INPUT_BYTES + 1);
        let err = Library::from_liblite(&big).expect_err("must fail");
        assert_eq!(err.kind(), ParseLibErrorKind::LimitExceeded);

        // Over-long identifier.
        let long = "x".repeat(limits::MAX_IDENT_BYTES + 1);
        let err = Library::from_liblite(&format!("library {long} {{")).expect_err("must fail");
        assert_eq!(err.kind(), ParseLibErrorKind::LimitExceeded);

        // Deep brace nesting.
        let deep = format!("library l {}", "{".repeat(limits::MAX_BRACE_DEPTH + 1));
        let err = Library::from_liblite(&deep).expect_err("must fail");
        assert_eq!(err.kind(), ParseLibErrorKind::LimitExceeded);

        // Oversized LUT axis.
        let axis: String = (0..=limits::MAX_AXIS_LEN)
            .map(|i| format!("{i} "))
            .collect();
        let text = format!(
            "library l {{ voltage 1; clock_period 1;\n  cell C {{ class inv; drive 1; \
             energy_lut slew [{axis}] load [1 2] values [1];"
        );
        let err = Library::from_liblite(&text).expect_err("must fail");
        assert_eq!(err.kind(), ParseLibErrorKind::LimitExceeded);
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let lib = Library::synthetic_40nm();
        let text = format!("{} extra", lib.to_liblite());
        let err = Library::from_liblite(&text).expect_err("must fail");
        assert_eq!(err.kind(), ParseLibErrorKind::UnexpectedToken);
    }

    #[test]
    fn stray_punctuation_is_a_typed_error() {
        for text in ["library l { voltage !1; }", "library \\esc { }", "libr’ry"] {
            let err = Library::from_liblite(text).expect_err("must fail");
            assert_eq!(err.kind(), ParseLibErrorKind::UnexpectedToken, "{text}");
        }
    }
}
