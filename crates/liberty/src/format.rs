//! The `liblite` text format: a minimal liberty-like serialization of a
//! [`Library`], with a writer and a recursive-descent parser.
//!
//! The format exists so the reproduction exercises the same "parse the
//! technology library from a file" code path the paper's flow uses with
//! real `.lib` files.
//!
//! ```text
//! library atlas40 {
//!   voltage 1.1;
//!   clock_period 1;
//!   cell INV_X1 {
//!     class inv; drive 1; area 0.53; input_cap 0.0014; clock_cap 0;
//!     leakage 6; drive_res 4; max_load 0.055; clock_energy 0;
//!     energy_lut slew [0.01 0.05 0.2 0.8] load [0.001 0.01 0.05 0.2]
//!       values [0.0008 ... ];
//!   }
//!   sram SRAM_512x64 {
//!     words 512; bits 64; read_energy 7.2; write_energy 8.3;
//!     leakage 614.4; pin_cap 0.004; area 8192;
//!   }
//! }
//! ```

use std::fmt::Write as _;

use crate::cell::{LibCell, SramMacro};
use crate::error::ParseLibError;
use crate::library::Library;
use crate::lut::EnergyLut;
use crate::types::{CellClass, Drive};

impl Library {
    /// Serialize this library to liblite text.
    pub fn to_liblite(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "library {} {{", self.name());
        let _ = writeln!(out, "  voltage {};", fmt_num(self.voltage()));
        let _ = writeln!(out, "  clock_period {};", fmt_num(self.clock_period_ns()));
        for cell in self.cells() {
            write_cell(&mut out, cell);
        }
        for sram in self.srams() {
            write_sram(&mut out, sram);
        }
        out.push_str("}\n");
        out
    }

    /// Parse a library from liblite text.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseLibError`] (with line number) on any syntactic or
    /// semantic problem: unknown keywords, malformed numbers, LUT shape
    /// mismatches, missing required fields.
    ///
    /// # Examples
    ///
    /// ```
    /// use atlas_liberty::Library;
    ///
    /// # fn main() -> Result<(), atlas_liberty::ParseLibError> {
    /// let lib = Library::synthetic_40nm();
    /// let text = lib.to_liblite();
    /// let back = Library::from_liblite(&text)?;
    /// assert_eq!(lib, back);
    /// # Ok(())
    /// # }
    /// ```
    pub fn from_liblite(text: &str) -> Result<Library, ParseLibError> {
        Parser::new(text).parse_library()
    }
}

fn fmt_num(v: f64) -> String {
    // Full round-trip precision without trailing noise for integral values.
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        let s = format!("{v:.17}");
        // Trim to the shortest representation that round-trips.
        let short = format!("{v}");
        if short.parse::<f64>() == Ok(v) {
            short
        } else {
            s
        }
    }
}

fn write_cell(out: &mut String, cell: &LibCell) {
    let _ = writeln!(out, "  cell {} {{", cell.name());
    let _ = writeln!(
        out,
        "    class {}; drive {}; area {}; input_cap {}; clock_cap {};",
        cell.class().keyword(),
        cell.drive().suffix(),
        fmt_num(cell.area()),
        fmt_num(cell.input_cap()),
        fmt_num(cell.clock_cap()),
    );
    let _ = writeln!(
        out,
        "    leakage {}; drive_res {}; max_load {}; clock_energy {};",
        fmt_num(cell.leakage()),
        fmt_num(cell.drive_res()),
        fmt_num(cell.max_load()),
        fmt_num(cell.clock_energy()),
    );
    let lut = cell.switch_energy();
    let _ = write!(out, "    energy_lut slew [");
    let _ = write!(
        out,
        "{}",
        lut.slew_axis()
            .iter()
            .map(|v| fmt_num(*v))
            .collect::<Vec<_>>()
            .join(" ")
    );
    let _ = write!(out, "] load [");
    let _ = write!(
        out,
        "{}",
        lut.load_axis()
            .iter()
            .map(|v| fmt_num(*v))
            .collect::<Vec<_>>()
            .join(" ")
    );
    let _ = write!(out, "] values [");
    let _ = write!(
        out,
        "{}",
        lut.values()
            .iter()
            .map(|v| fmt_num(*v))
            .collect::<Vec<_>>()
            .join(" ")
    );
    let _ = writeln!(out, "];");
    let _ = writeln!(out, "  }}");
}

fn write_sram(out: &mut String, sram: &SramMacro) {
    let _ = writeln!(out, "  sram {} {{", sram.name());
    let _ = writeln!(
        out,
        "    words {}; bits {}; read_energy {}; write_energy {};",
        sram.words(),
        sram.bits(),
        fmt_num(sram.read_energy()),
        fmt_num(sram.write_energy()),
    );
    let _ = writeln!(
        out,
        "    leakage {}; pin_cap {}; area {};",
        fmt_num(sram.leakage()),
        fmt_num(sram.pin_cap()),
        fmt_num(sram.area()),
    );
    let _ = writeln!(out, "  }}");
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Ident(String),
    Number(f64),
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Semi,
}

struct Parser {
    tokens: Vec<(Token, usize)>,
    pos: usize,
}

impl Parser {
    fn new(text: &str) -> Parser {
        let mut tokens = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let line_num = lineno + 1;
            let line = line.split('#').next().unwrap_or("");
            let mut chars = line.char_indices().peekable();
            while let Some(&(start, ch)) = chars.peek() {
                match ch {
                    c if c.is_whitespace() => {
                        chars.next();
                    }
                    '{' => {
                        chars.next();
                        tokens.push((Token::LBrace, line_num));
                    }
                    '}' => {
                        chars.next();
                        tokens.push((Token::RBrace, line_num));
                    }
                    '[' => {
                        chars.next();
                        tokens.push((Token::LBracket, line_num));
                    }
                    ']' => {
                        chars.next();
                        tokens.push((Token::RBracket, line_num));
                    }
                    ';' => {
                        chars.next();
                        tokens.push((Token::Semi, line_num));
                    }
                    _ => {
                        let mut end = start;
                        while let Some(&(i, c)) = chars.peek() {
                            if c.is_whitespace() || "{}[];".contains(c) {
                                break;
                            }
                            end = i + c.len_utf8();
                            chars.next();
                        }
                        let word = &line[start..end];
                        if let Ok(n) = word.parse::<f64>() {
                            tokens.push((Token::Number(n), line_num));
                        } else {
                            tokens.push((Token::Ident(word.to_owned()), line_num));
                        }
                    }
                }
            }
        }
        Parser { tokens, pos: 0 }
    }

    fn line(&self) -> usize {
        self.tokens
            .get(self.pos.min(self.tokens.len().saturating_sub(1)))
            .map(|(_, l)| *l)
            .unwrap_or(0)
    }

    fn err(&self, msg: impl Into<String>) -> ParseLibError {
        ParseLibError::new(self.line(), msg)
    }

    fn next(&mut self) -> Option<&Token> {
        let t = self.tokens.get(self.pos).map(|(t, _)| t);
        self.pos += 1;
        t
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|(t, _)| t)
    }

    fn expect_ident(&mut self) -> Result<String, ParseLibError> {
        let line = self.line();
        match self.next() {
            Some(Token::Ident(s)) => Ok(s.clone()),
            other => Err(ParseLibError::new(
                line,
                format!("expected identifier, got {other:?}"),
            )),
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseLibError> {
        let line = self.line();
        match self.next() {
            Some(Token::Ident(s)) if s == kw => Ok(()),
            other => Err(ParseLibError::new(
                line,
                format!("expected `{kw}`, got {other:?}"),
            )),
        }
    }

    fn expect_number(&mut self) -> Result<f64, ParseLibError> {
        let line = self.line();
        match self.next() {
            Some(Token::Number(n)) => Ok(*n),
            other => Err(ParseLibError::new(
                line,
                format!("expected number, got {other:?}"),
            )),
        }
    }

    fn expect_token(&mut self, tok: Token) -> Result<(), ParseLibError> {
        let line = self.line();
        match self.next() {
            Some(t) if *t == tok => Ok(()),
            other => Err(ParseLibError::new(
                line,
                format!("expected {tok:?}, got {other:?}"),
            )),
        }
    }

    fn number_list(&mut self) -> Result<Vec<f64>, ParseLibError> {
        self.expect_token(Token::LBracket)?;
        let mut out = Vec::new();
        loop {
            match self.peek() {
                Some(Token::Number(_)) => {
                    out.push(self.expect_number()?);
                }
                Some(Token::RBracket) => {
                    self.next();
                    return Ok(out);
                }
                _ => return Err(self.err("expected number or `]` in list")),
            }
        }
    }

    fn parse_library(&mut self) -> Result<Library, ParseLibError> {
        self.expect_keyword("library")?;
        let name = self.expect_ident()?;
        self.expect_token(Token::LBrace)?;
        let mut voltage = None;
        let mut clock_period = None;
        let mut cells = Vec::new();
        let mut srams = Vec::new();
        loop {
            match self.peek() {
                Some(Token::RBrace) => {
                    self.next();
                    break;
                }
                Some(Token::Ident(kw)) => match kw.as_str() {
                    "voltage" => {
                        self.next();
                        voltage = Some(self.expect_number()?);
                        self.expect_token(Token::Semi)?;
                    }
                    "clock_period" => {
                        self.next();
                        clock_period = Some(self.expect_number()?);
                        self.expect_token(Token::Semi)?;
                    }
                    "cell" => {
                        self.next();
                        cells.push(self.parse_cell()?);
                    }
                    "sram" => {
                        self.next();
                        srams.push(self.parse_sram()?);
                    }
                    other => {
                        return Err(self.err(format!("unknown library item `{other}`")));
                    }
                },
                other => return Err(self.err(format!("unexpected token {other:?}"))),
            }
        }
        let voltage = voltage.ok_or_else(|| self.err("library is missing `voltage`"))?;
        let clock_period =
            clock_period.ok_or_else(|| self.err("library is missing `clock_period`"))?;
        Ok(Library::new(name, voltage, clock_period, cells, srams))
    }

    fn parse_cell(&mut self) -> Result<LibCell, ParseLibError> {
        let name = self.expect_ident()?;
        self.expect_token(Token::LBrace)?;
        let mut class = None;
        let mut drive = None;
        let mut fields: std::collections::HashMap<String, f64> = Default::default();
        let mut lut = None;
        loop {
            match self.peek() {
                Some(Token::RBrace) => {
                    self.next();
                    break;
                }
                Some(Token::Ident(kw)) => {
                    let kw = kw.clone();
                    self.next();
                    match kw.as_str() {
                        "class" => {
                            let word = self.expect_ident()?;
                            class = Some(
                                word.parse::<CellClass>()
                                    .map_err(|e| self.err(format!("bad cell class: {e}")))?,
                            );
                            self.expect_token(Token::Semi)?;
                        }
                        "drive" => {
                            let n = self.expect_number()?;
                            drive = Some(
                                Drive::from_suffix(n as u32)
                                    .ok_or_else(|| self.err(format!("bad drive suffix {n}")))?,
                            );
                            self.expect_token(Token::Semi)?;
                        }
                        "energy_lut" => {
                            self.expect_keyword("slew")?;
                            let slews = self.number_list()?;
                            self.expect_keyword("load")?;
                            let loads = self.number_list()?;
                            self.expect_keyword("values")?;
                            let values = self.number_list()?;
                            self.expect_token(Token::Semi)?;
                            lut = Some(
                                EnergyLut::new(slews, loads, values).map_err(|e| self.err(e))?,
                            );
                        }
                        "area" | "input_cap" | "clock_cap" | "leakage" | "drive_res"
                        | "max_load" | "clock_energy" => {
                            let v = self.expect_number()?;
                            self.expect_token(Token::Semi)?;
                            fields.insert(kw, v);
                        }
                        other => {
                            return Err(self.err(format!("unknown cell field `{other}`")));
                        }
                    }
                }
                other => return Err(self.err(format!("unexpected token {other:?}"))),
            }
        }
        let get = |f: &std::collections::HashMap<String, f64>, key: &str| {
            f.get(key)
                .copied()
                .ok_or_else(|| ParseLibError::new(0, format!("cell `{name}` missing `{key}`")))
        };
        Ok(LibCell::new(
            name.clone(),
            class.ok_or_else(|| self.err(format!("cell `{name}` missing `class`")))?,
            drive.ok_or_else(|| self.err(format!("cell `{name}` missing `drive`")))?,
            get(&fields, "area")?,
            get(&fields, "input_cap")?,
            get(&fields, "clock_cap")?,
            get(&fields, "leakage")?,
            get(&fields, "drive_res")?,
            get(&fields, "max_load")?,
            lut.ok_or_else(|| self.err(format!("cell `{name}` missing `energy_lut`")))?,
            get(&fields, "clock_energy")?,
        ))
    }

    fn parse_sram(&mut self) -> Result<SramMacro, ParseLibError> {
        let name = self.expect_ident()?;
        self.expect_token(Token::LBrace)?;
        let mut fields: std::collections::HashMap<String, f64> = Default::default();
        loop {
            match self.peek() {
                Some(Token::RBrace) => {
                    self.next();
                    break;
                }
                Some(Token::Ident(kw)) => {
                    let kw = kw.clone();
                    self.next();
                    let v = self.expect_number()?;
                    self.expect_token(Token::Semi)?;
                    fields.insert(kw, v);
                }
                other => return Err(self.err(format!("unexpected token {other:?}"))),
            }
        }
        let get = |key: &str| {
            fields
                .get(key)
                .copied()
                .ok_or_else(|| ParseLibError::new(0, format!("sram `{name}` missing `{key}`")))
        };
        Ok(SramMacro::new(
            name.clone(),
            get("words")? as u32,
            get("bits")? as u32,
            get("read_energy")?,
            get("write_energy")?,
            get("leakage")?,
            get("pin_cap")?,
            get("area")?,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_synthetic_library() {
        let lib = Library::synthetic_40nm();
        let text = lib.to_liblite();
        let back = Library::from_liblite(&text).expect("round-trips");
        assert_eq!(lib, back);
    }

    #[test]
    fn parses_minimal_library() {
        let text = "\
library mini {
  voltage 1.1;
  clock_period 1;
  cell INV_X1 {
    class inv; drive 1; area 0.5; input_cap 0.001; clock_cap 0;
    leakage 5; drive_res 4; max_load 0.05; clock_energy 0;
    energy_lut slew [0.01 0.1] load [0.001 0.01] values [1 2 3 4];
  }
}";
        let lib = Library::from_liblite(text).expect("parses");
        assert_eq!(lib.name(), "mini");
        assert_eq!(lib.cells().len(), 1);
        let c = lib.cell_named("INV_X1").expect("present");
        assert_eq!(c.switch_energy().lookup(0.01, 0.001), 1.0);
    }

    #[test]
    fn comments_are_ignored() {
        let text = "\
library mini { # a library
  voltage 1.1; # volts
  clock_period 1;
}";
        let lib = Library::from_liblite(text).expect("parses");
        assert_eq!(lib.voltage(), 1.1);
    }

    #[test]
    fn error_carries_line_number() {
        let text = "library broken {\n  voltage banana;\n}";
        let err = Library::from_liblite(text).expect_err("must fail");
        assert_eq!(err.line(), 2);
        assert!(err.message().contains("expected number"));
    }

    #[test]
    fn missing_voltage_is_an_error() {
        let text = "library broken {\n  clock_period 1;\n}";
        let err = Library::from_liblite(text).expect_err("must fail");
        assert!(err.to_string().contains("voltage"));
    }

    #[test]
    fn bad_lut_shape_is_an_error() {
        let text = "\
library broken {
  voltage 1.1;
  clock_period 1;
  cell INV_X1 {
    class inv; drive 1; area 0.5; input_cap 0.001; clock_cap 0;
    leakage 5; drive_res 4; max_load 0.05; clock_energy 0;
    energy_lut slew [0.01 0.1] load [0.001 0.01] values [1 2 3];
  }
}";
        assert!(Library::from_liblite(text).is_err());
    }

    #[test]
    fn unknown_field_is_an_error() {
        let text = "\
library broken {
  voltage 1.1;
  clock_period 1;
  cell INV_X1 { wattage 9; }
}";
        let err = Library::from_liblite(text).expect_err("must fail");
        assert!(err.message().contains("unknown cell field"));
    }
}
