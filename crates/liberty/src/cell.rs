//! Standard cell and SRAM macro descriptors.

use serde::{Deserialize, Serialize};

use crate::lut::EnergyLut;
use crate::types::{CellClass, Drive};

/// One characterized standard cell (a `(class, drive)` point), carrying the
/// power- and timing-relevant data ATLAS extracts from the `.lib` file.
///
/// # Examples
///
/// ```
/// use atlas_liberty::{CellClass, Drive, Library};
///
/// let lib = Library::synthetic_40nm();
/// let dff = lib.cell(CellClass::Dff, Drive::X1).expect("DFF_X1 exists");
/// // Registers burn clock-pin internal energy every cycle:
/// assert!(dff.clock_energy() > 0.0);
/// assert!(dff.is_sequential());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LibCell {
    name: String,
    class: CellClass,
    drive: Drive,
    area: f64,
    input_cap: f64,
    clock_cap: f64,
    leakage: f64,
    drive_res: f64,
    max_load: f64,
    switch_energy: EnergyLut,
    clock_energy: f64,
}

impl LibCell {
    /// Build a cell descriptor. Intended for library construction and the
    /// liblite parser; downstream code obtains cells from a [`crate::Library`].
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: impl Into<String>,
        class: CellClass,
        drive: Drive,
        area: f64,
        input_cap: f64,
        clock_cap: f64,
        leakage: f64,
        drive_res: f64,
        max_load: f64,
        switch_energy: EnergyLut,
        clock_energy: f64,
    ) -> LibCell {
        LibCell {
            name: name.into(),
            class,
            drive,
            area,
            input_cap,
            clock_cap,
            leakage,
            drive_res,
            max_load,
            switch_energy,
            clock_energy,
        }
    }

    /// Library cell name, e.g. `NAND2_X2`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Functional class.
    pub fn class(&self) -> CellClass {
        self.class
    }

    /// Drive strength.
    pub fn drive(&self) -> Drive {
        self.drive
    }

    /// Cell area in µm².
    pub fn area(&self) -> f64 {
        self.area
    }

    /// Capacitance (pF) presented by each logic input pin.
    pub fn input_cap(&self) -> f64 {
        self.input_cap
    }

    /// Capacitance (pF) presented by the clock pin (0 for combinational cells).
    pub fn clock_cap(&self) -> f64 {
        self.clock_cap
    }

    /// State-independent leakage power in nW.
    pub fn leakage(&self) -> f64 {
        self.leakage
    }

    /// Equivalent output drive resistance in kΩ (used for slew/delay
    /// estimation: `slew ≈ drive_res × load`).
    pub fn drive_res(&self) -> f64 {
        self.drive_res
    }

    /// Maximum output load (pF) before the cell must be upsized or buffered.
    pub fn max_load(&self) -> f64 {
        self.max_load
    }

    /// Internal energy table: pJ per output toggle as f(slew, load).
    pub fn switch_energy(&self) -> &EnergyLut {
        &self.switch_energy
    }

    /// Internal energy (pJ) burned on the clock pin per clock cycle (both
    /// edges), independent of data activity. Zero for combinational cells.
    /// This is what makes the register group power nearly constant per cycle
    /// (paper footnote 3).
    pub fn clock_energy(&self) -> f64 {
        self.clock_energy
    }

    /// Whether this cell is clocked.
    pub fn is_sequential(&self) -> bool {
        self.class.is_sequential()
    }

    /// Total input capacitance over all logic input pins (pF).
    pub fn total_input_cap(&self) -> f64 {
        self.input_cap * self.class.input_pins() as f64
    }

    /// Estimated output slew (ns) when driving `load` pF.
    pub fn output_slew(&self, load: f64) -> f64 {
        // RC step response: slew ~ 2.2 * R * C, with R in kΩ and C in pF
        // giving ns directly.
        2.2 * self.drive_res * load.max(0.0)
    }
}

/// An SRAM macro descriptor: per-access read/write energies and leakage,
/// mirroring what a memory compiler datasheet provides.
///
/// The paper's memory power group (about half of total design power) is
/// modeled from port toggle activity and these per-access energies (§VI-B).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SramMacro {
    name: String,
    words: u32,
    bits: u32,
    read_energy: f64,
    write_energy: f64,
    leakage: f64,
    pin_cap: f64,
    area: f64,
}

impl SramMacro {
    /// Build an SRAM macro descriptor.
    pub fn new(
        name: impl Into<String>,
        words: u32,
        bits: u32,
        read_energy: f64,
        write_energy: f64,
        leakage: f64,
        pin_cap: f64,
        area: f64,
    ) -> SramMacro {
        SramMacro {
            name: name.into(),
            words,
            bits,
            read_energy,
            write_energy,
            leakage,
            pin_cap,
            area,
        }
    }

    /// Macro name, e.g. `SRAM_512x64`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of addressable words.
    pub fn words(&self) -> u32 {
        self.words
    }

    /// Bits per word.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Total capacity in bits.
    pub fn capacity_bits(&self) -> u64 {
        self.words as u64 * self.bits as u64
    }

    /// Energy (pJ) per read access.
    pub fn read_energy(&self) -> f64 {
        self.read_energy
    }

    /// Energy (pJ) per write access.
    pub fn write_energy(&self) -> f64 {
        self.write_energy
    }

    /// Leakage power in nW.
    pub fn leakage(&self) -> f64 {
        self.leakage
    }

    /// Capacitance (pF) per data/address pin.
    pub fn pin_cap(&self) -> f64 {
        self.pin_cap
    }

    /// Macro area in µm².
    pub fn area(&self) -> f64 {
        self.area
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inv_x1() -> LibCell {
        LibCell::new(
            "INV_X1",
            CellClass::Inv,
            Drive::X1,
            0.53,
            0.0012,
            0.0,
            8.0,
            4.0,
            0.06,
            EnergyLut::constant(0.0011),
            0.0,
        )
    }

    #[test]
    fn getters() {
        let c = inv_x1();
        assert_eq!(c.name(), "INV_X1");
        assert_eq!(c.class(), CellClass::Inv);
        assert_eq!(c.drive(), Drive::X1);
        assert!(!c.is_sequential());
        assert_eq!(c.clock_energy(), 0.0);
        assert!((c.total_input_cap() - 0.0012).abs() < 1e-12);
    }

    #[test]
    fn output_slew_scales_with_load() {
        let c = inv_x1();
        assert!(c.output_slew(0.01) < c.output_slew(0.05));
        assert_eq!(c.output_slew(-1.0), 0.0);
    }

    #[test]
    fn sram_capacity() {
        let s = SramMacro::new("SRAM_512x64", 512, 64, 8.0, 10.0, 4000.0, 0.004, 12000.0);
        assert_eq!(s.capacity_bits(), 512 * 64);
        assert!(s.write_energy() > s.read_energy());
    }
}
