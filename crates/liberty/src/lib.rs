//! Synthetic 40nm-class technology library — the `.lib` (liberty) substitute
//! used throughout the ATLAS reproduction.
//!
//! The ATLAS paper reads per-cell internal energy, leakage, and pin
//! capacitance from the lookup tables of a TSMC 40nm liberty file. That
//! library is proprietary, so this crate provides a deterministic synthetic
//! library with the same *shape*: 18 functional cell classes
//! ([`CellClass`]), several drive strengths ([`Drive`]), 2-D internal-energy
//! lookup tables indexed by input slew and output load ([`EnergyLut`]), SRAM
//! macros with per-access energies ([`SramMacro`]), and a small text format
//! (`liblite`) with a parser and writer so the file-I/O code path is
//! exercised.
//!
//! Units used consistently across the workspace:
//!
//! | Quantity   | Unit |
//! |------------|------|
//! | capacitance| pF   |
//! | time       | ns   |
//! | energy     | pJ   |
//! | leakage    | nW   |
//! | voltage    | V    |
//! | area       | µm²  |
//!
//! # Examples
//!
//! ```
//! use atlas_liberty::{CellClass, Drive, Library};
//!
//! let lib = Library::synthetic_40nm();
//! let nand = lib.cell(CellClass::Nand2, Drive::X1).expect("NAND2_X1 exists");
//! assert!(nand.input_cap() > 0.0);
//! let energy = nand.switch_energy().lookup(0.05, 0.01);
//! assert!(energy > 0.0);
//! ```

mod cell;
mod error;
mod format;
mod library;
mod lut;
mod types;

pub use cell::{LibCell, SramMacro};
pub use error::{ParseLibError, ParseLibErrorKind};
pub use format::limits;
pub use library::Library;
pub use lut::EnergyLut;
pub use types::{CellClass, Drive, PowerGroup};
