//! ATLAS — the paper's primary contribution, end to end.
//!
//! Given only a **post-synthesis gate-level netlist** and a workload's
//! toggle trace, ATLAS predicts the **per-cycle post-layout power** of
//! every sub-module, split into the clock-tree / register / combinational
//! power groups (plus the separately-modeled memory group), for designs
//! it has never seen (paper §II–§V).
//!
//! Pipeline (one type per stage):
//!
//! 1. [`features`] — sub-module graphs with per-node features: 18-way
//!    cell-type one-hot, per-cycle toggle, cell internal energy, leakage,
//!    input capacitance, plus two mask-token channels (§III-C).
//! 2. [`bundle`] — dataset preparation: for each design, the aligned
//!    triple `Ng` / `N+g` (restructured) / `Np` (through the layout flow),
//!    simulated workloads, and golden per-cycle labels.
//! 3. [`pretrain`] — the five self-supervised tasks over the SGFormer-style
//!    encoder: ① masked-toggle, ② masked-node-type, ③ sub-module size,
//!    ④ gate-level contrastive, ⑤ cross-stage alignment (§IV).
//! 4. [`finetune`] — XGBoost-style heads `F_CT(E_g)`,
//!    `F_Comb(E_g, n, I, C)`, `F_Reg(E_g, n, I, C)` (§V) and the simple
//!    memory-group model (§VI-B).
//! 5. [`model`] — the deployable [`AtlasModel`]: gate-level netlist +
//!    toggle trace → predicted [`atlas_power::PowerTrace`].
//! 6. [`evaluate`] / [`pipeline`] — MAPE evaluation against golden labels
//!    and the one-call experiment driver used by every table/figure bench.
//!
//! # Examples
//!
//! Train a tiny ATLAS and predict an unseen design's power (the full-size
//! version of this flow is `examples/quickstart.rs`):
//!
//! ```no_run
//! use atlas_core::pipeline::{train_atlas, ExperimentConfig};
//!
//! let cfg = ExperimentConfig::quick();
//! let trained = train_atlas(&cfg);
//! let eval = trained.evaluate_test_design("C2", "W1");
//! println!("total-power MAPE on unseen C2: {:.2}%", eval.atlas_mape_total);
//! ```

pub mod bundle;
pub mod evaluate;
pub mod features;
pub mod finetune;
pub mod model;
pub mod pipeline;
pub mod pretrain;

pub use evaluate::EvalRow;
pub use model::{
    AtlasModel, DeltaStats, EmbeddingTable, PreparedEncoder, SubmoduleEmbeddings, TraceEmbeddings,
};
pub use pipeline::{train_atlas, ExperimentConfig, LookupError, TrainedAtlas};

// The precision knob travels with the model API: serving layers pick a
// [`Precision`] without depending on `atlas_nn` directly.
pub use atlas_nn::{Precision, F32_EMBED_TOLERANCE};
