//! Self-supervised encoder pre-training — the paper's five tasks (§IV).
//!
//! Per step, a batch of sub-modules is sampled across the training
//! designs at random cycles, and the joint loss
//! `L = L_MT + L_MN + L_Size + L_CL1 + L_CL2` (Eq. 6) is minimized with
//! Adam. Each task can be disabled individually, which is what the
//! `ablation_ssl_tasks` bench sweeps.

use atlas_netlist::detrng::DetRng;
use atlas_nn::{info_nce, Adam, EncoderConfig, GraphEncoder, Matrix, MlpHead, Tensor};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::bundle::DesignBundle;
use crate::features::FEATURE_DIM;

/// Pre-training hyperparameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PretrainConfig {
    /// Encoder hidden width.
    pub hidden_dim: usize,
    /// Encoder layers.
    pub layers: usize,
    /// Optimizer steps.
    pub steps: usize,
    /// Sub-modules per batch.
    pub batch: usize,
    /// Adam learning rate (paper: 1e-4; demo default is larger because the
    /// demo runs orders of magnitude fewer steps).
    pub lr: f64,
    /// Node masking fraction for tasks ① and ②.
    pub mask_frac: f64,
    /// InfoNCE temperature.
    pub tau: f64,
    /// Sampling seed.
    pub seed: u64,
    /// Enable task ① masked-toggle propagation learning.
    pub task_mask_toggle: bool,
    /// Enable task ② masked-node-type learning.
    pub task_mask_type: bool,
    /// Enable task ③ sub-module-size learning.
    pub task_size: bool,
    /// Enable task ④ gate-level contrastive learning.
    pub task_cl_gate: bool,
    /// Enable task ⑤ cross-stage alignment contrastive learning.
    pub task_cl_cross: bool,
}

impl Default for PretrainConfig {
    fn default() -> PretrainConfig {
        PretrainConfig {
            hidden_dim: 48,
            layers: 2,
            steps: 240,
            batch: 8,
            lr: 3e-3,
            mask_frac: 0.15,
            tau: 0.2,
            seed: 11,
            task_mask_toggle: true,
            task_mask_type: true,
            task_size: true,
            task_cl_gate: true,
            task_cl_cross: true,
        }
    }
}

impl PretrainConfig {
    /// A very small configuration for unit tests.
    pub fn test_tiny() -> PretrainConfig {
        PretrainConfig {
            hidden_dim: 16,
            layers: 1,
            steps: 12,
            batch: 4,
            ..PretrainConfig::default()
        }
    }
}

/// Loss curves recorded during pre-training (one entry per step).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PretrainStats {
    /// Joint loss per step.
    pub total: Vec<f64>,
    /// Task ① loss per step (0 when disabled).
    pub mask_toggle: Vec<f64>,
    /// Task ② loss per step.
    pub mask_type: Vec<f64>,
    /// Task ③ loss per step.
    pub size: Vec<f64>,
    /// Task ④ loss per step.
    pub cl_gate: Vec<f64>,
    /// Task ⑤ loss per step.
    pub cl_cross: Vec<f64>,
}

impl PretrainStats {
    /// Mean of the first `k` and last `k` total losses — a crude
    /// convergence check.
    pub fn improvement(&self, k: usize) -> (f64, f64) {
        let k = k.min(self.total.len());
        if k == 0 {
            return (0.0, 0.0);
        }
        let head: f64 = self.total[..k].iter().sum::<f64>() / k as f64;
        let tail: f64 = self.total[self.total.len() - k..].iter().sum::<f64>() / k as f64;
        (head, tail)
    }
}

/// Pre-train the encoder over the training bundles. Returns the encoder
/// (the temporary task heads are dropped, as in the paper) and the loss
/// curves.
///
/// # Panics
///
/// Panics if `bundles` is empty or a bundle has no sub-modules.
pub fn pretrain(bundles: &[DesignBundle], cfg: &PretrainConfig) -> (GraphEncoder, PretrainStats) {
    assert!(!bundles.is_empty(), "need at least one training design");
    let enc_cfg = EncoderConfig {
        input_dim: FEATURE_DIM,
        hidden_dim: cfg.hidden_dim,
        layers: cfg.layers,
        alpha: 0.5,
        seed: cfg.seed,
    };
    let encoder = GraphEncoder::new(enc_cfg);
    let d = cfg.hidden_dim;
    let head_toggle = MlpHead::new(d, d, 2, cfg.seed ^ 0x101);
    let head_type = MlpHead::new(d, d, atlas_liberty::CellClass::COUNT, cfg.seed ^ 0x202);
    let head_size = MlpHead::new(d, d, 1, cfg.seed ^ 0x303);

    let mut params = encoder.params();
    params.extend(head_toggle.params());
    params.extend(head_type.params());
    params.extend(head_size.params());
    let mut opt = Adam::new(params, cfg.lr);
    let mut rng = DetRng::new(cfg.seed);
    let mut stats = PretrainStats::default();

    for _step in 0..cfg.steps {
        // --- Sample a batch of (bundle, submodule, cycle) ---
        let mut batch = Vec::with_capacity(cfg.batch);
        for _ in 0..cfg.batch {
            let b = &bundles[rng.gen_range(0..bundles.len())];
            let aligned = b.aligned_indices();
            assert!(!aligned.is_empty(), "bundle without sub-modules");
            let (gi, pi, li) = aligned[rng.gen_range(0..aligned.len())];
            let cycle = rng.gen_range(0..b.cycles());
            batch.push((b, gi, pi, li, cycle));
        }

        let mut task_losses: [Option<Tensor>; 5] = [None, None, None, None, None];

        // --- Anchor embeddings (used by tasks ③, ④, ⑤) ---
        let mut anchor_graphs = Vec::with_capacity(cfg.batch);
        let mut size_targets = Vec::with_capacity(cfg.batch);
        for &(b, gi, _, _, cycle) in &batch {
            let smd = &b.gate_data[gi];
            let feats = smd.features_for_cycle(&b.gate, &b.gate_trace, cycle);
            let (_, graph) = encoder.encode(smd.adj(), &feats);
            anchor_graphs.push(graph);
            size_targets.push((smd.node_count() as f64).ln() / 8.0);
        }
        let anchors = Tensor::concat_rows(&anchor_graphs);

        // --- Tasks ① & ②: masked recovery on a separate masked pass ---
        if cfg.task_mask_toggle || cfg.task_mask_type {
            let mut toggle_logits = Vec::new();
            let mut toggle_labels: Vec<usize> = Vec::new();
            let mut type_logits = Vec::new();
            let mut type_labels: Vec<usize> = Vec::new();
            for &(b, gi, _, _, cycle) in &batch {
                let smd = &b.gate_data[gi];
                let m = smd.masked_features(&b.gate, &b.gate_trace, cycle, cfg.mask_frac, &mut rng);
                if m.toggle_nodes.is_empty() && m.type_nodes.is_empty() {
                    continue;
                }
                let (nodes, _) = encoder.encode(smd.adj(), &m.features);
                if cfg.task_mask_toggle && !m.toggle_nodes.is_empty() {
                    toggle_logits.push(head_toggle.forward(&nodes.select_rows(&m.toggle_nodes)));
                    toggle_labels.extend(&m.toggle_labels);
                }
                if cfg.task_mask_type && !m.type_nodes.is_empty() {
                    type_logits.push(head_type.forward(&nodes.select_rows(&m.type_nodes)));
                    type_labels.extend(&m.type_labels);
                }
            }
            if cfg.task_mask_toggle && !toggle_logits.is_empty() {
                let logits = Tensor::concat_rows(&toggle_logits);
                task_losses[0] = Some(logits.softmax_cross_entropy(&toggle_labels));
            }
            if cfg.task_mask_type && !type_logits.is_empty() {
                let logits = Tensor::concat_rows(&type_logits);
                task_losses[1] = Some(logits.softmax_cross_entropy(&type_labels));
            }
        }

        // --- Task ③: sub-module size regression from graph embeddings ---
        if cfg.task_size {
            let preds = head_size.forward(&anchors);
            let target = Matrix::from_vec(cfg.batch, 1, size_targets.clone());
            task_losses[2] = Some(preds.mse_loss(&target));
        }

        // --- Task ④: gate-level contrastive (Ng vs N+g) ---
        if cfg.task_cl_gate {
            let mut pos = Vec::with_capacity(cfg.batch);
            for &(b, _, pi, _, cycle) in &batch {
                let smd = &b.plus_data[pi];
                let feats = smd.features_for_cycle(&b.plus, &b.plus_trace, cycle);
                let (_, graph) = encoder.encode(smd.adj(), &feats);
                pos.push(graph);
            }
            let positives = Tensor::concat_rows(&pos);
            task_losses[3] = Some(info_nce(&anchors, &positives, cfg.tau));
        }

        // --- Task ⑤: cross-stage alignment (Ng vs Np) ---
        if cfg.task_cl_cross {
            let mut pos = Vec::with_capacity(cfg.batch);
            for &(b, _, _, li, cycle) in &batch {
                let smd = &b.post_data[li];
                let feats = smd.features_for_cycle(&b.post, &b.post_trace, cycle);
                let (_, graph) = encoder.encode(smd.adj(), &feats);
                pos.push(graph);
            }
            let positives = Tensor::concat_rows(&pos);
            task_losses[4] = Some(info_nce(&anchors, &positives, cfg.tau));
        }

        // --- Joint loss (Eq. 6) ---
        let record =
            |slot: &Option<Tensor>| slot.as_ref().map(|t| t.value().get(0, 0)).unwrap_or(0.0);
        stats.mask_toggle.push(record(&task_losses[0]));
        stats.mask_type.push(record(&task_losses[1]));
        stats.size.push(record(&task_losses[2]));
        stats.cl_gate.push(record(&task_losses[3]));
        stats.cl_cross.push(record(&task_losses[4]));

        let active: Vec<Tensor> = task_losses.into_iter().flatten().collect();
        if active.is_empty() {
            stats.total.push(0.0);
            continue;
        }
        let mut loss = active[0].clone();
        for t in &active[1..] {
            loss = loss.add(t);
        }
        stats.total.push(loss.value().get(0, 0));
        opt.zero_grad();
        loss.backward();
        opt.step();
    }

    (encoder, stats)
}

#[cfg(test)]
mod tests {
    use atlas_designs::DesignConfig;
    use atlas_layout::LayoutConfig;
    use atlas_liberty::Library;

    use super::*;

    fn tiny_bundles() -> Vec<DesignBundle> {
        vec![DesignBundle::prepare(
            &DesignConfig::tiny(),
            &Library::synthetic_40nm(),
            &LayoutConfig::default(),
            "W1",
            10,
        )]
    }

    #[test]
    fn pretraining_reduces_joint_loss() {
        let bundles = tiny_bundles();
        let cfg = PretrainConfig {
            steps: 40,
            ..PretrainConfig::test_tiny()
        };
        let (_, stats) = pretrain(&bundles, &cfg);
        assert_eq!(stats.total.len(), 40);
        let (head, tail) = stats.improvement(8);
        assert!(
            tail < head,
            "joint SSL loss should fall: head={head:.4} tail={tail:.4}"
        );
    }

    #[test]
    fn all_five_tasks_are_recorded() {
        let bundles = tiny_bundles();
        let (_, stats) = pretrain(&bundles, &PretrainConfig::test_tiny());
        assert!(stats.mask_toggle.iter().any(|&v| v > 0.0));
        assert!(stats.mask_type.iter().any(|&v| v > 0.0));
        assert!(stats.size.iter().any(|&v| v > 0.0));
        assert!(stats.cl_gate.iter().any(|&v| v > 0.0));
        assert!(stats.cl_cross.iter().any(|&v| v > 0.0));
    }

    #[test]
    fn tasks_can_be_disabled() {
        let bundles = tiny_bundles();
        let cfg = PretrainConfig {
            task_mask_toggle: false,
            task_cl_cross: false,
            steps: 4,
            ..PretrainConfig::test_tiny()
        };
        let (_, stats) = pretrain(&bundles, &cfg);
        assert!(stats.mask_toggle.iter().all(|&v| v == 0.0));
        assert!(stats.cl_cross.iter().all(|&v| v == 0.0));
        assert!(stats.cl_gate.iter().any(|&v| v > 0.0));
    }

    #[test]
    fn pretraining_is_deterministic() {
        let bundles = tiny_bundles();
        let cfg = PretrainConfig {
            steps: 6,
            ..PretrainConfig::test_tiny()
        };
        let (enc_a, stats_a) = pretrain(&bundles, &cfg);
        let (enc_b, stats_b) = pretrain(&bundles, &cfg);
        assert_eq!(stats_a, stats_b);
        assert_eq!(enc_a.state(), enc_b.state());
    }
}
