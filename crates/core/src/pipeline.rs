//! The end-to-end experiment driver: train ATLAS on C1/C3/C5/C6, evaluate
//! on unseen C2/C4 — the flow behind every table and figure of the paper.

use std::time::Instant;

use atlas_designs::DesignConfig;
use atlas_layout::LayoutConfig;
use atlas_liberty::Library;
use atlas_nn::InferenceEncoder;
use atlas_power::{compute_power, PowerTrace};
use atlas_sim::{simulate, PhasedWorkload};
use serde::{Deserialize, Serialize};

use crate::bundle::DesignBundle;
use crate::evaluate::{evaluate, EvalRow};
use crate::features::build_submodule_data;
use crate::finetune::{finetune, FinetuneConfig};
use crate::model::AtlasModel;
use crate::pretrain::{pretrain, PretrainConfig, PretrainStats};

/// A name lookup against the experiment vocabulary failed.
///
/// The paper's experiment space is a closed set of design presets
/// (`C1`..`C6`, `TINY`) and workload presets (`W1`/`W2`). The bench
/// binaries treat an unknown name as a programming error and panic via
/// the [`ExperimentConfig::design`] wrapper; long-lived services must
/// instead surface this error to the caller (`atlas-serve` maps it onto a
/// protocol error response).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LookupError {
    /// No design preset with this name.
    UnknownDesign(String),
    /// No workload preset with this name.
    UnknownWorkload(String),
}

impl std::fmt::Display for LookupError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LookupError::UnknownDesign(name) => write!(f, "unknown design `{name}`"),
            LookupError::UnknownWorkload(name) => write!(f, "unknown workload `{name}`"),
        }
    }
}

impl std::error::Error for LookupError {}

/// Everything that defines one reproduction run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Cycles simulated per workload (paper: 300).
    pub cycles: usize,
    /// Design scale factor (1.0 = demo scale; see DESIGN.md §2).
    pub scale: f64,
    /// Training workload preset.
    pub train_workload: String,
    /// Pre-training settings.
    pub pretrain: PretrainConfig,
    /// Fine-tuning settings.
    pub finetune: FinetuneConfig,
    /// Layout flow settings.
    pub layout: LayoutConfig,
}

impl Default for ExperimentConfig {
    fn default() -> ExperimentConfig {
        ExperimentConfig {
            cycles: 300,
            scale: 1.0,
            train_workload: "W1".to_owned(),
            pretrain: PretrainConfig::default(),
            finetune: FinetuneConfig::default(),
            layout: LayoutConfig::default(),
        }
    }
}

impl ExperimentConfig {
    /// A configuration small enough for integration tests: scaled-down
    /// designs, few cycles, short training.
    pub fn quick() -> ExperimentConfig {
        ExperimentConfig {
            cycles: 40,
            scale: 0.25,
            pretrain: PretrainConfig {
                steps: 60,
                hidden_dim: 24,
                layers: 1,
                ..PretrainConfig::default()
            },
            finetune: FinetuneConfig {
                gbdt: atlas_gbdt::GbdtConfig {
                    n_estimators: 60,
                    ..atlas_gbdt::GbdtConfig::default()
                },
                cycles_per_design: 16,
                ..FinetuneConfig::default()
            },
            ..ExperimentConfig::default()
        }
    }

    /// The technology library of the run.
    pub fn library(&self) -> Library {
        Library::synthetic_40nm()
    }

    /// A design preset by name, at this run's scale.
    ///
    /// # Errors
    ///
    /// [`LookupError::UnknownDesign`] when the name is not one of
    /// `C1`..`C6` / `TINY`.
    pub fn try_design(&self, name: &str) -> Result<DesignConfig, LookupError> {
        let cfg = match name {
            "C1" => DesignConfig::c1(),
            "C2" => DesignConfig::c2(),
            "C3" => DesignConfig::c3(),
            "C4" => DesignConfig::c4(),
            "C5" => DesignConfig::c5(),
            "C6" => DesignConfig::c6(),
            "TINY" => DesignConfig::tiny(),
            other => return Err(LookupError::UnknownDesign(other.to_owned())),
        };
        Ok(cfg.scaled(self.scale))
    }

    /// [`try_design`](Self::try_design) for the experiment binaries, where
    /// an unknown name is a bug in the experiment script.
    ///
    /// # Panics
    ///
    /// Panics on an unknown design name.
    pub fn design(&self, name: &str) -> DesignConfig {
        self.try_design(name).unwrap_or_else(|e| panic!("{e}"))
    }

    /// A workload preset by name, seeded for one design.
    ///
    /// # Errors
    ///
    /// [`LookupError::UnknownWorkload`] when the name is not `W1`/`W2`.
    pub fn try_workload(&self, name: &str, seed: u64) -> Result<PhasedWorkload, LookupError> {
        PhasedWorkload::preset(name, seed)
            .ok_or_else(|| LookupError::UnknownWorkload(name.to_owned()))
    }

    /// The training designs at this run's scale (C1, C3, C5, C6).
    pub fn training_designs(&self) -> Vec<DesignConfig> {
        DesignConfig::training_set()
            .into_iter()
            .map(|c| c.scaled(self.scale))
            .collect()
    }

    /// The held-out test designs at this run's scale (C2, C4).
    pub fn test_designs(&self) -> Vec<DesignConfig> {
        DesignConfig::test_set()
            .into_iter()
            .map(|c| c.scaled(self.scale))
            .collect()
    }
}

/// Wall-clock breakdown of training.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct TrainTiming {
    /// Data preparation (generation, layout, simulation, labels) seconds.
    pub prepare_s: f64,
    /// Encoder pre-training seconds.
    pub pretrain_s: f64,
    /// Head fine-tuning seconds.
    pub finetune_s: f64,
}

/// A trained ATLAS plus everything needed to evaluate it.
pub struct TrainedAtlas {
    /// The deployable model.
    pub model: AtlasModel,
    /// Pre-training loss curves.
    pub pretrain_stats: PretrainStats,
    /// Wall-clock breakdown.
    pub timing: TrainTiming,
    /// The configuration used.
    pub config: ExperimentConfig,
}

/// Run the paper's training protocol: prepare C1/C3/C5/C6 bundles under
/// the training workload, pre-train the encoder with the five SSL tasks,
/// and fine-tune the power heads.
pub fn train_atlas(cfg: &ExperimentConfig) -> TrainedAtlas {
    let lib = cfg.library();
    let t0 = Instant::now();
    let bundles: Vec<DesignBundle> = cfg
        .training_designs()
        .iter()
        .map(|d| DesignBundle::prepare(d, &lib, &cfg.layout, &cfg.train_workload, cfg.cycles))
        .collect();
    let prepare_s = t0.elapsed().as_secs_f64();

    let t1 = Instant::now();
    let (encoder, pretrain_stats) = pretrain(&bundles, &cfg.pretrain);
    let pretrain_s = t1.elapsed().as_secs_f64();

    let t2 = Instant::now();
    let state = encoder.state();
    let heads = finetune(
        &InferenceEncoder::from_state(&state),
        &bundles,
        &lib,
        &cfg.finetune,
    );
    let finetune_s = t2.elapsed().as_secs_f64();

    TrainedAtlas {
        model: AtlasModel::new(state, heads),
        pretrain_stats,
        timing: TrainTiming {
            prepare_s,
            pretrain_s,
            finetune_s,
        },
        config: cfg.clone(),
    }
}

/// Wall-clock breakdown of one test-design evaluation (Table IV's columns).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct EvalTiming {
    /// ATLAS preprocessing: workload simulation on the gate-level netlist
    /// plus sub-module graph/feature construction (the paper's "Pre.").
    pub atlas_pre_s: f64,
    /// ATLAS inference: embeddings + head predictions (the paper's "Infer").
    pub atlas_infer_s: f64,
    /// Traditional flow: the layout process (the paper's "P&R").
    pub flow_pnr_s: f64,
    /// Traditional flow: post-layout simulation + per-cycle golden power
    /// (the paper's "Simulation").
    pub flow_sim_s: f64,
}

impl EvalTiming {
    /// Total ATLAS seconds.
    pub fn atlas_total_s(&self) -> f64 {
        self.atlas_pre_s + self.atlas_infer_s
    }

    /// Total traditional-flow seconds.
    pub fn flow_total_s(&self) -> f64 {
        self.flow_pnr_s + self.flow_sim_s
    }

    /// Traditional / ATLAS speedup factor.
    pub fn speedup(&self) -> f64 {
        self.flow_total_s() / self.atlas_total_s().max(1e-12)
    }
}

/// Full result of evaluating one (design, workload) pair.
pub struct TestEvaluation {
    /// Table III-style accuracy row.
    pub row: EvalRow,
    /// Golden post-layout labels.
    pub labels: PowerTrace,
    /// ATLAS prediction.
    pub atlas: PowerTrace,
    /// Gate-level baseline.
    pub baseline: PowerTrace,
    /// The gate-level design (for component rollups).
    pub gate: atlas_netlist::Design,
    /// Wall-clock measurements.
    pub timing: EvalTiming,
}

impl TrainedAtlas {
    /// Evaluate the model on one design preset under one workload,
    /// timing both the ATLAS path and the traditional flow.
    ///
    /// # Panics
    ///
    /// Panics on unknown design/workload names.
    pub fn evaluate_test(&self, design_name: &str, workload: &str) -> TestEvaluation {
        let cfg = &self.config;
        let lib = cfg.library();
        let dcfg = cfg.design(design_name);
        let gate = dcfg.generate();

        // --- Traditional flow (timed): layout, then simulate + golden power.
        let t0 = Instant::now();
        let layout = atlas_layout::run_layout(&gate, &lib, &cfg.layout);
        let flow_pnr_s = t0.elapsed().as_secs_f64();
        let t1 = Instant::now();
        let mut w = cfg
            .try_workload(workload, dcfg.seed)
            .unwrap_or_else(|e| panic!("{e}"));
        let post_trace =
            simulate(&layout.design, &mut w, cfg.cycles).expect("layout output simulates");
        let labels = compute_power(&layout.design, &lib, &post_trace);
        let flow_sim_s = t1.elapsed().as_secs_f64();

        // --- ATLAS path (timed): gate-level simulation + preprocessing...
        let t2 = Instant::now();
        let mut w = cfg
            .try_workload(workload, dcfg.seed)
            .expect("checked above");
        let gate_trace = simulate(&gate, &mut w, cfg.cycles).expect("gate design simulates");
        let data = build_submodule_data(&gate, &lib);
        let atlas_pre_s = t2.elapsed().as_secs_f64();
        // ... then inference.
        let t3 = Instant::now();
        let atlas = self.model.predict_prepared(&gate, &lib, &data, &gate_trace);
        let atlas_infer_s = t3.elapsed().as_secs_f64();

        // --- Gate-level baseline (the paper's Gate-Level PTPX column).
        let baseline = compute_power(&gate, &lib, &gate_trace);

        let row = evaluate(&labels, &atlas, &baseline);
        TestEvaluation {
            row,
            labels,
            atlas,
            baseline,
            gate,
            timing: EvalTiming {
                atlas_pre_s,
                atlas_infer_s,
                flow_pnr_s,
                flow_sim_s,
            },
        }
    }

    /// Convenience: just the accuracy row.
    pub fn evaluate_test_design(&self, design_name: &str, workload: &str) -> EvalRow {
        self.evaluate_test(design_name, workload).row
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One end-to-end smoke test at miniature scale; the real experiment
    /// binaries in `atlas-bench` run the full protocol.
    #[test]
    fn quick_pipeline_end_to_end() {
        let mut cfg = ExperimentConfig::quick();
        cfg.cycles = 20;
        cfg.pretrain.steps = 20;
        cfg.pretrain.hidden_dim = 16;
        cfg.finetune.cycles_per_design = 8;
        cfg.finetune.gbdt.n_estimators = 30;
        cfg.scale = 0.12;
        let trained = train_atlas(&cfg);
        assert!(trained.timing.prepare_s > 0.0);

        let eval = trained.evaluate_test("C2", "W1");
        // The core claim, in miniature: ATLAS beats the gate-level tool on
        // total power of an unseen design, and nails the clock tree that
        // the baseline misses entirely.
        assert_eq!(eval.row.baseline_mape_ct, 100.0);
        assert!(eval.row.atlas_mape_ct < 100.0);
        assert!(
            eval.row.atlas_mape_total < eval.row.baseline_mape_total,
            "ATLAS {:.1}% vs baseline {:.1}%",
            eval.row.atlas_mape_total,
            eval.row.baseline_mape_total
        );
        assert!(eval.timing.atlas_total_s() > 0.0);
        assert!(eval.timing.flow_total_s() > 0.0);
    }

    #[test]
    fn config_presets() {
        let cfg = ExperimentConfig::default();
        assert_eq!(cfg.cycles, 300);
        assert_eq!(cfg.training_designs().len(), 4);
        assert_eq!(cfg.test_designs().len(), 2);
        let c2 = cfg.design("C2");
        assert_eq!(c2.name, "C2");
    }

    #[test]
    #[should_panic(expected = "unknown design")]
    fn unknown_design_panics() {
        let _ = ExperimentConfig::default().design("C9");
    }

    #[test]
    fn typed_lookups() {
        let cfg = ExperimentConfig::default();
        assert_eq!(
            cfg.try_design("C9"),
            Err(LookupError::UnknownDesign("C9".to_owned()))
        );
        assert!(cfg.try_design("TINY").is_ok());
        assert!(cfg.try_workload("W2", 3).is_ok());
        let err = cfg.try_workload("W9", 3).unwrap_err();
        assert_eq!(err, LookupError::UnknownWorkload("W9".to_owned()));
        assert_eq!(err.to_string(), "unknown workload `W9`");
    }
}
