//! Accuracy evaluation against golden labels (Table III / Fig. 5 / Fig. 6
//! machinery).

use atlas_liberty::PowerGroup;
use atlas_netlist::{Design, SubmoduleId};
use atlas_power::metrics::{mape, pearson};
use atlas_power::PowerTrace;
use serde::{Deserialize, Serialize};

/// One row of the Table III comparison: per-group MAPE of ATLAS and of
/// the Gate-Level-PTPX-style baseline against the post-layout labels.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvalRow {
    /// Design name (e.g. `C2`).
    pub design: String,
    /// Workload name (e.g. `W1`).
    pub workload: String,
    /// ATLAS combinational-group MAPE (%).
    pub atlas_mape_comb: f64,
    /// ATLAS clock-tree-group MAPE (%).
    pub atlas_mape_ct: f64,
    /// ATLAS register-group MAPE (%).
    pub atlas_mape_reg: f64,
    /// ATLAS clock-tree + register MAPE (%).
    pub atlas_mape_ct_reg: f64,
    /// ATLAS total (non-memory) MAPE (%).
    pub atlas_mape_total: f64,
    /// ATLAS memory-group MAPE (%) — reported separately, as in §VI-B.
    pub atlas_mape_memory: f64,
    /// Baseline combinational MAPE (%).
    pub baseline_mape_comb: f64,
    /// Baseline clock-tree MAPE (%) — 100 by construction.
    pub baseline_mape_ct: f64,
    /// Baseline register MAPE (%).
    pub baseline_mape_reg: f64,
    /// Baseline clock-tree + register MAPE (%).
    pub baseline_mape_ct_reg: f64,
    /// Baseline total (non-memory) MAPE (%).
    pub baseline_mape_total: f64,
    /// Pearson correlation of the ATLAS total trace with the label trace.
    pub atlas_pearson_total: f64,
    /// Pearson correlation of the baseline total trace with the label trace.
    pub baseline_pearson_total: f64,
}

/// Compare prediction and baseline traces against labels.
///
/// # Panics
///
/// Panics if the traces disagree on cycle count.
pub fn evaluate(labels: &PowerTrace, atlas: &PowerTrace, baseline: &PowerTrace) -> EvalRow {
    assert_eq!(labels.cycles(), atlas.cycles(), "cycle count mismatch");
    assert_eq!(labels.cycles(), baseline.cycles(), "cycle count mismatch");
    let g = |p: &PowerTrace, group: PowerGroup| p.group_series(group);
    let labels_total = labels.non_memory_series();
    let atlas_total = atlas.non_memory_series();
    let baseline_total = baseline.non_memory_series();
    EvalRow {
        design: labels.design().to_owned(),
        workload: labels.workload().to_owned(),
        atlas_mape_comb: mape(
            &g(labels, PowerGroup::Combinational),
            &g(atlas, PowerGroup::Combinational),
        ),
        atlas_mape_ct: mape(
            &g(labels, PowerGroup::ClockTree),
            &g(atlas, PowerGroup::ClockTree),
        ),
        atlas_mape_reg: mape(
            &g(labels, PowerGroup::Register),
            &g(atlas, PowerGroup::Register),
        ),
        atlas_mape_ct_reg: mape(&labels.ct_reg_series(), &atlas.ct_reg_series()),
        atlas_mape_total: mape(&labels_total, &atlas_total),
        atlas_mape_memory: mape(
            &g(labels, PowerGroup::Memory),
            &g(atlas, PowerGroup::Memory),
        ),
        baseline_mape_comb: mape(
            &g(labels, PowerGroup::Combinational),
            &g(baseline, PowerGroup::Combinational),
        ),
        baseline_mape_ct: mape(
            &g(labels, PowerGroup::ClockTree),
            &g(baseline, PowerGroup::ClockTree),
        ),
        baseline_mape_reg: mape(
            &g(labels, PowerGroup::Register),
            &g(baseline, PowerGroup::Register),
        ),
        baseline_mape_ct_reg: mape(&labels.ct_reg_series(), &baseline.ct_reg_series()),
        baseline_mape_total: mape(&labels_total, &baseline_total),
        atlas_pearson_total: pearson(&labels_total, &atlas_total),
        baseline_pearson_total: pearson(&labels_total, &baseline_total),
    }
}

/// One row of the Fig. 6 component table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComponentRow {
    /// Component name (`frontend`, `lsu`, ...).
    pub component: String,
    /// Mean label power (W, non-memory groups).
    pub label_w: f64,
    /// Mean ATLAS-predicted power (W).
    pub atlas_w: f64,
    /// MAPE (%) of the per-cycle component power series.
    pub mape: f64,
}

/// Per-cycle power series of one component (non-memory groups).
pub fn component_series(trace: &PowerTrace, design: &Design, component: &str) -> Vec<f64> {
    let sms: Vec<SubmoduleId> = design
        .submodule_ids()
        .filter(|&sm| design.submodule(sm).component() == component)
        .filter(|&sm| sm.index() < trace.submodule_count())
        .collect();
    (0..trace.cycles())
        .map(|t| {
            sms.iter()
                .map(|&sm| {
                    PowerGroup::ALL
                        .iter()
                        .filter(|&&g| g != PowerGroup::Memory)
                        .map(|&g| trace.at(t, sm, g))
                        .sum::<f64>()
                })
                .sum()
        })
        .collect()
}

/// Build the Fig. 6 component table for a design. Components with no
/// measurable label power (e.g. the empty `cts` pseudo-component) are
/// skipped.
pub fn component_table(
    labels: &PowerTrace,
    atlas: &PowerTrace,
    design: &Design,
) -> Vec<ComponentRow> {
    design
        .components()
        .into_iter()
        .filter_map(|comp| {
            let label = component_series(labels, design, comp);
            let pred = component_series(atlas, design, comp);
            let label_mean = label.iter().sum::<f64>() / label.len().max(1) as f64;
            if label_mean <= 0.0 {
                return None;
            }
            let pred_mean = pred.iter().sum::<f64>() / pred.len().max(1) as f64;
            Some(ComponentRow {
                component: comp.to_owned(),
                label_w: label_mean,
                atlas_w: pred_mean,
                mape: mape(&label, &pred),
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_trace(
        vals: &[(usize, usize, PowerGroup, f64)],
        cycles: usize,
        sms: usize,
    ) -> PowerTrace {
        let mut p = PowerTrace::new("D".into(), "W".into(), cycles, sms);
        for &(t, sm, g, w) in vals {
            p.add(t, sm, g.index(), w);
        }
        p
    }

    #[test]
    fn perfect_prediction_scores_zero() {
        let labels = fake_trace(
            &[
                (0, 0, PowerGroup::Combinational, 1.0),
                (1, 0, PowerGroup::Register, 2.0),
            ],
            2,
            1,
        );
        let row = evaluate(&labels, &labels.clone(), &labels.clone());
        assert_eq!(row.atlas_mape_total, 0.0);
        assert_eq!(row.atlas_mape_comb, 0.0);
    }

    #[test]
    fn missing_clock_tree_scores_100() {
        let labels = fake_trace(&[(0, 0, PowerGroup::ClockTree, 1.0)], 1, 1);
        let baseline = fake_trace(&[], 1, 1);
        let row = evaluate(&labels, &labels.clone(), &baseline);
        assert_eq!(row.baseline_mape_ct, 100.0);
        assert_eq!(row.atlas_mape_ct, 0.0);
    }

    #[test]
    fn component_table_skips_empty_components() {
        use atlas_designs::DesignConfig;
        let design = DesignConfig::tiny().generate();
        let sms = design.submodules().len();
        let mut labels = PowerTrace::new("T".into(), "W".into(), 2, sms);
        // Put power only in sub-module 0 (a frontend sub-module).
        labels.add(0, 0, PowerGroup::Combinational.index(), 1.0);
        labels.add(1, 0, PowerGroup::Combinational.index(), 1.0);
        let table = component_table(&labels, &labels.clone(), &design);
        assert_eq!(table.len(), 1);
        assert_eq!(table[0].component, "frontend");
        assert_eq!(table[0].mape, 0.0);
    }
}
