//! Fine-tuning the three power heads (paper §V) and the memory-group
//! model (paper §VI-B).

use atlas_gbdt::{Gbdt, GbdtConfig};
use atlas_liberty::{Library, PowerGroup};
use atlas_nn::InferenceEncoder;
use serde::{Deserialize, Serialize};

use crate::bundle::DesignBundle;
use crate::features::{side_features, SideFeatures};

/// Fine-tuning hyperparameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FinetuneConfig {
    /// GBDT settings shared by the three heads.
    pub gbdt: GbdtConfig,
    /// Training cycles sampled per design (evenly spaced).
    pub cycles_per_design: usize,
    /// Give `F_Comb`/`F_Reg` the paper's `n`/`I`/`C` side features
    /// (disable for the feature-ablation bench).
    pub side_features: bool,
}

impl Default for FinetuneConfig {
    fn default() -> FinetuneConfig {
        FinetuneConfig {
            gbdt: GbdtConfig::default(),
            cycles_per_design: 48,
            side_features: true,
        }
    }
}

impl FinetuneConfig {
    /// A very small configuration for unit tests.
    pub fn test_tiny() -> FinetuneConfig {
        FinetuneConfig {
            gbdt: GbdtConfig {
                n_estimators: 30,
                ..GbdtConfig::default()
            },
            cycles_per_design: 8,
            ..FinetuneConfig::default()
        }
    }
}

/// The three fine-tuned group heads plus the memory model: everything
/// needed to turn embeddings + side features into watts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerHeads {
    /// `F_CT`: clock-tree watts from the embedding alone (the clock tree
    /// is invisible at the gate level — only the learned alignment can
    /// predict it, paper §V).
    pub f_ct: Gbdt,
    /// `F_Comb`: combinational watts from embedding + `n`, `I`, `C`.
    pub f_comb: Gbdt,
    /// `F_Reg`: register watts from embedding + `n`, `I`, `C`.
    pub f_reg: Gbdt,
    /// Closed-form memory-group model.
    pub memory: MemoryModel,
    /// Embedding width the heads expect.
    pub embed_dim: usize,
    /// Whether the comb/reg heads were trained with side features.
    pub side_features: bool,
}

impl PowerHeads {
    /// Predict the three learned groups for one sub-module-cycle.
    /// Predictions are clamped at zero (power is non-negative).
    pub fn predict_groups(&self, embedding: &[f64], side: &SideFeatures) -> [f64; 3] {
        let ct = self.f_ct.predict(embedding).max(0.0);
        let comb = self
            .f_comb
            .predict(&comb_row(embedding, side, self.side_features))
            .max(0.0);
        let reg = self
            .f_reg
            .predict(&reg_row(embedding, side, self.side_features))
            .max(0.0);
        [comb, reg, ct]
    }
}

fn comb_row(embedding: &[f64], s: &SideFeatures, side: bool) -> Vec<f64> {
    let mut row = embedding.to_vec();
    if side {
        row.extend([s.n_comb, s.i_comb, s.c_comb]);
    }
    row
}

fn reg_row(embedding: &[f64], s: &SideFeatures, side: bool) -> Vec<f64> {
    let mut row = embedding.to_vec();
    if side {
        row.extend([s.n_reg, s.i_reg, s.c_reg]);
    }
    row
}

/// Fit the heads on the training bundles, using the frozen encoder for
/// embeddings.
///
/// # Panics
///
/// Panics if `bundles` is empty.
pub fn finetune(
    encoder: &InferenceEncoder,
    bundles: &[DesignBundle],
    lib: &Library,
    cfg: &FinetuneConfig,
) -> PowerHeads {
    assert!(!bundles.is_empty(), "need at least one training design");
    let d = encoder.embedding_dim();
    let mut ct_x = Vec::new();
    let mut ct_y = Vec::new();
    let mut comb_x = Vec::new();
    let mut comb_y = Vec::new();
    let mut reg_x = Vec::new();
    let mut reg_y = Vec::new();
    let mut mem = MemoryFit::default();

    for b in bundles {
        let cycles = sample_cycles(b.cycles(), cfg.cycles_per_design);
        for smd in &b.gate_data {
            for &t in &cycles {
                let feats = smd.features_for_cycle(&b.gate, &b.gate_trace, t);
                let emb = encoder.encode_graph(smd.adj(), &feats);
                let side = side_features(smd, &b.gate, lib, &b.gate_trace, t);
                let sm = smd.submodule();
                ct_x.extend(&emb);
                ct_y.push(b.labels.at(t, sm, PowerGroup::ClockTree));
                comb_x.extend(comb_row(&emb, &side, cfg.side_features));
                comb_y.push(b.labels.at(t, sm, PowerGroup::Combinational));
                reg_x.extend(reg_row(&emb, &side, cfg.side_features));
                reg_y.push(b.labels.at(t, sm, PowerGroup::Register));
                mem.push(&side, b.labels.at(t, sm, PowerGroup::Memory));
            }
        }
    }

    let extra = if cfg.side_features { 3 } else { 0 };
    let f_ct = Gbdt::fit(&ct_x, d, &ct_y, &cfg.gbdt);
    let f_comb = Gbdt::fit(&comb_x, d + extra, &comb_y, &cfg.gbdt);
    let f_reg = Gbdt::fit(&reg_x, d + extra, &reg_y, &cfg.gbdt);
    let memory = mem.solve();
    PowerHeads {
        f_ct,
        f_comb,
        f_reg,
        memory,
        embed_dim: d,
        side_features: cfg.side_features,
    }
}

/// Evenly spaced cycle sample.
pub(crate) fn sample_cycles(total: usize, want: usize) -> Vec<usize> {
    if want == 0 || total == 0 {
        return Vec::new();
    }
    if want >= total {
        return (0..total).collect();
    }
    (0..want).map(|i| i * total / want).collect()
}

/// The paper's "basic ML model" for the memory group (§VI-B): a linear
/// model on per-cycle port activity and macro capacity, fit in closed
/// form. Achieves sub-percent error because SRAM macros are unchanged by
/// layout.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemoryModel {
    /// Watts per pJ of energy-weighted reads.
    pub w_read: f64,
    /// Watts per pJ of energy-weighted writes.
    pub w_write: f64,
    /// Watts per nW of datasheet leakage.
    pub w_bit: f64,
    /// Constant offset.
    pub bias: f64,
}

impl MemoryModel {
    /// Predict memory watts for one sub-module-cycle (clamped at zero).
    pub fn predict(&self, side: &SideFeatures) -> f64 {
        (self.w_read * side.mem_reads
            + self.w_write * side.mem_writes
            + self.w_bit * side.mem_bits
            + self.bias)
            .max(0.0)
    }
}

/// Accumulator for the 4-parameter least-squares fit.
#[derive(Debug, Default)]
struct MemoryFit {
    /// Normal-equation matrix (4×4, row-major) and RHS.
    ata: [f64; 16],
    atb: [f64; 4],
}

impl MemoryFit {
    fn push(&mut self, side: &SideFeatures, y: f64) {
        let x = [side.mem_reads, side.mem_writes, side.mem_bits, 1.0];
        for i in 0..4 {
            for j in 0..4 {
                self.ata[i * 4 + j] += x[i] * x[j];
            }
            self.atb[i] += x[i] * y;
        }
    }

    fn solve(mut self) -> MemoryModel {
        // Ridge term keeps the system solvable when a feature is constant.
        for i in 0..4 {
            self.ata[i * 4 + i] += 1e-9;
        }
        let w = gaussian_solve(&mut self.ata, &mut self.atb);
        MemoryModel {
            w_read: w[0],
            w_write: w[1],
            w_bit: w[2],
            bias: w[3],
        }
    }
}

/// In-place Gaussian elimination with partial pivoting for a 4×4 system.
fn gaussian_solve(a: &mut [f64; 16], b: &mut [f64; 4]) -> [f64; 4] {
    const N: usize = 4;
    for col in 0..N {
        // Pivot.
        let mut best = col;
        for r in col + 1..N {
            if a[r * N + col].abs() > a[best * N + col].abs() {
                best = r;
            }
        }
        if best != col {
            for c in 0..N {
                a.swap(col * N + c, best * N + c);
            }
            b.swap(col, best);
        }
        let pivot = a[col * N + col];
        if pivot.abs() < 1e-30 {
            continue;
        }
        for r in col + 1..N {
            let f = a[r * N + col] / pivot;
            for c in col..N {
                a[r * N + c] -= f * a[col * N + c];
            }
            b[r] -= f * b[col];
        }
    }
    let mut x = [0.0; N];
    for row in (0..N).rev() {
        let mut acc = b[row];
        for c in row + 1..N {
            acc -= a[row * N + c] * x[c];
        }
        let pivot = a[row * N + row];
        x[row] = if pivot.abs() < 1e-30 {
            0.0
        } else {
            acc / pivot
        };
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_sampling() {
        assert_eq!(sample_cycles(10, 20), (0..10).collect::<Vec<_>>());
        let s = sample_cycles(100, 4);
        assert_eq!(s, vec![0, 25, 50, 75]);
        assert!(sample_cycles(0, 5).is_empty());
        assert!(sample_cycles(5, 0).is_empty());
    }

    #[test]
    fn gaussian_solver_solves() {
        // x + y = 3; x - y = 1 (padded to 4×4 with identity).
        let mut a = [
            1.0, 1.0, 0.0, 0.0, //
            1.0, -1.0, 0.0, 0.0, //
            0.0, 0.0, 1.0, 0.0, //
            0.0, 0.0, 0.0, 1.0,
        ];
        let mut b = [3.0, 1.0, 5.0, 7.0];
        let x = gaussian_solve(&mut a, &mut b);
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 1.0).abs() < 1e-12);
        assert!((x[2] - 5.0).abs() < 1e-12);
        assert!((x[3] - 7.0).abs() < 1e-12);
    }

    #[test]
    fn memory_model_recovers_linear_law() {
        let truth = MemoryModel {
            w_read: 8e-3,
            w_write: 9.5e-3,
            w_bit: 2e-8,
            bias: 1e-4,
        };
        let mut fit = MemoryFit::default();
        for i in 0..200 {
            let side = SideFeatures {
                mem_reads: (i % 4) as f64,
                mem_writes: ((i / 4) % 3) as f64,
                mem_bits: (8192 * (1 + i % 5)) as f64,
                ..SideFeatures::default()
            };
            let y = truth.w_read * side.mem_reads
                + truth.w_write * side.mem_writes
                + truth.w_bit * side.mem_bits
                + truth.bias;
            fit.push(&side, y);
        }
        let got = fit.solve();
        assert!((got.w_read - truth.w_read).abs() < 1e-9);
        assert!((got.w_write - truth.w_write).abs() < 1e-9);
        assert!((got.w_bit - truth.w_bit).abs() < 1e-12);
        assert!((got.bias - truth.bias).abs() < 1e-7);
    }

    #[test]
    fn memory_model_clamps_negative() {
        let m = MemoryModel {
            w_read: 0.0,
            w_write: 0.0,
            w_bit: 0.0,
            bias: -1.0,
        };
        assert_eq!(m.predict(&SideFeatures::default()), 0.0);
    }
}
