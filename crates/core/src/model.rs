//! The deployable ATLAS model.

use atlas_liberty::{Library, PowerGroup};
use atlas_netlist::{Design, Stage};
use atlas_nn::{EncoderState, InferenceEncoder};
use atlas_power::PowerTrace;
use atlas_sim::ToggleTrace;
use serde::{Deserialize, Serialize};

use crate::features::{build_submodule_data, side_features, SubmoduleData};
use crate::finetune::PowerHeads;

/// A trained ATLAS model: frozen encoder + fine-tuned power heads.
///
/// Input at inference time is exactly what a designer has *before* layout:
/// the gate-level netlist, the technology library, and a workload toggle
/// trace. Output is the predicted per-cycle post-layout power of every
/// sub-module and power group — no layout information required (paper §II).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AtlasModel {
    encoder: EncoderState,
    heads: PowerHeads,
}

impl AtlasModel {
    /// Assemble a model from its trained parts.
    pub fn new(encoder: EncoderState, heads: PowerHeads) -> AtlasModel {
        AtlasModel { encoder, heads }
    }

    /// The frozen encoder weights.
    pub fn encoder(&self) -> &EncoderState {
        &self.encoder
    }

    /// The fine-tuned heads.
    pub fn heads(&self) -> &PowerHeads {
        &self.heads
    }

    /// Serialize to JSON (model persistence).
    ///
    /// # Errors
    ///
    /// Returns any `serde_json` serialization error.
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string(self)
    }

    /// Deserialize from JSON.
    ///
    /// # Errors
    ///
    /// Returns any `serde_json` parse error.
    pub fn from_json(json: &str) -> Result<AtlasModel, serde_json::Error> {
        serde_json::from_str(json)
    }

    /// Predict per-cycle post-layout power for a **gate-level** design
    /// under the given toggle trace. Sub-module embeddings are computed on
    /// worker threads (the trace is the only per-cycle input).
    ///
    /// # Panics
    ///
    /// Panics if `gate` is a post-layout design (ATLAS's whole point is to
    /// not need one) or if the trace does not belong to `gate`.
    pub fn predict(&self, gate: &Design, lib: &Library, trace: &ToggleTrace) -> PowerTrace {
        assert_eq!(
            gate.stage(),
            Stage::GateLevel,
            "ATLAS predicts from the gate-level netlist"
        );
        let data = build_submodule_data(gate, lib);
        self.predict_prepared(gate, lib, &data, trace)
    }

    /// [`predict`](Self::predict) with pre-built sub-module data, so
    /// repeated predictions (new workloads on the same design) skip
    /// preprocessing.
    pub fn predict_prepared(
        &self,
        gate: &Design,
        lib: &Library,
        data: &[SubmoduleData],
        trace: &ToggleTrace,
    ) -> PowerTrace {
        let cycles = trace.cycles();
        let encoder = InferenceEncoder::from_state(&self.encoder);
        let n_sm = gate.submodules().len();
        let mut out = PowerTrace::new(
            gate.name().to_owned(),
            trace.workload().to_owned(),
            cycles,
            n_sm,
        );

        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .min(8)
            .min(data.len().max(1));
        let chunk = data.len().div_ceil(threads);
        // (submodule index, cycle, [comb, reg, ct, mem]) per entry.
        let results: Vec<Vec<(usize, usize, [f64; 4])>> = crossbeam::thread::scope(|scope| {
            let mut handles = Vec::new();
            for piece in data.chunks(chunk.max(1)) {
                let encoder = &encoder;
                let heads = &self.heads;
                handles.push(scope.spawn(move |_| {
                    let mut local = Vec::with_capacity(piece.len() * cycles);
                    for smd in piece {
                        for t in 0..cycles {
                            let feats = smd.features_for_cycle(gate, trace, t);
                            let emb = encoder.encode_graph(smd.adj(), &feats);
                            let side = side_features(smd, gate, lib, trace, t);
                            let [comb, reg, ct] = heads.predict_groups(&emb, &side);
                            let mem = heads.memory.predict(&side);
                            local.push((smd.submodule().index(), t, [comb, reg, ct, mem]));
                        }
                    }
                    local
                }));
            }
            handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
        })
        .expect("scoped threads join");

        for batch in results {
            for (sm, t, [comb, reg, ct, mem]) in batch {
                out.add(t, sm, PowerGroup::Combinational.index(), comb);
                out.add(t, sm, PowerGroup::Register.index(), reg);
                out.add(t, sm, PowerGroup::ClockTree.index(), ct);
                out.add(t, sm, PowerGroup::Memory.index(), mem);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use atlas_designs::DesignConfig;
    use atlas_layout::LayoutConfig;
    use atlas_nn::InferenceEncoder;

    use super::*;
    use crate::bundle::DesignBundle;
    use crate::finetune::{finetune, FinetuneConfig};
    use crate::pretrain::{pretrain, PretrainConfig};

    fn tiny_model() -> (AtlasModel, DesignBundle, Library) {
        let lib = Library::synthetic_40nm();
        let bundle = DesignBundle::prepare(
            &DesignConfig::tiny(),
            &lib,
            &LayoutConfig::default(),
            "W1",
            10,
        );
        let bundles = vec![bundle];
        let (encoder, _) = pretrain(&bundles, &PretrainConfig::test_tiny());
        let state = encoder.state();
        let heads = finetune(
            &InferenceEncoder::from_state(&state),
            &bundles,
            &lib,
            &FinetuneConfig::test_tiny(),
        );
        (
            AtlasModel::new(state, heads),
            bundles.into_iter().next().expect("one bundle"),
            lib,
        )
    }

    #[test]
    fn prediction_has_label_shape_and_is_positive() {
        let (model, bundle, lib) = tiny_model();
        let pred = model.predict(&bundle.gate, &lib, &bundle.gate_trace);
        assert_eq!(pred.cycles(), bundle.gate_trace.cycles());
        for t in 0..pred.cycles() {
            assert!(pred.total(t) >= 0.0);
        }
        // Predicts a nonzero clock tree despite seeing no layout — the
        // cross-stage claim in miniature.
        let ct: f64 = pred.group_series(PowerGroup::ClockTree).iter().sum();
        assert!(ct > 0.0, "clock-tree prediction must be nonzero");
    }

    #[test]
    fn training_fit_is_sane() {
        // On its own training design, even a tiny model must beat the
        // gate-level baseline for total power.
        let (model, bundle, lib) = tiny_model();
        let pred = model.predict(&bundle.gate, &lib, &bundle.gate_trace);
        let baseline = atlas_power::compute_power(&bundle.gate, &lib, &bundle.gate_trace);
        let labels = &bundle.labels;
        let label_series: Vec<f64> = (0..labels.cycles()).map(|t| labels.non_memory_total(t)).collect();
        let pred_series: Vec<f64> = (0..pred.cycles()).map(|t| pred.non_memory_total(t)).collect();
        let base_series: Vec<f64> =
            (0..baseline.cycles()).map(|t| baseline.non_memory_total(t)).collect();
        let atlas_err = atlas_power::metrics::mape(&label_series, &pred_series);
        let base_err = atlas_power::metrics::mape(&label_series, &base_series);
        assert!(
            atlas_err < base_err,
            "ATLAS ({atlas_err:.1}%) must beat the gate-level baseline ({base_err:.1}%)"
        );
    }

    #[test]
    fn json_roundtrip() {
        let (model, _, _) = tiny_model();
        let json = model.to_json().expect("serializes");
        let back = AtlasModel::from_json(&json).expect("parses");
        assert_eq!(model, back);
    }

    #[test]
    fn rejects_post_layout_input() {
        let (model, bundle, lib) = tiny_model();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = model.predict(&bundle.post, &lib, &bundle.post_trace);
        }));
        assert!(result.is_err());
    }
}
