//! The deployable ATLAS model.

use std::collections::HashMap;

use atlas_liberty::{Library, PowerGroup};
use atlas_netlist::{Design, Stage};
use atlas_nn::{EncoderState, InferenceEncoder, InferenceEncoderF32, Precision};
use atlas_power::PowerTrace;
use atlas_sim::ToggleTrace;
use serde::{Deserialize, Serialize};

use crate::features::{build_submodule_data, SideFeatures, SideTable, SubmoduleData};
use crate::finetune::PowerHeads;

/// A frozen inference encoder at a chosen [`Precision`], built **once**
/// per model load by [`AtlasModel::prepare`] (the f32 variant narrows
/// every weight matrix at construction, not per forward) and reused for
/// every trace embedded against that model.
#[derive(Debug, Clone)]
pub enum PreparedEncoder {
    /// Full-precision evaluator — bit-parity guarantees.
    F64(InferenceEncoder),
    /// Reduced-precision evaluator — accuracy-delta guarantees
    /// ([`atlas_nn::F32_EMBED_TOLERANCE`]), embeddings at half the bytes.
    F32(InferenceEncoderF32),
}

impl PreparedEncoder {
    /// The precision this encoder evaluates (and emits embeddings) at.
    pub fn precision(&self) -> Precision {
        match self {
            PreparedEncoder::F64(_) => Precision::F64,
            PreparedEncoder::F32(_) => Precision::F32,
        }
    }

    /// Cycles per chunk of the batched forward for a graph of `nodes`
    /// nodes (the f32 path fits up to twice as many in the same budget).
    pub fn cycle_chunk(&self, nodes: usize) -> usize {
        match self {
            PreparedEncoder::F64(e) => e.cycle_chunk(nodes),
            PreparedEncoder::F32(e) => e.cycle_chunk(nodes),
        }
    }
}

/// Per-cycle graph embeddings of one sub-module, stored at the precision
/// they were computed at — f32 rows cost half the cache bytes of f64
/// rows, which doubles what fits a byte-budgeted embedding cache.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EmbeddingTable {
    /// Full-precision rows (8 bytes per element).
    F64(Vec<Vec<f64>>),
    /// Reduced-precision rows (4 bytes per element).
    F32(Vec<Vec<f32>>),
}

impl EmbeddingTable {
    /// Number of cycles stored.
    pub fn len(&self) -> usize {
        match self {
            EmbeddingTable::F64(rows) => rows.len(),
            EmbeddingTable::F32(rows) => rows.len(),
        }
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Storage precision of the rows.
    pub fn precision(&self) -> Precision {
        match self {
            EmbeddingTable::F64(_) => Precision::F64,
            EmbeddingTable::F32(_) => Precision::F32,
        }
    }

    /// Cycle `t`'s embedding as f64, borrowing stored f64 rows directly
    /// and widening f32 rows through the caller's reusable scratch buffer
    /// (no per-row allocation on the head-stage hot path).
    pub fn row_f64<'a>(&'a self, t: usize, scratch: &'a mut Vec<f64>) -> &'a [f64] {
        match self {
            EmbeddingTable::F64(rows) => &rows[t],
            EmbeddingTable::F32(rows) => {
                scratch.clear();
                scratch.extend(rows[t].iter().map(|&v| v as f64));
                scratch
            }
        }
    }

    /// Approximate heap bytes of the stored rows (cache accounting).
    pub fn approx_bytes(&self) -> usize {
        match self {
            EmbeddingTable::F64(rows) => rows.iter().map(|r| r.len() * 8).sum(),
            EmbeddingTable::F32(rows) => rows.iter().map(|r| r.len() * 4).sum(),
        }
    }
}

/// Stage-one inference output for one sub-module across a whole trace:
/// per-cycle encoder embeddings and side features.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SubmoduleEmbeddings {
    /// Index of the sub-module in its design.
    pub submodule: usize,
    /// Per-cycle graph embeddings, at the precision they were computed at.
    pub embeddings: EmbeddingTable,
    /// `sides[cycle]` — the toggle-weighted side features for that cycle.
    pub sides: Vec<SideFeatures>,
}

/// Everything stage two (the power heads) needs, for every sub-module and
/// cycle of one (design, workload trace) pair.
///
/// This is the expensive, **cacheable** part of ATLAS inference: feature
/// construction and encoder forwards dominate the prediction cost, and
/// both are fully determined by the design and the toggle trace. A
/// serving layer can keep `TraceEmbeddings` keyed by (design, workload,
/// cycles) and answer repeat requests with only the cheap head stage
/// ([`AtlasModel::predict_from_embeddings`]).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraceEmbeddings {
    design: String,
    workload: String,
    cycles: usize,
    n_submodules: usize,
    precision: Precision,
    per_submodule: Vec<SubmoduleEmbeddings>,
}

impl TraceEmbeddings {
    /// Number of cycles embedded.
    pub fn cycles(&self) -> usize {
        self.cycles
    }

    /// Precision the embeddings were computed and are stored at.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Per-sub-module embedding tables.
    pub fn per_submodule(&self) -> &[SubmoduleEmbeddings] {
        &self.per_submodule
    }

    /// Approximate heap size in bytes (for cache accounting). f32 tables
    /// report half the bytes of f64 tables, so a byte-budgeted cache holds
    /// twice the traces at reduced precision.
    pub fn approx_bytes(&self) -> usize {
        self.per_submodule
            .iter()
            .map(|s| {
                s.embeddings.approx_bytes() + s.sides.len() * std::mem::size_of::<SideFeatures>()
            })
            .sum()
    }
}

/// A trained ATLAS model: frozen encoder + fine-tuned power heads.
///
/// Input at inference time is exactly what a designer has *before* layout:
/// the gate-level netlist, the technology library, and a workload toggle
/// trace. Output is the predicted per-cycle post-layout power of every
/// sub-module and power group — no layout information required (paper §II).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AtlasModel {
    encoder: EncoderState,
    heads: PowerHeads,
}

impl AtlasModel {
    /// Assemble a model from its trained parts.
    pub fn new(encoder: EncoderState, heads: PowerHeads) -> AtlasModel {
        AtlasModel { encoder, heads }
    }

    /// The frozen encoder weights.
    pub fn encoder(&self) -> &EncoderState {
        &self.encoder
    }

    /// The fine-tuned heads.
    pub fn heads(&self) -> &PowerHeads {
        &self.heads
    }

    /// Serialize to JSON (model persistence).
    ///
    /// # Errors
    ///
    /// Returns any `serde_json` serialization error.
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string(self)
    }

    /// Deserialize from JSON.
    ///
    /// # Errors
    ///
    /// Returns any `serde_json` parse error.
    pub fn from_json(json: &str) -> Result<AtlasModel, serde_json::Error> {
        serde_json::from_str(json)
    }

    /// Predict per-cycle post-layout power for a **gate-level** design
    /// under the given toggle trace. Sub-module embeddings are computed on
    /// worker threads (the trace is the only per-cycle input).
    ///
    /// # Panics
    ///
    /// Panics if `gate` is a post-layout design (ATLAS's whole point is to
    /// not need one) or if the trace does not belong to `gate`.
    pub fn predict(&self, gate: &Design, lib: &Library, trace: &ToggleTrace) -> PowerTrace {
        assert_eq!(
            gate.stage(),
            Stage::GateLevel,
            "ATLAS predicts from the gate-level netlist"
        );
        let data = build_submodule_data(gate, lib);
        self.predict_prepared(gate, lib, &data, trace)
    }

    /// [`predict`](Self::predict) with pre-built sub-module data, so
    /// repeated predictions (new workloads on the same design) skip
    /// preprocessing.
    ///
    /// Equivalent to [`embed_trace`](Self::embed_trace) followed by
    /// [`predict_from_embeddings`](Self::predict_from_embeddings); call
    /// the stages separately to cache the expensive first one.
    pub fn predict_prepared(
        &self,
        gate: &Design,
        lib: &Library,
        data: &[SubmoduleData],
        trace: &ToggleTrace,
    ) -> PowerTrace {
        let embeddings = self.embed_trace(gate, lib, data, trace, 0);
        self.predict_from_embeddings(&embeddings)
    }

    /// Build a frozen inference encoder at the requested precision — the
    /// once-per-load conversion point of the precision choice. Keep the
    /// result and pass it to [`embed_trace_with`](Self::embed_trace_with)
    /// so repeated traces skip re-cloning (f64) or re-narrowing (f32) the
    /// weights.
    pub fn prepare(&self, precision: Precision) -> PreparedEncoder {
        match precision {
            Precision::F64 => PreparedEncoder::F64(InferenceEncoder::from_state(&self.encoder)),
            Precision::F32 => PreparedEncoder::F32(InferenceEncoderF32::from_state(&self.encoder)),
        }
    }

    /// Inference stage one (expensive, cacheable) at full precision —
    /// [`embed_trace_with`](Self::embed_trace_with) against a fresh f64
    /// encoder.
    pub fn embed_trace(
        &self,
        gate: &Design,
        lib: &Library,
        data: &[SubmoduleData],
        trace: &ToggleTrace,
        threads: usize,
    ) -> TraceEmbeddings {
        self.embed_trace_with(
            &self.prepare(Precision::F64),
            gate,
            lib,
            data,
            trace,
            threads,
        )
    }

    /// Inference stage one (expensive, cacheable): per-cycle feature
    /// construction, encoder forwards, and side features for every
    /// sub-module of the trace, evaluated by a prepared encoder at its
    /// precision.
    ///
    /// Work runs in two parallel phases over `threads` std threads (`0` =
    /// auto: available parallelism capped at 8), both packed by estimated
    /// work (longest-first) so one huge sub-module splits across threads
    /// instead of straggling the scope:
    ///
    /// 1. **Scan** — (sub-module × cycle-range) items pack each cycle's
    ///    toggles into a bitset and compute its side features. The bitsets
    ///    are then merged per sub-module into one **whole-trace** unique
    ///    toggle-pattern set: workloads repeat patterns (idle phases
    ///    repeat them almost every cycle), and deduplicating across the
    ///    whole trace — not per item, so a pattern shared by two items'
    ///    ranges is still encoded once — fixes the old per-item window
    ///    whose hit rate degraded exactly when thread balance split a
    ///    sub-module finely.
    /// 2. **Encode** — (sub-module × unique-pattern-range) items run the
    ///    encoder's cycle-blocked batched forward (one matmul per layer
    ///    per chunk) over unique patterns only, expanding features from
    ///    each pattern's bitset straight into the chunk's stacked operand.
    ///
    /// Every cycle's embedding is then the copy of its pattern's — exact,
    /// because the encoder is a pure function of (graph, features). f64
    /// results are bit-identical to the per-cycle path for every thread
    /// count and chunking; f32 results carry the precision's accuracy
    /// contract ([`atlas_nn::F32_EMBED_TOLERANCE`]) instead.
    pub fn embed_trace_with(
        &self,
        encoder: &PreparedEncoder,
        gate: &Design,
        lib: &Library,
        data: &[SubmoduleData],
        trace: &ToggleTrace,
        threads: usize,
    ) -> TraceEmbeddings {
        let cycles = trace.cycles();
        let threads = if threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
                .min(8)
        } else {
            threads
        };

        // Deterministic LPT packing shared by both phases: items sorted by
        // estimated work, each placed on the least-loaded thread (stable
        // sort, first-minimum tie-break), so scheduling never depends on
        // timing.
        fn lpt_bins(weights: &[usize], threads: usize) -> Vec<Vec<usize>> {
            let threads = threads.clamp(1, weights.len().max(1));
            let mut order: Vec<usize> = (0..weights.len()).collect();
            order.sort_by_key(|&i| std::cmp::Reverse(weights[i]));
            let mut bins: Vec<Vec<usize>> = vec![Vec::new(); threads];
            let mut load = vec![0usize; threads];
            for i in order {
                let t = (0..threads).min_by_key(|&t| load[t]).unwrap_or(0);
                load[t] += weights[i];
                bins[t].push(i);
            }
            bins
        }

        // Split `total` units of a sub-module into only as many
        // contiguous ranges as thread balance needs: work smaller than a
        // thread's fair share stays whole, a dominating sub-module cuts
        // into enough pieces to occupy every thread.
        fn ranged_items(
            data: &[SubmoduleData],
            totals: &[usize],
            threads: usize,
        ) -> Vec<(usize, usize, usize)> {
            let total_work: usize = data
                .iter()
                .zip(totals)
                .map(|(s, &t)| s.node_count() * t)
                .sum();
            let work_target = total_work.div_ceil(threads.max(1)).max(1);
            let mut items = Vec::new();
            for (sm, (smd, &total)) in data.iter().zip(totals).enumerate() {
                if total == 0 {
                    continue;
                }
                let splits = (smd.node_count() * total).div_ceil(work_target).max(1);
                let item_len = total.div_ceil(splits).max(1);
                let mut start = 0;
                while start < total {
                    let len = item_len.min(total - start);
                    items.push((sm, start, len));
                    start += len;
                }
            }
            items
        }

        // ---- Phase 1: toggle-bitset scan + side features, per cycle ----
        let scan_items = ranged_items(data, &vec![cycles; data.len()], threads);
        let scan_weights: Vec<usize> = scan_items
            .iter()
            .map(|&(sm, _, len)| data[sm].node_count() * len)
            .collect();
        type ScanOut = (usize, usize, Vec<Vec<u64>>, Vec<SideFeatures>);
        let scans: Vec<ScanOut> = crossbeam::thread::scope(|scope| {
            let mut handles = Vec::new();
            for bin in lpt_bins(&scan_weights, threads) {
                if bin.is_empty() {
                    continue;
                }
                let scan_items = &scan_items;
                handles.push(scope.spawn(move |_| {
                    let mut local: Vec<ScanOut> = Vec::with_capacity(bin.len());
                    for i in bin {
                        let (sm, start, len) = scan_items[i];
                        let smd = &data[sm];
                        let n = smd.node_count();
                        let words = n.div_ceil(64);
                        let mut bits_per_cycle = Vec::with_capacity(len);
                        for t in start..start + len {
                            let mut bits = vec![0u64; words];
                            for (node, &cell) in smd.cells().iter().enumerate() {
                                if trace.cell_toggled(gate, t, cell) {
                                    bits[node / 64] |= 1 << (node % 64);
                                }
                            }
                            bits_per_cycle.push(bits);
                        }
                        let table = SideTable::new(smd, gate, lib, trace);
                        let sides = (start..start + len)
                            .map(|t| table.side_features(gate, trace, t))
                            .collect();
                        local.push((sm, start, bits_per_cycle, sides));
                    }
                    local
                }));
            }
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("worker panicked"))
                .collect()
        })
        .expect("scoped threads join");

        // ---- Merge: whole-trace unique patterns per sub-module ----
        // A sub-module's features differ across cycles only in the toggle
        // channel, so each cycle is keyed by its packed toggle bits and
        // the encoder runs once per unique pattern over the whole trace.
        let mut sides_of: Vec<Vec<SideFeatures>> = data
            .iter()
            .map(|_| vec![SideFeatures::default(); cycles])
            .collect();
        let mut bits_of: Vec<Vec<Vec<u64>>> =
            data.iter().map(|_| vec![Vec::new(); cycles]).collect();
        for (sm, start, bits_per_cycle, sides) in scans {
            for (off, b) in bits_per_cycle.into_iter().enumerate() {
                bits_of[sm][start + off] = b;
            }
            for (off, s) in sides.into_iter().enumerate() {
                sides_of[sm][start + off] = s;
            }
        }
        let mut pattern_of: Vec<Vec<usize>> = Vec::with_capacity(data.len());
        let mut uniq_bits: Vec<Vec<Vec<u64>>> = Vec::with_capacity(data.len());
        for bits_per_cycle in bits_of {
            let mut uniq: HashMap<Vec<u64>, usize> = HashMap::new();
            let mut uniqs: Vec<Vec<u64>> = Vec::new();
            let mut slots = Vec::with_capacity(cycles);
            for bits in bits_per_cycle {
                let slot = match uniq.get(&bits) {
                    Some(&slot) => slot,
                    None => {
                        let slot = uniqs.len();
                        uniqs.push(bits.clone());
                        uniq.insert(bits, slot);
                        slot
                    }
                };
                slots.push(slot);
            }
            pattern_of.push(slots);
            uniq_bits.push(uniqs);
        }

        // ---- Phase 2: encode unique patterns only ----
        let uniq_counts: Vec<usize> = uniq_bits.iter().map(|u| u.len()).collect();
        let enc_items = ranged_items(data, &uniq_counts, threads);
        let enc_weights: Vec<usize> = enc_items
            .iter()
            .map(|&(sm, _, len)| data[sm].node_count() * len)
            .collect();
        enum EmbRows {
            F64(Vec<Vec<f64>>),
            F32(Vec<Vec<f32>>),
        }
        type EncOut = (usize, usize, EmbRows);
        let encoded: Vec<EncOut> = crossbeam::thread::scope(|scope| {
            let mut handles = Vec::new();
            for bin in lpt_bins(&enc_weights, threads) {
                if bin.is_empty() {
                    continue;
                }
                let enc_items = &enc_items;
                let uniq_bits = &uniq_bits;
                handles.push(scope.spawn(move |_| {
                    let mut local: Vec<EncOut> = Vec::with_capacity(bin.len());
                    for i in bin {
                        let (sm, start, len) = enc_items[i];
                        let smd = &data[sm];
                        let bits = &uniq_bits[sm];
                        // Each pattern's features are expanded from its
                        // bitset straight into the chunk's stacked operand
                        // (no second trace scan), so live feature memory
                        // stays within the encoder's chunk budget.
                        let chunk = encoder.cycle_chunk(smd.node_count());
                        let rows =
                            match encoder {
                                PreparedEncoder::F64(enc) => EmbRows::F64(
                                    enc.encode_graph_batch_fill(smd.adj(), len, chunk, |u, dst| {
                                        smd.write_features_from_bits(&bits[start + u], dst)
                                    }),
                                ),
                                PreparedEncoder::F32(enc) => EmbRows::F32(
                                    enc.encode_graph_batch_fill(smd.adj(), len, chunk, |u, dst| {
                                        smd.write_features_from_bits_f32(&bits[start + u], dst)
                                    }),
                                ),
                            };
                        local.push((sm, start, rows));
                    }
                    local
                }));
            }
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("worker panicked"))
                .collect()
        })
        .expect("scoped threads join");

        // ---- Reassemble: every cycle copies its pattern's embedding ----
        let mut uniq_emb: Vec<EmbRows> = data
            .iter()
            .zip(&uniq_counts)
            .map(|(_, &u)| match encoder {
                PreparedEncoder::F64(_) => EmbRows::F64(vec![Vec::new(); u]),
                PreparedEncoder::F32(_) => EmbRows::F32(vec![Vec::new(); u]),
            })
            .collect();
        for (sm, start, rows) in encoded {
            match (&mut uniq_emb[sm], rows) {
                (EmbRows::F64(table), EmbRows::F64(rows)) => {
                    for (off, r) in rows.into_iter().enumerate() {
                        table[start + off] = r;
                    }
                }
                (EmbRows::F32(table), EmbRows::F32(rows)) => {
                    for (off, r) in rows.into_iter().enumerate() {
                        table[start + off] = r;
                    }
                }
                _ => unreachable!("phase-2 items share the encoder's precision"),
            }
        }
        let per_submodule: Vec<SubmoduleEmbeddings> = data
            .iter()
            .enumerate()
            .map(|(sm, smd)| SubmoduleEmbeddings {
                submodule: smd.submodule().index(),
                embeddings: match &uniq_emb[sm] {
                    EmbRows::F64(uniq) => EmbeddingTable::F64(
                        pattern_of[sm].iter().map(|&s| uniq[s].clone()).collect(),
                    ),
                    EmbRows::F32(uniq) => EmbeddingTable::F32(
                        pattern_of[sm].iter().map(|&s| uniq[s].clone()).collect(),
                    ),
                },
                sides: std::mem::take(&mut sides_of[sm]),
            })
            .collect();

        TraceEmbeddings {
            design: gate.name().to_owned(),
            workload: trace.workload().to_owned(),
            cycles,
            n_submodules: gate.submodules().len(),
            precision: encoder.precision(),
            per_submodule,
        }
    }

    /// Inference stage two (cheap): run the fine-tuned heads over
    /// precomputed [`TraceEmbeddings`]. This is all a serving layer pays
    /// on a cache hit.
    pub fn predict_from_embeddings(&self, embeddings: &TraceEmbeddings) -> PowerTrace {
        let mut out = PowerTrace::new(
            embeddings.design.clone(),
            embeddings.workload.clone(),
            embeddings.cycles,
            embeddings.n_submodules,
        );
        let mut scratch = Vec::new();
        for sm in &embeddings.per_submodule {
            for (t, side) in sm.sides.iter().enumerate() {
                let emb = sm.embeddings.row_f64(t, &mut scratch);
                let [comb, reg, ct] = self.heads.predict_groups(emb, side);
                let mem = self.heads.memory.predict(side);
                out.add(t, sm.submodule, PowerGroup::Combinational.index(), comb);
                out.add(t, sm.submodule, PowerGroup::Register.index(), reg);
                out.add(t, sm.submodule, PowerGroup::ClockTree.index(), ct);
                out.add(t, sm.submodule, PowerGroup::Memory.index(), mem);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use atlas_designs::DesignConfig;
    use atlas_layout::LayoutConfig;
    use atlas_nn::InferenceEncoder;

    use super::*;
    use crate::bundle::DesignBundle;
    use crate::finetune::{finetune, FinetuneConfig};
    use crate::pretrain::{pretrain, PretrainConfig};

    fn tiny_model() -> (AtlasModel, DesignBundle, Library) {
        let lib = Library::synthetic_40nm();
        let bundle = DesignBundle::prepare(
            &DesignConfig::tiny(),
            &lib,
            &LayoutConfig::default(),
            "W1",
            10,
        );
        let bundles = vec![bundle];
        let (encoder, _) = pretrain(&bundles, &PretrainConfig::test_tiny());
        let state = encoder.state();
        let heads = finetune(
            &InferenceEncoder::from_state(&state),
            &bundles,
            &lib,
            &FinetuneConfig::test_tiny(),
        );
        (
            AtlasModel::new(state, heads),
            bundles.into_iter().next().expect("one bundle"),
            lib,
        )
    }

    #[test]
    fn prediction_has_label_shape_and_is_positive() {
        let (model, bundle, lib) = tiny_model();
        let pred = model.predict(&bundle.gate, &lib, &bundle.gate_trace);
        assert_eq!(pred.cycles(), bundle.gate_trace.cycles());
        for t in 0..pred.cycles() {
            assert!(pred.total(t) >= 0.0);
        }
        // Predicts a nonzero clock tree despite seeing no layout — the
        // cross-stage claim in miniature.
        let ct: f64 = pred.group_series(PowerGroup::ClockTree).iter().sum();
        assert!(ct > 0.0, "clock-tree prediction must be nonzero");
    }

    #[test]
    fn training_fit_is_sane() {
        // On its own training design, even a tiny model must beat the
        // gate-level baseline for total power.
        let (model, bundle, lib) = tiny_model();
        let pred = model.predict(&bundle.gate, &lib, &bundle.gate_trace);
        let baseline = atlas_power::compute_power(&bundle.gate, &lib, &bundle.gate_trace);
        let labels = &bundle.labels;
        let label_series: Vec<f64> = (0..labels.cycles())
            .map(|t| labels.non_memory_total(t))
            .collect();
        let pred_series: Vec<f64> = (0..pred.cycles())
            .map(|t| pred.non_memory_total(t))
            .collect();
        let base_series: Vec<f64> = (0..baseline.cycles())
            .map(|t| baseline.non_memory_total(t))
            .collect();
        let atlas_err = atlas_power::metrics::mape(&label_series, &pred_series);
        let base_err = atlas_power::metrics::mape(&label_series, &base_series);
        assert!(
            atlas_err < base_err,
            "ATLAS ({atlas_err:.1}%) must beat the gate-level baseline ({base_err:.1}%)"
        );
    }

    #[test]
    fn staged_inference_matches_fused_path() {
        let (model, bundle, lib) = tiny_model();
        let data = build_submodule_data(&bundle.gate, &lib);
        let fused = model.predict_prepared(&bundle.gate, &lib, &data, &bundle.gate_trace);
        let embeddings = model.embed_trace(&bundle.gate, &lib, &data, &bundle.gate_trace, 2);
        assert_eq!(embeddings.cycles(), bundle.gate_trace.cycles());
        assert!(embeddings.approx_bytes() > 0);
        let staged = model.predict_from_embeddings(&embeddings);
        assert_eq!(fused, staged, "stage split must not change predictions");
    }

    #[test]
    fn json_roundtrip() {
        let (model, _, _) = tiny_model();
        let json = model.to_json().expect("serializes");
        let back = AtlasModel::from_json(&json).expect("parses");
        assert_eq!(model, back);
    }

    #[test]
    fn rejects_post_layout_input() {
        let (model, bundle, lib) = tiny_model();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = model.predict(&bundle.post, &lib, &bundle.post_trace);
        }));
        assert!(result.is_err());
    }
}
