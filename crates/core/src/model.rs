//! The deployable ATLAS model.

use std::collections::HashMap;

use atlas_liberty::{Library, PowerGroup};
use atlas_netlist::{Design, Stage};
use atlas_nn::{EncoderState, InferenceEncoder, InferenceEncoderF32, Precision};
use atlas_power::PowerTrace;
use atlas_sim::ToggleTrace;
use serde::{Deserialize, Serialize};

use crate::features::{build_submodule_data, SideFeatures, SideTable, SubmoduleData};
use crate::finetune::PowerHeads;

/// A frozen inference encoder at a chosen [`Precision`], built **once**
/// per model load by [`AtlasModel::prepare`] (the f32 variant narrows
/// every weight matrix at construction, not per forward) and reused for
/// every trace embedded against that model.
#[derive(Debug, Clone)]
pub enum PreparedEncoder {
    /// Full-precision evaluator — bit-parity guarantees.
    F64(InferenceEncoder),
    /// Reduced-precision evaluator — accuracy-delta guarantees
    /// ([`atlas_nn::F32_EMBED_TOLERANCE`]), embeddings at half the bytes.
    F32(InferenceEncoderF32),
}

impl PreparedEncoder {
    /// The precision this encoder evaluates (and emits embeddings) at.
    pub fn precision(&self) -> Precision {
        match self {
            PreparedEncoder::F64(_) => Precision::F64,
            PreparedEncoder::F32(_) => Precision::F32,
        }
    }

    /// Cycles per chunk of the batched forward for a graph of `nodes`
    /// nodes (the f32 path fits up to twice as many in the same budget).
    pub fn cycle_chunk(&self, nodes: usize) -> usize {
        match self {
            PreparedEncoder::F64(e) => e.cycle_chunk(nodes),
            PreparedEncoder::F32(e) => e.cycle_chunk(nodes),
        }
    }
}

/// Per-cycle graph embeddings of one sub-module, stored at the precision
/// they were computed at — f32 rows cost half the cache bytes of f64
/// rows, which doubles what fits a byte-budgeted embedding cache.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EmbeddingTable {
    /// Full-precision rows (8 bytes per element).
    F64(Vec<Vec<f64>>),
    /// Reduced-precision rows (4 bytes per element).
    F32(Vec<Vec<f32>>),
}

impl EmbeddingTable {
    /// Number of cycles stored.
    pub fn len(&self) -> usize {
        match self {
            EmbeddingTable::F64(rows) => rows.len(),
            EmbeddingTable::F32(rows) => rows.len(),
        }
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Storage precision of the rows.
    pub fn precision(&self) -> Precision {
        match self {
            EmbeddingTable::F64(_) => Precision::F64,
            EmbeddingTable::F32(_) => Precision::F32,
        }
    }

    /// Cycle `t`'s embedding as f64, borrowing stored f64 rows directly
    /// and widening f32 rows through the caller's reusable scratch buffer
    /// (no per-row allocation on the head-stage hot path).
    pub fn row_f64<'a>(&'a self, t: usize, scratch: &'a mut Vec<f64>) -> &'a [f64] {
        match self {
            EmbeddingTable::F64(rows) => &rows[t],
            EmbeddingTable::F32(rows) => {
                scratch.clear();
                scratch.extend(rows[t].iter().map(|&v| v as f64));
                scratch
            }
        }
    }

    /// Approximate heap bytes of the stored rows (cache accounting).
    pub fn approx_bytes(&self) -> usize {
        match self {
            EmbeddingTable::F64(rows) => rows.iter().map(|r| r.len() * 8).sum(),
            EmbeddingTable::F32(rows) => rows.iter().map(|r| r.len() * 4).sum(),
        }
    }
}

/// Stage-one inference output for one sub-module across a whole trace:
/// per-cycle encoder embeddings and side features, plus the item-level
/// reuse keys ([`graph_fp`](Self::graph_fp) × per-cycle pattern digests)
/// that make the table delta-capable — any cycle of any cached trace
/// whose (structure, toggle pattern) keys match can donate its row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SubmoduleEmbeddings {
    /// Index of the sub-module in its design.
    pub submodule: usize,
    /// Per-cycle graph embeddings, at the precision they were computed at.
    pub embeddings: EmbeddingTable,
    /// `sides[cycle]` — the toggle-weighted side features for that cycle.
    pub sides: Vec<SideFeatures>,
    /// [`SubmoduleData::structural_fingerprint`] of the graph these rows
    /// were encoded against. Rows are reusable only under an equal
    /// fingerprint (same cells, classes, static features, adjacency).
    pub graph_fp: u64,
    /// `pattern_digests[cycle]` — FNV-1a digest of that cycle's packed
    /// toggle bitset. Equal digests (under equal `graph_fp` and storage
    /// precision) mean bit-identical encoder input, so the delta path
    /// copies the row instead of re-encoding; 64-bit collisions are
    /// treated as negligible.
    pub pattern_digests: Vec<u64>,
}

/// Everything stage two (the power heads) needs, for every sub-module and
/// cycle of one (design, workload trace) pair.
///
/// This is the expensive, **cacheable** part of ATLAS inference: feature
/// construction and encoder forwards dominate the prediction cost, and
/// both are fully determined by the design and the toggle trace. A
/// serving layer can keep `TraceEmbeddings` keyed by (design, workload,
/// cycles) and answer repeat requests with only the cheap head stage
/// ([`AtlasModel::predict_from_embeddings`]).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraceEmbeddings {
    design: String,
    workload: String,
    cycles: usize,
    n_submodules: usize,
    precision: Precision,
    per_submodule: Vec<SubmoduleEmbeddings>,
}

impl TraceEmbeddings {
    /// Number of cycles embedded.
    pub fn cycles(&self) -> usize {
        self.cycles
    }

    /// Precision the embeddings were computed and are stored at.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Per-sub-module embedding tables.
    pub fn per_submodule(&self) -> &[SubmoduleEmbeddings] {
        &self.per_submodule
    }

    /// Approximate heap size in bytes (for cache accounting). f32 tables
    /// report half the bytes of f64 tables, so a byte-budgeted cache holds
    /// twice the traces at reduced precision.
    pub fn approx_bytes(&self) -> usize {
        self.per_submodule
            .iter()
            .map(|s| {
                s.embeddings.approx_bytes()
                    + s.sides.len() * std::mem::size_of::<SideFeatures>()
                    + s.pattern_digests.len() * std::mem::size_of::<u64>()
            })
            .sum()
    }
}

/// What [`AtlasModel::embed_trace_delta_with`] reused versus recomputed —
/// the observability half of the delta contract (the correctness half is
/// bit-identity, which needs no counters).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct DeltaStats {
    /// Unique toggle patterns whose rows were copied from the base.
    pub reused_patterns: usize,
    /// Unique toggle patterns that had to run the encoder.
    pub recomputed_patterns: usize,
    /// (sub-module × cycle) items answered from reused rows.
    pub reused_cycles: usize,
    /// (sub-module × cycle) items answered from freshly encoded rows.
    pub recomputed_cycles: usize,
}

/// Digest of one packed toggle pattern: FNV-1a over the node count and
/// the bitset words. The reuse key of one (sub-module × cycle) item.
fn pattern_digest(nodes: usize, bits: &[u64]) -> u64 {
    crate::features::fnv1a64(
        nodes
            .to_le_bytes()
            .into_iter()
            .chain(bits.iter().flat_map(|w| w.to_le_bytes())),
    )
}

/// Deterministic LPT packing shared by both embed phases: items sorted
/// by estimated work, each placed on the least-loaded thread (stable
/// sort, first-minimum tie-break), so scheduling never depends on timing.
fn lpt_bins(weights: &[usize], threads: usize) -> Vec<Vec<usize>> {
    let threads = threads.clamp(1, weights.len().max(1));
    let mut order: Vec<usize> = (0..weights.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(weights[i]));
    let mut bins: Vec<Vec<usize>> = vec![Vec::new(); threads];
    let mut load = vec![0usize; threads];
    for i in order {
        let t = (0..threads).min_by_key(|&t| load[t]).unwrap_or(0);
        load[t] += weights[i];
        bins[t].push(i);
    }
    bins
}

/// Split `totals[sm]` units of each sub-module into only as many
/// contiguous ranges as thread balance needs: work smaller than a
/// thread's fair share stays whole, a dominating sub-module cuts into
/// enough pieces to occupy every thread.
fn ranged_items(
    data: &[SubmoduleData],
    totals: &[usize],
    threads: usize,
) -> Vec<(usize, usize, usize)> {
    let total_work: usize = data
        .iter()
        .zip(totals)
        .map(|(s, &t)| s.node_count() * t)
        .sum();
    let work_target = total_work.div_ceil(threads.max(1)).max(1);
    let mut items = Vec::new();
    for (sm, (smd, &total)) in data.iter().zip(totals).enumerate() {
        if total == 0 {
            continue;
        }
        let splits = (smd.node_count() * total).div_ceil(work_target).max(1);
        let item_len = total.div_ceil(splits).max(1);
        let mut start = 0;
        while start < total {
            let len = item_len.min(total - start);
            items.push((sm, start, len));
            start += len;
        }
    }
    items
}

/// Per-precision unique-pattern embedding rows (phase-2 working set).
enum EmbRows {
    F64(Vec<Vec<f64>>),
    F32(Vec<Vec<f32>>),
}

/// Phase-1 output: per (sub-module, cycle) side features, and each
/// sub-module's cycles collapsed onto its whole-trace unique
/// toggle-pattern set (`pattern_of[sm][cycle]` indexes `uniq_bits[sm]`).
struct TraceScan {
    sides_of: Vec<Vec<SideFeatures>>,
    pattern_of: Vec<Vec<usize>>,
    uniq_bits: Vec<Vec<Vec<u64>>>,
}

/// Phase 1 of both embed paths: (sub-module × cycle-range) items pack
/// each cycle's toggles into a bitset and compute its side features, then
/// the bitsets merge per sub-module into one whole-trace unique
/// toggle-pattern set (workloads repeat patterns — idle phases almost
/// every cycle — and deduplicating across the whole trace keeps the hit
/// rate independent of how thread balance split the sub-module).
fn scan_trace(
    gate: &Design,
    lib: &Library,
    data: &[SubmoduleData],
    trace: &ToggleTrace,
    threads: usize,
) -> TraceScan {
    let cycles = trace.cycles();
    let scan_items = ranged_items(data, &vec![cycles; data.len()], threads);
    let scan_weights: Vec<usize> = scan_items
        .iter()
        .map(|&(sm, _, len)| data[sm].node_count() * len)
        .collect();
    type ScanOut = (usize, usize, Vec<Vec<u64>>, Vec<SideFeatures>);
    let scans: Vec<ScanOut> = crossbeam::thread::scope(|scope| {
        let mut handles = Vec::new();
        for bin in lpt_bins(&scan_weights, threads) {
            if bin.is_empty() {
                continue;
            }
            let scan_items = &scan_items;
            handles.push(scope.spawn(move |_| {
                let mut local: Vec<ScanOut> = Vec::with_capacity(bin.len());
                for i in bin {
                    let (sm, start, len) = scan_items[i];
                    let smd = &data[sm];
                    let n = smd.node_count();
                    let words = n.div_ceil(64);
                    let mut bits_per_cycle = Vec::with_capacity(len);
                    for t in start..start + len {
                        let mut bits = vec![0u64; words];
                        for (node, &cell) in smd.cells().iter().enumerate() {
                            if trace.cell_toggled(gate, t, cell) {
                                bits[node / 64] |= 1 << (node % 64);
                            }
                        }
                        bits_per_cycle.push(bits);
                    }
                    let table = SideTable::new(smd, gate, lib, trace);
                    let sides = (start..start + len)
                        .map(|t| table.side_features(gate, trace, t))
                        .collect();
                    local.push((sm, start, bits_per_cycle, sides));
                }
                local
            }));
        }
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("worker panicked"))
            .collect()
    })
    .expect("scoped threads join");

    let mut sides_of: Vec<Vec<SideFeatures>> = data
        .iter()
        .map(|_| vec![SideFeatures::default(); cycles])
        .collect();
    let mut bits_of: Vec<Vec<Vec<u64>>> = data.iter().map(|_| vec![Vec::new(); cycles]).collect();
    for (sm, start, bits_per_cycle, sides) in scans {
        for (off, b) in bits_per_cycle.into_iter().enumerate() {
            bits_of[sm][start + off] = b;
        }
        for (off, s) in sides.into_iter().enumerate() {
            sides_of[sm][start + off] = s;
        }
    }
    let mut pattern_of: Vec<Vec<usize>> = Vec::with_capacity(data.len());
    let mut uniq_bits: Vec<Vec<Vec<u64>>> = Vec::with_capacity(data.len());
    for bits_per_cycle in bits_of {
        let mut uniq: HashMap<Vec<u64>, usize> = HashMap::new();
        let mut uniqs: Vec<Vec<u64>> = Vec::new();
        let mut slots = Vec::with_capacity(cycles);
        for bits in bits_per_cycle {
            let slot = match uniq.get(&bits) {
                Some(&slot) => slot,
                None => {
                    let slot = uniqs.len();
                    uniqs.push(bits.clone());
                    uniq.insert(bits, slot);
                    slot
                }
            };
            slots.push(slot);
        }
        pattern_of.push(slots);
        uniq_bits.push(uniqs);
    }
    TraceScan {
        sides_of,
        pattern_of,
        uniq_bits,
    }
}

/// Phase 2 of both embed paths: run the encoder's cycle-blocked batched
/// forward over the selected unique patterns only (`slots[sm]` indexes
/// `uniq_bits[sm]`; the full path selects everything, the delta path only
/// the patterns its base could not donate). Returns one row per selected
/// slot, in `slots` order. Rows are position- and chunking-independent —
/// the encoder is a pure function of (graph, features) — which is exactly
/// why a subset encode stays bit-identical to the full one.
fn encode_unique(
    encoder: &PreparedEncoder,
    data: &[SubmoduleData],
    uniq_bits: &[Vec<Vec<u64>>],
    slots: &[Vec<usize>],
    threads: usize,
) -> Vec<EmbRows> {
    let counts: Vec<usize> = slots.iter().map(|s| s.len()).collect();
    let enc_items = ranged_items(data, &counts, threads);
    let enc_weights: Vec<usize> = enc_items
        .iter()
        .map(|&(sm, _, len)| data[sm].node_count() * len)
        .collect();
    type EncOut = (usize, usize, EmbRows);
    let encoded: Vec<EncOut> = crossbeam::thread::scope(|scope| {
        let mut handles = Vec::new();
        for bin in lpt_bins(&enc_weights, threads) {
            if bin.is_empty() {
                continue;
            }
            let enc_items = &enc_items;
            handles.push(scope.spawn(move |_| {
                let mut local: Vec<EncOut> = Vec::with_capacity(bin.len());
                for i in bin {
                    let (sm, start, len) = enc_items[i];
                    let smd = &data[sm];
                    let bits = &uniq_bits[sm];
                    let pick = &slots[sm];
                    // Each pattern's features are expanded from its
                    // bitset straight into the chunk's stacked operand
                    // (no second trace scan), so live feature memory
                    // stays within the encoder's chunk budget.
                    let chunk = encoder.cycle_chunk(smd.node_count());
                    let rows = match encoder {
                        PreparedEncoder::F64(enc) => EmbRows::F64(enc.encode_graph_batch_fill(
                            smd.adj(),
                            len,
                            chunk,
                            |u, dst| smd.write_features_from_bits(&bits[pick[start + u]], dst),
                        )),
                        PreparedEncoder::F32(enc) => EmbRows::F32(enc.encode_graph_batch_fill(
                            smd.adj(),
                            len,
                            chunk,
                            |u, dst| smd.write_features_from_bits_f32(&bits[pick[start + u]], dst),
                        )),
                    };
                    local.push((sm, start, rows));
                }
                local
            }));
        }
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("worker panicked"))
            .collect()
    })
    .expect("scoped threads join");

    let mut out: Vec<EmbRows> = counts
        .iter()
        .map(|&u| match encoder {
            PreparedEncoder::F64(_) => EmbRows::F64(vec![Vec::new(); u]),
            PreparedEncoder::F32(_) => EmbRows::F32(vec![Vec::new(); u]),
        })
        .collect();
    for (sm, start, rows) in encoded {
        match (&mut out[sm], rows) {
            (EmbRows::F64(table), EmbRows::F64(rows)) => {
                for (off, r) in rows.into_iter().enumerate() {
                    table[start + off] = r;
                }
            }
            (EmbRows::F32(table), EmbRows::F32(rows)) => {
                for (off, r) in rows.into_iter().enumerate() {
                    table[start + off] = r;
                }
            }
            _ => unreachable!("phase-2 items share the encoder's precision"),
        }
    }
    out
}

/// Resolve a `threads` argument (`0` = auto: available parallelism
/// capped at 8).
fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .min(8)
    } else {
        threads
    }
}

/// Final step of both embed paths: every cycle copies its unique
/// pattern's row, and the item-level reuse keys (graph fingerprint,
/// per-cycle pattern digests) are stamped alongside.
fn assemble_embeddings(
    gate: &Design,
    trace: &ToggleTrace,
    precision: Precision,
    data: &[SubmoduleData],
    mut scan: TraceScan,
    uniq_rows: &[EmbRows],
) -> TraceEmbeddings {
    let cycles = trace.cycles();
    let per_submodule: Vec<SubmoduleEmbeddings> = data
        .iter()
        .enumerate()
        .map(|(sm, smd)| {
            let digests_uniq: Vec<u64> = scan.uniq_bits[sm]
                .iter()
                .map(|bits| pattern_digest(smd.node_count(), bits))
                .collect();
            SubmoduleEmbeddings {
                submodule: smd.submodule().index(),
                embeddings: match &uniq_rows[sm] {
                    EmbRows::F64(uniq) => EmbeddingTable::F64(
                        scan.pattern_of[sm]
                            .iter()
                            .map(|&s| uniq[s].clone())
                            .collect(),
                    ),
                    EmbRows::F32(uniq) => EmbeddingTable::F32(
                        scan.pattern_of[sm]
                            .iter()
                            .map(|&s| uniq[s].clone())
                            .collect(),
                    ),
                },
                sides: std::mem::take(&mut scan.sides_of[sm]),
                graph_fp: smd.structural_fingerprint(),
                pattern_digests: scan.pattern_of[sm]
                    .iter()
                    .map(|&s| digests_uniq[s])
                    .collect(),
            }
        })
        .collect();
    TraceEmbeddings {
        design: gate.name().to_owned(),
        workload: trace.workload().to_owned(),
        cycles,
        n_submodules: gate.submodules().len(),
        precision,
        per_submodule,
    }
}

/// A trained ATLAS model: frozen encoder + fine-tuned power heads.
///
/// Input at inference time is exactly what a designer has *before* layout:
/// the gate-level netlist, the technology library, and a workload toggle
/// trace. Output is the predicted per-cycle post-layout power of every
/// sub-module and power group — no layout information required (paper §II).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AtlasModel {
    encoder: EncoderState,
    heads: PowerHeads,
}

impl AtlasModel {
    /// Assemble a model from its trained parts.
    pub fn new(encoder: EncoderState, heads: PowerHeads) -> AtlasModel {
        AtlasModel { encoder, heads }
    }

    /// The frozen encoder weights.
    pub fn encoder(&self) -> &EncoderState {
        &self.encoder
    }

    /// The fine-tuned heads.
    pub fn heads(&self) -> &PowerHeads {
        &self.heads
    }

    /// Serialize to JSON (model persistence).
    ///
    /// # Errors
    ///
    /// Returns any `serde_json` serialization error.
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string(self)
    }

    /// Deserialize from JSON.
    ///
    /// # Errors
    ///
    /// Returns any `serde_json` parse error.
    pub fn from_json(json: &str) -> Result<AtlasModel, serde_json::Error> {
        serde_json::from_str(json)
    }

    /// Predict per-cycle post-layout power for a **gate-level** design
    /// under the given toggle trace. Sub-module embeddings are computed on
    /// worker threads (the trace is the only per-cycle input).
    ///
    /// # Panics
    ///
    /// Panics if `gate` is a post-layout design (ATLAS's whole point is to
    /// not need one) or if the trace does not belong to `gate`.
    pub fn predict(&self, gate: &Design, lib: &Library, trace: &ToggleTrace) -> PowerTrace {
        assert_eq!(
            gate.stage(),
            Stage::GateLevel,
            "ATLAS predicts from the gate-level netlist"
        );
        let data = build_submodule_data(gate, lib);
        self.predict_prepared(gate, lib, &data, trace)
    }

    /// [`predict`](Self::predict) with pre-built sub-module data, so
    /// repeated predictions (new workloads on the same design) skip
    /// preprocessing.
    ///
    /// Equivalent to [`embed_trace`](Self::embed_trace) followed by
    /// [`predict_from_embeddings`](Self::predict_from_embeddings); call
    /// the stages separately to cache the expensive first one.
    pub fn predict_prepared(
        &self,
        gate: &Design,
        lib: &Library,
        data: &[SubmoduleData],
        trace: &ToggleTrace,
    ) -> PowerTrace {
        let embeddings = self.embed_trace(gate, lib, data, trace, 0);
        self.predict_from_embeddings(&embeddings)
    }

    /// Build a frozen inference encoder at the requested precision — the
    /// once-per-load conversion point of the precision choice. Keep the
    /// result and pass it to [`embed_trace_with`](Self::embed_trace_with)
    /// so repeated traces skip re-cloning (f64) or re-narrowing (f32) the
    /// weights.
    pub fn prepare(&self, precision: Precision) -> PreparedEncoder {
        match precision {
            Precision::F64 => PreparedEncoder::F64(InferenceEncoder::from_state(&self.encoder)),
            Precision::F32 => PreparedEncoder::F32(InferenceEncoderF32::from_state(&self.encoder)),
        }
    }

    /// Inference stage one (expensive, cacheable) at full precision —
    /// [`embed_trace_with`](Self::embed_trace_with) against a fresh f64
    /// encoder.
    pub fn embed_trace(
        &self,
        gate: &Design,
        lib: &Library,
        data: &[SubmoduleData],
        trace: &ToggleTrace,
        threads: usize,
    ) -> TraceEmbeddings {
        self.embed_trace_with(
            &self.prepare(Precision::F64),
            gate,
            lib,
            data,
            trace,
            threads,
        )
    }

    /// Inference stage one (expensive, cacheable): per-cycle feature
    /// construction, encoder forwards, and side features for every
    /// sub-module of the trace, evaluated by a prepared encoder at its
    /// precision.
    ///
    /// Work runs in two parallel phases over `threads` std threads (`0` =
    /// auto: available parallelism capped at 8), both packed by estimated
    /// work (longest-first) so one huge sub-module splits across threads
    /// instead of straggling the scope:
    ///
    /// 1. **Scan** — (sub-module × cycle-range) items pack each cycle's
    ///    toggles into a bitset and compute its side features. The bitsets
    ///    are then merged per sub-module into one **whole-trace** unique
    ///    toggle-pattern set: workloads repeat patterns (idle phases
    ///    repeat them almost every cycle), and deduplicating across the
    ///    whole trace — not per item, so a pattern shared by two items'
    ///    ranges is still encoded once — fixes the old per-item window
    ///    whose hit rate degraded exactly when thread balance split a
    ///    sub-module finely.
    /// 2. **Encode** — (sub-module × unique-pattern-range) items run the
    ///    encoder's cycle-blocked batched forward (one matmul per layer
    ///    per chunk) over unique patterns only, expanding features from
    ///    each pattern's bitset straight into the chunk's stacked operand.
    ///
    /// Every cycle's embedding is then the copy of its pattern's — exact,
    /// because the encoder is a pure function of (graph, features). f64
    /// results are bit-identical to the per-cycle path for every thread
    /// count and chunking; f32 results carry the precision's accuracy
    /// contract ([`atlas_nn::F32_EMBED_TOLERANCE`]) instead.
    pub fn embed_trace_with(
        &self,
        encoder: &PreparedEncoder,
        gate: &Design,
        lib: &Library,
        data: &[SubmoduleData],
        trace: &ToggleTrace,
        threads: usize,
    ) -> TraceEmbeddings {
        let threads = resolve_threads(threads);
        let scan = scan_trace(gate, lib, data, trace, threads);
        let all: Vec<Vec<usize>> = scan
            .uniq_bits
            .iter()
            .map(|u| (0..u.len()).collect())
            .collect();
        let uniq_rows = encode_unique(encoder, data, &scan.uniq_bits, &all, threads);
        assemble_embeddings(gate, trace, encoder.precision(), data, scan, &uniq_rows)
    }

    /// Incremental sibling of [`embed_trace_with`](Self::embed_trace_with)
    /// for interactive what-if loops: re-embed `trace` while reusing every
    /// (sub-module × cycle) item whose encoder input is provably unchanged
    /// from `base`.
    ///
    /// The scan phase (toggle bitsets + side features) always runs in
    /// full — it is the cheap, linear part and it is what *proves* which
    /// items changed: a row is copied from the base only when the
    /// sub-module's structural fingerprint, the storage precision, and the
    /// cycle's toggle-pattern digest all match, so the result is
    /// bit-identical to a full embed no matter how wrong a caller's edit
    /// description is (the expensive encoder forwards run only for
    /// patterns the base cannot donate). Appended cycles, edited
    /// sub-modules, and `base`s of different lengths or designs all reduce
    /// to the same rule; a base at the wrong precision simply donates
    /// nothing. 64-bit digest collisions are treated as negligible.
    pub fn embed_trace_delta_with(
        &self,
        encoder: &PreparedEncoder,
        gate: &Design,
        lib: &Library,
        data: &[SubmoduleData],
        trace: &ToggleTrace,
        threads: usize,
        base: &TraceEmbeddings,
    ) -> (TraceEmbeddings, DeltaStats) {
        let threads = resolve_threads(threads);
        let scan = scan_trace(gate, lib, data, trace, threads);
        let precision_ok = base.precision() == encoder.precision();
        let base_by_sm: HashMap<usize, &SubmoduleEmbeddings> = base
            .per_submodule
            .iter()
            .map(|s| (s.submodule, s))
            .collect();

        let mut stats = DeltaStats::default();
        let mut uniq_rows: Vec<EmbRows> = scan
            .uniq_bits
            .iter()
            .map(|u| match encoder {
                PreparedEncoder::F64(_) => EmbRows::F64(vec![Vec::new(); u.len()]),
                PreparedEncoder::F32(_) => EmbRows::F32(vec![Vec::new(); u.len()]),
            })
            .collect();
        let mut missing_slots: Vec<Vec<usize>> = vec![Vec::new(); data.len()];
        let mut slot_reused: Vec<Vec<bool>> = scan
            .uniq_bits
            .iter()
            .map(|u| vec![false; u.len()])
            .collect();
        for (sm, smd) in data.iter().enumerate() {
            let donor = if precision_ok {
                base_by_sm
                    .get(&smd.submodule().index())
                    .copied()
                    .filter(|b| b.graph_fp == smd.structural_fingerprint())
                    .filter(|b| b.embeddings.precision() == encoder.precision())
            } else {
                None
            };
            // First base cycle per digest; any occurrence donates the
            // same row bits, so first-wins is as good as any.
            let digest_cycle: HashMap<u64, usize> = donor
                .map(|b| {
                    let mut m = HashMap::new();
                    for (t, &d) in b.pattern_digests.iter().enumerate() {
                        m.entry(d).or_insert(t);
                    }
                    m
                })
                .unwrap_or_default();
            for (slot, bits) in scan.uniq_bits[sm].iter().enumerate() {
                let digest = pattern_digest(smd.node_count(), bits);
                let hit = donor.and_then(|b| digest_cycle.get(&digest).map(|&t| (b, t)));
                match hit {
                    Some((b, t)) => {
                        match (&mut uniq_rows[sm], &b.embeddings) {
                            (EmbRows::F64(rows), EmbeddingTable::F64(table)) => {
                                rows[slot] = table[t].clone();
                            }
                            (EmbRows::F32(rows), EmbeddingTable::F32(table)) => {
                                rows[slot] = table[t].clone();
                            }
                            _ => unreachable!("donor filtered to the encoder's precision"),
                        }
                        slot_reused[sm][slot] = true;
                        stats.reused_patterns += 1;
                    }
                    None => {
                        missing_slots[sm].push(slot);
                        stats.recomputed_patterns += 1;
                    }
                }
            }
        }

        let fresh = encode_unique(encoder, data, &scan.uniq_bits, &missing_slots, threads);
        for (sm, rows) in fresh.into_iter().enumerate() {
            match (&mut uniq_rows[sm], rows) {
                (EmbRows::F64(table), EmbRows::F64(rows)) => {
                    for (i, r) in rows.into_iter().enumerate() {
                        table[missing_slots[sm][i]] = r;
                    }
                }
                (EmbRows::F32(table), EmbRows::F32(rows)) => {
                    for (i, r) in rows.into_iter().enumerate() {
                        table[missing_slots[sm][i]] = r;
                    }
                }
                _ => unreachable!("fresh rows share the encoder's precision"),
            }
        }
        for (sm, slots) in scan.pattern_of.iter().enumerate() {
            for &slot in slots {
                if slot_reused[sm][slot] {
                    stats.reused_cycles += 1;
                } else {
                    stats.recomputed_cycles += 1;
                }
            }
        }
        let out = assemble_embeddings(gate, trace, encoder.precision(), data, scan, &uniq_rows);
        (out, stats)
    }

    /// Inference stage two (cheap): run the fine-tuned heads over
    /// precomputed [`TraceEmbeddings`]. This is all a serving layer pays
    /// on a cache hit.
    pub fn predict_from_embeddings(&self, embeddings: &TraceEmbeddings) -> PowerTrace {
        let mut out = PowerTrace::new(
            embeddings.design.clone(),
            embeddings.workload.clone(),
            embeddings.cycles,
            embeddings.n_submodules,
        );
        let mut scratch = Vec::new();
        for sm in &embeddings.per_submodule {
            for (t, side) in sm.sides.iter().enumerate() {
                let emb = sm.embeddings.row_f64(t, &mut scratch);
                let [comb, reg, ct] = self.heads.predict_groups(emb, side);
                let mem = self.heads.memory.predict(side);
                out.add(t, sm.submodule, PowerGroup::Combinational.index(), comb);
                out.add(t, sm.submodule, PowerGroup::Register.index(), reg);
                out.add(t, sm.submodule, PowerGroup::ClockTree.index(), ct);
                out.add(t, sm.submodule, PowerGroup::Memory.index(), mem);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use atlas_designs::DesignConfig;
    use atlas_layout::LayoutConfig;
    use atlas_nn::InferenceEncoder;

    use super::*;
    use crate::bundle::DesignBundle;
    use crate::finetune::{finetune, FinetuneConfig};
    use crate::pretrain::{pretrain, PretrainConfig};

    fn tiny_model() -> (AtlasModel, DesignBundle, Library) {
        let lib = Library::synthetic_40nm();
        let bundle = DesignBundle::prepare(
            &DesignConfig::tiny(),
            &lib,
            &LayoutConfig::default(),
            "W1",
            10,
        );
        let bundles = vec![bundle];
        let (encoder, _) = pretrain(&bundles, &PretrainConfig::test_tiny());
        let state = encoder.state();
        let heads = finetune(
            &InferenceEncoder::from_state(&state),
            &bundles,
            &lib,
            &FinetuneConfig::test_tiny(),
        );
        (
            AtlasModel::new(state, heads),
            bundles.into_iter().next().expect("one bundle"),
            lib,
        )
    }

    #[test]
    fn prediction_has_label_shape_and_is_positive() {
        let (model, bundle, lib) = tiny_model();
        let pred = model.predict(&bundle.gate, &lib, &bundle.gate_trace);
        assert_eq!(pred.cycles(), bundle.gate_trace.cycles());
        for t in 0..pred.cycles() {
            assert!(pred.total(t) >= 0.0);
        }
        // Predicts a nonzero clock tree despite seeing no layout — the
        // cross-stage claim in miniature.
        let ct: f64 = pred.group_series(PowerGroup::ClockTree).iter().sum();
        assert!(ct > 0.0, "clock-tree prediction must be nonzero");
    }

    #[test]
    fn training_fit_is_sane() {
        // On its own training design, even a tiny model must beat the
        // gate-level baseline for total power.
        let (model, bundle, lib) = tiny_model();
        let pred = model.predict(&bundle.gate, &lib, &bundle.gate_trace);
        let baseline = atlas_power::compute_power(&bundle.gate, &lib, &bundle.gate_trace);
        let labels = &bundle.labels;
        let label_series: Vec<f64> = (0..labels.cycles())
            .map(|t| labels.non_memory_total(t))
            .collect();
        let pred_series: Vec<f64> = (0..pred.cycles())
            .map(|t| pred.non_memory_total(t))
            .collect();
        let base_series: Vec<f64> = (0..baseline.cycles())
            .map(|t| baseline.non_memory_total(t))
            .collect();
        let atlas_err = atlas_power::metrics::mape(&label_series, &pred_series);
        let base_err = atlas_power::metrics::mape(&label_series, &base_series);
        assert!(
            atlas_err < base_err,
            "ATLAS ({atlas_err:.1}%) must beat the gate-level baseline ({base_err:.1}%)"
        );
    }

    #[test]
    fn staged_inference_matches_fused_path() {
        let (model, bundle, lib) = tiny_model();
        let data = build_submodule_data(&bundle.gate, &lib);
        let fused = model.predict_prepared(&bundle.gate, &lib, &data, &bundle.gate_trace);
        let embeddings = model.embed_trace(&bundle.gate, &lib, &data, &bundle.gate_trace, 2);
        assert_eq!(embeddings.cycles(), bundle.gate_trace.cycles());
        assert!(embeddings.approx_bytes() > 0);
        let staged = model.predict_from_embeddings(&embeddings);
        assert_eq!(fused, staged, "stage split must not change predictions");
    }

    #[test]
    fn delta_on_identical_trace_reuses_everything_bit_identically() {
        let (model, bundle, lib) = tiny_model();
        let data = build_submodule_data(&bundle.gate, &lib);
        let enc = model.prepare(Precision::F64);
        let full = model.embed_trace_with(&enc, &bundle.gate, &lib, &data, &bundle.gate_trace, 2);
        let (delta, stats) = model.embed_trace_delta_with(
            &enc,
            &bundle.gate,
            &lib,
            &data,
            &bundle.gate_trace,
            3,
            &full,
        );
        assert_eq!(
            stats.recomputed_patterns, 0,
            "identical trace recomputed nothing"
        );
        assert!(stats.reused_patterns > 0);
        assert_eq!(stats.recomputed_cycles, 0);
        for (a, b) in full.per_submodule().iter().zip(delta.per_submodule()) {
            assert_eq!(a.embeddings, b.embeddings, "rows must be bit-identical");
            assert_eq!(a.pattern_digests, b.pattern_digests);
            assert_eq!(a.graph_fp, b.graph_fp);
            assert_eq!(a.sides, b.sides);
        }
        assert_eq!(
            model.predict_from_embeddings(&full),
            model.predict_from_embeddings(&delta)
        );
    }

    #[test]
    fn delta_on_appended_cycles_matches_full_recompute() {
        use atlas_sim::{simulate, PhasedWorkload};
        let (model, bundle, lib) = tiny_model();
        let data = build_submodule_data(&bundle.gate, &lib);
        let enc = model.prepare(Precision::F64);
        let short = simulate(&bundle.gate, &mut PhasedWorkload::w1(1), 7).expect("simulates");
        let long = simulate(&bundle.gate, &mut PhasedWorkload::w1(1), 13).expect("simulates");
        let base = model.embed_trace_with(&enc, &bundle.gate, &lib, &data, &short, 2);
        let full = model.embed_trace_with(&enc, &bundle.gate, &lib, &data, &long, 2);
        let (delta, stats) =
            model.embed_trace_delta_with(&enc, &bundle.gate, &lib, &data, &long, 2, &base);
        assert!(
            stats.reused_patterns > 0,
            "the shared prefix must donate rows"
        );
        for (a, b) in full.per_submodule().iter().zip(delta.per_submodule()) {
            assert_eq!(a.embeddings, b.embeddings, "rows must be bit-identical");
            assert_eq!(a.sides, b.sides);
        }
        assert_eq!(
            model.predict_from_embeddings(&full),
            model.predict_from_embeddings(&delta)
        );
    }

    #[test]
    fn delta_from_foreign_base_donates_nothing_but_stays_exact() {
        let (model, bundle, lib) = tiny_model();
        let data = build_submodule_data(&bundle.gate, &lib);
        let f64enc = model.prepare(Precision::F64);
        let f32enc = model.prepare(Precision::F32);
        // An f32 base can never donate rows to an f64 delta.
        let base32 =
            model.embed_trace_with(&f32enc, &bundle.gate, &lib, &data, &bundle.gate_trace, 2);
        let full =
            model.embed_trace_with(&f64enc, &bundle.gate, &lib, &data, &bundle.gate_trace, 2);
        let (delta, stats) = model.embed_trace_delta_with(
            &f64enc,
            &bundle.gate,
            &lib,
            &data,
            &bundle.gate_trace,
            2,
            &base32,
        );
        assert_eq!(
            stats.reused_patterns, 0,
            "precision mismatch must donate nothing"
        );
        assert!(stats.recomputed_patterns > 0);
        for (a, b) in full.per_submodule().iter().zip(delta.per_submodule()) {
            assert_eq!(a.embeddings, b.embeddings);
        }
    }

    #[test]
    fn json_roundtrip() {
        let (model, _, _) = tiny_model();
        let json = model.to_json().expect("serializes");
        let back = AtlasModel::from_json(&json).expect("parses");
        assert_eq!(model, back);
    }

    #[test]
    fn rejects_post_layout_input() {
        let (model, bundle, lib) = tiny_model();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = model.predict(&bundle.post, &lib, &bundle.post_trace);
        }));
        assert!(result.is_err());
    }
}
