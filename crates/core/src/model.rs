//! The deployable ATLAS model.

use std::collections::HashMap;

use atlas_liberty::{Library, PowerGroup};
use atlas_netlist::{Design, Stage};
use atlas_nn::{EncoderState, InferenceEncoder};
use atlas_power::PowerTrace;
use atlas_sim::ToggleTrace;
use serde::{Deserialize, Serialize};

use crate::features::{build_submodule_data, SideFeatures, SideTable, SubmoduleData};
use crate::finetune::PowerHeads;

/// Stage-one inference output for one sub-module across a whole trace:
/// per-cycle encoder embeddings and side features.
#[derive(Debug, Clone)]
pub struct SubmoduleEmbeddings {
    /// Index of the sub-module in its design.
    pub submodule: usize,
    /// `embeddings[cycle]` — the graph embedding for that cycle.
    pub embeddings: Vec<Vec<f64>>,
    /// `sides[cycle]` — the toggle-weighted side features for that cycle.
    pub sides: Vec<SideFeatures>,
}

/// Everything stage two (the power heads) needs, for every sub-module and
/// cycle of one (design, workload trace) pair.
///
/// This is the expensive, **cacheable** part of ATLAS inference: feature
/// construction and encoder forwards dominate the prediction cost, and
/// both are fully determined by the design and the toggle trace. A
/// serving layer can keep `TraceEmbeddings` keyed by (design, workload,
/// cycles) and answer repeat requests with only the cheap head stage
/// ([`AtlasModel::predict_from_embeddings`]).
#[derive(Debug, Clone)]
pub struct TraceEmbeddings {
    design: String,
    workload: String,
    cycles: usize,
    n_submodules: usize,
    per_submodule: Vec<SubmoduleEmbeddings>,
}

impl TraceEmbeddings {
    /// Number of cycles embedded.
    pub fn cycles(&self) -> usize {
        self.cycles
    }

    /// Per-sub-module embedding tables.
    pub fn per_submodule(&self) -> &[SubmoduleEmbeddings] {
        &self.per_submodule
    }

    /// Approximate heap size in bytes (for cache accounting).
    pub fn approx_bytes(&self) -> usize {
        self.per_submodule
            .iter()
            .map(|s| {
                s.embeddings.iter().map(|e| e.len() * 8).sum::<usize>()
                    + s.sides.len() * std::mem::size_of::<SideFeatures>()
            })
            .sum()
    }
}

/// A trained ATLAS model: frozen encoder + fine-tuned power heads.
///
/// Input at inference time is exactly what a designer has *before* layout:
/// the gate-level netlist, the technology library, and a workload toggle
/// trace. Output is the predicted per-cycle post-layout power of every
/// sub-module and power group — no layout information required (paper §II).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AtlasModel {
    encoder: EncoderState,
    heads: PowerHeads,
}

impl AtlasModel {
    /// Assemble a model from its trained parts.
    pub fn new(encoder: EncoderState, heads: PowerHeads) -> AtlasModel {
        AtlasModel { encoder, heads }
    }

    /// The frozen encoder weights.
    pub fn encoder(&self) -> &EncoderState {
        &self.encoder
    }

    /// The fine-tuned heads.
    pub fn heads(&self) -> &PowerHeads {
        &self.heads
    }

    /// Serialize to JSON (model persistence).
    ///
    /// # Errors
    ///
    /// Returns any `serde_json` serialization error.
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string(self)
    }

    /// Deserialize from JSON.
    ///
    /// # Errors
    ///
    /// Returns any `serde_json` parse error.
    pub fn from_json(json: &str) -> Result<AtlasModel, serde_json::Error> {
        serde_json::from_str(json)
    }

    /// Predict per-cycle post-layout power for a **gate-level** design
    /// under the given toggle trace. Sub-module embeddings are computed on
    /// worker threads (the trace is the only per-cycle input).
    ///
    /// # Panics
    ///
    /// Panics if `gate` is a post-layout design (ATLAS's whole point is to
    /// not need one) or if the trace does not belong to `gate`.
    pub fn predict(&self, gate: &Design, lib: &Library, trace: &ToggleTrace) -> PowerTrace {
        assert_eq!(
            gate.stage(),
            Stage::GateLevel,
            "ATLAS predicts from the gate-level netlist"
        );
        let data = build_submodule_data(gate, lib);
        self.predict_prepared(gate, lib, &data, trace)
    }

    /// [`predict`](Self::predict) with pre-built sub-module data, so
    /// repeated predictions (new workloads on the same design) skip
    /// preprocessing.
    ///
    /// Equivalent to [`embed_trace`](Self::embed_trace) followed by
    /// [`predict_from_embeddings`](Self::predict_from_embeddings); call
    /// the stages separately to cache the expensive first one.
    pub fn predict_prepared(
        &self,
        gate: &Design,
        lib: &Library,
        data: &[SubmoduleData],
        trace: &ToggleTrace,
    ) -> PowerTrace {
        let embeddings = self.embed_trace(gate, lib, data, trace, 0);
        self.predict_from_embeddings(&embeddings)
    }

    /// Inference stage one (expensive, cacheable): per-cycle feature
    /// construction, encoder forwards, and side features for every
    /// sub-module of the trace.
    ///
    /// The trace is cut into (sub-module × cycle-chunk) work items — the
    /// chunk size follows [`InferenceEncoder::cycle_chunk`]'s memory
    /// budget — and items are packed onto `threads` std threads (`0` =
    /// auto: available parallelism capped at 8) by **estimated work**
    /// (`nodes × cycles`, longest-first), so one huge sub-module splits
    /// across threads instead of straggling the scope. Each item runs the
    /// encoder's cycle-blocked batched forward (one matmul per layer per
    /// chunk). Results are bit-identical to the per-cycle path for every
    /// thread count and chunking.
    pub fn embed_trace(
        &self,
        gate: &Design,
        lib: &Library,
        data: &[SubmoduleData],
        trace: &ToggleTrace,
        threads: usize,
    ) -> TraceEmbeddings {
        let cycles = trace.cycles();
        let encoder = InferenceEncoder::from_state(&self.encoder);
        let threads = if threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
                .min(8)
        } else {
            threads
        };

        // One work item = one sub-module × one cycle range spanning many
        // memory-budgeted chunks. Long items amortize the encoder's
        // scratch buffers, the side-feature table, and the toggle-pattern
        // dedup window over as many cycles as possible; the only reason to
        // split a sub-module at all is thread balance, so items are capped
        // at `cycles / threads` — one giant sub-module can still occupy
        // every thread.
        struct Item {
            sm: usize,
            start: usize,
            len: usize,
            chunk: usize,
        }
        let total_work: usize = data.iter().map(|s| s.node_count() * cycles).sum();
        let work_target = total_work.div_ceil(threads.max(1)).max(1);
        let mut items: Vec<Item> = Vec::new();
        for (sm, smd) in data.iter().enumerate() {
            let chunk = encoder.cycle_chunk(smd.node_count());
            // Split a sub-module into only as many pieces as balance
            // needs: one smaller than a thread's fair share stays whole
            // (full dedup window, one side table), a dominating one cuts
            // into enough pieces to occupy every thread.
            let splits = (smd.node_count() * cycles).div_ceil(work_target).max(1);
            let item_len = cycles.div_ceil(splits).max(1);
            let mut start = 0;
            while start < cycles {
                let len = item_len.min(cycles - start);
                items.push(Item {
                    sm,
                    start,
                    len,
                    chunk,
                });
                start += len;
            }
        }

        // Longest-processing-time greedy assignment: items sorted by
        // estimated work (nodes × cycles in the item), each placed on the
        // least-loaded thread. Deterministic (stable sort, first-minimum
        // tie-break), so scheduling never depends on timing.
        let threads = threads.clamp(1, items.len().max(1));
        let work = |it: &Item| data[it.sm].node_count() * it.len;
        let mut order: Vec<usize> = (0..items.len()).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(work(&items[i])));
        let mut bins: Vec<Vec<usize>> = vec![Vec::new(); threads];
        let mut load = vec![0usize; threads];
        for i in order {
            let t = (0..threads).min_by_key(|&t| load[t]).unwrap_or(0);
            load[t] += work(&items[i]);
            bins[t].push(i);
        }

        type ItemOut = (usize, usize, Vec<Vec<f64>>, Vec<SideFeatures>);
        let results: Vec<ItemOut> = crossbeam::thread::scope(|scope| {
            let mut handles = Vec::new();
            for bin in &bins {
                if bin.is_empty() {
                    continue;
                }
                let encoder = &encoder;
                let items = &items;
                handles.push(scope.spawn(move |_| {
                    let mut local: Vec<ItemOut> = Vec::with_capacity(bin.len());
                    for &i in bin {
                        let it = &items[i];
                        let smd = &data[it.sm];
                        // A sub-module's features differ across cycles only
                        // in the toggle channel, and workloads repeat
                        // toggle patterns (idle phases repeat them almost
                        // every cycle) — so key each cycle by its packed
                        // toggle bits and run the encoder once per
                        // *unique* pattern. Copying an embedding to its
                        // duplicate cycles is exact: the encoder is a pure
                        // function of (graph, features).
                        let n = smd.node_count();
                        let words = n.div_ceil(64);
                        let mut pattern_of = Vec::with_capacity(it.len);
                        let mut uniq: HashMap<Vec<u64>, usize> = HashMap::new();
                        let mut uniq_bits: Vec<Vec<u64>> = Vec::new();
                        for t in it.start..it.start + it.len {
                            let mut bits = vec![0u64; words];
                            for (node, &cell) in smd.cells().iter().enumerate() {
                                if trace.cell_toggled(gate, t, cell) {
                                    bits[node / 64] |= 1 << (node % 64);
                                }
                            }
                            let slot = match uniq.get(&bits) {
                                Some(&slot) => slot,
                                None => {
                                    let slot = uniq_bits.len();
                                    uniq_bits.push(bits.clone());
                                    uniq.insert(bits, slot);
                                    slot
                                }
                            };
                            pattern_of.push(slot);
                        }
                        // One cycle-blocked encode over the unique
                        // patterns; each pattern's features are expanded
                        // from its bitset straight into the chunk's
                        // stacked operand (no second trace scan), so live
                        // feature memory stays within the encoder's chunk
                        // budget (a whole trace of them would be GBs on a
                        // large sub-module).
                        let uniq_emb = encoder.encode_graph_batch_fill(
                            smd.adj(),
                            uniq_bits.len(),
                            it.chunk,
                            |u, dst| {
                                smd.write_features_from_bits(&uniq_bits[u], dst);
                            },
                        );
                        let embeddings = pattern_of
                            .iter()
                            .map(|&slot| uniq_emb[slot].clone())
                            .collect();
                        let table = SideTable::new(smd, gate, lib, trace);
                        let sides = (it.start..it.start + it.len)
                            .map(|t| table.side_features(gate, trace, t))
                            .collect();
                        local.push((it.sm, it.start, embeddings, sides));
                    }
                    local
                }));
            }
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("worker panicked"))
                .collect()
        })
        .expect("scoped threads join");

        // Reassemble items into per-sub-module tables, in `data` order.
        let mut per_submodule: Vec<SubmoduleEmbeddings> = data
            .iter()
            .map(|smd| SubmoduleEmbeddings {
                submodule: smd.submodule().index(),
                embeddings: vec![Vec::new(); cycles],
                sides: vec![SideFeatures::default(); cycles],
            })
            .collect();
        for (sm, start, embeddings, sides) in results {
            let table = &mut per_submodule[sm];
            for (off, e) in embeddings.into_iter().enumerate() {
                table.embeddings[start + off] = e;
            }
            for (off, s) in sides.into_iter().enumerate() {
                table.sides[start + off] = s;
            }
        }

        TraceEmbeddings {
            design: gate.name().to_owned(),
            workload: trace.workload().to_owned(),
            cycles,
            n_submodules: gate.submodules().len(),
            per_submodule,
        }
    }

    /// Inference stage two (cheap): run the fine-tuned heads over
    /// precomputed [`TraceEmbeddings`]. This is all a serving layer pays
    /// on a cache hit.
    pub fn predict_from_embeddings(&self, embeddings: &TraceEmbeddings) -> PowerTrace {
        let mut out = PowerTrace::new(
            embeddings.design.clone(),
            embeddings.workload.clone(),
            embeddings.cycles,
            embeddings.n_submodules,
        );
        for sm in &embeddings.per_submodule {
            for (t, (emb, side)) in sm.embeddings.iter().zip(&sm.sides).enumerate() {
                let [comb, reg, ct] = self.heads.predict_groups(emb, side);
                let mem = self.heads.memory.predict(side);
                out.add(t, sm.submodule, PowerGroup::Combinational.index(), comb);
                out.add(t, sm.submodule, PowerGroup::Register.index(), reg);
                out.add(t, sm.submodule, PowerGroup::ClockTree.index(), ct);
                out.add(t, sm.submodule, PowerGroup::Memory.index(), mem);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use atlas_designs::DesignConfig;
    use atlas_layout::LayoutConfig;
    use atlas_nn::InferenceEncoder;

    use super::*;
    use crate::bundle::DesignBundle;
    use crate::finetune::{finetune, FinetuneConfig};
    use crate::pretrain::{pretrain, PretrainConfig};

    fn tiny_model() -> (AtlasModel, DesignBundle, Library) {
        let lib = Library::synthetic_40nm();
        let bundle = DesignBundle::prepare(
            &DesignConfig::tiny(),
            &lib,
            &LayoutConfig::default(),
            "W1",
            10,
        );
        let bundles = vec![bundle];
        let (encoder, _) = pretrain(&bundles, &PretrainConfig::test_tiny());
        let state = encoder.state();
        let heads = finetune(
            &InferenceEncoder::from_state(&state),
            &bundles,
            &lib,
            &FinetuneConfig::test_tiny(),
        );
        (
            AtlasModel::new(state, heads),
            bundles.into_iter().next().expect("one bundle"),
            lib,
        )
    }

    #[test]
    fn prediction_has_label_shape_and_is_positive() {
        let (model, bundle, lib) = tiny_model();
        let pred = model.predict(&bundle.gate, &lib, &bundle.gate_trace);
        assert_eq!(pred.cycles(), bundle.gate_trace.cycles());
        for t in 0..pred.cycles() {
            assert!(pred.total(t) >= 0.0);
        }
        // Predicts a nonzero clock tree despite seeing no layout — the
        // cross-stage claim in miniature.
        let ct: f64 = pred.group_series(PowerGroup::ClockTree).iter().sum();
        assert!(ct > 0.0, "clock-tree prediction must be nonzero");
    }

    #[test]
    fn training_fit_is_sane() {
        // On its own training design, even a tiny model must beat the
        // gate-level baseline for total power.
        let (model, bundle, lib) = tiny_model();
        let pred = model.predict(&bundle.gate, &lib, &bundle.gate_trace);
        let baseline = atlas_power::compute_power(&bundle.gate, &lib, &bundle.gate_trace);
        let labels = &bundle.labels;
        let label_series: Vec<f64> = (0..labels.cycles())
            .map(|t| labels.non_memory_total(t))
            .collect();
        let pred_series: Vec<f64> = (0..pred.cycles())
            .map(|t| pred.non_memory_total(t))
            .collect();
        let base_series: Vec<f64> = (0..baseline.cycles())
            .map(|t| baseline.non_memory_total(t))
            .collect();
        let atlas_err = atlas_power::metrics::mape(&label_series, &pred_series);
        let base_err = atlas_power::metrics::mape(&label_series, &base_series);
        assert!(
            atlas_err < base_err,
            "ATLAS ({atlas_err:.1}%) must beat the gate-level baseline ({base_err:.1}%)"
        );
    }

    #[test]
    fn staged_inference_matches_fused_path() {
        let (model, bundle, lib) = tiny_model();
        let data = build_submodule_data(&bundle.gate, &lib);
        let fused = model.predict_prepared(&bundle.gate, &lib, &data, &bundle.gate_trace);
        let embeddings = model.embed_trace(&bundle.gate, &lib, &data, &bundle.gate_trace, 2);
        assert_eq!(embeddings.cycles(), bundle.gate_trace.cycles());
        assert!(embeddings.approx_bytes() > 0);
        let staged = model.predict_from_embeddings(&embeddings);
        assert_eq!(fused, staged, "stage split must not change predictions");
    }

    #[test]
    fn json_roundtrip() {
        let (model, _, _) = tiny_model();
        let json = model.to_json().expect("serializes");
        let back = AtlasModel::from_json(&json).expect("parses");
        assert_eq!(model, back);
    }

    #[test]
    fn rejects_post_layout_input() {
        let (model, bundle, lib) = tiny_model();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = model.predict(&bundle.post, &lib, &bundle.post_trace);
        }));
        assert!(result.is_err());
    }
}
