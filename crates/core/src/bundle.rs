//! Dataset preparation: everything ATLAS needs about one design.

use atlas_designs::DesignConfig;
use atlas_layout::{run_layout, LayoutConfig, LayoutReport};
use atlas_liberty::Library;
use atlas_netlist::Design;
use atlas_power::{compute_power, PowerTrace};
use atlas_sim::{simulate, PhasedWorkload, ToggleTrace};

use crate::features::{build_submodule_data, SubmoduleData};

/// One design prepared for training or evaluation: the aligned
/// `Ng`/`N+g`/`Np` triple, a simulated workload on each stage, golden
/// labels, and prebuilt sub-module graph data (paper §III).
#[derive(Debug, Clone)]
pub struct DesignBundle {
    /// Post-synthesis gate-level netlist `Ng`.
    pub gate: Design,
    /// Functionally-equivalent restructured netlist `N+g`.
    pub plus: Design,
    /// Post-layout netlist `Np`.
    pub post: Design,
    /// Layout flow report (Table II's raw numbers).
    pub layout_report: LayoutReport,
    /// Workload toggles on `Ng` (available at inference time).
    pub gate_trace: ToggleTrace,
    /// Workload toggles on `N+g` (pre-training positives need features).
    pub plus_trace: ToggleTrace,
    /// Workload toggles on `Np` (label generation + alignment task).
    pub post_trace: ToggleTrace,
    /// Golden per-cycle per-sub-module labels from the post-layout stage.
    pub labels: PowerTrace,
    /// Sub-module graph data for `Ng`.
    pub gate_data: Vec<SubmoduleData>,
    /// Sub-module graph data for `N+g`.
    pub plus_data: Vec<SubmoduleData>,
    /// Sub-module graph data for `Np`.
    pub post_data: Vec<SubmoduleData>,
}

impl DesignBundle {
    /// Prepare a bundle: generate the design, produce `N+g` and `Np`,
    /// simulate `cycles` cycles of the named workload on all three stages,
    /// compute golden labels, and build sub-module data.
    ///
    /// # Panics
    ///
    /// Panics if `workload` is not a known preset (`"W1"`/`"W2"`) — the
    /// presets are the experiment vocabulary of the paper.
    pub fn prepare(
        design_cfg: &DesignConfig,
        lib: &Library,
        layout_cfg: &LayoutConfig,
        workload: &str,
        cycles: usize,
    ) -> DesignBundle {
        let gate = design_cfg.generate();
        // N+g: heavier, independent restructuring (contrastive positives).
        let plus = atlas_layout::restructure::restructure(&gate, design_cfg.seed ^ 0xA11A5, 0.5);
        let layout = run_layout(&gate, lib, layout_cfg);

        let w = |_label: &str| {
            PhasedWorkload::preset(workload, design_cfg.seed)
                .unwrap_or_else(|| panic!("unknown workload preset `{workload}`"))
        };
        let gate_trace =
            simulate(&gate, &mut w("g"), cycles).expect("generated designs are acyclic");
        let plus_trace = simulate(&plus, &mut w("p"), cycles).expect("restructured stays acyclic");
        let post_trace =
            simulate(&layout.design, &mut w("l"), cycles).expect("layout preserves acyclicity");

        let labels = compute_power(&layout.design, lib, &post_trace);
        let gate_data = build_submodule_data(&gate, lib);
        let plus_data = build_submodule_data(&plus, lib);
        let post_data = build_submodule_data(&layout.design, lib);

        DesignBundle {
            gate,
            plus,
            post: layout.design,
            layout_report: layout.report,
            gate_trace,
            plus_trace,
            post_trace,
            labels,
            gate_data,
            plus_data,
            post_data,
        }
    }

    /// Design name.
    pub fn name(&self) -> &str {
        self.gate.name()
    }

    /// Number of simulated cycles.
    pub fn cycles(&self) -> usize {
        self.gate_trace.cycles()
    }

    /// The gate-level sub-module data index aligned with `plus`/`post`
    /// data: entries are matched by [`SubmoduleData::submodule`] id, which
    /// the restructuring and layout flows preserve.
    pub fn aligned_indices(&self) -> Vec<(usize, usize, usize)> {
        let find = |data: &[SubmoduleData], sm: atlas_netlist::SubmoduleId| {
            data.iter().position(|d| d.submodule() == sm)
        };
        let mut out = Vec::new();
        for (gi, g) in self.gate_data.iter().enumerate() {
            let sm = g.submodule();
            if let (Some(pi), Some(li)) = (find(&self.plus_data, sm), find(&self.post_data, sm)) {
                out.push((gi, pi, li));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_bundle() -> DesignBundle {
        DesignBundle::prepare(
            &DesignConfig::tiny(),
            &Library::synthetic_40nm(),
            &LayoutConfig::default(),
            "W1",
            12,
        )
    }

    #[test]
    fn bundle_is_internally_consistent() {
        let b = tiny_bundle();
        assert_eq!(b.name(), "TINY");
        assert_eq!(b.cycles(), 12);
        assert_eq!(b.labels.cycles(), 12);
        assert_eq!(b.labels.submodule_count(), b.post.submodules().len());
        assert!(b.post.cell_count() > b.gate.cell_count());
        assert!(b.plus.cell_count() > b.gate.cell_count());
    }

    #[test]
    fn alignment_covers_every_gate_submodule() {
        let b = tiny_bundle();
        let aligned = b.aligned_indices();
        assert_eq!(aligned.len(), b.gate_data.len());
        for &(gi, pi, li) in &aligned {
            assert_eq!(b.gate_data[gi].submodule(), b.plus_data[pi].submodule());
            assert_eq!(b.gate_data[gi].submodule(), b.post_data[li].submodule());
        }
    }

    #[test]
    #[should_panic(expected = "unknown workload")]
    fn unknown_workload_panics() {
        let _ = DesignBundle::prepare(
            &DesignConfig::tiny(),
            &Library::synthetic_40nm(),
            &LayoutConfig::default(),
            "W9",
            4,
        );
    }
}
