//! Sub-module graph features and masking (paper §III-C, §IV tasks ①/②).

use std::sync::Arc;

use atlas_liberty::{CellClass, Library};
use atlas_netlist::detrng::DetRng;
use atlas_netlist::{CellId, Design, SubmoduleId};
use atlas_nn::{Matrix, SparseAdj};
use atlas_sim::ToggleTrace;

/// Total node-feature width: 18-way type one-hot, toggle, internal energy,
/// leakage, input capacitance, toggle-mask flag, type-mask flag.
pub const FEATURE_DIM: usize = CellClass::COUNT + 6;

/// Feature channel of the per-cycle toggle bit.
pub const TOGGLE_CHANNEL: usize = CellClass::COUNT;
const INTERNAL_CHANNEL: usize = CellClass::COUNT + 1;
const LEAKAGE_CHANNEL: usize = CellClass::COUNT + 2;
const CAP_CHANNEL: usize = CellClass::COUNT + 3;
/// The `[MASK_TOGGLE]` token channel.
pub const MASK_TOGGLE_CHANNEL: usize = CellClass::COUNT + 4;
/// The `[MASK_NODE_TYPE]` token channel.
pub const MASK_TYPE_CHANNEL: usize = CellClass::COUNT + 5;

// Scale factors that bring raw library values to O(1).
const INTERNAL_SCALE: f64 = 400.0; // pJ → ~0.3..4
const LEAKAGE_SCALE: f64 = 1.0 / 60.0; // nW → ~0.1..1.5
const CAP_SCALE: f64 = 250.0; // pF → ~0.3..2

/// FNV-1a over a byte stream — the crate-local copy of the hash every
/// ATLAS fingerprint uses (the serve crate carries its own for wire-level
/// keys). 64-bit output; collisions are treated as negligible wherever a
/// fingerprint gates reuse, and every such site documents that.
pub(crate) fn fnv1a64(bytes: impl IntoIterator<Item = u8>) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// One sub-module prepared for encoding: its graph, static per-node
/// features (everything except the per-cycle toggle), and bookkeeping.
#[derive(Debug, Clone)]
pub struct SubmoduleData {
    submodule: SubmoduleId,
    adj: Arc<SparseAdj>,
    cells: Vec<CellId>,
    static_feats: Matrix,
    class_idx: Vec<u8>,
    graph_fp: u64,
}

impl SubmoduleData {
    /// The sub-module this data describes.
    pub fn submodule(&self) -> SubmoduleId {
        self.submodule
    }

    /// Normalized adjacency of the sub-module graph.
    pub fn adj(&self) -> &Arc<SparseAdj> {
        &self.adj
    }

    /// Global cell ids of the nodes, in node order.
    pub fn cells(&self) -> &[CellId] {
        &self.cells
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.cells.len()
    }

    /// Class index (one-hot position) of each node.
    pub fn class_indices(&self) -> &[u8] {
        &self.class_idx
    }

    /// Structural fingerprint of everything the encoder's output depends
    /// on besides the per-cycle toggle pattern: the sub-module identity,
    /// its cells and their classes, the static feature matrix (bit-exact),
    /// and the full CSR adjacency structure. Two `SubmoduleData` with
    /// equal fingerprints produce identical encoder rows for identical
    /// toggle patterns, which is what lets the delta path reuse cached
    /// embedding rows across design edits (64-bit collisions treated as
    /// negligible).
    pub fn structural_fingerprint(&self) -> u64 {
        self.graph_fp
    }

    /// Node features for one cycle: the static features with the toggle
    /// channel filled from the trace.
    pub fn features_for_cycle(&self, design: &Design, trace: &ToggleTrace, cycle: usize) -> Matrix {
        // Clone carries the static features; only the toggles are set on
        // top (`write_features_into` would redundantly re-copy them).
        let mut f = self.static_feats.clone();
        for (i, &cell) in self.cells.iter().enumerate() {
            if trace.cell_toggled(design, cycle, cell) {
                f.set(i, TOGGLE_CHANNEL, 1.0);
            }
        }
        f
    }

    /// [`features_for_cycle`](Self::features_for_cycle) without the
    /// allocation: writes the cycle's `node_count() × FEATURE_DIM`
    /// row-major feature block into `dst` — the hand-off the encoder's
    /// batched fill path uses to stack cycles without per-cycle matrices.
    ///
    /// # Panics
    ///
    /// Panics if `dst` is not exactly `node_count() * FEATURE_DIM` long.
    pub fn write_features_into(
        &self,
        design: &Design,
        trace: &ToggleTrace,
        cycle: usize,
        dst: &mut [f64],
    ) {
        dst.copy_from_slice(self.static_feats.as_slice());
        for (i, &cell) in self.cells.iter().enumerate() {
            if trace.cell_toggled(design, cycle, cell) {
                dst[i * FEATURE_DIM + TOGGLE_CHANNEL] = 1.0;
            }
        }
    }

    /// The static features with the toggle channel filled from a packed
    /// bitset (bit `i` set = node `i` toggled) — the hand-off used by the
    /// toggle-pattern dedup path, which already owns each unique cycle's
    /// bitset and so avoids a second trace scan per unique cycle.
    ///
    /// # Panics
    ///
    /// Panics if `dst` is not `node_count() * FEATURE_DIM` long or
    /// `toggles` has fewer than `node_count()` bits.
    pub fn write_features_from_bits(&self, toggles: &[u64], dst: &mut [f64]) {
        dst.copy_from_slice(self.static_feats.as_slice());
        for i in 0..self.cells.len() {
            if toggles[i / 64] & (1 << (i % 64)) != 0 {
                dst[i * FEATURE_DIM + TOGGLE_CHANNEL] = 1.0;
            }
        }
    }

    /// f32 sibling of
    /// [`write_features_from_bits`](Self::write_features_from_bits) for the
    /// reduced-precision inference path: the static features are narrowed
    /// per write (they are O(1)-scaled, so the cast is exact to f32
    /// resolution) and the toggle channel is set from the bitset.
    ///
    /// # Panics
    ///
    /// Panics if `dst` is not `node_count() * FEATURE_DIM` long or
    /// `toggles` has fewer than `node_count()` bits.
    pub fn write_features_from_bits_f32(&self, toggles: &[u64], dst: &mut [f32]) {
        assert_eq!(dst.len(), self.static_feats.as_slice().len());
        for (d, &s) in dst.iter_mut().zip(self.static_feats.as_slice()) {
            *d = s as f32;
        }
        for i in 0..self.cells.len() {
            if toggles[i / 64] & (1 << (i % 64)) != 0 {
                dst[i * FEATURE_DIM + TOGGLE_CHANNEL] = 1.0;
            }
        }
    }

    /// Masked features for pre-training tasks ① and ②: a fraction of the
    /// nodes have their toggle bit replaced by the `[MASK_TOGGLE]` token,
    /// and a *disjoint* fraction their type one-hot by `[MASK_NODE_TYPE]`.
    ///
    /// Returns `(features, toggle_masked_nodes, toggle_labels,
    /// type_masked_nodes, type_labels)`.
    pub fn masked_features(
        &self,
        design: &Design,
        trace: &ToggleTrace,
        cycle: usize,
        mask_frac: f64,
        rng: &mut DetRng,
    ) -> MaskedFeatures {
        let mut f = self.features_for_cycle(design, trace, cycle);
        let n = self.node_count();
        let mut toggle_nodes = Vec::new();
        let mut toggle_labels = Vec::new();
        let mut type_nodes = Vec::new();
        let mut type_labels = Vec::new();
        for i in 0..n {
            if rng.chance(mask_frac) {
                // Mask the toggle bit.
                toggle_labels.push(f.get(i, TOGGLE_CHANNEL) as usize);
                toggle_nodes.push(i);
                f.set(i, TOGGLE_CHANNEL, 0.0);
                f.set(i, MASK_TOGGLE_CHANNEL, 1.0);
            } else if rng.chance(mask_frac) {
                // Mask the node type.
                type_labels.push(self.class_idx[i] as usize);
                type_nodes.push(i);
                for c in 0..CellClass::COUNT {
                    f.set(i, c, 0.0);
                }
                f.set(i, MASK_TYPE_CHANNEL, 1.0);
            }
        }
        MaskedFeatures {
            features: f,
            toggle_nodes,
            toggle_labels,
            type_nodes,
            type_labels,
        }
    }
}

/// Output of [`SubmoduleData::masked_features`].
#[derive(Debug, Clone)]
pub struct MaskedFeatures {
    /// Node features with mask tokens applied.
    pub features: Matrix,
    /// Node indices whose toggle was masked.
    pub toggle_nodes: Vec<usize>,
    /// Ground-truth toggle (0/1) of those nodes.
    pub toggle_labels: Vec<usize>,
    /// Node indices whose type was masked.
    pub type_nodes: Vec<usize>,
    /// Ground-truth class index of those nodes.
    pub type_labels: Vec<usize>,
}

/// Build [`SubmoduleData`] for every sub-module of a design.
///
/// Sub-modules with zero cells (possible after layout adds empty
/// bookkeeping sub-modules) are skipped.
///
/// # Examples
///
/// ```
/// use atlas_core::features::build_submodule_data;
/// use atlas_designs::DesignConfig;
/// use atlas_liberty::Library;
///
/// let d = DesignConfig::tiny().generate();
/// let data = build_submodule_data(&d, &Library::synthetic_40nm());
/// let nodes: usize = data.iter().map(|s| s.node_count()).sum();
/// assert_eq!(nodes, d.cell_count());
/// ```
pub fn build_submodule_data(design: &Design, lib: &Library) -> Vec<SubmoduleData> {
    let graphs = design.submodule_graphs();
    let mut out = Vec::with_capacity(graphs.len());
    for g in graphs {
        if g.node_count() == 0 {
            continue;
        }
        let n = g.node_count();
        let adj = Arc::new(SparseAdj::normalized_from_edges(n, g.edges()));
        let mut feats = Matrix::zeros(n, FEATURE_DIM);
        let mut class_idx = Vec::with_capacity(n);
        for (i, &cell_id) in g.cells().iter().enumerate() {
            let cell = design.cell(cell_id);
            let class = cell.class();
            class_idx.push(class.index() as u8);
            feats.set(i, class.index(), 1.0);
            if class == CellClass::Sram {
                if let Some(m) = cell.sram().and_then(|c| lib.sram_at_least(c.words, c.bits)) {
                    // Per-access energy plays the internal-power role.
                    feats.set(i, INTERNAL_CHANNEL, m.read_energy() * INTERNAL_SCALE * 0.01);
                    feats.set(i, LEAKAGE_CHANNEL, m.leakage() * LEAKAGE_SCALE * 0.01);
                    feats.set(i, CAP_CHANNEL, m.pin_cap() * CAP_SCALE);
                }
            } else if let Some(lc) = lib.cell(class, cell.drive()) {
                feats.set(
                    i,
                    INTERNAL_CHANNEL,
                    lc.switch_energy().mean() * INTERNAL_SCALE,
                );
                feats.set(i, LEAKAGE_CHANNEL, lc.leakage() * LEAKAGE_SCALE);
                feats.set(i, CAP_CHANNEL, lc.total_input_cap() * CAP_SCALE);
            }
        }
        // Everything the encoder sees besides the toggle channel, plus
        // the cell identities (so two coincidentally-identical graphs in
        // different sub-modules still fingerprint apart only if their
        // content differs — same content is exactly the reuse we want).
        let fp_bytes = g
            .submodule()
            .index()
            .to_le_bytes()
            .into_iter()
            .chain(n.to_le_bytes())
            .chain(g.cells().iter().flat_map(|c| c.index().to_le_bytes()))
            .chain(class_idx.iter().copied())
            .chain(
                feats
                    .as_slice()
                    .iter()
                    .flat_map(|v| v.to_bits().to_le_bytes()),
            )
            .chain(adj.row_offsets().iter().flat_map(|v| v.to_le_bytes()))
            .chain(adj.col_indices().iter().flat_map(|v| v.to_le_bytes()));
        let graph_fp = fnv1a64(fp_bytes);
        out.push(SubmoduleData {
            submodule: g.submodule(),
            adj,
            cells: g.cells().to_vec(),
            static_feats: feats,
            class_idx,
            graph_fp,
        });
    }
    out
}

/// Toggle-weighted side features of one sub-module in one cycle
/// (paper §V): for each of the combinational and register groups, the
/// node count `n`, toggle-weighted internal energy `I`, and
/// toggle-weighted capacitance `C`.
#[derive(Debug, Clone, Copy, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SideFeatures {
    /// Combinational cell count.
    pub n_comb: f64,
    /// Toggle-weighted combinational internal energy (pJ).
    pub i_comb: f64,
    /// Toggle-weighted combinational capacitance (pF).
    pub c_comb: f64,
    /// Register cell count.
    pub n_reg: f64,
    /// Toggle-weighted register internal energy (pJ).
    pub i_reg: f64,
    /// Toggle-weighted register capacitance (pF).
    pub c_reg: f64,
    /// Energy-weighted SRAM reads this cycle (pJ, from the macro LUTs).
    pub mem_reads: f64,
    /// Energy-weighted SRAM writes this cycle (pJ).
    pub mem_writes: f64,
    /// Total SRAM leakage (nW, from the macro datasheets).
    pub mem_bits: f64,
}

/// Per-cell class/energy data of one sub-module, resolved against the
/// library **once** so per-cycle side features are a single pass over the
/// cells with no hash lookups. [`side_features`] resolves the same data
/// per call; building a `SideTable` per sub-module amortizes that over a
/// whole trace (the serving path embeds hundreds of cycles per
/// sub-module).
#[derive(Debug, Clone)]
pub struct SideTable {
    /// `(cell, group, switch_energy_mean, input_cap)` per node;
    /// group: 0 = combinational, 1 = register, 2 = SRAM.
    cells: Vec<(CellId, u8, f64, f64)>,
    /// `(trace_sram_index, read_energy, write_energy)` per SRAM node;
    /// `usize::MAX` marks an SRAM absent from the trace's SRAM list.
    srams: Vec<(usize, f64, f64)>,
    /// Total SRAM leakage (constant per cycle).
    mem_bits: f64,
    /// Combinational / register node counts (constant per cycle).
    n_comb: f64,
    n_reg: f64,
}

impl SideTable {
    /// Resolve one sub-module's cells against the design, library, and
    /// trace.
    pub fn new(
        data: &SubmoduleData,
        design: &Design,
        lib: &Library,
        trace: &ToggleTrace,
    ) -> SideTable {
        let sram_index: std::collections::HashMap<CellId, usize> = trace
            .sram_cells()
            .iter()
            .enumerate()
            .map(|(i, &c)| (c, i))
            .collect();
        let mut table = SideTable {
            cells: Vec::with_capacity(data.cells.len()),
            srams: Vec::new(),
            mem_bits: 0.0,
            n_comb: 0.0,
            n_reg: 0.0,
        };
        for &cell_id in &data.cells {
            let cell = design.cell(cell_id);
            let class = cell.class();
            match class {
                CellClass::Sram => {
                    let macro_ = cell.sram().and_then(|c| lib.sram_at_least(c.words, c.bits));
                    if let Some(m) = macro_ {
                        table.mem_bits += m.leakage();
                    }
                    let idx = sram_index.get(&cell_id).copied().unwrap_or(usize::MAX);
                    table.srams.push((
                        idx,
                        macro_.map(|m| m.read_energy()).unwrap_or(1.0),
                        macro_.map(|m| m.write_energy()).unwrap_or(1.0),
                    ));
                }
                CellClass::Dff | CellClass::Dffr => {
                    table.n_reg += 1.0;
                    let (i, c) = lib
                        .cell(class, cell.drive())
                        .map(|lc| (lc.switch_energy().mean(), lc.total_input_cap()))
                        .unwrap_or((0.0, 0.0));
                    table.cells.push((cell_id, 1, i, c));
                }
                _ => {
                    table.n_comb += 1.0;
                    let (i, c) = lib
                        .cell(class, cell.drive())
                        .map(|lc| (lc.switch_energy().mean(), lc.total_input_cap()))
                        .unwrap_or((0.0, 0.0));
                    table.cells.push((cell_id, 0, i, c));
                }
            }
        }
        table
    }

    /// [`SideFeatures`] for one cycle — identical to [`side_features`]
    /// (the arithmetic accumulates the same values in the same cell
    /// order), paying only toggle tests.
    pub fn side_features(
        &self,
        design: &Design,
        trace: &ToggleTrace,
        cycle: usize,
    ) -> SideFeatures {
        let mut s = SideFeatures {
            n_comb: self.n_comb,
            n_reg: self.n_reg,
            mem_bits: self.mem_bits,
            ..SideFeatures::default()
        };
        for &(cell_id, group, i, c) in &self.cells {
            if trace.cell_toggled(design, cycle, cell_id) {
                if group == 1 {
                    s.i_reg += i;
                    s.c_reg += c;
                } else {
                    s.i_comb += i;
                    s.c_comb += c;
                }
            }
        }
        for &(idx, read, write) in &self.srams {
            if idx != usize::MAX {
                if trace.sram_read(cycle, idx) {
                    s.mem_reads += read;
                }
                if trace.sram_write(cycle, idx) {
                    s.mem_writes += write;
                }
            }
        }
        s
    }
}

/// Compute [`SideFeatures`] for one sub-module and cycle from gate-level
/// information only. For whole-trace work prefer building a [`SideTable`]
/// once and querying it per cycle.
pub fn side_features(
    data: &SubmoduleData,
    design: &Design,
    lib: &Library,
    trace: &ToggleTrace,
    cycle: usize,
) -> SideFeatures {
    let mut s = SideFeatures::default();
    let sram_index: std::collections::HashMap<CellId, usize> = trace
        .sram_cells()
        .iter()
        .enumerate()
        .map(|(i, &c)| (c, i))
        .collect();
    for &cell_id in &data.cells {
        let cell = design.cell(cell_id);
        let class = cell.class();
        match class {
            CellClass::Sram => {
                let macro_ = cell.sram().and_then(|c| lib.sram_at_least(c.words, c.bits));
                if let Some(m) = macro_ {
                    s.mem_bits += m.leakage();
                }
                if let Some(&idx) = sram_index.get(&cell_id) {
                    if trace.sram_read(cycle, idx) {
                        s.mem_reads += macro_.map(|m| m.read_energy()).unwrap_or(1.0);
                    }
                    if trace.sram_write(cycle, idx) {
                        s.mem_writes += macro_.map(|m| m.write_energy()).unwrap_or(1.0);
                    }
                }
            }
            CellClass::Dff | CellClass::Dffr => {
                s.n_reg += 1.0;
                if trace.cell_toggled(design, cycle, cell_id) {
                    if let Some(lc) = lib.cell(class, cell.drive()) {
                        s.i_reg += lc.switch_energy().mean();
                        s.c_reg += lc.total_input_cap();
                    }
                }
            }
            _ => {
                s.n_comb += 1.0;
                if trace.cell_toggled(design, cycle, cell_id) {
                    if let Some(lc) = lib.cell(class, cell.drive()) {
                        s.i_comb += lc.switch_energy().mean();
                        s.c_comb += lc.total_input_cap();
                    }
                }
            }
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use atlas_designs::DesignConfig;
    use atlas_sim::{simulate, PhasedWorkload};

    use super::*;

    fn setup() -> (Design, Library, ToggleTrace, Vec<SubmoduleData>) {
        let d = DesignConfig::tiny().generate();
        let lib = Library::synthetic_40nm();
        let trace = simulate(&d, &mut PhasedWorkload::w1(1), 16).expect("simulates");
        let data = build_submodule_data(&d, &lib);
        (d, lib, trace, data)
    }

    #[test]
    fn partition_covers_all_cells() {
        let (d, _, _, data) = setup();
        let total: usize = data.iter().map(|s| s.node_count()).sum();
        assert_eq!(total, d.cell_count());
    }

    #[test]
    fn one_hot_is_exact() {
        let (d, _, _, data) = setup();
        for sm in &data {
            for (i, &cell) in sm.cells().iter().enumerate() {
                let class = d.cell(cell).class();
                let mut f = sm.static_feats.clone();
                // Exactly one type channel set.
                let ones: usize = (0..CellClass::COUNT)
                    .filter(|&c| f.get(i, c) == 1.0)
                    .count();
                assert_eq!(ones, 1);
                assert_eq!(f.get(i, class.index()), 1.0);
                // Mask channels start clear.
                assert_eq!(f.get(i, MASK_TOGGLE_CHANNEL), 0.0);
                f.set(i, 0, f.get(i, 0)); // silence unused-mut style concerns
            }
        }
    }

    #[test]
    fn toggle_channel_tracks_trace() {
        let (d, _, trace, data) = setup();
        for sm in data.iter().take(3) {
            let f = sm.features_for_cycle(&d, &trace, 5);
            for (i, &cell) in sm.cells().iter().enumerate() {
                let expect = trace.cell_toggled(&d, 5, cell);
                assert_eq!(f.get(i, TOGGLE_CHANNEL) == 1.0, expect);
            }
        }
    }

    #[test]
    fn masking_hides_and_labels() {
        let (d, _, trace, data) = setup();
        let sm = data
            .iter()
            .max_by_key(|s| s.node_count())
            .expect("nonempty");
        let mut rng = DetRng::new(3);
        let m = sm.masked_features(&d, &trace, 4, 0.3, &mut rng);
        assert!(!m.toggle_nodes.is_empty(), "some toggles masked");
        assert!(!m.type_nodes.is_empty(), "some types masked");
        for (&node, &label) in m.toggle_nodes.iter().zip(&m.toggle_labels) {
            assert_eq!(m.features.get(node, TOGGLE_CHANNEL), 0.0);
            assert_eq!(m.features.get(node, MASK_TOGGLE_CHANNEL), 1.0);
            let actual = trace.cell_toggled(&d, 4, sm.cells()[node]) as usize;
            assert_eq!(label, actual);
        }
        for (&node, &label) in m.type_nodes.iter().zip(&m.type_labels) {
            for c in 0..CellClass::COUNT {
                assert_eq!(m.features.get(node, c), 0.0);
            }
            assert_eq!(m.features.get(node, MASK_TYPE_CHANNEL), 1.0);
            assert_eq!(label, sm.class_indices()[node] as usize);
        }
        // Disjoint masks.
        for t in &m.toggle_nodes {
            assert!(!m.type_nodes.contains(t));
        }
    }

    #[test]
    fn side_features_scale_with_activity() {
        let (d, lib, _, data) = setup();
        let hot = simulate(&d, &mut atlas_sim::ConstantWorkload::new(0.45, 2), 16).expect("ok");
        let cold = simulate(&d, &mut atlas_sim::ConstantWorkload::new(0.0, 2), 16).expect("ok");
        let sm = data
            .iter()
            .max_by_key(|s| s.node_count())
            .expect("nonempty");
        let sh = side_features(sm, &d, &lib, &hot, 10);
        let sc = side_features(sm, &d, &lib, &cold, 10);
        assert!(sh.i_comb >= sc.i_comb);
        assert_eq!(sh.n_comb, sc.n_comb, "counts are activity-independent");
    }

    #[test]
    fn feature_values_are_order_one() {
        let (_, _, _, data) = setup();
        for sm in &data {
            for v in sm.static_feats.as_slice() {
                assert!(v.abs() < 50.0, "unscaled feature {v}");
            }
        }
    }
}
