//! Typed errors surfaced through the serve API.

use std::fmt;

use atlas_core::LookupError;

use crate::registry::RegistryError;

/// Anything that can go wrong answering a prediction request.
///
/// Every variant maps onto a stable machine-readable `kind` string in the
/// wire protocol, so clients can branch without parsing prose.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The request named a design outside the preset vocabulary.
    UnknownDesign(String),
    /// The request named a workload that is neither a preset nor a
    /// server-registered workload.
    UnknownWorkload(String),
    /// The request addressed a model the service is not hosting.
    UnknownModel(String),
    /// The request was structurally invalid (bad JSON, zero cycles, ...).
    InvalidRequest(String),
    /// The request needed a cold computation on a model whose
    /// cold-compute quota *and* admission queue are both full — the
    /// structured back-pressure signal of per-model worker quotas.
    QuotaExceeded(String),
    /// Workload simulation failed on the generated design.
    Simulation(String),
    /// A model registry operation failed.
    Registry(String),
    /// An uploaded design body failed to parse. The message carries the
    /// parser's typed diagnostic (kind, line, and offending token).
    ParseError(String),
    /// A downstream dependency could not be reached — the shard proxy's
    /// signal that the backend owning a request's key is unreachable or
    /// answered garbage. The request may be retried; other shards are
    /// unaffected.
    Unavailable(String),
    /// The service is shutting down or a worker died.
    Shutdown,
}

impl ServeError {
    /// Stable machine-readable error class for the wire protocol.
    pub fn kind(&self) -> &'static str {
        match self {
            ServeError::UnknownDesign(_) => "unknown_design",
            ServeError::UnknownWorkload(_) => "unknown_workload",
            ServeError::UnknownModel(_) => "unknown_model",
            ServeError::InvalidRequest(_) => "invalid_request",
            ServeError::QuotaExceeded(_) => "quota_exceeded",
            ServeError::Simulation(_) => "simulation",
            ServeError::Registry(_) => "registry",
            ServeError::ParseError(_) => "parse_error",
            ServeError::Unavailable(_) => "unavailable",
            ServeError::Shutdown => "shutdown",
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::UnknownDesign(name) => write!(f, "unknown design `{name}`"),
            ServeError::UnknownWorkload(name) => write!(f, "unknown workload `{name}`"),
            ServeError::UnknownModel(name) => write!(f, "unknown model `{name}`"),
            ServeError::InvalidRequest(msg) => write!(f, "invalid request: {msg}"),
            ServeError::QuotaExceeded(model) => write!(
                f,
                "model `{model}` is at its cold-compute quota and its admission queue is full"
            ),
            ServeError::Simulation(msg) => write!(f, "simulation failed: {msg}"),
            ServeError::Registry(msg) => write!(f, "registry error: {msg}"),
            ServeError::ParseError(msg) => write!(f, "design failed to parse: {msg}"),
            ServeError::Unavailable(msg) => write!(f, "backend unavailable: {msg}"),
            ServeError::Shutdown => write!(f, "service is shut down"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<LookupError> for ServeError {
    fn from(e: LookupError) -> ServeError {
        match e {
            LookupError::UnknownDesign(name) => ServeError::UnknownDesign(name),
            LookupError::UnknownWorkload(name) => ServeError::UnknownWorkload(name),
        }
    }
}

impl From<RegistryError> for ServeError {
    fn from(e: RegistryError) -> ServeError {
        ServeError::Registry(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_stable() {
        assert_eq!(
            ServeError::UnknownDesign("X".into()).kind(),
            "unknown_design"
        );
        assert_eq!(
            ServeError::UnknownWorkload("X".into()).kind(),
            "unknown_workload"
        );
        assert_eq!(
            ServeError::InvalidRequest("x".into()).kind(),
            "invalid_request"
        );
        assert_eq!(ServeError::UnknownModel("m".into()).kind(), "unknown_model");
        assert_eq!(
            ServeError::QuotaExceeded("m".into()).kind(),
            "quota_exceeded"
        );
        assert_eq!(
            ServeError::UnknownModel("m".into()).to_string(),
            "unknown model `m`"
        );
        assert_eq!(ServeError::ParseError("x".into()).kind(), "parse_error");
        assert_eq!(ServeError::Unavailable("x".into()).kind(), "unavailable");
        assert_eq!(ServeError::Shutdown.kind(), "shutdown");
    }

    #[test]
    fn lookup_errors_convert() {
        let e: ServeError = LookupError::UnknownDesign("C9".into()).into();
        assert_eq!(e, ServeError::UnknownDesign("C9".into()));
        assert_eq!(e.to_string(), "unknown design `C9`");
    }
}
