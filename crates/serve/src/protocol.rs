//! The JSON-lines wire protocol of the prediction service.
//!
//! One request per line in, one response per line out, over stdin/stdout
//! or a TCP stream. A response object either carries prediction fields or
//! an `error`/`kind` pair — never both.
//!
//! ```text
//! → {"id":1,"design":"C2","workload":"W1","cycles":64}
//! ← {"id":1,"design":"C2","workload":"W1","cycles":64,"cache_hit":false,...}
//! → {"id":2,"design":"C9","workload":"W1","cycles":64}
//! ← {"id":2,"error":"unknown design `C9`","kind":"unknown_design"}
//! ```

use atlas_liberty::PowerGroup;
use atlas_power::PowerTrace;
use serde::{Deserialize, Serialize};

use crate::error::ServeError;

/// One prediction request: which design, under which workload, for how
/// many cycles.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PredictRequest {
    /// Client-chosen correlation id, echoed in the response.
    pub id: Option<u64>,
    /// Design preset name (`C1`..`C6`, `TINY`).
    pub design: String,
    /// Workload preset name (`W1`/`W2`).
    pub workload: String,
    /// Cycles to simulate and predict.
    pub cycles: usize,
}

impl PredictRequest {
    /// Convenience constructor without a correlation id.
    pub fn new(design: impl Into<String>, workload: impl Into<String>, cycles: usize) -> Self {
        PredictRequest {
            id: None,
            design: design.into(),
            workload: workload.into(),
            cycles,
        }
    }
}

/// Per-group rollup of a predicted trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroupSummary {
    /// Power group name (`combinational`, `register`, `clock_tree`,
    /// `memory`).
    pub group: String,
    /// Mean watts over the trace.
    pub mean_w: f64,
    /// Peak single-cycle watts.
    pub peak_w: f64,
}

/// A successful prediction, summarized per power group plus the per-cycle
/// total series (the quantity peak-power / `L·di/dt` analyses need).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PredictResponse {
    /// Echo of the request id.
    pub id: Option<u64>,
    /// Echo of the design name.
    pub design: String,
    /// Echo of the workload name.
    pub workload: String,
    /// Echo of the cycle count.
    pub cycles: usize,
    /// Whether the (design, workload, cycles) embeddings were served from
    /// cache (stage one skipped entirely).
    pub cache_hit: bool,
    /// Whether the design's netlist + sub-module data came from cache
    /// (relevant when `cache_hit` is false: same design, new workload).
    pub design_cache_hit: bool,
    /// Server-side latency of this request in milliseconds.
    pub latency_ms: f64,
    /// Mean total watts over the trace.
    pub mean_total_w: f64,
    /// Peak single-cycle total watts.
    pub peak_total_w: f64,
    /// Per-group rollups, in `PowerGroup::ALL` order.
    pub groups: Vec<GroupSummary>,
    /// Per-cycle design-total watts (all groups).
    pub per_cycle_total_w: Vec<f64>,
}

/// The error half of the wire protocol.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ErrorResponse {
    /// Echo of the request id, when the request parsed far enough.
    pub id: Option<u64>,
    /// Human-readable description.
    pub error: String,
    /// Stable machine-readable class ([`ServeError::kind`]).
    pub kind: String,
}

/// Wire name of a power group.
pub fn group_name(group: PowerGroup) -> &'static str {
    match group {
        PowerGroup::Combinational => "combinational",
        PowerGroup::Register => "register",
        PowerGroup::ClockTree => "clock_tree",
        PowerGroup::Memory => "memory",
    }
}

/// Summarize a predicted trace into a response body.
pub fn summarize(
    req: &PredictRequest,
    trace: &PowerTrace,
    cache_hit: bool,
    design_cache_hit: bool,
    latency_ms: f64,
) -> PredictResponse {
    let totals = trace.total_series();
    let mean_total_w = mean(&totals);
    let peak_total_w = totals.iter().fold(0.0f64, |a, &b| a.max(b));
    let groups = PowerGroup::ALL
        .iter()
        .map(|&g| {
            let series = trace.group_series(g);
            GroupSummary {
                group: group_name(g).to_owned(),
                mean_w: mean(&series),
                peak_w: series.iter().fold(0.0f64, |a, &b| a.max(b)),
            }
        })
        .collect();
    PredictResponse {
        id: req.id,
        design: req.design.clone(),
        workload: req.workload.clone(),
        cycles: trace.cycles(),
        cache_hit,
        design_cache_hit,
        latency_ms,
        mean_total_w,
        peak_total_w,
        groups,
        per_cycle_total_w: totals,
    }
}

fn mean(series: &[f64]) -> f64 {
    if series.is_empty() {
        0.0
    } else {
        series.iter().sum::<f64>() / series.len() as f64
    }
}

/// Parse one request line.
///
/// # Errors
///
/// [`ServeError::InvalidRequest`] on malformed JSON or a structural
/// mismatch.
pub fn parse_request(line: &str) -> Result<PredictRequest, ServeError> {
    serde_json::from_str(line.trim())
        .map_err(|e| ServeError::InvalidRequest(format!("bad request line: {e}")))
}

/// Render one response line (no trailing newline).
pub fn render_result(result: &Result<PredictResponse, (Option<u64>, ServeError)>) -> String {
    let rendered = match result {
        Ok(response) => serde_json::to_string(response),
        Err((id, error)) => serde_json::to_string(&ErrorResponse {
            id: *id,
            error: error.to_string(),
            kind: error.kind().to_owned(),
        }),
    };
    rendered.unwrap_or_else(|e| format!(r#"{{"error":"render failure: {e}","kind":"internal"}}"#))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        let req = PredictRequest {
            id: Some(7),
            design: "C2".into(),
            workload: "W1".into(),
            cycles: 64,
        };
        let line = serde_json::to_string(&req).expect("serializes");
        assert_eq!(parse_request(&line).expect("parses"), req);
    }

    #[test]
    fn request_without_id_parses() {
        let req =
            parse_request(r#"{"id":null,"design":"C4","workload":"W2","cycles":16}"#).expect("ok");
        assert_eq!(req.id, None);
        assert_eq!(req.design, "C4");
        // The id field may be omitted entirely (it is optional).
        let req = parse_request(r#"{"design":"C2","workload":"W1","cycles":8}"#).expect("ok");
        assert_eq!(req.id, None);
        assert_eq!(req.cycles, 8);
    }

    #[test]
    fn malformed_requests_are_typed_errors() {
        assert!(matches!(
            parse_request("not json"),
            Err(ServeError::InvalidRequest(_))
        ));
        assert!(matches!(
            parse_request(r#"{"design":"C2"}"#),
            Err(ServeError::InvalidRequest(_))
        ));
    }

    #[test]
    fn summaries_roll_up_the_trace() {
        let mut trace = PowerTrace::new("d".into(), "w".into(), 2, 1);
        trace.add(0, 0, PowerGroup::Combinational.index(), 1.0);
        trace.add(1, 0, PowerGroup::ClockTree.index(), 3.0);
        let req = PredictRequest::new("d", "w", 2);
        let resp = summarize(&req, &trace, true, true, 0.5);
        assert_eq!(resp.per_cycle_total_w, vec![1.0, 3.0]);
        assert_eq!(resp.mean_total_w, 2.0);
        assert_eq!(resp.peak_total_w, 3.0);
        assert_eq!(resp.groups.len(), PowerGroup::ALL.len());
        let ct = resp
            .groups
            .iter()
            .find(|g| g.group == "clock_tree")
            .expect("ct");
        assert_eq!(ct.peak_w, 3.0);
        // The response line parses back.
        let line = render_result(&Ok(resp.clone()));
        let back: PredictResponse = serde_json::from_str(&line).expect("parses");
        assert_eq!(back, resp);
    }

    #[test]
    fn error_lines_carry_kind() {
        let line = render_result(&Err((Some(3), ServeError::UnknownDesign("C9".into()))));
        let err: ErrorResponse = serde_json::from_str(&line).expect("parses");
        assert_eq!(err.id, Some(3));
        assert_eq!(err.kind, "unknown_design");
        assert!(err.error.contains("C9"));
    }
}
