//! The JSON-lines wire protocol of the prediction service.
//!
//! One request per line in, one response per line out, over stdin/stdout
//! or a TCP stream. A response object either carries prediction fields or
//! an `error`/`kind` pair — never both.
//!
//! ```text
//! → {"id":1,"design":"C2","workload":"W1","cycles":64}
//! ← {"id":1,"design":"C2","workload":"W1","cycles":64,"cache_hit":false,...}
//! → {"id":2,"design":"C9","workload":"W1","cycles":64}
//! ← {"id":2,"error":"unknown design `C9`","kind":"unknown_design"}
//! → {"id":3,"verb":"stats"}
//! ← {"id":3,"verb":"stats","requests":2,...,"embedding_cache":{...}}
//! ```
//!
//! A line with a `verb` field is dispatched by verb (`"predict"` or
//! `"stats"`); a line without one is a predict request. Predict requests
//! may carry an inline phase schedule in `phases` instead of relying on
//! the `W1`/`W2` presets — see [`PredictRequest::phases`].

use atlas_liberty::PowerGroup;
use atlas_power::PowerTrace;
use atlas_sim::WorkloadPhase;
use serde::{Deserialize, Serialize};

use crate::cache::CacheStats;
use crate::error::ServeError;
use crate::service::ServiceStats;

/// One prediction request: which design, under which workload, for how
/// many cycles.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PredictRequest {
    /// Client-chosen correlation id, echoed in the response.
    pub id: Option<u64>,
    /// Design preset name (`C1`..`C6`, `TINY`).
    pub design: String,
    /// Workload name: a preset (`W1`/`W2`) when `phases` is absent, else
    /// a client-chosen label for the inline schedule.
    pub workload: String,
    /// Cycles to simulate and predict.
    pub cycles: usize,
    /// Inline phase schedule (the `PhasedWorkload::new` surface). When
    /// present, the service builds the workload from these phases instead
    /// of looking `workload` up in the preset vocabulary, and caches the
    /// result under a fingerprint of the schedule.
    pub phases: Option<Vec<WorkloadPhase>>,
}

impl PredictRequest {
    /// Convenience constructor without a correlation id.
    pub fn new(design: impl Into<String>, workload: impl Into<String>, cycles: usize) -> Self {
        PredictRequest {
            id: None,
            design: design.into(),
            workload: workload.into(),
            cycles,
            phases: None,
        }
    }

    /// Constructor for an inline-schedule request; `workload` becomes the
    /// label the response echoes.
    pub fn with_phases(
        design: impl Into<String>,
        workload: impl Into<String>,
        cycles: usize,
        phases: Vec<WorkloadPhase>,
    ) -> Self {
        PredictRequest {
            id: None,
            design: design.into(),
            workload: workload.into(),
            cycles,
            phases: Some(phases),
        }
    }
}

/// One parsed protocol line, dispatched by verb.
#[derive(Debug, Clone, PartialEq)]
pub enum RequestLine {
    /// A prediction request (no `verb`, or `"verb":"predict"`).
    Predict(PredictRequest),
    /// A service-counter snapshot request (`"verb":"stats"`).
    Stats {
        /// Client-chosen correlation id, echoed in the response.
        id: Option<u64>,
    },
}

/// The reply to a `stats` verb: aggregate service counters, including
/// each cache's occupancy and admission budget (bytes for the embedding
/// cache, entries for the design cache).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StatsResponse {
    /// Echo of the request id.
    pub id: Option<u64>,
    /// Always `"stats"`, so clients can discriminate response lines.
    pub verb: String,
    /// Requests answered (including errors).
    pub requests: u64,
    /// Requests that returned an error.
    pub errors: u64,
    /// Cold embeddings actually computed (each counts one full
    /// simulate + encode pipeline).
    pub embeddings_computed: u64,
    /// Requests that coalesced onto another request's in-flight
    /// computation instead of recomputing (single-flight).
    pub coalesced_requests: u64,
    /// Embedding-cache counters; `weight`/`budget` are **bytes**.
    pub embedding_cache: CacheStats,
    /// Design-cache counters; `weight`/`budget` are **entries**.
    pub design_cache: CacheStats,
}

/// Build the `stats` verb reply from a service counter snapshot.
pub fn stats_response(id: Option<u64>, stats: &ServiceStats) -> StatsResponse {
    StatsResponse {
        id,
        verb: "stats".to_owned(),
        requests: stats.requests,
        errors: stats.errors,
        embeddings_computed: stats.embeddings_computed,
        coalesced_requests: stats.coalesced_requests,
        embedding_cache: stats.embedding_cache,
        design_cache: stats.design_cache,
    }
}

/// Per-group rollup of a predicted trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroupSummary {
    /// Power group name (`combinational`, `register`, `clock_tree`,
    /// `memory`).
    pub group: String,
    /// Mean watts over the trace.
    pub mean_w: f64,
    /// Peak single-cycle watts.
    pub peak_w: f64,
}

/// A successful prediction, summarized per power group plus the per-cycle
/// total series (the quantity peak-power / `L·di/dt` analyses need).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PredictResponse {
    /// Echo of the request id.
    pub id: Option<u64>,
    /// Echo of the design name.
    pub design: String,
    /// Echo of the workload name.
    pub workload: String,
    /// Echo of the cycle count.
    pub cycles: usize,
    /// Whether the (design, workload, cycles) embeddings were served from
    /// cache (stage one skipped entirely).
    pub cache_hit: bool,
    /// Whether the design's netlist + sub-module data came from cache
    /// (relevant when `cache_hit` is false: same design, new workload).
    pub design_cache_hit: bool,
    /// Server-side latency of this request in milliseconds.
    pub latency_ms: f64,
    /// Mean total watts over the trace.
    pub mean_total_w: f64,
    /// Peak single-cycle total watts.
    pub peak_total_w: f64,
    /// Per-group rollups, in `PowerGroup::ALL` order.
    pub groups: Vec<GroupSummary>,
    /// Per-cycle design-total watts (all groups).
    pub per_cycle_total_w: Vec<f64>,
}

/// The error half of the wire protocol.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ErrorResponse {
    /// Echo of the request id, when the request parsed far enough.
    pub id: Option<u64>,
    /// Human-readable description.
    pub error: String,
    /// Stable machine-readable class ([`ServeError::kind`]).
    pub kind: String,
}

/// Wire name of a power group.
pub fn group_name(group: PowerGroup) -> &'static str {
    match group {
        PowerGroup::Combinational => "combinational",
        PowerGroup::Register => "register",
        PowerGroup::ClockTree => "clock_tree",
        PowerGroup::Memory => "memory",
    }
}

/// Summarize a predicted trace into a response body.
pub fn summarize(
    req: &PredictRequest,
    trace: &PowerTrace,
    cache_hit: bool,
    design_cache_hit: bool,
    latency_ms: f64,
) -> PredictResponse {
    let totals = trace.total_series();
    let mean_total_w = mean(&totals);
    let peak_total_w = totals.iter().fold(0.0f64, |a, &b| a.max(b));
    let groups = PowerGroup::ALL
        .iter()
        .map(|&g| {
            let series = trace.group_series(g);
            GroupSummary {
                group: group_name(g).to_owned(),
                mean_w: mean(&series),
                peak_w: series.iter().fold(0.0f64, |a, &b| a.max(b)),
            }
        })
        .collect();
    PredictResponse {
        id: req.id,
        design: req.design.clone(),
        workload: req.workload.clone(),
        cycles: trace.cycles(),
        cache_hit,
        design_cache_hit,
        latency_ms,
        mean_total_w,
        peak_total_w,
        groups,
        per_cycle_total_w: totals,
    }
}

fn mean(series: &[f64]) -> f64 {
    if series.is_empty() {
        0.0
    } else {
        series.iter().sum::<f64>() / series.len() as f64
    }
}

/// Parse one request line.
///
/// # Errors
///
/// [`ServeError::InvalidRequest`] on malformed JSON or a structural
/// mismatch.
pub fn parse_request(line: &str) -> Result<PredictRequest, ServeError> {
    serde_json::from_str(line.trim())
        .map_err(|e| ServeError::InvalidRequest(format!("bad request line: {e}")))
}

/// Parse one protocol line, dispatching on the optional `verb` field.
///
/// # Errors
///
/// [`ServeError::InvalidRequest`] on malformed JSON, an unknown verb, or
/// a structural mismatch.
pub fn parse_line(line: &str) -> Result<RequestLine, ServeError> {
    let bad = |msg: String| ServeError::InvalidRequest(msg);
    let value = serde_json::from_str_value(line.trim())
        .map_err(|e| bad(format!("bad request line: {e}")))?;
    let Some(map) = value.as_map() else {
        return Err(bad(format!(
            "request line must be a JSON object, found {}",
            value.kind()
        )));
    };
    let verb = match map.iter().find(|(k, _)| k == "verb") {
        None => None,
        Some((_, v)) => Some(
            v.as_str()
                .ok_or_else(|| bad(format!("`verb` must be a string, found {}", v.kind())))?,
        ),
    };
    match verb {
        None | Some("predict") => PredictRequest::from_value(&value)
            .map(RequestLine::Predict)
            .map_err(|e| bad(format!("bad request line: {e}"))),
        Some("stats") => {
            let id = serde::de::field::<Option<u64>>(map, "id", "stats")
                .map_err(|e| bad(format!("bad stats line: {e}")))?;
            Ok(RequestLine::Stats { id })
        }
        Some(other) => Err(bad(format!("unknown verb `{other}`"))),
    }
}

/// Best-effort extraction of the `id` field from a request line that
/// failed to parse, so even error responses correlate when possible.
pub fn salvage_id(line: &str) -> Option<u64> {
    let value = serde_json::from_str_value(line.trim()).ok()?;
    let map = value.as_map()?;
    serde::de::field::<Option<u64>>(map, "id", "request").ok()?
}

/// Render one `stats` response line (no trailing newline).
pub fn render_stats(response: &StatsResponse) -> String {
    serde_json::to_string(response)
        .unwrap_or_else(|e| format!(r#"{{"error":"render failure: {e}","kind":"internal"}}"#))
}

/// Render one response line (no trailing newline).
pub fn render_result(result: &Result<PredictResponse, (Option<u64>, ServeError)>) -> String {
    let rendered = match result {
        Ok(response) => serde_json::to_string(response),
        Err((id, error)) => serde_json::to_string(&ErrorResponse {
            id: *id,
            error: error.to_string(),
            kind: error.kind().to_owned(),
        }),
    };
    rendered.unwrap_or_else(|e| format!(r#"{{"error":"render failure: {e}","kind":"internal"}}"#))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        let req = PredictRequest {
            id: Some(7),
            design: "C2".into(),
            workload: "W1".into(),
            cycles: 64,
            phases: None,
        };
        let line = serde_json::to_string(&req).expect("serializes");
        assert_eq!(parse_request(&line).expect("parses"), req);
    }

    #[test]
    fn inline_schedule_roundtrip() {
        let req = PredictRequest::with_phases(
            "C2",
            "bursty",
            32,
            vec![
                WorkloadPhase {
                    activity: 0.45,
                    min_len: 3,
                    max_len: 9,
                },
                WorkloadPhase {
                    activity: 0.05,
                    min_len: 10,
                    max_len: 20,
                },
            ],
        );
        let line = serde_json::to_string(&req).expect("serializes");
        assert_eq!(parse_request(&line).expect("parses"), req);
        // Through the verb dispatcher too.
        assert_eq!(
            parse_line(&line).expect("parses"),
            RequestLine::Predict(req.clone())
        );
        // And from hand-written JSON, the shape clients will send.
        let hand = r#"{"design":"C2","workload":"bursty","cycles":32,
            "phases":[{"activity":0.45,"min_len":3,"max_len":9},
                      {"activity":0.05,"min_len":10,"max_len":20}]}"#;
        let parsed = parse_request(hand).expect("parses");
        assert_eq!(parsed.phases, req.phases);
    }

    #[test]
    fn verb_dispatch() {
        // No verb: predict.
        assert!(matches!(
            parse_line(r#"{"design":"C2","workload":"W1","cycles":8}"#),
            Ok(RequestLine::Predict(_))
        ));
        // Explicit predict verb.
        assert!(matches!(
            parse_line(r#"{"verb":"predict","design":"C2","workload":"W1","cycles":8}"#),
            Ok(RequestLine::Predict(_))
        ));
        // Stats verb, with and without id.
        assert_eq!(
            parse_line(r#"{"verb":"stats","id":9}"#),
            Ok(RequestLine::Stats { id: Some(9) })
        );
        assert_eq!(
            parse_line(r#"{"verb":"stats"}"#),
            Ok(RequestLine::Stats { id: None })
        );
        // Unknown verb and non-string verb are typed errors.
        assert!(matches!(
            parse_line(r#"{"verb":"flush"}"#),
            Err(ServeError::InvalidRequest(msg)) if msg.contains("unknown verb")
        ));
        assert!(matches!(
            parse_line(r#"{"verb":3}"#),
            Err(ServeError::InvalidRequest(_))
        ));
        assert!(matches!(
            parse_line("[1,2]"),
            Err(ServeError::InvalidRequest(_))
        ));
        // Error responses can still correlate when the id parsed.
        assert_eq!(salvage_id(r#"{"id":6,"verb":"flush"}"#), Some(6));
        assert_eq!(salvage_id(r#"{"verb":"flush"}"#), None);
        assert_eq!(salvage_id("not json"), None);
    }

    #[test]
    fn stats_response_roundtrip() {
        let stats = ServiceStats {
            requests: 11,
            errors: 2,
            embeddings_computed: 3,
            coalesced_requests: 4,
            embedding_cache: CacheStats {
                hits: 6,
                misses: 5,
                len: 2,
                weight: 123_456,
                budget: 1_000_000,
            },
            design_cache: CacheStats {
                hits: 7,
                misses: 1,
                len: 1,
                weight: 1,
                budget: 16,
            },
        };
        let resp = stats_response(Some(9), &stats);
        assert_eq!(resp.verb, "stats");
        assert_eq!(resp.embedding_cache.budget, 1_000_000);
        let line = render_stats(&resp);
        let back: StatsResponse = serde_json::from_str(&line).expect("parses");
        assert_eq!(back, resp);
    }

    #[test]
    fn request_without_id_parses() {
        let req =
            parse_request(r#"{"id":null,"design":"C4","workload":"W2","cycles":16}"#).expect("ok");
        assert_eq!(req.id, None);
        assert_eq!(req.design, "C4");
        // The id field may be omitted entirely (it is optional).
        let req = parse_request(r#"{"design":"C2","workload":"W1","cycles":8}"#).expect("ok");
        assert_eq!(req.id, None);
        assert_eq!(req.cycles, 8);
    }

    #[test]
    fn malformed_requests_are_typed_errors() {
        assert!(matches!(
            parse_request("not json"),
            Err(ServeError::InvalidRequest(_))
        ));
        assert!(matches!(
            parse_request(r#"{"design":"C2"}"#),
            Err(ServeError::InvalidRequest(_))
        ));
    }

    #[test]
    fn summaries_roll_up_the_trace() {
        let mut trace = PowerTrace::new("d".into(), "w".into(), 2, 1);
        trace.add(0, 0, PowerGroup::Combinational.index(), 1.0);
        trace.add(1, 0, PowerGroup::ClockTree.index(), 3.0);
        let req = PredictRequest::new("d", "w", 2);
        let resp = summarize(&req, &trace, true, true, 0.5);
        assert_eq!(resp.per_cycle_total_w, vec![1.0, 3.0]);
        assert_eq!(resp.mean_total_w, 2.0);
        assert_eq!(resp.peak_total_w, 3.0);
        assert_eq!(resp.groups.len(), PowerGroup::ALL.len());
        let ct = resp
            .groups
            .iter()
            .find(|g| g.group == "clock_tree")
            .expect("ct");
        assert_eq!(ct.peak_w, 3.0);
        // The response line parses back.
        let line = render_result(&Ok(resp.clone()));
        let back: PredictResponse = serde_json::from_str(&line).expect("parses");
        assert_eq!(back, resp);
    }

    #[test]
    fn error_lines_carry_kind() {
        let line = render_result(&Err((Some(3), ServeError::UnknownDesign("C9".into()))));
        let err: ErrorResponse = serde_json::from_str(&line).expect("parses");
        assert_eq!(err.id, Some(3));
        assert_eq!(err.kind, "unknown_design");
        assert!(err.error.contains("C9"));
    }
}
