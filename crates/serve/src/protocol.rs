//! The JSON-lines wire protocol of the prediction service.
//!
//! One request per line in, one response per line out, over stdin/stdout
//! or a TCP stream. A response object either carries prediction fields or
//! an `error`/`kind` pair — never both. The full reference — every verb,
//! field, and error string, with copy-pasteable examples — lives in
//! `docs/PROTOCOL.md`.
//!
//! ```text
//! → {"id":1,"design":"C2","workload":"W1","cycles":64}
//! ← {"id":1,"model":"default","design":"C2","workload":"W1",...}
//! → {"id":2,"design":"C9","workload":"W1","cycles":64}
//! ← {"id":2,"error":"unknown design `C9`","kind":"unknown_design"}
//! → {"id":3,"verb":"stats"}
//! ← {"id":3,"verb":"stats","requests":2,...,"models":[{...}]}
//! ```
//!
//! A line with a `verb` field is dispatched by verb (`"predict"`,
//! `"predict_delta"`, `"sweep"`, `"stats"`, `"models"`, `"load_model"`,
//! `"unload_model"`, `"register_workload"`, `"workloads"`,
//! `"load_design"`, `"shard_map"`); a line without one is a predict
//! request. Predict requests may address a
//! specific hosted model via [`PredictRequest::model`] and may carry
//! their workload three ways: a preset name in `workload`, an inline
//! phase schedule in `phases`, or the name of a server-registered
//! schedule in `workload_name`. `predict_delta` and `sweep` reuse the
//! same spellings; `sweep` replies stream as multiple bounded frames
//! (`start` → `item`/`series`/`error`… → `end`) instead of one line.

use atlas_liberty::PowerGroup;
use atlas_power::PowerTrace;
use atlas_sim::WorkloadPhase;
use serde::{Deserialize, Serialize};

use crate::cache::CacheStats;
use crate::error::ServeError;
use crate::reactor::ReactorStats;
use crate::service::{DesignInfo, ModelInfo, ModelStats, RegisteredWorkload, ServiceStats};

/// One prediction request: which design, under which workload, for how
/// many cycles — and optionally on which hosted model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PredictRequest {
    /// Client-chosen correlation id, echoed in the response.
    pub id: Option<u64>,
    /// Hosted-model serving name; absent means the service's default
    /// model. Routing is by name only — results are bit-identical whether
    /// a model is addressed explicitly or as the default.
    pub model: Option<String>,
    /// Design preset name (`C1`..`C6`, `TINY`).
    pub design: String,
    /// Workload name: a preset (`W1`/`W2`) when `phases` and
    /// `workload_name` are absent, else a client-chosen label for the
    /// inline schedule. May be omitted when `workload_name` is used.
    pub workload: Option<String>,
    /// Name of a schedule previously stored via the `register_workload`
    /// verb. Mutually exclusive with `phases`; the registered name
    /// becomes the response's `workload` echo and the cache-key label.
    pub workload_name: Option<String>,
    /// Cycles to simulate and predict.
    pub cycles: usize,
    /// Inline phase schedule (the `PhasedWorkload::new` surface). When
    /// present, the service builds the workload from these phases instead
    /// of looking `workload` up in the preset vocabulary, and caches the
    /// result under a fingerprint of the schedule.
    pub phases: Option<Vec<WorkloadPhase>>,
}

impl PredictRequest {
    /// Convenience constructor without a correlation id.
    pub fn new(design: impl Into<String>, workload: impl Into<String>, cycles: usize) -> Self {
        PredictRequest {
            id: None,
            model: None,
            design: design.into(),
            workload: Some(workload.into()),
            workload_name: None,
            cycles,
            phases: None,
        }
    }

    /// Constructor for an inline-schedule request; `workload` becomes the
    /// label the response echoes.
    pub fn with_phases(
        design: impl Into<String>,
        workload: impl Into<String>,
        cycles: usize,
        phases: Vec<WorkloadPhase>,
    ) -> Self {
        PredictRequest {
            phases: Some(phases),
            ..PredictRequest::new(design, workload, cycles)
        }
    }

    /// Constructor for a request that references a server-registered
    /// workload by name (see the `register_workload` verb).
    pub fn with_workload_name(
        design: impl Into<String>,
        workload_name: impl Into<String>,
        cycles: usize,
    ) -> Self {
        PredictRequest {
            id: None,
            model: None,
            design: design.into(),
            workload: None,
            workload_name: Some(workload_name.into()),
            cycles,
            phases: None,
        }
    }

    /// Address this request to a specific hosted model (builder-style).
    #[must_use]
    pub fn on_model(mut self, model: impl Into<String>) -> Self {
        self.model = Some(model.into());
        self
    }
}

/// The `base` object of a `predict_delta` request: which cached trace to
/// reuse items from. Every field defaults to the target request's own
/// value, so an appended-cycles edit only states `cycles` and a design
/// edit only states `design`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeltaBase {
    /// Base design name; defaults to the target's `design`.
    pub design: Option<String>,
    /// Base workload label; defaults like the target's `workload`.
    pub workload: Option<String>,
    /// Base registered-workload name; defaults to the target's.
    pub workload_name: Option<String>,
    /// Base cycle count; defaults to the target's `cycles`.
    pub cycles: Option<usize>,
    /// Base inline schedule; defaults to the target's `phases`.
    pub phases: Option<Vec<WorkloadPhase>>,
}

/// The `predict_delta` verb body: a normal prediction plus an edit
/// description — the base trace whose cached (sub-module × cycle) items
/// may be reused, and optionally which sub-modules the client believes
/// changed. The hint is advisory only: the service re-derives dirtiness
/// from content digests, so a wrong hint can never corrupt the result
/// (results are bit-identical to a full `predict` either way).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PredictDeltaRequest {
    /// Client-chosen correlation id, echoed in the response.
    pub id: Option<u64>,
    /// Hosted-model serving name; absent means the default model.
    pub model: Option<String>,
    /// Target design name (preset or uploaded).
    pub design: String,
    /// Target workload label (see [`PredictRequest::workload`]).
    pub workload: Option<String>,
    /// Target registered-workload name.
    pub workload_name: Option<String>,
    /// Target cycle count.
    pub cycles: usize,
    /// Target inline phase schedule.
    pub phases: Option<Vec<WorkloadPhase>>,
    /// Which cached trace to reuse from; absent means "the target's own
    /// key" (useful to cheaply re-materialize an evicted entry from an
    /// equal sibling — rarely what clients want, but well-defined).
    pub base: Option<DeltaBase>,
    /// Advisory edit hint: indices of sub-modules the client changed.
    /// Validated (each must be in range for the target design) but not
    /// trusted — reuse is gated on content digests, not on this list.
    pub changed_submodules: Option<Vec<usize>>,
}

impl PredictDeltaRequest {
    /// The target as a plain [`PredictRequest`] (what the reply must be
    /// bit-identical to).
    pub fn target(&self) -> PredictRequest {
        PredictRequest {
            id: self.id,
            model: self.model.clone(),
            design: self.design.clone(),
            workload: self.workload.clone(),
            workload_name: self.workload_name.clone(),
            cycles: self.cycles,
            phases: self.phases.clone(),
        }
    }

    /// The base as a plain [`PredictRequest`], with every unset base
    /// field defaulted from the target.
    pub fn base_request(&self) -> PredictRequest {
        let base = self.base.clone().unwrap_or(DeltaBase {
            design: None,
            workload: None,
            workload_name: None,
            cycles: None,
            phases: None,
        });
        // A base that states any workload field replaces the whole
        // workload spec (mixing the target's `phases` with the base's
        // `workload_name` would name a trace nobody ever computed).
        let workload_stated =
            base.workload.is_some() || base.workload_name.is_some() || base.phases.is_some();
        let (workload, workload_name, phases) = if workload_stated {
            (base.workload, base.workload_name, base.phases)
        } else {
            (
                self.workload.clone(),
                self.workload_name.clone(),
                self.phases.clone(),
            )
        };
        PredictRequest {
            id: self.id,
            model: self.model.clone(),
            design: base.design.unwrap_or_else(|| self.design.clone()),
            workload,
            workload_name,
            cycles: base.cycles.unwrap_or(self.cycles),
            phases,
        }
    }
}

/// One schedule of a `sweep` request: exactly one of `workload`
/// (preset), `workload_name` (registered), or `phases` + `workload`
/// (inline schedule + label) — the same three spellings a predict
/// request accepts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepItem {
    /// Preset name or inline-schedule label.
    pub workload: Option<String>,
    /// Registered-workload name.
    pub workload_name: Option<String>,
    /// Inline phase schedule.
    pub phases: Option<Vec<WorkloadPhase>>,
}

/// The `sweep` verb body: evaluate one design under K schedules, sharing
/// all design-side work (netlist, sub-module data, per-design caches) and
/// streaming the results back as chunked frames instead of one giant
/// line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepRequest {
    /// Client-chosen correlation id, echoed in every frame.
    pub id: Option<u64>,
    /// Hosted-model serving name; absent means the default model.
    pub model: Option<String>,
    /// Design name (preset or uploaded), shared by every item.
    pub design: String,
    /// Cycles to simulate and predict, shared by every item.
    pub cycles: usize,
    /// The schedules to evaluate, in reply order (`item` indexes this).
    pub items: Vec<SweepItem>,
    /// Per-cycle values per `series` frame (default
    /// [`DEFAULT_SERIES_CHUNK`], clamped to
    /// [`MAX_SERIES_CHUNK`]) — the knob bounding frame size.
    pub chunk_cycles: Option<usize>,
}

/// Default per-cycle values per `series` frame.
pub const DEFAULT_SERIES_CHUNK: usize = 1024;
/// Hard cap on per-cycle values per `series` frame.
pub const MAX_SERIES_CHUNK: usize = 4096;
/// Hard cap on schedules per `sweep` request.
pub const MAX_SWEEP_ITEMS: usize = 64;

/// The `register_workload` verb body: store `phases` server-side under
/// `name`, making it referenceable from any later request's
/// `workload_name` — by any client, on any hosted model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegisterWorkloadRequest {
    /// Client-chosen correlation id, echoed in the response.
    pub id: Option<u64>,
    /// Library name to store the schedule under.
    pub name: String,
    /// The schedule itself, validated exactly like an inline `phases`
    /// field (`PhasedWorkload::try_new`).
    pub phases: Vec<WorkloadPhase>,
}

/// The `load_design` verb body: upload a structural-Verilog netlist and
/// store it server-side under `name`, making it referenceable from any
/// later predict request's `design` field — by any client, on any
/// hosted model. The body is parsed by the hardened
/// `Design::from_verilog` reader under explicit size caps; a body that
/// fails to parse yields a structured `parse_error` reply.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoadDesignRequest {
    /// Client-chosen correlation id, echoed in the response.
    pub id: Option<u64>,
    /// Library name to store the design under. Must not shadow a preset
    /// design name.
    pub name: String,
    /// The netlist body: the structural-Verilog subset
    /// `Design::to_verilog` emits.
    pub verilog: String,
}

/// The `load_model` verb body: add a model file to the live catalog
/// under a serving name, without restarting the service. The file is
/// validated exactly like a startup `--model` spec (format version +
/// config fingerprint via `ModelRegistry::load_file`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoadModelRequest {
    /// Client-chosen correlation id, echoed in the response.
    pub id: Option<u64>,
    /// Serving name to host the model under (the `model` field of later
    /// predict requests).
    pub name: String,
    /// Path of the `.atlas.json` model file, resolved on the server.
    pub path: String,
}

/// The `unload_model` verb body: remove a hosted model from the live
/// catalog. In-flight requests on it drain cleanly; the default model
/// cannot be unloaded.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UnloadModelRequest {
    /// Client-chosen correlation id, echoed in the response.
    pub id: Option<u64>,
    /// Serving name of the model to unload.
    pub name: String,
}

/// One parsed protocol line, dispatched by verb.
#[derive(Debug, Clone, PartialEq)]
pub enum RequestLine {
    /// A prediction request (no `verb`, or `"verb":"predict"`).
    Predict(PredictRequest),
    /// An incremental prediction request (`"verb":"predict_delta"`).
    PredictDelta(PredictDeltaRequest),
    /// A multi-schedule sweep request (`"verb":"sweep"`).
    Sweep(SweepRequest),
    /// A service-counter snapshot request (`"verb":"stats"`).
    Stats {
        /// Client-chosen correlation id, echoed in the response.
        id: Option<u64>,
    },
    /// A hosted-model listing request (`"verb":"models"`).
    Models {
        /// Client-chosen correlation id, echoed in the response.
        id: Option<u64>,
    },
    /// A hot model load (`"verb":"load_model"`).
    LoadModel(LoadModelRequest),
    /// A hot model unload (`"verb":"unload_model"`).
    UnloadModel(UnloadModelRequest),
    /// A workload registration (`"verb":"register_workload"`).
    RegisterWorkload(RegisterWorkloadRequest),
    /// A netlist upload (`"verb":"load_design"`).
    LoadDesign(LoadDesignRequest),
    /// A workload-library listing request (`"verb":"workloads"`).
    Workloads {
        /// Client-chosen correlation id, echoed in the response.
        id: Option<u64>,
    },
    /// A shard-topology request (`"verb":"shard_map"`). A plain serve
    /// process answers with its own shard id and an empty ring; the
    /// `atlas-shard` proxy answers with every backend shard.
    ShardMap {
        /// Client-chosen correlation id, echoed in the response.
        id: Option<u64>,
    },
}

/// The reply to a `stats` verb: aggregate service counters, including
/// each cache's occupancy and admission budget (bytes for the embedding
/// cache, entries for the design cache), plus the same breakdown for
/// every hosted model.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StatsResponse {
    /// Echo of the request id.
    pub id: Option<u64>,
    /// Always `"stats"`, so clients can discriminate response lines.
    pub verb: String,
    /// Requests answered (including errors), across all models.
    pub requests: u64,
    /// Requests that returned an error, across all models.
    pub errors: u64,
    /// Cold embeddings actually computed (each counts one full
    /// simulate + encode pipeline), across all models.
    pub embeddings_computed: u64,
    /// Requests that coalesced onto another request's in-flight
    /// computation instead of recomputing (single-flight), across all
    /// models.
    pub coalesced_requests: u64,
    /// Aggregate embedding-cache counters; `weight`/`budget` are
    /// **bytes**, summed over models (each model has its own cache).
    pub embedding_cache: CacheStats,
    /// Aggregate design-cache counters; `weight`/`budget` are
    /// **entries**, summed over models.
    pub design_cache: CacheStats,
    /// Per-model breakdown: every hosted model's request counters and
    /// cache occupancy, sorted by serving name.
    pub models: Vec<ModelStats>,
    /// This process's shard id (`--shard-id`), absent when unsharded —
    /// lets operators attribute stats lines in a scale-out deployment.
    pub shard_id: Option<u32>,
    /// Reactor threads serving the listen address. `0` over stdio
    /// (there is no reactor).
    pub reactor_threads: usize,
    /// Per-reactor connection and back-pressure counters, in reactor
    /// order — accept-skew across reactors at a glance. Empty over
    /// stdio.
    pub reactors: Vec<ReactorStats>,
}

/// Build the `stats` verb reply from a service counter snapshot. The
/// reactor fields (`reactor_threads`, `reactors`) start empty — the
/// service knows nothing about the I/O plane; the reactor frontend
/// fills them in before rendering.
pub fn stats_response(id: Option<u64>, stats: &ServiceStats) -> StatsResponse {
    StatsResponse {
        id,
        verb: "stats".to_owned(),
        requests: stats.requests,
        errors: stats.errors,
        embeddings_computed: stats.embeddings_computed,
        coalesced_requests: stats.coalesced_requests,
        embedding_cache: stats.embedding_cache,
        design_cache: stats.design_cache,
        models: stats.models.clone(),
        shard_id: stats.shard_id,
        reactor_threads: 0,
        reactors: Vec::new(),
    }
}

/// One shard of a scale-out deployment, as reported by `shard_map`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardInfo {
    /// Shard id (the backend's `--shard-id`).
    pub id: u32,
    /// Backend address the proxy routes this shard's keys to.
    pub addr: String,
    /// Virtual nodes this shard occupies on the hash ring.
    pub vnodes: usize,
}

/// The reply to a `shard_map` verb: the process's place in (or view of)
/// the shard topology.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardMapResponse {
    /// Echo of the request id.
    pub id: Option<u64>,
    /// Always `"shard_map"`.
    pub verb: String,
    /// This process's shard id, when it is a shard (`--shard-id`).
    /// Absent on the proxy and on unsharded serve processes.
    pub shard_id: Option<u32>,
    /// The routing ring: every backend shard, sorted by id. Empty on a
    /// plain serve process (it routes nothing).
    pub shards: Vec<ShardInfo>,
}

/// The reply to a `models` verb: every hosted model and the default.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModelsResponse {
    /// Echo of the request id.
    pub id: Option<u64>,
    /// Always `"models"`.
    pub verb: String,
    /// Serving name requests without a `model` field route to.
    pub default_model: String,
    /// Every hosted model, sorted by serving name.
    pub models: Vec<ModelInfo>,
}

/// Build the `models` verb reply.
pub fn models_response(
    id: Option<u64>,
    default_model: impl Into<String>,
    models: Vec<ModelInfo>,
) -> ModelsResponse {
    ModelsResponse {
        id,
        verb: "models".to_owned(),
        default_model: default_model.into(),
        models,
    }
}

/// The reply to a successful `load_model` verb: the freshly hosted
/// model, already routable and visible to `models`/`stats`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LoadModelResponse {
    /// Echo of the request id.
    pub id: Option<u64>,
    /// Always `"load_model"`.
    pub verb: String,
    /// The loaded model's identity (serving name, format version,
    /// config fingerprint).
    pub model: ModelInfo,
    /// The (unchanged) default serving name, for client convenience.
    pub default_model: String,
}

/// The reply to a successful `unload_model` verb.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct UnloadModelResponse {
    /// Echo of the request id.
    pub id: Option<u64>,
    /// Always `"unload_model"`.
    pub verb: String,
    /// Serving name that was unloaded (no longer routable).
    pub name: String,
}

/// The reply to a successful `register_workload` verb.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegisterWorkloadResponse {
    /// Echo of the request id.
    pub id: Option<u64>,
    /// Always `"register_workload"`.
    pub verb: String,
    /// The stored schedule: name, phase count, fingerprint.
    pub workload: RegisteredWorkload,
    /// Whether an existing schedule under this name was replaced.
    /// Replacement is safe: results are cached under the schedule
    /// fingerprint, so entries for the old schedule can never answer
    /// requests for the new one.
    pub replaced: bool,
}

/// The reply to a successful `load_design` verb.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LoadDesignResponse {
    /// Echo of the request id.
    pub id: Option<u64>,
    /// Always `"load_design"`.
    pub verb: String,
    /// The stored design: name, size, and content fingerprint.
    pub design: DesignInfo,
}

/// The reply to a `workloads` verb: the preset vocabulary plus every
/// server-registered schedule.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkloadsResponse {
    /// Echo of the request id.
    pub id: Option<u64>,
    /// Always `"workloads"`.
    pub verb: String,
    /// Built-in preset names (usable in the `workload` field).
    pub presets: Vec<String>,
    /// Registered schedules (usable in the `workload_name` field),
    /// sorted by name.
    pub workloads: Vec<RegisteredWorkload>,
}

/// Build the `workloads` verb reply.
pub fn workloads_response(
    id: Option<u64>,
    workloads: Vec<RegisteredWorkload>,
) -> WorkloadsResponse {
    WorkloadsResponse {
        id,
        verb: "workloads".to_owned(),
        presets: atlas_sim::PhasedWorkload::preset_names()
            .iter()
            .map(|&s| s.to_owned())
            .collect(),
        workloads,
    }
}

/// Per-group rollup of a predicted trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroupSummary {
    /// Power group name (`combinational`, `register`, `clock_tree`,
    /// `memory`).
    pub group: String,
    /// Mean watts over the trace.
    pub mean_w: f64,
    /// Peak single-cycle watts.
    pub peak_w: f64,
}

/// A successful prediction, summarized per power group plus the per-cycle
/// total series (the quantity peak-power / `L·di/dt` analyses need).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PredictResponse {
    /// Echo of the request id.
    pub id: Option<u64>,
    /// Serving name of the model that answered — the request's `model`
    /// field when present, else the service's default model.
    pub model: String,
    /// Echo of the design name.
    pub design: String,
    /// Workload label: the preset name, the inline schedule's `workload`
    /// label, or the `workload_name` the request referenced.
    pub workload: String,
    /// Echo of the cycle count.
    pub cycles: usize,
    /// Whether the (design, workload, cycles) embeddings were served from
    /// cache (stage one skipped entirely).
    pub cache_hit: bool,
    /// Whether the design's netlist + sub-module data came from cache
    /// (relevant when `cache_hit` is false: same design, new workload).
    pub design_cache_hit: bool,
    /// Server-side latency of this request in milliseconds.
    pub latency_ms: f64,
    /// Mean total watts over the trace.
    pub mean_total_w: f64,
    /// Peak single-cycle total watts.
    pub peak_total_w: f64,
    /// Per-group rollups, in `PowerGroup::ALL` order.
    pub groups: Vec<GroupSummary>,
    /// Per-cycle design-total watts (all groups).
    pub per_cycle_total_w: Vec<f64>,
}

/// The reply to a `predict_delta` verb: the same prediction a full
/// `predict` of the target would return (bit-identical), plus the reuse
/// accounting of the delta path. Kept flat — no nested objects — so the
/// shard proxy's id rewriting sees exactly one `id`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PredictDeltaResponse {
    /// Echo of the request id.
    pub id: Option<u64>,
    /// Always `"predict_delta"`.
    pub verb: String,
    /// Serving name of the model that answered.
    pub model: String,
    /// Echo of the target design name.
    pub design: String,
    /// Effective target workload label.
    pub workload: String,
    /// Echo of the target cycle count.
    pub cycles: usize,
    /// Whether the base trace's embeddings were found in cache. `false`
    /// means the edit description pointed at nothing cached and the
    /// request degenerated to a full cold `predict` (still correct).
    pub base_hit: bool,
    /// Whether the *target* key itself was already cached (the delta
    /// machinery was skipped entirely — nothing to recompute).
    pub cache_hit: bool,
    /// Whether the design's netlist + sub-module data came from cache.
    pub design_cache_hit: bool,
    /// Server-side latency of this request in milliseconds.
    pub latency_ms: f64,
    /// Unique toggle patterns copied from the base (see
    /// [`atlas_core::DeltaStats`]). Zero when `base_hit` is false or
    /// `cache_hit` is true.
    pub reused_patterns: usize,
    /// Unique toggle patterns that ran the encoder.
    pub recomputed_patterns: usize,
    /// (sub-module × cycle) items answered from reused rows.
    pub reused_cycles: usize,
    /// (sub-module × cycle) items freshly encoded.
    pub recomputed_cycles: usize,
    /// Mean total watts over the trace.
    pub mean_total_w: f64,
    /// Peak single-cycle total watts.
    pub peak_total_w: f64,
    /// Per-group rollups, in `PowerGroup::ALL` order.
    pub groups: Vec<GroupSummary>,
    /// Per-cycle design-total watts (all groups).
    pub per_cycle_total_w: Vec<f64>,
}

/// Assemble a `predict_delta` reply from the equivalent full-predict
/// summary plus the delta path's accounting.
pub fn delta_response(
    prediction: PredictResponse,
    base_hit: bool,
    stats: &atlas_core::DeltaStats,
) -> PredictDeltaResponse {
    PredictDeltaResponse {
        id: prediction.id,
        verb: "predict_delta".to_owned(),
        model: prediction.model,
        design: prediction.design,
        workload: prediction.workload,
        cycles: prediction.cycles,
        base_hit,
        cache_hit: prediction.cache_hit,
        design_cache_hit: prediction.design_cache_hit,
        latency_ms: prediction.latency_ms,
        reused_patterns: stats.reused_patterns,
        recomputed_patterns: stats.recomputed_patterns,
        reused_cycles: stats.reused_cycles,
        recomputed_cycles: stats.recomputed_cycles,
        mean_total_w: prediction.mean_total_w,
        peak_total_w: prediction.peak_total_w,
        groups: prediction.groups,
        per_cycle_total_w: prediction.per_cycle_total_w,
    }
}

/// Render one `predict_delta` response line (no trailing newline).
pub fn render_delta_result(
    result: &Result<PredictDeltaResponse, (Option<u64>, ServeError)>,
) -> String {
    let rendered = match result {
        Ok(response) => serde_json::to_string(response),
        Err((id, error)) => serde_json::to_string(&ErrorResponse {
            id: *id,
            error: error.to_string(),
            kind: error.kind().to_owned(),
        }),
    };
    rendered.unwrap_or_else(|e| format!(r#"{{"error":"render failure: {e}","kind":"internal"}}"#))
}

/// First frame of a `sweep` reply: announces how many `item` results
/// will follow. Every sweep frame carries the request `id`, the verb,
/// and a `frame` discriminator, so interleaved frames of concurrent
/// sweeps on one connection always correlate.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SweepStartFrame {
    /// Echo of the request id.
    pub id: Option<u64>,
    /// Always `"sweep"`.
    pub verb: String,
    /// Always `"start"`.
    pub frame: String,
    /// Number of schedules that will be evaluated.
    pub items: usize,
}

/// Per-schedule summary frame of a `sweep` reply (everything of a
/// predict reply except the per-cycle series, which streams separately
/// in bounded `series` frames).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepItemFrame {
    /// Echo of the request id.
    pub id: Option<u64>,
    /// Always `"sweep"`.
    pub verb: String,
    /// Always `"item"`.
    pub frame: String,
    /// Index into the request's `items`.
    pub item: usize,
    /// Effective workload label of this item.
    pub workload: String,
    /// Whether this item's embeddings were served from cache.
    pub cache_hit: bool,
    /// Whether the design came from cache (shared across items).
    pub design_cache_hit: bool,
    /// Mean total watts over the trace.
    pub mean_total_w: f64,
    /// Peak single-cycle total watts.
    pub peak_total_w: f64,
    /// Per-group rollups, in `PowerGroup::ALL` order.
    pub groups: Vec<GroupSummary>,
}

/// One bounded chunk of an item's per-cycle total series. Chunks arrive
/// in offset order within an item; items may interleave.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepSeriesFrame {
    /// Echo of the request id.
    pub id: Option<u64>,
    /// Always `"sweep"`.
    pub verb: String,
    /// Always `"series"`.
    pub frame: String,
    /// Index into the request's `items`.
    pub item: usize,
    /// Cycle offset of the first value in this chunk.
    pub offset: usize,
    /// Total cycles of the item's series (same every chunk).
    pub total_cycles: usize,
    /// The chunk's per-cycle design-total watts.
    pub per_cycle_total_w: Vec<f64>,
}

/// Per-item failure frame of a `sweep` reply: one bad schedule fails
/// alone; the sweep continues and still ends with an `end` frame.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SweepErrorFrame {
    /// Echo of the request id.
    pub id: Option<u64>,
    /// Always `"sweep"`.
    pub verb: String,
    /// Always `"error"`.
    pub frame: String,
    /// Index into the request's `items`.
    pub item: usize,
    /// Human-readable description.
    pub error: String,
    /// Stable machine-readable class ([`ServeError::kind`]).
    pub kind: String,
}

/// Final frame of a `sweep` reply.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepEndFrame {
    /// Echo of the request id.
    pub id: Option<u64>,
    /// Always `"sweep"`.
    pub verb: String,
    /// Always `"end"`.
    pub frame: String,
    /// Number of schedules evaluated (successes + failures).
    pub items: usize,
    /// How many items failed (each got an `error` frame).
    pub errors: usize,
    /// Server-side latency of the whole sweep in milliseconds.
    pub latency_ms: f64,
}

/// The error half of the wire protocol.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ErrorResponse {
    /// Echo of the request id, when the request parsed far enough.
    pub id: Option<u64>,
    /// Human-readable description.
    pub error: String,
    /// Stable machine-readable class ([`ServeError::kind`]).
    pub kind: String,
}

/// Wire name of a power group.
pub fn group_name(group: PowerGroup) -> &'static str {
    match group {
        PowerGroup::Combinational => "combinational",
        PowerGroup::Register => "register",
        PowerGroup::ClockTree => "clock_tree",
        PowerGroup::Memory => "memory",
    }
}

/// Summarize a predicted trace into a response body. `model` is the
/// resolved serving name and `workload` the effective workload label
/// (which differs from `req.workload` for `workload_name` requests).
pub fn summarize(
    req: &PredictRequest,
    model: &str,
    workload: &str,
    trace: &PowerTrace,
    cache_hit: bool,
    design_cache_hit: bool,
    latency_ms: f64,
) -> PredictResponse {
    let totals = trace.total_series();
    let mean_total_w = mean(&totals);
    let peak_total_w = totals.iter().fold(0.0f64, |a, &b| a.max(b));
    let groups = PowerGroup::ALL
        .iter()
        .map(|&g| {
            let series = trace.group_series(g);
            GroupSummary {
                group: group_name(g).to_owned(),
                mean_w: mean(&series),
                peak_w: series.iter().fold(0.0f64, |a, &b| a.max(b)),
            }
        })
        .collect();
    PredictResponse {
        id: req.id,
        model: model.to_owned(),
        design: req.design.clone(),
        workload: workload.to_owned(),
        cycles: trace.cycles(),
        cache_hit,
        design_cache_hit,
        latency_ms,
        mean_total_w,
        peak_total_w,
        groups,
        per_cycle_total_w: totals,
    }
}

fn mean(series: &[f64]) -> f64 {
    if series.is_empty() {
        0.0
    } else {
        series.iter().sum::<f64>() / series.len() as f64
    }
}

/// Parse one request line.
///
/// # Errors
///
/// [`ServeError::InvalidRequest`] on malformed JSON or a structural
/// mismatch.
pub fn parse_request(line: &str) -> Result<PredictRequest, ServeError> {
    serde_json::from_str(line.trim())
        .map_err(|e| ServeError::InvalidRequest(format!("bad request line: {e}")))
}

/// Parse one protocol line, dispatching on the optional `verb` field.
///
/// # Errors
///
/// [`ServeError::InvalidRequest`] on malformed JSON, an unknown verb, or
/// a structural mismatch.
pub fn parse_line(line: &str) -> Result<RequestLine, ServeError> {
    let bad = |msg: String| ServeError::InvalidRequest(msg);
    let value = serde_json::from_str_value(line.trim())
        .map_err(|e| bad(format!("bad request line: {e}")))?;
    let Some(map) = value.as_map() else {
        return Err(bad(format!(
            "request line must be a JSON object, found {}",
            value.kind()
        )));
    };
    let verb = match map.iter().find(|(k, _)| k == "verb") {
        None => None,
        Some((_, v)) => Some(
            v.as_str()
                .ok_or_else(|| bad(format!("`verb` must be a string, found {}", v.kind())))?,
        ),
    };
    let id_of = |verb: &str| {
        serde::de::field::<Option<u64>>(map, "id", verb)
            .map_err(|e| bad(format!("bad {verb} line: {e}")))
    };
    match verb {
        None | Some("predict") => PredictRequest::from_value(&value)
            .map(RequestLine::Predict)
            .map_err(|e| bad(format!("bad request line: {e}"))),
        Some("predict_delta") => PredictDeltaRequest::from_value(&value)
            .map(RequestLine::PredictDelta)
            .map_err(|e| bad(format!("bad predict_delta line: {e}"))),
        Some("sweep") => SweepRequest::from_value(&value)
            .map(RequestLine::Sweep)
            .map_err(|e| bad(format!("bad sweep line: {e}"))),
        Some("stats") => Ok(RequestLine::Stats {
            id: id_of("stats")?,
        }),
        Some("models") => Ok(RequestLine::Models {
            id: id_of("models")?,
        }),
        Some("load_model") => LoadModelRequest::from_value(&value)
            .map(RequestLine::LoadModel)
            .map_err(|e| bad(format!("bad load_model line: {e}"))),
        Some("unload_model") => UnloadModelRequest::from_value(&value)
            .map(RequestLine::UnloadModel)
            .map_err(|e| bad(format!("bad unload_model line: {e}"))),
        Some("workloads") => Ok(RequestLine::Workloads {
            id: id_of("workloads")?,
        }),
        Some("shard_map") => Ok(RequestLine::ShardMap {
            id: id_of("shard_map")?,
        }),
        Some("register_workload") => RegisterWorkloadRequest::from_value(&value)
            .map(RequestLine::RegisterWorkload)
            .map_err(|e| bad(format!("bad register_workload line: {e}"))),
        Some("load_design") => LoadDesignRequest::from_value(&value)
            .map(RequestLine::LoadDesign)
            .map_err(|e| bad(format!("bad load_design line: {e}"))),
        Some(other) => Err(bad(format!("unknown verb `{other}`"))),
    }
}

/// Best-effort extraction of the `id` field from a request line that
/// failed to parse, so even error responses correlate when possible.
pub fn salvage_id(line: &str) -> Option<u64> {
    let value = serde_json::from_str_value(line.trim()).ok()?;
    let map = value.as_map()?;
    serde::de::field::<Option<u64>>(map, "id", "request").ok()?
}

/// Render one verb-response line (no trailing newline) — the `stats`,
/// `models`, `register_workload`, and `workloads` replies all go through
/// here.
pub fn render_line<T: Serialize>(response: &T) -> String {
    serde_json::to_string(response)
        .unwrap_or_else(|e| format!(r#"{{"error":"render failure: {e}","kind":"internal"}}"#))
}

/// Render one `stats` response line (no trailing newline).
pub fn render_stats(response: &StatsResponse) -> String {
    render_line(response)
}

/// Render one response line (no trailing newline).
pub fn render_result(result: &Result<PredictResponse, (Option<u64>, ServeError)>) -> String {
    let rendered = match result {
        Ok(response) => serde_json::to_string(response),
        Err((id, error)) => serde_json::to_string(&ErrorResponse {
            id: *id,
            error: error.to_string(),
            kind: error.kind().to_owned(),
        }),
    };
    rendered.unwrap_or_else(|e| format!(r#"{{"error":"render failure: {e}","kind":"internal"}}"#))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        let req = PredictRequest {
            id: Some(7),
            model: Some("atlas-v2".into()),
            design: "C2".into(),
            workload: Some("W1".into()),
            workload_name: None,
            cycles: 64,
            phases: None,
        };
        let line = serde_json::to_string(&req).expect("serializes");
        assert_eq!(parse_request(&line).expect("parses"), req);
        // The builder spells the same thing.
        let mut built = PredictRequest::new("C2", "W1", 64).on_model("atlas-v2");
        built.id = Some(7);
        assert_eq!(built, req);
    }

    #[test]
    fn workload_name_requests_parse_without_a_workload_field() {
        // The shape clients send: no `workload`, just `workload_name`.
        let hand = r#"{"id":9,"design":"C4","workload_name":"bursty","cycles":32}"#;
        let parsed = parse_request(hand).expect("parses");
        assert_eq!(parsed.workload, None);
        assert_eq!(parsed.workload_name.as_deref(), Some("bursty"));
        assert_eq!(parsed.model, None);
        assert_eq!(parsed, {
            let mut req = PredictRequest::with_workload_name("C4", "bursty", 32);
            req.id = Some(9);
            req
        });
        // Model-addressed, hand-written.
        let hand = r#"{"design":"C2","workload":"W1","cycles":8,"model":"beta"}"#;
        assert_eq!(
            parse_request(hand).expect("parses").model.as_deref(),
            Some("beta")
        );
    }

    #[test]
    fn inline_schedule_roundtrip() {
        let req = PredictRequest::with_phases(
            "C2",
            "bursty",
            32,
            vec![
                WorkloadPhase {
                    activity: 0.45,
                    min_len: 3,
                    max_len: 9,
                },
                WorkloadPhase {
                    activity: 0.05,
                    min_len: 10,
                    max_len: 20,
                },
            ],
        );
        let line = serde_json::to_string(&req).expect("serializes");
        assert_eq!(parse_request(&line).expect("parses"), req);
        // Through the verb dispatcher too.
        assert_eq!(
            parse_line(&line).expect("parses"),
            RequestLine::Predict(req.clone())
        );
        // And from hand-written JSON, the shape clients will send.
        let hand = r#"{"design":"C2","workload":"bursty","cycles":32,
            "phases":[{"activity":0.45,"min_len":3,"max_len":9},
                      {"activity":0.05,"min_len":10,"max_len":20}]}"#;
        let parsed = parse_request(hand).expect("parses");
        assert_eq!(parsed.phases, req.phases);
    }

    #[test]
    fn verb_dispatch() {
        // No verb: predict.
        assert!(matches!(
            parse_line(r#"{"design":"C2","workload":"W1","cycles":8}"#),
            Ok(RequestLine::Predict(_))
        ));
        // Explicit predict verb.
        assert!(matches!(
            parse_line(r#"{"verb":"predict","design":"C2","workload":"W1","cycles":8}"#),
            Ok(RequestLine::Predict(_))
        ));
        // Stats verb, with and without id.
        assert_eq!(
            parse_line(r#"{"verb":"stats","id":9}"#),
            Ok(RequestLine::Stats { id: Some(9) })
        );
        assert_eq!(
            parse_line(r#"{"verb":"stats"}"#),
            Ok(RequestLine::Stats { id: None })
        );
        // Catalog and workload-library verbs.
        assert_eq!(
            parse_line(r#"{"verb":"models","id":4}"#),
            Ok(RequestLine::Models { id: Some(4) })
        );
        assert_eq!(
            parse_line(r#"{"verb":"workloads"}"#),
            Ok(RequestLine::Workloads { id: None })
        );
        assert_eq!(
            parse_line(r#"{"verb":"shard_map","id":11}"#),
            Ok(RequestLine::ShardMap { id: Some(11) })
        );
        assert_eq!(
            parse_line(
                r#"{"verb":"register_workload","id":5,"name":"bursty",
                    "phases":[{"activity":0.5,"min_len":2,"max_len":4}]}"#
            ),
            Ok(RequestLine::RegisterWorkload(RegisterWorkloadRequest {
                id: Some(5),
                name: "bursty".into(),
                phases: vec![WorkloadPhase {
                    activity: 0.5,
                    min_len: 2,
                    max_len: 4,
                }],
            }))
        );
        // A registration without a name or phases is a typed error.
        assert!(matches!(
            parse_line(r#"{"verb":"register_workload","id":5}"#),
            Err(ServeError::InvalidRequest(_))
        ));
        // Unknown verb and non-string verb are typed errors.
        assert!(matches!(
            parse_line(r#"{"verb":"flush"}"#),
            Err(ServeError::InvalidRequest(msg)) if msg.contains("unknown verb")
        ));
        assert!(matches!(
            parse_line(r#"{"verb":3}"#),
            Err(ServeError::InvalidRequest(_))
        ));
        assert!(matches!(
            parse_line("[1,2]"),
            Err(ServeError::InvalidRequest(_))
        ));
        // Error responses can still correlate when the id parsed.
        assert_eq!(salvage_id(r#"{"id":6,"verb":"flush"}"#), Some(6));
        assert_eq!(salvage_id(r#"{"verb":"flush"}"#), None);
        assert_eq!(salvage_id("not json"), None);
    }

    #[test]
    fn predict_delta_lines_parse_and_default_their_base() {
        // Appended-cycles edit: base differs only in cycles.
        let line = r#"{"verb":"predict_delta","id":3,"design":"C2","workload":"W1",
            "cycles":64,"base":{"cycles":48}}"#;
        let Ok(RequestLine::PredictDelta(req)) = parse_line(line) else {
            panic!("predict_delta must parse");
        };
        assert_eq!(req.target(), {
            let mut t = PredictRequest::new("C2", "W1", 64);
            t.id = Some(3);
            t
        });
        let base = req.base_request();
        assert_eq!(base.design, "C2");
        assert_eq!(base.cycles, 48);
        assert_eq!(base.workload.as_deref(), Some("W1"));
        // Design edit: base differs only in design; workload inherited.
        let line = r#"{"verb":"predict_delta","design":"v2","workload_name":"nightly",
            "cycles":32,"base":{"design":"v1"},"changed_submodules":[1]}"#;
        let Ok(RequestLine::PredictDelta(req)) = parse_line(line) else {
            panic!("predict_delta must parse");
        };
        assert_eq!(req.changed_submodules, Some(vec![1]));
        let base = req.base_request();
        assert_eq!(base.design, "v1");
        assert_eq!(base.workload_name.as_deref(), Some("nightly"));
        assert_eq!(base.cycles, 32);
        // No base at all: the target's own key.
        let line = r#"{"verb":"predict_delta","design":"C2","workload":"W1","cycles":8}"#;
        let Ok(RequestLine::PredictDelta(req)) = parse_line(line) else {
            panic!("predict_delta must parse");
        };
        assert_eq!(req.base_request(), req.target());
        // A base that states any workload field replaces the whole spec.
        let line = r#"{"verb":"predict_delta","design":"C2","workload_name":"new",
            "cycles":8,"base":{"workload_name":"old"}}"#;
        let Ok(RequestLine::PredictDelta(req)) = parse_line(line) else {
            panic!("predict_delta must parse");
        };
        assert_eq!(req.base_request().workload_name.as_deref(), Some("old"));
        assert_eq!(req.base_request().workload, None);
        // Malformed: missing cycles is a typed error.
        assert!(matches!(
            parse_line(r#"{"verb":"predict_delta","design":"C2","workload":"W1"}"#),
            Err(ServeError::InvalidRequest(_))
        ));
    }

    #[test]
    fn sweep_lines_parse() {
        let line = r#"{"verb":"sweep","id":4,"design":"C2","cycles":16,
            "items":[{"workload":"W1"},
                     {"workload_name":"nightly"},
                     {"workload":"burst","phases":[{"activity":0.4,"min_len":2,"max_len":5}]}],
            "chunk_cycles":8}"#;
        let Ok(RequestLine::Sweep(req)) = parse_line(line) else {
            panic!("sweep must parse");
        };
        assert_eq!(req.items.len(), 3);
        assert_eq!(req.items[0].workload.as_deref(), Some("W1"));
        assert_eq!(req.items[1].workload_name.as_deref(), Some("nightly"));
        assert_eq!(req.items[2].phases.as_ref().map(Vec::len), Some(1));
        assert_eq!(req.chunk_cycles, Some(8));
        // Missing items is a typed error.
        assert!(matches!(
            parse_line(r#"{"verb":"sweep","design":"C2","cycles":16}"#),
            Err(ServeError::InvalidRequest(_))
        ));
    }

    #[test]
    fn delta_and_sweep_frames_roundtrip() {
        let stats = atlas_core::DeltaStats {
            reused_patterns: 10,
            recomputed_patterns: 2,
            reused_cycles: 50,
            recomputed_cycles: 14,
        };
        let mut trace = PowerTrace::new("d".into(), "w".into(), 2, 1);
        trace.add(0, 0, PowerGroup::Combinational.index(), 1.0);
        let req = PredictRequest::new("d", "w", 2);
        let pred = summarize(&req, "default", "w", &trace, false, true, 1.5);
        let resp = delta_response(pred, true, &stats);
        assert_eq!(resp.verb, "predict_delta");
        assert!(resp.base_hit);
        assert_eq!(resp.reused_patterns, 10);
        assert_eq!(resp.recomputed_cycles, 14);
        let line = render_delta_result(&Ok(resp.clone()));
        let back: PredictDeltaResponse = serde_json::from_str(&line).expect("parses");
        assert_eq!(back, resp);
        // Error rendering preserves the id and kind.
        let line = render_delta_result(&Err((Some(8), ServeError::UnknownDesign("v9".into()))));
        let err: ErrorResponse = serde_json::from_str(&line).expect("parses");
        assert_eq!(err.id, Some(8));
        assert_eq!(err.kind, "unknown_design");

        let start = SweepStartFrame {
            id: Some(4),
            verb: "sweep".into(),
            frame: "start".into(),
            items: 3,
        };
        let back: SweepStartFrame = serde_json::from_str(&render_line(&start)).expect("parses");
        assert_eq!(back, start);
        let series = SweepSeriesFrame {
            id: Some(4),
            verb: "sweep".into(),
            frame: "series".into(),
            item: 1,
            offset: 8,
            total_cycles: 16,
            per_cycle_total_w: vec![1.0, 2.0],
        };
        let back: SweepSeriesFrame = serde_json::from_str(&render_line(&series)).expect("parses");
        assert_eq!(back, series);
        let end = SweepEndFrame {
            id: Some(4),
            verb: "sweep".into(),
            frame: "end".into(),
            items: 3,
            errors: 1,
            latency_ms: 2.5,
        };
        let back: SweepEndFrame = serde_json::from_str(&render_line(&end)).expect("parses");
        assert_eq!(back, end);
    }

    #[test]
    fn load_design_lines_parse() {
        assert_eq!(
            parse_line(
                r#"{"verb":"load_design","id":9,"name":"up","verilog":"module x (n0);\n  input n0;\nendmodule\n"}"#
            ),
            Ok(RequestLine::LoadDesign(LoadDesignRequest {
                id: Some(9),
                name: "up".into(),
                verilog: "module x (n0);\n  input n0;\nendmodule\n".into(),
            }))
        );
        // An upload without a name or body is a typed error.
        assert!(matches!(
            parse_line(r#"{"verb":"load_design","id":9}"#),
            Err(ServeError::InvalidRequest(_))
        ));
    }

    #[test]
    fn stats_response_roundtrip() {
        let embedding_cache = CacheStats {
            hits: 6,
            misses: 5,
            len: 2,
            weight: 123_456,
            budget: 1_000_000,
        };
        let design_cache = CacheStats {
            hits: 7,
            misses: 1,
            len: 1,
            weight: 1,
            budget: 16,
        };
        let stats = ServiceStats {
            requests: 11,
            errors: 2,
            embeddings_computed: 3,
            coalesced_requests: 4,
            embedding_cache,
            design_cache,
            shard_id: Some(3),
            models: vec![ModelStats {
                model: "alpha".into(),
                precision: "f64".into(),
                requests: 11,
                errors: 2,
                embeddings_computed: 3,
                coalesced_requests: 4,
                quota: 4,
                queued: 9,
                rejected_quota: 1,
                embedding_cache,
                design_cache,
            }],
        };
        let resp = stats_response(Some(9), &stats);
        assert_eq!(resp.verb, "stats");
        assert_eq!(resp.shard_id, Some(3));
        assert_eq!(resp.reactor_threads, 0);
        assert!(resp.reactors.is_empty());
        assert_eq!(resp.embedding_cache.budget, 1_000_000);
        assert_eq!(resp.models.len(), 1);
        assert_eq!(resp.models[0].model, "alpha");
        assert_eq!(resp.models[0].quota, 4);
        assert_eq!(resp.models[0].queued, 9);
        assert_eq!(resp.models[0].rejected_quota, 1);
        let line = render_stats(&resp);
        let back: StatsResponse = serde_json::from_str(&line).expect("parses");
        assert_eq!(back, resp);
    }

    #[test]
    fn control_plane_verbs_parse_and_roundtrip() {
        // The hot-reload verbs parse with their ids.
        assert_eq!(
            parse_line(r#"{"verb":"load_model","id":7,"name":"canary","path":"/m/v2.atlas.json"}"#),
            Ok(RequestLine::LoadModel(LoadModelRequest {
                id: Some(7),
                name: "canary".into(),
                path: "/m/v2.atlas.json".into(),
            }))
        );
        assert_eq!(
            parse_line(r#"{"verb":"unload_model","name":"canary"}"#),
            Ok(RequestLine::UnloadModel(UnloadModelRequest {
                id: None,
                name: "canary".into(),
            }))
        );
        // Missing required fields are typed errors.
        assert!(matches!(
            parse_line(r#"{"verb":"load_model","id":7,"name":"canary"}"#),
            Err(ServeError::InvalidRequest(_))
        ));
        assert!(matches!(
            parse_line(r#"{"verb":"unload_model","id":8}"#),
            Err(ServeError::InvalidRequest(_))
        ));

        // The responses render and parse back.
        let loaded = LoadModelResponse {
            id: Some(7),
            verb: "load_model".into(),
            model: ModelInfo {
                name: "canary".into(),
                format_version: 1,
                config_fingerprint: 0xFEED,
            },
            default_model: "stable".into(),
        };
        let line = render_line(&loaded);
        let back: LoadModelResponse = serde_json::from_str(&line).expect("parses");
        assert_eq!(back, loaded);
        let unloaded = UnloadModelResponse {
            id: None,
            verb: "unload_model".into(),
            name: "canary".into(),
        };
        let line = render_line(&unloaded);
        let back: UnloadModelResponse = serde_json::from_str(&line).expect("parses");
        assert_eq!(back, unloaded);
    }

    #[test]
    fn catalog_and_workload_responses_roundtrip() {
        let models = models_response(
            Some(2),
            "alpha",
            vec![
                ModelInfo {
                    name: "alpha".into(),
                    format_version: 1,
                    config_fingerprint: 0xDEAD,
                },
                ModelInfo {
                    name: "beta".into(),
                    format_version: 1,
                    config_fingerprint: 0xBEEF,
                },
            ],
        );
        assert_eq!(models.verb, "models");
        assert_eq!(models.default_model, "alpha");
        let line = render_line(&models);
        let back: ModelsResponse = serde_json::from_str(&line).expect("parses");
        assert_eq!(back, models);

        let workloads = workloads_response(
            None,
            vec![RegisteredWorkload {
                name: "bursty".into(),
                phases: 2,
                fingerprint: 99,
            }],
        );
        assert_eq!(workloads.verb, "workloads");
        assert_eq!(workloads.presets, vec!["W1".to_owned(), "W2".to_owned()]);
        let line = render_line(&workloads);
        let back: WorkloadsResponse = serde_json::from_str(&line).expect("parses");
        assert_eq!(back, workloads);

        let registered = RegisterWorkloadResponse {
            id: Some(3),
            verb: "register_workload".into(),
            workload: RegisteredWorkload {
                name: "bursty".into(),
                phases: 2,
                fingerprint: 99,
            },
            replaced: true,
        };
        let line = render_line(&registered);
        let back: RegisterWorkloadResponse = serde_json::from_str(&line).expect("parses");
        assert_eq!(back, registered);
    }

    #[test]
    fn request_without_id_parses() {
        let req =
            parse_request(r#"{"id":null,"design":"C4","workload":"W2","cycles":16}"#).expect("ok");
        assert_eq!(req.id, None);
        assert_eq!(req.design, "C4");
        // The id field may be omitted entirely (it is optional).
        let req = parse_request(r#"{"design":"C2","workload":"W1","cycles":8}"#).expect("ok");
        assert_eq!(req.id, None);
        assert_eq!(req.cycles, 8);
    }

    #[test]
    fn malformed_requests_are_typed_errors() {
        assert!(matches!(
            parse_request("not json"),
            Err(ServeError::InvalidRequest(_))
        ));
        assert!(matches!(
            parse_request(r#"{"design":"C2"}"#),
            Err(ServeError::InvalidRequest(_))
        ));
    }

    #[test]
    fn summaries_roll_up_the_trace() {
        let mut trace = PowerTrace::new("d".into(), "w".into(), 2, 1);
        trace.add(0, 0, PowerGroup::Combinational.index(), 1.0);
        trace.add(1, 0, PowerGroup::ClockTree.index(), 3.0);
        let req = PredictRequest::new("d", "w", 2);
        let resp = summarize(&req, "default", "w", &trace, true, true, 0.5);
        assert_eq!(resp.model, "default");
        assert_eq!(resp.workload, "w");
        assert_eq!(resp.per_cycle_total_w, vec![1.0, 3.0]);
        assert_eq!(resp.mean_total_w, 2.0);
        assert_eq!(resp.peak_total_w, 3.0);
        assert_eq!(resp.groups.len(), PowerGroup::ALL.len());
        let ct = resp
            .groups
            .iter()
            .find(|g| g.group == "clock_tree")
            .expect("ct");
        assert_eq!(ct.peak_w, 3.0);
        // The response line parses back.
        let line = render_result(&Ok(resp.clone()));
        let back: PredictResponse = serde_json::from_str(&line).expect("parses");
        assert_eq!(back, resp);
    }

    #[test]
    fn error_lines_carry_kind() {
        let line = render_result(&Err((Some(3), ServeError::UnknownDesign("C9".into()))));
        let err: ErrorResponse = serde_json::from_str(&line).expect("parses");
        assert_eq!(err.id, Some(3));
        assert_eq!(err.kind, "unknown_design");
        assert!(err.error.contains("C9"));
    }
}
