//! Shard-aware routing: a consistent-hash ring over N serve processes
//! and the [`ShardProxy`] front door that speaks it.
//!
//! One serve process scales vertically (worker pool, reactor threads)
//! but stays one address space; the shard layer removes that ceiling by
//! running N independent serve processes and routing every prediction by
//! its **trace key** — the same `(model, design, workload, cycles)`
//! tuple the embedding cache is keyed by. Routing by cache key is what
//! makes scale-out *warm*: all repeats of a key land on the shard whose
//! cache holds it, so N shards give ~N× aggregate warm throughput
//! instead of N cold caches each holding 1/N of the hit rate.
//!
//! The ring is classic consistent hashing: every shard owns
//! [`ShardInfo::vnodes`] pseudo-random points on a `u64` circle and a
//! key routes to the first point clockwise from its hash. Adding or
//! removing a shard therefore remaps only the keyspace adjacent to its
//! points (~1/N of traffic), not the whole fleet — restarted shards
//! keep most of their warm keys.
//!
//! [`ShardProxy`] implements the reactor's [`Frontend`] trait, so the
//! `atlas-shard` binary reuses the exact same epoll front door (and
//! multi-reactor pool) as `serve` itself: `predict` lines are forwarded
//! to the owning shard over a pooled TCP connection and answered
//! asynchronously through the reactor's [`Completer`]; `shard_map`
//! answers the full ring; `stats` answers the proxy's own counters.
//! Request ids are rewritten to proxy-internal ids on the way out and
//! restored on the way back, so concurrent clients can reuse ids freely.

use std::collections::HashMap;
use std::io::{BufRead as _, BufReader, Write as _};
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;

use serde::Value;

use crate::error::ServeError;
use crate::protocol::{self, PredictRequest, RequestLine, ShardInfo, ShardMapResponse};
use crate::reactor::{Completer, Frontend, FrontendContext};
use crate::service::{fnv1a, ServiceStats};

/// Virtual nodes per shard when the caller does not pick a count. 128
/// points per shard keeps the expected load imbalance of a small fleet
/// under a few percent while the ring stays tiny (N × 128 points).
pub const DEFAULT_VNODES: usize = 128;

/// The routing key of one prediction: a stable FNV-1a hash of the same
/// `(model, design, workload, cycles)` tuple the per-model embedding
/// cache is keyed by (the workload component is the request's
/// `workload_name` if set, else its `workload` label). Two requests that
/// could share a cache entry always hash identically, so they always
/// land on the same shard.
pub fn trace_route_key(model: Option<&str>, design: &str, workload: &str, cycles: usize) -> u64 {
    // `\0` separators keep the components prefix-free so ("ab", "c")
    // and ("a", "bc") cannot collide structurally.
    let parts = [model.unwrap_or(""), design, workload];
    let bytes = parts
        .iter()
        .flat_map(|p| p.bytes().chain([0u8]))
        .chain(cycles.to_le_bytes());
    fnv1a(bytes)
}

/// Routing key of a parsed request (the proxy's entry point).
fn request_route_key(request: &PredictRequest) -> u64 {
    let workload = request
        .workload_name
        .as_deref()
        .or(request.workload.as_deref())
        .unwrap_or("");
    trace_route_key(
        request.model.as_deref(),
        &request.design,
        workload,
        request.cycles,
    )
}

/// A consistent-hash ring over a fixed shard fleet.
#[derive(Debug, Clone)]
pub struct ShardRing {
    shards: Vec<ShardInfo>,
    /// `(point, shard index)` sorted by point; a key routes to the first
    /// point at or after its hash, wrapping at the top of the circle.
    points: Vec<(u64, usize)>,
}

impl ShardRing {
    /// Build a ring from the fleet description. Shards with `vnodes` of
    /// zero get [`DEFAULT_VNODES`].
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidRequest`] for an empty fleet or duplicate
    /// shard ids.
    pub fn new(shards: Vec<ShardInfo>) -> Result<ShardRing, ServeError> {
        if shards.is_empty() {
            return Err(ServeError::InvalidRequest(
                "a shard ring needs at least one shard".into(),
            ));
        }
        let mut seen = std::collections::HashSet::new();
        for shard in &shards {
            if !seen.insert(shard.id) {
                return Err(ServeError::InvalidRequest(format!(
                    "duplicate shard id {}",
                    shard.id
                )));
            }
        }
        let mut points = Vec::new();
        for (index, shard) in shards.iter().enumerate() {
            let vnodes = if shard.vnodes == 0 {
                DEFAULT_VNODES
            } else {
                shard.vnodes
            };
            for replica in 0..vnodes {
                // Point position depends only on (shard id, replica), so
                // every proxy over the same fleet builds the same ring.
                let bytes = shard
                    .id
                    .to_le_bytes()
                    .into_iter()
                    .chain(replica.to_le_bytes());
                points.push((fnv1a(bytes), index));
            }
        }
        // Ties (astronomically unlikely) resolve to the lower index on
        // every proxy identically, keeping routing deterministic.
        points.sort_unstable();
        Ok(ShardRing { shards, points })
    }

    /// The fleet, in construction order.
    pub fn shards(&self) -> &[ShardInfo] {
        &self.shards
    }

    /// Index (into [`ShardRing::shards`]) of the shard owning `key`.
    pub fn route_index(&self, key: u64) -> usize {
        let at = self.points.partition_point(|&(point, _)| point < key);
        let (_, index) = self.points[at % self.points.len()];
        index
    }

    /// The shard owning `key`.
    pub fn route(&self, key: u64) -> &ShardInfo {
        &self.shards[self.route_index(key)]
    }
}

/// One proxied request awaiting its backend reply.
struct Pending {
    completer: Completer,
    /// The client's original id, restored into the reply (the id on the
    /// wire to the backend is proxy-internal).
    original_id: Option<u64>,
}

/// One live backend connection: the writer half plus the pending map its
/// reader thread resolves. The map belongs to *this* connection — when
/// the connection dies, its reader fails every entry with a structured
/// `unavailable` error and a fresh connection starts an empty map, so a
/// reconnect can never leak or misdeliver an old request.
struct Live {
    stream: TcpStream,
    pending: Arc<Mutex<HashMap<u64, Pending>>>,
}

/// One shard of the fleet, as the proxy sees it: its ring identity and
/// a lazily-established connection.
struct Backend {
    info: ShardInfo,
    conn: Mutex<Option<Live>>,
}

impl Backend {
    /// Forward one rendered request line, connecting (and spawning the
    /// reply-reader thread) on first use. `entry` is registered under
    /// `internal` before the write so a fast reply cannot race it.
    fn send(
        self: &Arc<Backend>,
        internal: u64,
        entry: Pending,
        line: &str,
    ) -> Result<(), ServeError> {
        let unavailable = |e: &dyn std::fmt::Display| {
            ServeError::Unavailable(format!("shard {} at {}: {e}", self.info.id, self.info.addr))
        };
        let mut guard = self.conn.lock().expect("backend lock");
        if guard.is_none() {
            let stream = TcpStream::connect(&self.info.addr).map_err(|e| unavailable(&e))?;
            let _ = stream.set_nodelay(true);
            let reader = stream.try_clone().map_err(|e| unavailable(&e))?;
            let pending = Arc::new(Mutex::new(HashMap::new()));
            let backend = Arc::clone(self);
            let map = Arc::clone(&pending);
            thread::Builder::new()
                .name(format!("atlas-shard-io-{}", self.info.id))
                .spawn(move || backend.reader_loop(reader, &map))
                .map_err(|e| unavailable(&e))?;
            *guard = Some(Live { stream, pending });
        }
        let live = guard.as_mut().expect("connected above");
        live.pending
            .lock()
            .expect("pending lock")
            .insert(internal, entry);
        let mut framed = String::with_capacity(line.len() + 1);
        framed.push_str(line);
        framed.push('\n');
        if let Err(e) = live.stream.write_all(framed.as_bytes()) {
            live.pending.lock().expect("pending lock").remove(&internal);
            // Wake the reader so it drains whatever else was in flight.
            let _ = live.stream.shutdown(Shutdown::Both);
            *guard = None;
            return Err(unavailable(&e));
        }
        Ok(())
    }

    /// Resolve backend replies to their waiting clients until the
    /// connection dies, then fail everything still pending on it.
    fn reader_loop(
        self: Arc<Backend>,
        stream: TcpStream,
        pending: &Arc<Mutex<HashMap<u64, Pending>>>,
    ) {
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        loop {
            line.clear();
            match reader.read_line(&mut line) {
                Ok(0) | Err(_) => break,
                Ok(_) => {}
            }
            let text = line.trim();
            if text.is_empty() {
                continue;
            }
            let Ok(value) = serde_json::from_str::<Value>(text) else {
                // An unparsable line cannot be matched to a request; the
                // disconnect path below will fail whatever was pending.
                continue;
            };
            let Some(internal) = reply_id(&value) else {
                continue;
            };
            let Some(entry) = pending.lock().expect("pending lock").remove(&internal) else {
                continue;
            };
            entry
                .completer
                .complete(restore_id(value, entry.original_id));
        }
        // Detach this connection (unless a reconnect already replaced
        // it), then fail its in-flight requests. A send racing this
        // drain either lands before it (failed here, structured error)
        // or after the detach (fresh connection, fresh map).
        {
            let mut guard = self.conn.lock().expect("backend lock");
            if guard
                .as_ref()
                .is_some_and(|live| Arc::ptr_eq(&live.pending, pending))
            {
                *guard = None;
            }
        }
        let drained: Vec<Pending> = {
            let mut map = pending.lock().expect("pending lock");
            map.drain().map(|(_, entry)| entry).collect()
        };
        for entry in drained {
            let err = ServeError::Unavailable(format!(
                "shard {} at {} disconnected mid-request",
                self.info.id, self.info.addr
            ));
            entry
                .completer
                .complete(protocol::render_result(&Err((entry.original_id, err))));
        }
    }
}

/// The proxy-internal id a backend reply carries.
fn reply_id(value: &Value) -> Option<u64> {
    value
        .as_map()?
        .iter()
        .find(|(k, _)| k == "id")
        .and_then(|(_, v)| match v {
            Value::UInt(n) => Some(*n),
            Value::Int(n) if *n >= 0 => Some(*n as u64),
            _ => None,
        })
}

/// Re-render a backend reply with the client's original id in place of
/// the proxy-internal one.
fn restore_id(mut value: Value, original: Option<u64>) -> String {
    if let Value::Map(entries) = &mut value {
        let id_value = match original {
            Some(n) => Value::UInt(n),
            None => Value::Null,
        };
        match entries.iter_mut().find(|(k, _)| k == "id") {
            Some(slot) => slot.1 = id_value,
            None => entries.insert(0, ("id".to_owned(), id_value)),
        }
    }
    serde_json::to_string(&value)
        .unwrap_or_else(|e| format!(r#"{{"error":"render failure: {e}"}}"#))
}

/// The shard fleet's front door: a [`Frontend`] that routes every
/// `predict` line to the shard owning its trace key. Plug it into a
/// [`crate::reactor::Reactor`] or [`crate::reactor::ReactorPool`] — the
/// `atlas-shard` binary is exactly that.
pub struct ShardProxy {
    ring: ShardRing,
    backends: Vec<Arc<Backend>>,
    next_id: AtomicU64,
    requests: AtomicU64,
    errors: AtomicU64,
}

impl ShardProxy {
    /// Build a proxy over the fleet. Connections are established lazily
    /// on the first request routed to each shard.
    ///
    /// # Errors
    ///
    /// The same fleet-validation errors as [`ShardRing::new`].
    pub fn new(shards: Vec<ShardInfo>) -> Result<ShardProxy, ServeError> {
        let ring = ShardRing::new(shards)?;
        let backends = ring
            .shards()
            .iter()
            .map(|info| {
                Arc::new(Backend {
                    info: info.clone(),
                    conn: Mutex::new(None),
                })
            })
            .collect();
        Ok(ShardProxy {
            ring,
            backends,
            // Start above zero so proxy-internal ids are never confused
            // with common client-chosen ones in packet captures.
            next_id: AtomicU64::new(1 << 32),
            requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
        })
    }

    /// The routing ring (for `shard_map` and observability).
    pub fn ring(&self) -> &ShardRing {
        &self.ring
    }

    fn fail(&self, id: Option<u64>, err: ServeError) -> Option<String> {
        self.errors.fetch_add(1, Ordering::Relaxed);
        Some(protocol::render_result(&Err((id, err))))
    }
}

/// `predict` forwarded to the owning shard (answered through the
/// completer when the backend replies); `shard_map` and `stats` answered
/// inline from the proxy itself; every other verb is per-shard state
/// (model catalogs, workload libraries) and must be addressed to a
/// shard directly, so it gets a structured `invalid_request`.
impl Frontend for ShardProxy {
    fn handle(&self, line: &str, ctx: &FrontendContext<'_>) -> Option<String> {
        self.requests.fetch_add(1, Ordering::Relaxed);
        let unroutable = |verb: &str| {
            ServeError::InvalidRequest(format!(
                "verb `{verb}` is per-shard state; address the shard's own port, not the proxy"
            ))
        };
        match protocol::parse_line(line) {
            Ok(RequestLine::Predict(mut request)) => {
                let backend = &self.backends[self.ring.route_index(request_route_key(&request))];
                let original_id = request.id;
                let internal = self.next_id.fetch_add(1, Ordering::Relaxed);
                request.id = Some(internal);
                let rendered = match serde_json::to_string(&request) {
                    Ok(rendered) => rendered,
                    Err(e) => {
                        return self.fail(
                            original_id,
                            ServeError::InvalidRequest(format!("unrenderable request: {e}")),
                        )
                    }
                };
                let entry = Pending {
                    completer: ctx.completer(),
                    original_id,
                };
                match backend.send(internal, entry, &rendered) {
                    Ok(()) => None,
                    Err(e) => self.fail(original_id, e),
                }
            }
            Ok(RequestLine::ShardMap { id }) => {
                Some(protocol::render_line(&ShardMapResponse {
                    id,
                    verb: "shard_map".to_owned(),
                    // The proxy is the router, not a shard.
                    shard_id: None,
                    shards: self.ring.shards().to_vec(),
                }))
            }
            Ok(RequestLine::Stats { id }) => {
                // The proxy's own traffic counters — per-shard cache and
                // model stats live behind each shard's own `stats` verb.
                let stats = ServiceStats {
                    requests: self.requests.load(Ordering::Relaxed),
                    errors: self.errors.load(Ordering::Relaxed),
                    ..ServiceStats::default()
                };
                let mut response = protocol::stats_response(id, &stats);
                response.reactor_threads = ctx.reactor_threads();
                response.reactors = ctx.reactor_stats();
                Some(protocol::render_stats(&response))
            }
            Ok(RequestLine::Models { id }) => self.fail(id, unroutable("models")),
            Ok(RequestLine::Workloads { id }) => self.fail(id, unroutable("workloads")),
            Ok(RequestLine::LoadModel(req)) => self.fail(req.id, unroutable("load_model")),
            Ok(RequestLine::UnloadModel(req)) => self.fail(req.id, unroutable("unload_model")),
            Ok(RequestLine::RegisterWorkload(req)) => {
                self.fail(req.id, unroutable("register_workload"))
            }
            Ok(RequestLine::LoadDesign(req)) => self.fail(req.id, unroutable("load_design")),
            Err(e) => self.fail(protocol::salvage_id(line), e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fleet(n: u32) -> Vec<ShardInfo> {
        (0..n)
            .map(|id| ShardInfo {
                id,
                addr: format!("127.0.0.1:{}", 9000 + id),
                vnodes: 0,
            })
            .collect()
    }

    #[test]
    fn ring_routes_deterministically() {
        let a = ShardRing::new(fleet(3)).expect("ring");
        let b = ShardRing::new(fleet(3)).expect("ring");
        for key in 0..1000u64 {
            let hashed = fnv1a(key.to_le_bytes());
            assert_eq!(a.route_index(hashed), b.route_index(hashed));
            assert!(a.route_index(hashed) < 3);
        }
    }

    #[test]
    fn ring_balances_across_shards() {
        let ring = ShardRing::new(fleet(3)).expect("ring");
        let mut counts = [0usize; 3];
        for key in 0..3000u64 {
            counts[ring.route_index(fnv1a(key.to_le_bytes()))] += 1;
        }
        for (shard, &count) in counts.iter().enumerate() {
            assert!(
                count > 3000 / 10,
                "shard {shard} owns only {count}/3000 keys: {counts:?}"
            );
        }
    }

    #[test]
    fn growing_the_fleet_remaps_a_minority_of_keys() {
        let before = ShardRing::new(fleet(3)).expect("ring");
        let after = ShardRing::new(fleet(4)).expect("ring");
        let moved = (0..4000u64)
            .filter(|key| {
                let hashed = fnv1a(key.to_le_bytes());
                before.route_index(hashed) != after.route_index(hashed)
            })
            .count();
        // Consistent hashing moves ~1/4 of the keyspace to the new
        // shard; a modulo router would move ~3/4.
        assert!(
            moved < 2000,
            "adding one shard remapped {moved}/4000 keys (expected ~1000)"
        );
        assert!(moved > 0, "the new shard must own something");
    }

    #[test]
    fn ring_rejects_bad_fleets() {
        assert!(matches!(
            ShardRing::new(Vec::new()),
            Err(ServeError::InvalidRequest(_))
        ));
        let mut dup = fleet(2);
        dup[1].id = 0;
        assert!(matches!(
            ShardRing::new(dup),
            Err(ServeError::InvalidRequest(_))
        ));
    }

    #[test]
    fn route_key_separates_components() {
        let base = trace_route_key(None, "C2", "W1", 8);
        assert_eq!(base, trace_route_key(None, "C2", "W1", 8));
        assert_ne!(base, trace_route_key(Some("m"), "C2", "W1", 8));
        assert_ne!(base, trace_route_key(None, "C3", "W1", 8));
        assert_ne!(base, trace_route_key(None, "C2", "W2", 8));
        assert_ne!(base, trace_route_key(None, "C2", "W1", 9));
        // Prefix-freedom: shifting bytes between components changes the key.
        assert_ne!(
            trace_route_key(None, "ab", "c", 1),
            trace_route_key(None, "a", "bc", 1)
        );
    }

    #[test]
    fn requests_route_like_their_cache_key() {
        let mut named = PredictRequest::new("C2", "W1", 8);
        named.workload = None;
        named.workload_name = Some("lib-entry".to_owned());
        assert_eq!(
            request_route_key(&named),
            trace_route_key(None, "C2", "lib-entry", 8)
        );
        let preset = PredictRequest::new("C2", "W1", 8);
        assert_eq!(
            request_route_key(&preset),
            trace_route_key(None, "C2", "W1", 8)
        );
        let on_model = PredictRequest::new("C2", "W1", 8).on_model("canary");
        assert_eq!(
            request_route_key(&on_model),
            trace_route_key(Some("canary"), "C2", "W1", 8)
        );
    }

    #[test]
    fn reply_ids_are_restored() {
        let reply: Value = serde_json::from_str(r#"{"id":4294967297,"verb":"predict","cycles":8}"#)
            .expect("parses");
        assert_eq!(reply_id(&reply), Some(4294967297));
        let restored = restore_id(reply, Some(7));
        let value: Value = serde_json::from_str(&restored).expect("round-trips");
        assert_eq!(reply_id(&value), Some(7));
        // A client that sent no id gets `null` back, like talking to a
        // shard directly.
        let reply: Value = serde_json::from_str(r#"{"id":99,"verb":"stats"}"#).expect("parses");
        let restored = restore_id(reply, None);
        assert!(restored.contains(r#""id":null"#), "got: {restored}");
    }
}
