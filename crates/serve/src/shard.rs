//! Shard-aware routing: a consistent-hash ring over N serve processes
//! and the [`ShardProxy`] front door that speaks it.
//!
//! One serve process scales vertically (worker pool, reactor threads)
//! but stays one address space; the shard layer removes that ceiling by
//! running N independent serve processes and routing every prediction by
//! its **trace key** — the same `(model, design, workload, cycles)`
//! tuple the embedding cache is keyed by. Routing by cache key is what
//! makes scale-out *warm*: all repeats of a key land on the shard whose
//! cache holds it, so N shards give ~N× aggregate warm throughput
//! instead of N cold caches each holding 1/N of the hit rate.
//!
//! The ring is classic consistent hashing: every shard owns
//! [`ShardInfo::vnodes`] pseudo-random points on a `u64` circle and a
//! key routes to the first point clockwise from its hash. Adding or
//! removing a shard therefore remaps only the keyspace adjacent to its
//! points (~1/N of traffic), not the whole fleet — restarted shards
//! keep most of their warm keys.
//!
//! [`ShardProxy`] implements the reactor's [`Frontend`] trait, so the
//! `atlas-shard` binary reuses the exact same epoll front door (and
//! multi-reactor pool) as `serve` itself: `predict` lines are forwarded
//! to the owning shard over a pooled TCP connection and answered
//! asynchronously through the reactor's [`Completer`]; `shard_map`
//! answers the full ring; `stats` answers the proxy's own counters.
//! Request ids are rewritten to proxy-internal ids on the way out and
//! restored on the way back, so concurrent clients can reuse ids freely.

use std::collections::HashMap;
use std::io::{BufRead as _, BufReader, Write as _};
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use serde::Value;

use crate::error::ServeError;
use crate::protocol::{self, PredictRequest, RequestLine, ShardInfo, ShardMapResponse};
use crate::reactor::{Completer, Frontend, FrontendContext};
use crate::service::{fnv1a, ServiceStats};

/// Virtual nodes per shard when the caller does not pick a count. 128
/// points per shard keeps the expected load imbalance of a small fleet
/// under a few percent while the ring stays tiny (N × 128 points).
pub const DEFAULT_VNODES: usize = 128;

/// The routing key of one prediction: a stable FNV-1a hash of the same
/// `(model, design, workload, cycles)` tuple the per-model embedding
/// cache is keyed by (the workload component is the request's
/// `workload_name` if set, else its `workload` label). Two requests that
/// could share a cache entry always hash identically, so they always
/// land on the same shard.
pub fn trace_route_key(model: Option<&str>, design: &str, workload: &str, cycles: usize) -> u64 {
    // `\0` separators keep the components prefix-free so ("ab", "c")
    // and ("a", "bc") cannot collide structurally.
    let parts = [model.unwrap_or(""), design, workload];
    let bytes = parts
        .iter()
        .flat_map(|p| p.bytes().chain([0u8]))
        .chain(cycles.to_le_bytes());
    fnv1a(bytes)
}

/// Routing key of a parsed request (the proxy's entry point). The
/// workload component prefers `workload_name`, so a request referencing
/// a registered schedule by name and one spelling the equivalent inline
/// schedule (same label in `workload`, same phases) hash identically —
/// they share a cache entry on the shard, so they must share a shard.
/// `default_model` is the fleet's default serving name, when the proxy
/// knows it: a request that omits `model` and one naming the default
/// explicitly are answered bit-identically by the shards, so they must
/// also route identically instead of aliasing onto two shards' caches.
fn request_route_key(request: &PredictRequest, default_model: Option<&str>) -> u64 {
    let workload = request
        .workload_name
        .as_deref()
        .or(request.workload.as_deref())
        .unwrap_or("");
    trace_route_key(
        request.model.as_deref().or(default_model),
        &request.design,
        workload,
        request.cycles,
    )
}

/// A consistent-hash ring over a fixed shard fleet.
#[derive(Debug, Clone)]
pub struct ShardRing {
    shards: Vec<ShardInfo>,
    /// `(point, shard index)` sorted by point; a key routes to the first
    /// point at or after its hash, wrapping at the top of the circle.
    points: Vec<(u64, usize)>,
}

impl ShardRing {
    /// Build a ring from the fleet description. Shards with `vnodes` of
    /// zero get [`DEFAULT_VNODES`].
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidRequest`] for an empty fleet or duplicate
    /// shard ids.
    pub fn new(shards: Vec<ShardInfo>) -> Result<ShardRing, ServeError> {
        if shards.is_empty() {
            return Err(ServeError::InvalidRequest(
                "a shard ring needs at least one shard".into(),
            ));
        }
        let mut seen = std::collections::HashSet::new();
        for shard in &shards {
            if !seen.insert(shard.id) {
                return Err(ServeError::InvalidRequest(format!(
                    "duplicate shard id {}",
                    shard.id
                )));
            }
        }
        let mut points = Vec::new();
        for (index, shard) in shards.iter().enumerate() {
            let vnodes = if shard.vnodes == 0 {
                DEFAULT_VNODES
            } else {
                shard.vnodes
            };
            for replica in 0..vnodes {
                // Point position depends only on (shard id, replica), so
                // every proxy over the same fleet builds the same ring.
                let bytes = shard
                    .id
                    .to_le_bytes()
                    .into_iter()
                    .chain(replica.to_le_bytes());
                points.push((fnv1a(bytes), index));
            }
        }
        // Ties (astronomically unlikely) resolve to the lower index on
        // every proxy identically, keeping routing deterministic.
        points.sort_unstable();
        Ok(ShardRing { shards, points })
    }

    /// The fleet, in construction order.
    pub fn shards(&self) -> &[ShardInfo] {
        &self.shards
    }

    /// Index (into [`ShardRing::shards`]) of the shard owning `key`.
    pub fn route_index(&self, key: u64) -> usize {
        let at = self.points.partition_point(|&(point, _)| point < key);
        let (_, index) = self.points[at % self.points.len()];
        index
    }

    /// The shard owning `key`.
    pub fn route(&self, key: u64) -> &ShardInfo {
        &self.shards[self.route_index(key)]
    }
}

/// One proxied request awaiting its backend reply.
struct Pending {
    completer: Completer,
    /// The client's original id, restored into the reply (the id on the
    /// wire to the backend is proxy-internal).
    original_id: Option<u64>,
}

/// One live backend connection: the writer half plus the pending map its
/// reader thread resolves. The map belongs to *this* connection — when
/// the connection dies, its reader fails every entry with a structured
/// `unavailable` error and a fresh connection starts an empty map, so a
/// reconnect can never leak or misdeliver an old request.
struct Live {
    stream: TcpStream,
    pending: Arc<Mutex<HashMap<u64, Pending>>>,
}

/// How long a backend that failed to connect stays "down" before the
/// next request may try again. Without it, every request routed to a
/// dead shard pays its own connect attempt — a reconnect storm that
/// peaks exactly when the fleet is already degraded.
pub const RECONNECT_COOLDOWN: Duration = Duration::from_millis(500);

/// One shard of the fleet, as the proxy sees it: its ring identity and
/// a lazily-established connection.
struct Backend {
    info: ShardInfo,
    conn: Mutex<Option<Live>>,
    /// When the last connect attempt failed, if it did. Requests landing
    /// inside the cooldown window after it fail fast with `unavailable`
    /// instead of dialing again.
    last_failure: Mutex<Option<Instant>>,
    /// Connect attempts that reached the network and failed (fast-fails
    /// inside the cooldown window are not counted — that is the point).
    connect_failures: AtomicU64,
    cooldown: Duration,
}

impl Backend {
    fn new(info: ShardInfo, cooldown: Duration) -> Backend {
        Backend {
            info,
            conn: Mutex::new(None),
            last_failure: Mutex::new(None),
            connect_failures: AtomicU64::new(0),
            cooldown,
        }
    }

    /// Forward one rendered request line, connecting (and spawning the
    /// reply-reader thread) on first use. `entry` is registered under
    /// `internal` before the write so a fast reply cannot race it.
    fn send(
        self: &Arc<Backend>,
        internal: u64,
        entry: Pending,
        line: &str,
    ) -> Result<(), ServeError> {
        let unavailable = |e: &dyn std::fmt::Display| {
            ServeError::Unavailable(format!("shard {} at {}: {e}", self.info.id, self.info.addr))
        };
        let mut guard = self.conn.lock().expect("backend lock");
        if guard.is_none() {
            // At most one connect attempt per cooldown window: a dead
            // shard answers `unavailable` from memory, not from a fresh
            // (and possibly slow) dial per queued request.
            let cooling = self
                .last_failure
                .lock()
                .expect("cooldown lock")
                .is_some_and(|at| at.elapsed() < self.cooldown);
            if cooling {
                return Err(unavailable(&"in reconnect cooldown after a failed connect"));
            }
            let stream = match TcpStream::connect(&self.info.addr) {
                Ok(stream) => stream,
                Err(e) => {
                    self.connect_failures.fetch_add(1, Ordering::Relaxed);
                    *self.last_failure.lock().expect("cooldown lock") = Some(Instant::now());
                    return Err(unavailable(&e));
                }
            };
            *self.last_failure.lock().expect("cooldown lock") = None;
            let _ = stream.set_nodelay(true);
            let reader = stream.try_clone().map_err(|e| unavailable(&e))?;
            let pending = Arc::new(Mutex::new(HashMap::new()));
            let backend = Arc::clone(self);
            let map = Arc::clone(&pending);
            thread::Builder::new()
                .name(format!("atlas-shard-io-{}", self.info.id))
                .spawn(move || backend.reader_loop(reader, &map))
                .map_err(|e| unavailable(&e))?;
            *guard = Some(Live { stream, pending });
        }
        let live = guard.as_mut().expect("connected above");
        live.pending
            .lock()
            .expect("pending lock")
            .insert(internal, entry);
        let mut framed = String::with_capacity(line.len() + 1);
        framed.push_str(line);
        framed.push('\n');
        if let Err(e) = live.stream.write_all(framed.as_bytes()) {
            live.pending.lock().expect("pending lock").remove(&internal);
            // Wake the reader so it drains whatever else was in flight.
            let _ = live.stream.shutdown(Shutdown::Both);
            *guard = None;
            return Err(unavailable(&e));
        }
        Ok(())
    }

    /// Resolve backend replies to their waiting clients until the
    /// connection dies, then fail everything still pending on it.
    fn reader_loop(
        self: Arc<Backend>,
        stream: TcpStream,
        pending: &Arc<Mutex<HashMap<u64, Pending>>>,
    ) {
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        loop {
            line.clear();
            match reader.read_line(&mut line) {
                Ok(0) | Err(_) => break,
                Ok(_) => {}
            }
            let text = line.trim();
            if text.is_empty() {
                continue;
            }
            let Ok(value) = serde_json::from_str::<Value>(text) else {
                // An unparsable line cannot be matched to a request; the
                // disconnect path below will fail whatever was pending.
                continue;
            };
            let Some(internal) = reply_id(&value) else {
                continue;
            };
            // Streamed replies (sweep frames) keep their pending entry
            // alive until the final `end` frame — or a frameless line,
            // which is a single-shot reply (predict, error). Peeking
            // instead of removing is what lets one request map to many
            // reply lines without re-registering.
            if frame_of(&value).is_some_and(|frame| frame != "end") {
                let map = pending.lock().expect("pending lock");
                if let Some(entry) = map.get(&internal) {
                    let line = restore_id(value, entry.original_id);
                    entry.completer.stream(line);
                }
                continue;
            }
            let Some(entry) = pending.lock().expect("pending lock").remove(&internal) else {
                continue;
            };
            entry
                .completer
                .complete(restore_id(value, entry.original_id));
        }
        // Detach this connection (unless a reconnect already replaced
        // it), then fail its in-flight requests. A send racing this
        // drain either lands before it (failed here, structured error)
        // or after the detach (fresh connection, fresh map).
        {
            let mut guard = self.conn.lock().expect("backend lock");
            if guard
                .as_ref()
                .is_some_and(|live| Arc::ptr_eq(&live.pending, pending))
            {
                *guard = None;
            }
        }
        let drained: Vec<Pending> = {
            let mut map = pending.lock().expect("pending lock");
            map.drain().map(|(_, entry)| entry).collect()
        };
        for entry in drained {
            let err = ServeError::Unavailable(format!(
                "shard {} at {} disconnected mid-request",
                self.info.id, self.info.addr
            ));
            entry
                .completer
                .complete(protocol::render_result(&Err((entry.original_id, err))));
        }
    }
}

/// The `frame` discriminator of a streamed reply line, when present.
fn frame_of(value: &Value) -> Option<&str> {
    value
        .as_map()?
        .iter()
        .find(|(k, _)| k == "frame")
        .and_then(|(_, v)| match v {
            Value::Str(s) => Some(s.as_str()),
            _ => None,
        })
}

/// The proxy-internal id a backend reply carries.
fn reply_id(value: &Value) -> Option<u64> {
    value
        .as_map()?
        .iter()
        .find(|(k, _)| k == "id")
        .and_then(|(_, v)| match v {
            Value::UInt(n) => Some(*n),
            Value::Int(n) if *n >= 0 => Some(*n as u64),
            _ => None,
        })
}

/// Re-render a backend reply with the client's original id in place of
/// the proxy-internal one.
fn restore_id(mut value: Value, original: Option<u64>) -> String {
    if let Value::Map(entries) = &mut value {
        let id_value = match original {
            Some(n) => Value::UInt(n),
            None => Value::Null,
        };
        match entries.iter_mut().find(|(k, _)| k == "id") {
            Some(slot) => slot.1 = id_value,
            None => entries.insert(0, ("id".to_owned(), id_value)),
        }
    }
    serde_json::to_string(&value)
        .unwrap_or_else(|e| format!(r#"{{"error":"render failure: {e}"}}"#))
}

/// The shard fleet's front door: a [`Frontend`] that routes every
/// `predict` line to the shard owning its trace key. Plug it into a
/// [`crate::reactor::Reactor`] or [`crate::reactor::ReactorPool`] — the
/// `atlas-shard` binary is exactly that.
pub struct ShardProxy {
    ring: ShardRing,
    backends: Vec<Arc<Backend>>,
    /// The fleet's default model serving name, when configured — see
    /// [`request_route_key`] for why omitted-model requests must
    /// normalize to it.
    default_model: Option<String>,
    next_id: AtomicU64,
    requests: AtomicU64,
    errors: AtomicU64,
}

impl ShardProxy {
    /// Build a proxy over the fleet. Connections are established lazily
    /// on the first request routed to each shard.
    ///
    /// # Errors
    ///
    /// The same fleet-validation errors as [`ShardRing::new`].
    pub fn new(shards: Vec<ShardInfo>) -> Result<ShardProxy, ServeError> {
        let ring = ShardRing::new(shards)?;
        let backends = ring
            .shards()
            .iter()
            .map(|info| Arc::new(Backend::new(info.clone(), RECONNECT_COOLDOWN)))
            .collect();
        Ok(ShardProxy {
            ring,
            backends,
            default_model: None,
            // Start above zero so proxy-internal ids are never confused
            // with common client-chosen ones in packet captures.
            next_id: AtomicU64::new(1 << 32),
            requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
        })
    }

    /// Declare the fleet's default model serving name, so a request that
    /// omits `model` and one naming the default explicitly land on the
    /// same shard (they share that shard's cache entry — routing them
    /// apart would aliase one trace onto two cold caches).
    pub fn with_default_model(mut self, name: impl Into<String>) -> ShardProxy {
        self.default_model = Some(name.into());
        self
    }

    /// The routing ring (for `shard_map` and observability).
    pub fn ring(&self) -> &ShardRing {
        &self.ring
    }

    fn fail(&self, id: Option<u64>, err: ServeError) -> Option<String> {
        self.errors.fetch_add(1, Ordering::Relaxed);
        Some(protocol::render_result(&Err((id, err))))
    }

    /// Forward `line` — with its id rewritten to a proxy-internal one —
    /// to the backend owning `key`, answering through the completer when
    /// the backend replies (possibly as a stream of frames). The raw
    /// client line is forwarded rather than a re-render of the parsed
    /// request, so verbs whose body types carry no `verb` field survive
    /// the hop intact.
    fn forward(
        &self,
        key: u64,
        original_id: Option<u64>,
        line: &str,
        ctx: &FrontendContext<'_>,
    ) -> Option<String> {
        let backend = &self.backends[self.ring.route_index(key)];
        let internal = self.next_id.fetch_add(1, Ordering::Relaxed);
        let Some(rendered) = rewrite_id(line, internal) else {
            return self.fail(
                original_id,
                ServeError::InvalidRequest("unrenderable request".to_owned()),
            );
        };
        let entry = Pending {
            completer: ctx.completer(),
            original_id,
        };
        match backend.send(internal, entry, &rendered) {
            Ok(()) => None,
            Err(e) => self.fail(original_id, e),
        }
    }
}

/// Re-render a request line with `internal` as its id (the proxy-internal
/// id the backend's reply will echo).
fn rewrite_id(line: &str, internal: u64) -> Option<String> {
    let mut value: Value = serde_json::from_str(line).ok()?;
    let Value::Map(entries) = &mut value else {
        return None;
    };
    match entries.iter_mut().find(|(k, _)| k == "id") {
        Some(slot) => slot.1 = Value::UInt(internal),
        None => entries.insert(0, ("id".to_owned(), Value::UInt(internal))),
    }
    serde_json::to_string(&value).ok()
}

/// `predict` forwarded to the owning shard (answered through the
/// completer when the backend replies); `shard_map` and `stats` answered
/// inline from the proxy itself; every other verb is per-shard state
/// (model catalogs, workload libraries) and must be addressed to a
/// shard directly, so it gets a structured `invalid_request`.
impl Frontend for ShardProxy {
    fn handle(&self, line: &str, ctx: &FrontendContext<'_>) -> Option<String> {
        self.requests.fetch_add(1, Ordering::Relaxed);
        let unroutable = |verb: &str| {
            ServeError::InvalidRequest(format!(
                "verb `{verb}` is per-shard state; address the shard's own port, not the proxy"
            ))
        };
        match protocol::parse_line(line) {
            Ok(RequestLine::Predict(request)) => {
                let key = request_route_key(&request, self.default_model.as_deref());
                self.forward(key, request.id, line, ctx)
            }
            // A delta routes by its BASE trace key: the whole point is
            // landing on the shard whose cache holds the base items.
            // (Target and base share design and model in the common
            // edit-loop case, so the target's fresh entry warms the same
            // shard for the next delta in the sequence.)
            Ok(RequestLine::PredictDelta(request)) => {
                let key = request_route_key(&request.base_request(), self.default_model.as_deref());
                self.forward(key, request.id, line, ctx)
            }
            // A sweep routes by (model, design) alone — every item shares
            // the design-side work, so the whole sweep belongs on one
            // shard regardless of its schedules.
            Ok(RequestLine::Sweep(request)) => {
                let model = request.model.as_deref().or(self.default_model.as_deref());
                let key = trace_route_key(model, &request.design, "", 0);
                self.forward(key, request.id, line, ctx)
            }
            Ok(RequestLine::ShardMap { id }) => {
                Some(protocol::render_line(&ShardMapResponse {
                    id,
                    verb: "shard_map".to_owned(),
                    // The proxy is the router, not a shard.
                    shard_id: None,
                    shards: self.ring.shards().to_vec(),
                }))
            }
            Ok(RequestLine::Stats { id }) => {
                // The proxy's own traffic counters — per-shard cache and
                // model stats live behind each shard's own `stats` verb.
                let stats = ServiceStats {
                    requests: self.requests.load(Ordering::Relaxed),
                    errors: self.errors.load(Ordering::Relaxed),
                    ..ServiceStats::default()
                };
                let mut response = protocol::stats_response(id, &stats);
                response.reactor_threads = ctx.reactor_threads();
                response.reactors = ctx.reactor_stats();
                Some(protocol::render_stats(&response))
            }
            Ok(RequestLine::Models { id }) => self.fail(id, unroutable("models")),
            Ok(RequestLine::Workloads { id }) => self.fail(id, unroutable("workloads")),
            Ok(RequestLine::LoadModel(req)) => self.fail(req.id, unroutable("load_model")),
            Ok(RequestLine::UnloadModel(req)) => self.fail(req.id, unroutable("unload_model")),
            Ok(RequestLine::RegisterWorkload(req)) => {
                self.fail(req.id, unroutable("register_workload"))
            }
            Ok(RequestLine::LoadDesign(req)) => self.fail(req.id, unroutable("load_design")),
            Err(e) => self.fail(protocol::salvage_id(line), e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fleet(n: u32) -> Vec<ShardInfo> {
        (0..n)
            .map(|id| ShardInfo {
                id,
                addr: format!("127.0.0.1:{}", 9000 + id),
                vnodes: 0,
            })
            .collect()
    }

    #[test]
    fn ring_routes_deterministically() {
        let a = ShardRing::new(fleet(3)).expect("ring");
        let b = ShardRing::new(fleet(3)).expect("ring");
        for key in 0..1000u64 {
            let hashed = fnv1a(key.to_le_bytes());
            assert_eq!(a.route_index(hashed), b.route_index(hashed));
            assert!(a.route_index(hashed) < 3);
        }
    }

    #[test]
    fn ring_balances_across_shards() {
        let ring = ShardRing::new(fleet(3)).expect("ring");
        let mut counts = [0usize; 3];
        for key in 0..3000u64 {
            counts[ring.route_index(fnv1a(key.to_le_bytes()))] += 1;
        }
        for (shard, &count) in counts.iter().enumerate() {
            assert!(
                count > 3000 / 10,
                "shard {shard} owns only {count}/3000 keys: {counts:?}"
            );
        }
    }

    #[test]
    fn growing_the_fleet_remaps_a_minority_of_keys() {
        let before = ShardRing::new(fleet(3)).expect("ring");
        let after = ShardRing::new(fleet(4)).expect("ring");
        let moved = (0..4000u64)
            .filter(|key| {
                let hashed = fnv1a(key.to_le_bytes());
                before.route_index(hashed) != after.route_index(hashed)
            })
            .count();
        // Consistent hashing moves ~1/4 of the keyspace to the new
        // shard; a modulo router would move ~3/4.
        assert!(
            moved < 2000,
            "adding one shard remapped {moved}/4000 keys (expected ~1000)"
        );
        assert!(moved > 0, "the new shard must own something");
    }

    #[test]
    fn ring_rejects_bad_fleets() {
        assert!(matches!(
            ShardRing::new(Vec::new()),
            Err(ServeError::InvalidRequest(_))
        ));
        let mut dup = fleet(2);
        dup[1].id = 0;
        assert!(matches!(
            ShardRing::new(dup),
            Err(ServeError::InvalidRequest(_))
        ));
    }

    #[test]
    fn route_key_separates_components() {
        let base = trace_route_key(None, "C2", "W1", 8);
        assert_eq!(base, trace_route_key(None, "C2", "W1", 8));
        assert_ne!(base, trace_route_key(Some("m"), "C2", "W1", 8));
        assert_ne!(base, trace_route_key(None, "C3", "W1", 8));
        assert_ne!(base, trace_route_key(None, "C2", "W2", 8));
        assert_ne!(base, trace_route_key(None, "C2", "W1", 9));
        // Prefix-freedom: shifting bytes between components changes the key.
        assert_ne!(
            trace_route_key(None, "ab", "c", 1),
            trace_route_key(None, "a", "bc", 1)
        );
    }

    #[test]
    fn requests_route_like_their_cache_key() {
        let mut named = PredictRequest::new("C2", "W1", 8);
        named.workload = None;
        named.workload_name = Some("lib-entry".to_owned());
        assert_eq!(
            request_route_key(&named, None),
            trace_route_key(None, "C2", "lib-entry", 8)
        );
        let preset = PredictRequest::new("C2", "W1", 8);
        assert_eq!(
            request_route_key(&preset, None),
            trace_route_key(None, "C2", "W1", 8)
        );
        let on_model = PredictRequest::new("C2", "W1", 8).on_model("canary");
        assert_eq!(
            request_route_key(&on_model, None),
            trace_route_key(Some("canary"), "C2", "W1", 8)
        );
    }

    #[test]
    fn default_model_requests_route_with_named_ones() {
        // The satellite bug: a client naming the fleet default explicitly
        // and one omitting `model` must warm the same shard's cache.
        let implicit = PredictRequest::new("C2", "W1", 8);
        let explicit = PredictRequest::new("C2", "W1", 8).on_model("atlas-v1");
        assert_eq!(
            request_route_key(&implicit, Some("atlas-v1")),
            request_route_key(&explicit, Some("atlas-v1"))
        );
        // Without a configured default the two are genuinely distinct keys
        // (the backend may resolve them differently), so they may split.
        assert_eq!(
            request_route_key(&implicit, None),
            trace_route_key(None, "C2", "W1", 8)
        );
        // A non-default model is never rewritten.
        let canary = PredictRequest::new("C2", "W1", 8).on_model("canary");
        assert_eq!(
            request_route_key(&canary, Some("atlas-v1")),
            trace_route_key(Some("canary"), "C2", "W1", 8)
        );
    }

    #[test]
    fn cooldown_suppresses_reconnect_storms() {
        // A backend nobody listens on: every dial fails. With the cooldown
        // in place, a burst of sends performs exactly one real connect per
        // window instead of one per request.
        let info = ShardInfo {
            id: 0,
            // Reserve a port, then drop the listener so the address is dead.
            addr: {
                let sock = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
                sock.local_addr().expect("addr").to_string()
            },
            vnodes: 1,
        };
        let entry = || Pending {
            completer: crate::reactor::test_completer(),
            original_id: None,
        };
        let backend = Arc::new(Backend::new(info, Duration::from_secs(60)));
        for internal in 0..5 {
            assert!(backend
                .send(internal, entry(), "{\"verb\":\"stats\"}")
                .is_err());
        }
        assert_eq!(
            backend.connect_failures.load(Ordering::Relaxed),
            1,
            "only the first send in the window may dial the dead backend"
        );
        // A zero cooldown restores the old always-retry behaviour.
        let eager = Arc::new(Backend::new(
            ShardInfo {
                id: 1,
                addr: backend.info.addr.clone(),
                vnodes: 1,
            },
            Duration::ZERO,
        ));
        for internal in 0..3 {
            assert!(eager
                .send(internal, entry(), "{\"verb\":\"stats\"}")
                .is_err());
        }
        assert_eq!(eager.connect_failures.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn reply_ids_are_restored() {
        let reply: Value = serde_json::from_str(r#"{"id":4294967297,"verb":"predict","cycles":8}"#)
            .expect("parses");
        assert_eq!(reply_id(&reply), Some(4294967297));
        let restored = restore_id(reply, Some(7));
        let value: Value = serde_json::from_str(&restored).expect("round-trips");
        assert_eq!(reply_id(&value), Some(7));
        // A client that sent no id gets `null` back, like talking to a
        // shard directly.
        let reply: Value = serde_json::from_str(r#"{"id":99,"verb":"stats"}"#).expect("parses");
        let restored = restore_id(reply, None);
        assert!(restored.contains(r#""id":null"#), "got: {restored}");
    }
}
