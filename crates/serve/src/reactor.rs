//! Non-blocking TCP front door: `epoll` reactor threads multiplexing
//! every connection, with the worker pool doing the actual prediction.
//!
//! The thread-per-connection front door of PR 1 pinned an OS thread per
//! client for its whole lifetime — thousands of mostly-idle monitoring
//! connections meant thousands of stacks. This module replaces it with a
//! classic event loop:
//!
//! * every connection is **non-blocking** and registered with one epoll
//!   instance; idle connections cost a file descriptor and a small buffer
//!   pair, not a thread;
//! * complete JSON lines are parsed on the reactor thread and handed to
//!   a [`Frontend`] — for [`AtlasService`] that means predictions go to
//!   the worker pool via `submit_with`; the worker's reply is queued and
//!   the owning reactor is woken through its `eventfd` to write it out;
//! * **back-pressure**: a connection that stops reading its responses
//!   (write buffer above [`ReactorConfig::write_high_water`]) or floods
//!   requests (more than [`ReactorConfig::max_inflight`] outstanding)
//!   has its read side paused until it drains — a slow client can never
//!   balloon server memory;
//! * a **connection limit** ([`ReactorConfig::max_connections`]): beyond
//!   it, new connections get a one-line `overloaded` error and are
//!   closed.
//!
//! # Scaling out: [`ReactorPool`]
//!
//! One reactor thread is plenty for a handful of clients, but accept,
//! read, parse, and write for *every* connection then share one core.
//! [`ReactorPool::bind`] starts N reactors, each with its **own** epoll
//! instance, listener, connection table, eventfd, and counters. The
//! listeners all bind the same address with `SO_REUSEPORT`, so the
//! kernel spreads incoming connections across them with no shared
//! accept lock; when the platform refuses the option the pool falls
//! back to N dup'd handles of one listener (a shared kernel accept
//! queue — level-triggered epoll means losers of an accept race simply
//! see `WouldBlock`). Worker completions always route back to the
//! reactor that owns the connection, because the [`Completer`] captured
//! at submit time holds that reactor's queue.
//!
//! The total OS-thread budget of a TCP `serve` process is therefore
//! `worker_count + reactors + 1` (workers + N reactors + main),
//! independent of connection count.
//!
//! The `stats` protocol verb is answered inline on the reactor thread —
//! it is a counter snapshot and never needs a worker.
//!
//! # Why raw syscalls?
//!
//! The build environment has no registry access (see `vendor/`), so
//! instead of `mio`/`tokio` the private `sys` module declares the libc
//! symbols the loop needs (`epoll_create1`, `epoll_ctl`, `epoll_wait`,
//! `eventfd`, `socket`, `setsockopt`, `bind`, `listen`, `close`)
//! directly — std already links libc on Linux. This is the same
//! vendoring policy as the serde/rand shims: the exact API subset the
//! workspace uses, swappable for the real crates when a registry is
//! available.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;

use crate::protocol::{self, ErrorResponse, RequestLine};
use crate::service::AtlasService;

/// Minimal FFI shim over the epoll/eventfd syscalls (Linux only). Kept
/// under the `vendor/` policy: exactly the surface the reactor uses.
mod sys {
    use std::io;

    pub const EPOLL_CLOEXEC: i32 = 0o2000000;
    pub const EPOLL_CTL_ADD: i32 = 1;
    pub const EPOLL_CTL_DEL: i32 = 2;
    pub const EPOLL_CTL_MOD: i32 = 3;
    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;
    pub const EFD_CLOEXEC: i32 = 0o2000000;
    pub const EFD_NONBLOCK: i32 = 0o4000;
    /// Linux errno: too many open files (process fd limit).
    pub const EMFILE: i32 = 24;
    /// Linux errno: too many open files (system fd limit).
    pub const ENFILE: i32 = 23;

    /// Mirror of `struct epoll_event`. x86-64 packs it so the 64-bit
    /// payload sits at offset 4; other Linux targets use natural layout.
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn eventfd(initval: u32, flags: i32) -> i32;
        fn read(fd: i32, buf: *mut core::ffi::c_void, count: usize) -> isize;
        fn write(fd: i32, buf: *const core::ffi::c_void, count: usize) -> isize;
        fn close(fd: i32) -> i32;
    }

    fn cvt(ret: i32) -> io::Result<i32> {
        if ret < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(ret)
        }
    }

    /// An owned file descriptor closed on drop (epoll instance, eventfd).
    #[derive(Debug)]
    pub struct OwnedFd(pub i32);

    impl Drop for OwnedFd {
        fn drop(&mut self) {
            unsafe {
                let _ = close(self.0);
            }
        }
    }

    pub fn epoll_create() -> io::Result<OwnedFd> {
        // SAFETY: no pointers involved; flags is a valid constant.
        unsafe { cvt(epoll_create1(EPOLL_CLOEXEC)).map(OwnedFd) }
    }

    pub fn ctl(epfd: i32, op: i32, fd: i32, events: u32, token: u64) -> io::Result<()> {
        let mut ev = EpollEvent {
            events,
            data: token,
        };
        // SAFETY: `ev` outlives the call; the kernel copies it.
        unsafe { cvt(epoll_ctl(epfd, op, fd, &mut ev)).map(|_| ()) }
    }

    pub fn ctl_del(epfd: i32, fd: i32) -> io::Result<()> {
        // A null event is allowed for EPOLL_CTL_DEL since Linux 2.6.9.
        unsafe { cvt(epoll_ctl(epfd, EPOLL_CTL_DEL, fd, core::ptr::null_mut())).map(|_| ()) }
    }

    /// Wait for events, retrying on `EINTR`.
    pub fn wait(epfd: i32, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        loop {
            // SAFETY: the buffer is valid for `events.len()` entries.
            let n =
                unsafe { epoll_wait(epfd, events.as_mut_ptr(), events.len() as i32, timeout_ms) };
            if n >= 0 {
                return Ok(n as usize);
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
    }

    pub fn new_eventfd() -> io::Result<OwnedFd> {
        // SAFETY: no pointers involved.
        unsafe { cvt(eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK)).map(OwnedFd) }
    }

    /// Add 1 to the eventfd counter, waking an epoll waiter.
    pub fn eventfd_signal(fd: i32) {
        let one: u64 = 1;
        // SAFETY: writes exactly 8 bytes from a live stack value. A full
        // counter (EAGAIN) still leaves it nonzero, which is all we need.
        unsafe {
            let _ = write(fd, (&one as *const u64).cast(), 8);
        }
    }

    /// Reset the eventfd counter to zero.
    pub fn eventfd_drain(fd: i32) {
        let mut buf: u64 = 0;
        // SAFETY: reads exactly 8 bytes into a live stack value.
        unsafe {
            let _ = read(fd, (&mut buf as *mut u64).cast(), 8);
        }
    }

    // ---- raw IPv4 listener sockets (SO_REUSEPORT) ----

    pub const AF_INET: u16 = 2;
    pub const SOCK_STREAM: i32 = 1;
    pub const SOCK_CLOEXEC: i32 = 0o2000000;
    pub const SOCK_NONBLOCK: i32 = 0o4000;
    pub const SOL_SOCKET: i32 = 1;
    pub const SO_REUSEADDR: i32 = 2;
    pub const SO_REUSEPORT: i32 = 15;

    /// Mirror of `struct sockaddr_in` (Linux). Port and address are in
    /// network byte order.
    #[repr(C)]
    pub struct SockAddrIn {
        pub sin_family: u16,
        pub sin_port: u16,
        pub sin_addr: u32,
        pub sin_zero: [u8; 8],
    }

    extern "C" {
        fn socket(domain: i32, ty: i32, protocol: i32) -> i32;
        fn bind(fd: i32, addr: *const SockAddrIn, len: u32) -> i32;
        fn listen(fd: i32, backlog: i32) -> i32;
        fn setsockopt(
            fd: i32,
            level: i32,
            optname: i32,
            optval: *const core::ffi::c_void,
            optlen: u32,
        ) -> i32;
    }

    /// Create a non-blocking IPv4 listener bound with `SO_REUSEPORT`
    /// (plus `SO_REUSEADDR`, matching std). Fails if the platform
    /// refuses the option — the caller falls back to a shared accept
    /// queue.
    pub fn reuseport_listener(addr: std::net::SocketAddrV4) -> io::Result<std::net::TcpListener> {
        use std::os::unix::io::FromRawFd;

        // SAFETY: no pointers involved; constants are valid.
        let fd = unsafe {
            cvt(socket(
                AF_INET as i32,
                SOCK_STREAM | SOCK_CLOEXEC | SOCK_NONBLOCK,
                0,
            ))?
        };
        // Own the fd so every early return below closes it.
        let owned = OwnedFd(fd);
        let one: i32 = 1;
        for opt in [SO_REUSEADDR, SO_REUSEPORT] {
            // SAFETY: `one` outlives the call; the kernel copies 4 bytes.
            unsafe {
                cvt(setsockopt(
                    owned.0,
                    SOL_SOCKET,
                    opt,
                    (&one as *const i32).cast(),
                    4,
                ))?;
            }
        }
        let sa = SockAddrIn {
            sin_family: AF_INET,
            sin_port: addr.port().to_be(),
            sin_addr: u32::from_be_bytes(addr.ip().octets()).to_be(),
            sin_zero: [0; 8],
        };
        // SAFETY: `sa` outlives the call; the length matches the struct.
        unsafe {
            cvt(bind(
                owned.0,
                &sa,
                core::mem::size_of::<SockAddrIn>() as u32,
            ))?;
            cvt(listen(owned.0, 1024))?;
        }
        let fd = owned.0;
        core::mem::forget(owned);
        // SAFETY: the fd is a fresh, owned listening socket.
        Ok(unsafe { std::net::TcpListener::from_raw_fd(fd) })
    }
}

/// Tuning knobs of the event-loop front door.
#[derive(Debug, Clone)]
pub struct ReactorConfig {
    /// Connections beyond this are answered with a one-line `overloaded`
    /// error and closed.
    pub max_connections: usize,
    /// A request line longer than this closes the connection (the
    /// framing is broken; there is no way to resynchronize).
    pub max_line_bytes: usize,
    /// Pause reading from a connection whose un-flushed response bytes
    /// exceed this; resume below half of it.
    pub write_high_water: usize,
    /// Pause reading from a connection with this many predictions still
    /// in the worker pool; resume as replies drain.
    pub max_inflight: usize,
}

impl Default for ReactorConfig {
    fn default() -> ReactorConfig {
        ReactorConfig {
            max_connections: 4096,
            max_line_bytes: 1 << 20,
            write_high_water: 256 << 10,
            max_inflight: 64,
        }
    }
}

/// Monotonic counters of one reactor, readable from any thread.
/// Serializable so the `stats` verb can report per-reactor accept and
/// back-pressure skew.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub struct ReactorStats {
    /// Connections accepted.
    pub accepted: u64,
    /// Connections refused at the connection limit.
    pub rejected: u64,
    /// Connections closed (any reason).
    pub closed: u64,
    /// Connections currently open.
    pub active: u64,
    /// Prediction requests forwarded to the worker pool.
    pub requests: u64,
    /// Response lines fully written back.
    pub responses: u64,
    /// Times a connection's read side was paused for back-pressure.
    pub pauses: u64,
}

#[derive(Default)]
struct Counters {
    accepted: AtomicU64,
    rejected: AtomicU64,
    closed: AtomicU64,
    active: AtomicU64,
    requests: AtomicU64,
    responses: AtomicU64,
    pauses: AtomicU64,
}

impl Counters {
    fn snapshot(&self) -> ReactorStats {
        ReactorStats {
            accepted: self.accepted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            closed: self.closed.load(Ordering::Relaxed),
            active: self.active.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            responses: self.responses.load(Ordering::Relaxed),
            pauses: self.pauses.load(Ordering::Relaxed),
        }
    }
}

/// A finished reply — or one intermediate frame of a streamed reply —
/// on its way back to a connection.
struct Completion {
    token: u64,
    line: String,
    /// `false` for an intermediate frame: the request stays in flight
    /// for back-pressure accounting until its final completion arrives.
    last: bool,
}

/// The worker→reactor handoff: workers push rendered reply lines and
/// signal the eventfd; the reactor drains on wakeup.
struct Completions {
    queue: Mutex<Vec<Completion>>,
    wake: sys::OwnedFd,
    shutdown: AtomicBool,
}

impl Completions {
    fn push(&self, token: u64, line: String, last: bool) {
        self.queue
            .lock()
            .expect("completion lock")
            .push(Completion { token, line, last });
        sys::eventfd_signal(self.wake.0);
    }

    fn drain(&self) -> Vec<Completion> {
        sys::eventfd_drain(self.wake.0);
        std::mem::take(&mut *self.queue.lock().expect("completion lock"))
    }
}

/// An owned ticket for answering one request asynchronously. Captured
/// by [`Frontend::handle`] when the reply will come from another thread
/// (a worker, a proxy backend reader); completing it queues the line
/// and wakes the reactor that owns the connection.
pub struct Completer {
    token: u64,
    completions: Arc<Completions>,
}

impl Completer {
    /// Queue `line` as the final reply and wake the owning reactor. The
    /// request leaves the connection's in-flight count when the line is
    /// delivered.
    pub fn complete(&self, line: String) {
        self.completions.push(self.token, line, true);
    }

    /// Queue `line` as one intermediate frame of a streamed reply
    /// (`sweep` frames). The request stays in flight — exactly one
    /// [`Completer::complete`] must still follow, and frames are written
    /// out as they arrive instead of buffering whole in the reactor.
    pub fn stream(&self, line: String) {
        self.completions.push(self.token, line, false);
    }
}

/// Build a completer detached from any reactor, for crate-internal
/// tests that need a [`Completer`] to satisfy an API (its lines land in
/// a private queue nobody drains).
#[cfg(test)]
pub(crate) fn test_completer() -> Completer {
    Completer {
        token: 0,
        completions: Arc::new(Completions {
            queue: Mutex::new(Vec::new()),
            wake: sys::new_eventfd().expect("eventfd"),
            shutdown: AtomicBool::new(false),
        }),
    }
}

/// The counters of every reactor serving one address, shared so the
/// `stats` verb can report per-reactor accept and back-pressure skew
/// from any reactor thread.
#[derive(Clone)]
pub struct ReactorRegistry {
    counters: Arc<Vec<Arc<Counters>>>,
}

impl ReactorRegistry {
    fn new(counters: Vec<Arc<Counters>>) -> ReactorRegistry {
        ReactorRegistry {
            counters: Arc::new(counters),
        }
    }

    /// Number of reactor threads serving this address.
    pub fn threads(&self) -> usize {
        self.counters.len()
    }

    /// Per-reactor counter snapshots, in reactor order.
    pub fn snapshot(&self) -> Vec<ReactorStats> {
        self.counters.iter().map(|c| c.snapshot()).collect()
    }
}

/// The per-request view a reactor hands to its [`Frontend`]: enough to
/// reply later ([`FrontendContext::completer`]) and to report the I/O
/// plane's shape in `stats` replies.
pub struct FrontendContext<'a> {
    token: u64,
    completions: &'a Arc<Completions>,
    registry: &'a ReactorRegistry,
}

impl FrontendContext<'_> {
    /// An owned ticket for replying to this request from another thread.
    pub fn completer(&self) -> Completer {
        Completer {
            token: self.token,
            completions: Arc::clone(self.completions),
        }
    }

    /// Number of reactor threads serving this listen address.
    pub fn reactor_threads(&self) -> usize {
        self.registry.threads()
    }

    /// Per-reactor counter snapshots, in reactor order.
    pub fn reactor_stats(&self) -> Vec<ReactorStats> {
        self.registry.snapshot()
    }
}

/// What a reactor serves: one request line in, one reply line out.
///
/// Return `Some(reply)` to answer inline on the reactor thread (counter
/// snapshots, control-plane verbs, parse errors). Return `None` after
/// arranging for a [`Completer`] taken from the context to be completed
/// elsewhere — the reactor then counts the request as in-flight for
/// back-pressure until the completion arrives.
pub trait Frontend: Send + Sync {
    /// Handle one newline-framed request line (newline stripped).
    fn handle(&self, line: &str, ctx: &FrontendContext<'_>) -> Option<String>;
}

const TOKEN_LISTENER: u64 = 0;
const TOKEN_WAKE: u64 = 1;
const FIRST_CONN_TOKEN: u64 = 2;

/// Per-connection state: the socket plus read/write buffers.
struct Conn {
    stream: TcpStream,
    /// Bytes read but not yet terminated by a newline.
    rbuf: Vec<u8>,
    /// Rendered response bytes not yet accepted by the socket.
    wbuf: Vec<u8>,
    /// Consumed prefix of `wbuf` (compacted periodically).
    wpos: usize,
    /// Predictions submitted to the worker pool, not yet replied.
    inflight: usize,
    /// Event mask currently registered with epoll.
    interest: u32,
    /// Peer sent FIN (or line limit hit): no more reads, flush and close.
    read_closed: bool,
}

impl Conn {
    fn pending_bytes(&self) -> usize {
        self.wbuf.len() - self.wpos
    }
}

/// An event-driven TCP server over one [`Frontend`] (typically an
/// [`AtlasService`]; the shard proxy is the other implementation).
pub struct Reactor {
    frontend: Arc<dyn Frontend>,
    listener: TcpListener,
    cfg: ReactorConfig,
    completions: Arc<Completions>,
    counters: Arc<Counters>,
    registry: ReactorRegistry,
}

/// Control handle of a reactor running on its own thread.
pub struct ReactorHandle {
    addr: SocketAddr,
    completions: Arc<Completions>,
    counters: Arc<Counters>,
    thread: Option<thread::JoinHandle<io::Result<()>>>,
}

impl ReactorHandle {
    /// The bound listen address (resolved, so port 0 becomes concrete).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Counter snapshot.
    pub fn stats(&self) -> ReactorStats {
        self.counters.snapshot()
    }

    /// Stop the event loop, close every connection, and join the thread.
    ///
    /// # Errors
    ///
    /// The I/O error that terminated the loop, if it did not exit
    /// cleanly.
    pub fn shutdown(mut self) -> io::Result<()> {
        self.begin_shutdown();
        match self.thread.take() {
            Some(t) => t
                .join()
                .unwrap_or_else(|_| Err(io::Error::other("reactor thread panicked"))),
            None => Ok(()),
        }
    }

    fn begin_shutdown(&self) {
        self.completions.shutdown.store(true, Ordering::SeqCst);
        sys::eventfd_signal(self.completions.wake.0);
    }
}

impl Drop for ReactorHandle {
    fn drop(&mut self) {
        if let Some(t) = self.thread.take() {
            self.begin_shutdown();
            let _ = t.join();
        }
    }
}

impl Reactor {
    /// Bind a listener and prepare the event loop (which starts on
    /// [`Reactor::run`] or [`Reactor::spawn`]).
    ///
    /// # Errors
    ///
    /// Socket or eventfd creation failures.
    pub fn bind(
        frontend: Arc<dyn Frontend>,
        addr: impl ToSocketAddrs,
        cfg: ReactorConfig,
    ) -> io::Result<Reactor> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let counters = Arc::new(Counters::default());
        let registry = ReactorRegistry::new(vec![Arc::clone(&counters)]);
        Reactor::over(frontend, listener, cfg, counters, registry)
    }

    /// Wrap an already-bound non-blocking listener (used by
    /// [`ReactorPool`], where the listeners share a port and the
    /// registry spans every reactor).
    fn over(
        frontend: Arc<dyn Frontend>,
        listener: TcpListener,
        cfg: ReactorConfig,
        counters: Arc<Counters>,
        registry: ReactorRegistry,
    ) -> io::Result<Reactor> {
        let completions = Arc::new(Completions {
            queue: Mutex::new(Vec::new()),
            wake: sys::new_eventfd()?,
            shutdown: AtomicBool::new(false),
        });
        Ok(Reactor {
            frontend,
            listener,
            cfg,
            completions,
            counters,
            registry,
        })
    }

    /// The bound listen address.
    ///
    /// # Errors
    ///
    /// Propagates `TcpListener::local_addr` failures.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Counter snapshot (shareable before `run`/`spawn`).
    pub fn stats(&self) -> ReactorStats {
        self.counters.snapshot()
    }

    /// Run the event loop on the current thread until shut down or a
    /// fatal I/O error. The `serve` binary calls this from `main`, so a
    /// TCP server uses exactly `workers + 1` threads.
    ///
    /// # Errors
    ///
    /// Fatal epoll failures (per-connection errors just close that
    /// connection).
    pub fn run(self) -> io::Result<()> {
        Loop::new(self)?.run()
    }

    /// Run the event loop on a dedicated thread, returning a handle for
    /// address lookup, stats, and shutdown.
    ///
    /// # Errors
    ///
    /// Address resolution failures before the thread starts.
    pub fn spawn(self) -> io::Result<ReactorHandle> {
        let addr = self.local_addr()?;
        let completions = Arc::clone(&self.completions);
        let counters = Arc::clone(&self.counters);
        let thread = thread::Builder::new()
            .name("atlas-reactor".into())
            .spawn(move || self.run())?;
        Ok(ReactorHandle {
            addr,
            completions,
            counters,
            thread: Some(thread),
        })
    }
}

/// N reactors serving one listen address, each on its own thread with
/// its own epoll instance, listener, connection table, and wakeup.
///
/// Listeners are bound with `SO_REUSEPORT` so the kernel load-balances
/// accepts across reactors; where the option is unavailable the pool
/// falls back to dup'd handles of one listener (a shared accept queue).
pub struct ReactorPool {
    reactors: Vec<Reactor>,
    addr: SocketAddr,
    registry: ReactorRegistry,
    /// False when the `SO_REUSEPORT` path was refused and the pool fell
    /// back to a shared accept queue.
    reuseport: bool,
}

impl ReactorPool {
    /// Bind `threads` reactors on `addr` (port 0 resolves once and every
    /// reactor shares the concrete port).
    ///
    /// # Errors
    ///
    /// Socket or eventfd creation failures. A refused `SO_REUSEPORT` is
    /// not an error — the pool falls back to a shared accept queue.
    pub fn bind(
        frontend: Arc<dyn Frontend>,
        addr: impl ToSocketAddrs,
        cfg: ReactorConfig,
        threads: usize,
    ) -> io::Result<ReactorPool> {
        let threads = threads.max(1);
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::other("address resolved to nothing"))?;
        let (listeners, reuseport) = bind_listeners(addr, threads)?;
        let addr = listeners[0].local_addr()?;
        let counters: Vec<Arc<Counters>> = (0..listeners.len())
            .map(|_| Arc::new(Counters::default()))
            .collect();
        let registry = ReactorRegistry::new(counters.clone());
        let reactors = listeners
            .into_iter()
            .zip(counters)
            .map(|(listener, counters)| {
                Reactor::over(
                    Arc::clone(&frontend),
                    listener,
                    cfg.clone(),
                    counters,
                    registry.clone(),
                )
            })
            .collect::<io::Result<Vec<Reactor>>>()?;
        Ok(ReactorPool {
            reactors,
            addr,
            registry,
            reuseport,
        })
    }

    /// The bound listen address (resolved, so port 0 becomes concrete).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Whether the kernel accepted `SO_REUSEPORT` (false = shared
    /// accept-queue fallback).
    pub fn reuseport(&self) -> bool {
        self.reuseport
    }

    /// The shared per-reactor counter registry.
    pub fn registry(&self) -> ReactorRegistry {
        self.registry.clone()
    }

    /// Start every reactor on its own thread.
    ///
    /// # Errors
    ///
    /// Thread spawn failures (already-started reactors are shut down).
    pub fn spawn(self) -> io::Result<PoolHandle> {
        let addr = self.addr;
        let registry = self.registry;
        let mut handles = Vec::with_capacity(self.reactors.len());
        for (i, reactor) in self.reactors.into_iter().enumerate() {
            let completions = Arc::clone(&reactor.completions);
            let counters = Arc::clone(&reactor.counters);
            let thread = thread::Builder::new()
                .name(format!("atlas-reactor-{i}"))
                .spawn(move || reactor.run())?;
            handles.push(ReactorHandle {
                addr,
                completions,
                counters,
                thread: Some(thread),
            });
        }
        Ok(PoolHandle {
            addr,
            registry,
            handles,
        })
    }
}

/// Control handle of a running [`ReactorPool`].
pub struct PoolHandle {
    addr: SocketAddr,
    registry: ReactorRegistry,
    handles: Vec<ReactorHandle>,
}

impl PoolHandle {
    /// The bound listen address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Per-reactor counter snapshots, in reactor order.
    pub fn reactor_stats(&self) -> Vec<ReactorStats> {
        self.registry.snapshot()
    }

    /// Counters summed across reactors.
    pub fn stats(&self) -> ReactorStats {
        let mut total = ReactorStats::default();
        for s in self.registry.snapshot() {
            total.accepted += s.accepted;
            total.rejected += s.rejected;
            total.closed += s.closed;
            total.active += s.active;
            total.requests += s.requests;
            total.responses += s.responses;
            total.pauses += s.pauses;
        }
        total
    }

    /// Stop every reactor, close every connection, and join the threads.
    ///
    /// # Errors
    ///
    /// The first I/O error that terminated a loop, if any did not exit
    /// cleanly.
    pub fn shutdown(self) -> io::Result<()> {
        // Signal every loop before joining any, so they wind down in
        // parallel.
        for h in &self.handles {
            h.begin_shutdown();
        }
        let mut result = Ok(());
        for h in self.handles {
            let r = h.shutdown();
            if result.is_ok() {
                result = r;
            }
        }
        result
    }

    /// Block until every reactor thread exits (a fatal error or an
    /// external shutdown signal). Used by the `serve` binary, which
    /// parks `main` here.
    ///
    /// # Errors
    ///
    /// The first I/O error that terminated a loop.
    pub fn join(self) -> io::Result<()> {
        let mut result = Ok(());
        for mut h in self.handles {
            let r = match h.thread.take() {
                Some(t) => t
                    .join()
                    .unwrap_or_else(|_| Err(io::Error::other("reactor thread panicked"))),
                None => Ok(()),
            };
            if result.is_ok() {
                result = r;
            }
        }
        result
    }
}

/// Bind `n` listeners on one address: `SO_REUSEPORT` when the kernel
/// allows it, otherwise dup'd handles of a single listener. Returns the
/// listeners plus whether the reuseport path was taken.
fn bind_listeners(addr: SocketAddr, n: usize) -> io::Result<(Vec<TcpListener>, bool)> {
    if n > 1 {
        if let SocketAddr::V4(v4) = addr {
            if let Ok(first) = sys::reuseport_listener(v4) {
                // Port 0: learn the concrete port before binding the rest.
                let bound = first.local_addr()?;
                let mut listeners = vec![first];
                let concrete = match bound {
                    SocketAddr::V4(b) => b,
                    SocketAddr::V6(_) => unreachable!("IPv4 bind yields an IPv4 address"),
                };
                let mut ok = true;
                for _ in 1..n {
                    match sys::reuseport_listener(concrete) {
                        Ok(l) => listeners.push(l),
                        Err(_) => {
                            ok = false;
                            break;
                        }
                    }
                }
                if ok {
                    return Ok((listeners, true));
                }
                // Partial failure: drop what we bound and fall through to
                // the shared-queue fallback.
            }
        }
    }
    let first = TcpListener::bind(addr)?;
    first.set_nonblocking(true)?;
    let mut listeners = Vec::with_capacity(n);
    for _ in 1..n {
        let dup = first.try_clone()?;
        dup.set_nonblocking(true)?;
        listeners.push(dup);
    }
    listeners.insert(0, first);
    Ok((listeners, false))
}

/// The running event loop (private; built by [`Reactor::run`]).
struct Loop {
    frontend: Arc<dyn Frontend>,
    registry: ReactorRegistry,
    listener: TcpListener,
    cfg: ReactorConfig,
    completions: Arc<Completions>,
    counters: Arc<Counters>,
    ep: sys::OwnedFd,
    conns: HashMap<u64, Conn>,
    next_token: u64,
    /// Set after a non-transient `accept` failure (EMFILE/ENFILE fd
    /// exhaustion): the listener is disarmed and re-armed after a short
    /// timed wait, instead of level-triggered epoll busy-spinning on the
    /// still-pending backlog.
    accept_backoff: bool,
}

impl Loop {
    fn new(reactor: Reactor) -> io::Result<Loop> {
        let ep = sys::epoll_create()?;
        sys::ctl(
            ep.0,
            sys::EPOLL_CTL_ADD,
            reactor.listener.as_raw_fd(),
            sys::EPOLLIN,
            TOKEN_LISTENER,
        )?;
        sys::ctl(
            ep.0,
            sys::EPOLL_CTL_ADD,
            reactor.completions.wake.0,
            sys::EPOLLIN,
            TOKEN_WAKE,
        )?;
        Ok(Loop {
            frontend: reactor.frontend,
            registry: reactor.registry,
            listener: reactor.listener,
            cfg: reactor.cfg,
            completions: reactor.completions,
            counters: reactor.counters,
            ep,
            conns: HashMap::new(),
            next_token: FIRST_CONN_TOKEN,
            accept_backoff: false,
        })
    }

    fn run(mut self) -> io::Result<()> {
        let mut events = [sys::EpollEvent { events: 0, data: 0 }; 256];
        loop {
            let timeout_ms = if self.accept_backoff { 50 } else { -1 };
            let n = sys::wait(self.ep.0, &mut events, timeout_ms)?;
            if self.accept_backoff {
                // Re-arm the listener after the cool-down (fds may have
                // been freed by closed connections in the meantime).
                self.accept_backoff = false;
                let _ = sys::ctl(
                    self.ep.0,
                    sys::EPOLL_CTL_MOD,
                    self.listener.as_raw_fd(),
                    sys::EPOLLIN,
                    TOKEN_LISTENER,
                );
                self.accept_ready();
            }
            for ev in &events[..n] {
                // Copy out of the possibly-packed struct before use.
                let (token, bits) = (ev.data, ev.events);
                match token {
                    TOKEN_LISTENER => self.accept_ready(),
                    TOKEN_WAKE => {
                        for c in self.completions.drain() {
                            self.deliver(c);
                        }
                        if self.completions.shutdown.load(Ordering::SeqCst) {
                            // Close everything; undelivered replies are
                            // dropped with their connections.
                            let tokens: Vec<u64> = self.conns.keys().copied().collect();
                            for t in tokens {
                                self.close_conn(t);
                            }
                            return Ok(());
                        }
                    }
                    token => self.conn_ready(token, bits),
                }
            }
        }
    }

    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    if self.conns.len() >= self.cfg.max_connections {
                        self.counters.rejected.fetch_add(1, Ordering::Relaxed);
                        refuse(stream);
                        continue;
                    }
                    if self.admit(stream).is_err() {
                        continue;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e)
                    if matches!(e.raw_os_error(),
                        Some(code) if code == sys::EMFILE || code == sys::ENFILE) =>
                {
                    // Fd exhaustion: the pending backlog would re-fire
                    // EPOLLIN immediately and spin the loop. Disarm the
                    // listener and retry after a timed wait instead.
                    self.accept_backoff = true;
                    let _ = sys::ctl(
                        self.ep.0,
                        sys::EPOLL_CTL_MOD,
                        self.listener.as_raw_fd(),
                        0,
                        TOKEN_LISTENER,
                    );
                    break;
                }
                // Transient per-connection accept errors (ECONNABORTED &
                // friends): keep serving.
                Err(_) => break,
            }
        }
    }

    fn admit(&mut self, stream: TcpStream) -> io::Result<()> {
        stream.set_nonblocking(true)?;
        let _ = stream.set_nodelay(true);
        let token = self.next_token;
        self.next_token += 1;
        let interest = sys::EPOLLIN | sys::EPOLLRDHUP;
        sys::ctl(
            self.ep.0,
            sys::EPOLL_CTL_ADD,
            stream.as_raw_fd(),
            interest,
            token,
        )?;
        self.conns.insert(
            token,
            Conn {
                stream,
                rbuf: Vec::new(),
                wbuf: Vec::new(),
                wpos: 0,
                inflight: 0,
                interest,
                read_closed: false,
            },
        );
        self.counters.accepted.fetch_add(1, Ordering::Relaxed);
        self.counters.active.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn conn_ready(&mut self, token: u64, bits: u32) {
        if bits & (sys::EPOLLERR | sys::EPOLLHUP) != 0 {
            self.close_conn(token);
            return;
        }
        if bits & sys::EPOLLOUT != 0 && !self.flush(token) {
            return;
        }
        if bits & (sys::EPOLLIN | sys::EPOLLRDHUP) != 0 {
            self.read_ready(token);
        }
    }

    /// Pull everything the socket has, splitting complete lines into
    /// requests. Returns nothing; closes the connection on fatal errors.
    fn read_ready(&mut self, token: u64) {
        let mut chunk = [0u8; 8192];
        loop {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            if conn.read_closed {
                return;
            }
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    // Peer sent FIN. Finish in-flight work, then close.
                    conn.read_closed = true;
                    if conn.inflight == 0 && conn.pending_bytes() == 0 {
                        self.close_conn(token);
                    } else {
                        self.update_interest(token);
                    }
                    return;
                }
                Ok(n) => {
                    conn.rbuf.extend_from_slice(&chunk[..n]);
                    if !self.extract_lines(token) {
                        return;
                    }
                    // Back-pressure may have paused this connection.
                    let paused = self.conns.get(&token).is_some_and(|c| self.paused(c));
                    if paused {
                        self.update_interest(token);
                        return;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    self.update_interest(token);
                    return;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.close_conn(token);
                    return;
                }
            }
        }
    }

    /// Split `rbuf` on newlines and dispatch each complete request.
    /// Returns false when the connection was closed.
    fn extract_lines(&mut self, token: u64) -> bool {
        loop {
            let Some(conn) = self.conns.get_mut(&token) else {
                return false;
            };
            let Some(nl) = conn.rbuf.iter().position(|&b| b == b'\n') else {
                if conn.rbuf.len() > self.cfg.max_line_bytes {
                    // Framing is unrecoverable; answer and close.
                    let line = protocol::render_result(&Err((
                        None,
                        crate::error::ServeError::InvalidRequest(format!(
                            "request line exceeds {} bytes",
                            self.cfg.max_line_bytes
                        )),
                    )));
                    self.queue_line(token, line);
                    if let Some(conn) = self.conns.get_mut(&token) {
                        conn.read_closed = true;
                        conn.rbuf.clear();
                        if conn.inflight == 0 && conn.pending_bytes() == 0 {
                            self.close_conn(token);
                            return false;
                        }
                        self.update_interest(token);
                    }
                    return false;
                }
                return true;
            };
            let line_bytes: Vec<u8> = conn.rbuf.drain(..=nl).collect();
            let line = String::from_utf8_lossy(&line_bytes[..nl]).into_owned();
            if line.trim().is_empty() {
                continue;
            }
            self.dispatch(token, &line);
            if !self.conns.contains_key(&token) {
                return false;
            }
        }
    }

    /// Hand one request line to the frontend. `Some` replies are queued
    /// inline; `None` means the frontend captured a [`Completer`] and
    /// the reply will arrive through the completion queue — count it
    /// in-flight for back-pressure. The in-flight bump *after* `handle`
    /// returns is safe: completions are only drained by this same
    /// thread's event loop, so the reply cannot be delivered before the
    /// bump.
    fn dispatch(&mut self, token: u64, line: &str) {
        let ctx = FrontendContext {
            token,
            completions: &self.completions,
            registry: &self.registry,
        };
        match self.frontend.handle(line, &ctx) {
            Some(reply) => self.queue_line(token, reply),
            None => {
                if let Some(conn) = self.conns.get_mut(&token) {
                    conn.inflight += 1;
                }
                self.counters.requests.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// A reply (or one streamed frame of one) arrived from the worker
    /// pool. Only a *final* completion releases the request's in-flight
    /// slot; intermediate frames keep it held so a client streaming a
    /// large sweep still counts against `max_inflight`.
    fn deliver(&mut self, completion: Completion) {
        let Some(conn) = self.conns.get_mut(&completion.token) else {
            return; // connection closed while the request was in flight
        };
        if completion.last {
            conn.inflight = conn.inflight.saturating_sub(1);
        }
        self.queue_line(completion.token, completion.line);
        if let Some(conn) = self.conns.get(&completion.token) {
            if conn.read_closed && conn.inflight == 0 && conn.pending_bytes() == 0 {
                self.close_conn(completion.token);
            }
        }
    }

    /// Append one response line to the connection's write buffer and try
    /// to flush immediately (the common, uncongested case).
    fn queue_line(&mut self, token: u64, line: String) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        conn.wbuf.extend_from_slice(line.as_bytes());
        conn.wbuf.push(b'\n');
        self.flush(token);
    }

    /// Write as much buffered output as the socket accepts. Returns false
    /// when the connection was closed.
    fn flush(&mut self, token: u64) -> bool {
        let mut close = false;
        let mut written_lines = 0u64;
        {
            let Some(conn) = self.conns.get_mut(&token) else {
                return false;
            };
            while conn.wpos < conn.wbuf.len() {
                match conn.stream.write(&conn.wbuf[conn.wpos..]) {
                    Ok(0) => {
                        close = true;
                        break;
                    }
                    Ok(n) => {
                        written_lines += count_newlines(&conn.wbuf[conn.wpos..conn.wpos + n]);
                        conn.wpos += n;
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => {
                        close = true;
                        break;
                    }
                }
            }
            if conn.wpos == conn.wbuf.len() {
                conn.wbuf.clear();
                conn.wpos = 0;
            } else if conn.wpos > (64 << 10) {
                conn.wbuf.drain(..conn.wpos);
                conn.wpos = 0;
            }
            if conn.read_closed && conn.inflight == 0 && conn.pending_bytes() == 0 {
                close = true;
            }
        }
        self.counters
            .responses
            .fetch_add(written_lines, Ordering::Relaxed);
        if close {
            self.close_conn(token);
            return false;
        }
        self.update_interest(token);
        true
    }

    /// Whether back-pressure should keep this connection's reads off.
    fn paused(&self, conn: &Conn) -> bool {
        conn.inflight >= self.cfg.max_inflight || conn.pending_bytes() >= self.cfg.write_high_water
    }

    /// Whether a previously-paused connection has drained enough to read
    /// again (hysteresis at half the thresholds to avoid flapping).
    fn resumable(&self, conn: &Conn) -> bool {
        conn.inflight < self.cfg.max_inflight.div_ceil(2)
            && conn.pending_bytes() < self.cfg.write_high_water / 2
    }

    /// Reconcile the epoll registration with the connection's state.
    fn update_interest(&mut self, token: u64) {
        let Some(conn) = self.conns.get(&token) else {
            return;
        };
        let reading = conn.interest & sys::EPOLLIN != 0;
        let want_read = !conn.read_closed
            && if reading {
                !self.paused(conn)
            } else {
                self.resumable(conn)
            };
        let mut want = sys::EPOLLRDHUP;
        if want_read {
            want |= sys::EPOLLIN;
        }
        if conn.pending_bytes() > 0 {
            want |= sys::EPOLLOUT;
        }
        if want != conn.interest {
            // Count only genuine back-pressure pauses, not the EPOLLIN
            // drop that naturally follows a client's FIN.
            if reading && !want_read && !conn.read_closed {
                self.counters.pauses.fetch_add(1, Ordering::Relaxed);
            }
            let fd = conn.stream.as_raw_fd();
            if sys::ctl(self.ep.0, sys::EPOLL_CTL_MOD, fd, want, token).is_ok() {
                if let Some(conn) = self.conns.get_mut(&token) {
                    conn.interest = want;
                }
            } else {
                self.close_conn(token);
            }
        }
    }

    fn close_conn(&mut self, token: u64) {
        if let Some(conn) = self.conns.remove(&token) {
            let _ = sys::ctl_del(self.ep.0, conn.stream.as_raw_fd());
            self.counters.closed.fetch_add(1, Ordering::Relaxed);
            self.counters.active.fetch_sub(1, Ordering::Relaxed);
            // Dropping the TcpStream closes the socket.
        }
    }
}

fn count_newlines(bytes: &[u8]) -> u64 {
    bytes.iter().filter(|&&b| b == b'\n').count() as u64
}

/// The service behind the front door: predictions to the worker pool
/// (replied through the [`Completer`]); `stats`, `models`,
/// `load_model`, `unload_model`, `register_workload`, `workloads`,
/// `load_design`, and `shard_map` answered inline (they are counter
/// snapshots or rare control-plane mutations and never need a worker —
/// `load_model` does read a model file and `load_design` does parse a
/// size-capped netlist on the reactor thread, an accepted cost for
/// operator-frequency verbs); parse errors answered inline.
impl Frontend for AtlasService {
    fn handle(&self, line: &str, ctx: &FrontendContext<'_>) -> Option<String> {
        match protocol::parse_line(line) {
            Ok(RequestLine::Predict(request)) => {
                let completer = ctx.completer();
                self.submit_with(request, move |reply| {
                    completer.complete(protocol::render_result(&reply));
                });
                None
            }
            Ok(RequestLine::PredictDelta(request)) => {
                let completer = ctx.completer();
                self.submit_delta_with(request, move |reply| {
                    completer.complete(protocol::render_delta_result(&reply));
                });
                None
            }
            Ok(RequestLine::Sweep(request)) => sweep(self, request, ctx),
            Ok(RequestLine::Stats { id }) => {
                let mut stats = protocol::stats_response(id, &self.stats());
                stats.reactor_threads = ctx.reactor_threads();
                stats.reactors = ctx.reactor_stats();
                Some(protocol::render_stats(&stats))
            }
            Ok(RequestLine::Models { id }) => Some(protocol::render_line(
                &protocol::models_response(id, self.default_model(), self.models()),
            )),
            Ok(RequestLine::ShardMap { id }) => {
                // A plain serve process is not a router: it reports its
                // own shard id and an empty ring. The proxy frontend in
                // `shard` answers with the full ring.
                Some(protocol::render_line(&protocol::ShardMapResponse {
                    id,
                    verb: "shard_map".to_owned(),
                    shard_id: self.shard_id(),
                    shards: Vec::new(),
                }))
            }
            Ok(RequestLine::LoadModel(req)) => {
                let line = match self.load_model_file(&req.name, &req.path) {
                    Ok(model) => protocol::render_line(&protocol::LoadModelResponse {
                        id: req.id,
                        verb: "load_model".to_owned(),
                        model,
                        default_model: self.default_model().to_owned(),
                    }),
                    Err(e) => protocol::render_result(&Err((req.id, e))),
                };
                Some(line)
            }
            Ok(RequestLine::UnloadModel(req)) => {
                let line = match self.unload_model(&req.name) {
                    Ok(()) => protocol::render_line(&protocol::UnloadModelResponse {
                        id: req.id,
                        verb: "unload_model".to_owned(),
                        name: req.name,
                    }),
                    Err(e) => protocol::render_result(&Err((req.id, e))),
                };
                Some(line)
            }
            Ok(RequestLine::Workloads { id }) => Some(protocol::render_line(
                &protocol::workloads_response(id, self.workloads()),
            )),
            Ok(RequestLine::RegisterWorkload(req)) => {
                let line = match self.register_workload(&req.name, req.phases) {
                    Ok((workload, replaced)) => {
                        protocol::render_line(&protocol::RegisterWorkloadResponse {
                            id: req.id,
                            verb: "register_workload".to_owned(),
                            workload,
                            replaced,
                        })
                    }
                    Err(e) => protocol::render_result(&Err((req.id, e))),
                };
                Some(line)
            }
            Ok(RequestLine::LoadDesign(req)) => {
                let line = match self.load_design(&req.name, &req.verilog) {
                    Ok(design) => protocol::render_line(&protocol::LoadDesignResponse {
                        id: req.id,
                        verb: "load_design".to_owned(),
                        design,
                    }),
                    Err(e) => protocol::render_result(&Err((req.id, e))),
                };
                Some(line)
            }
            Err(e) => {
                let id = protocol::salvage_id(line);
                Some(protocol::render_result(&Err((id, e))))
            }
        }
    }
}

/// Run one `sweep` request: fan its items out to the worker pool and
/// stream the reply back as frames — `start` synchronously, one `item`
/// (+ bounded `series` chunks) or `error` frame per schedule as each
/// finishes, and a final `end` frame once every item reported. Items of
/// one sweep share the design-side work through the per-design cache
/// (the first item to miss builds it; single-flight coalesces ties), and
/// no frame ever carries more than [`protocol::MAX_SERIES_CHUNK`]
/// per-cycle values, so a 10k-cycle sweep never materializes one giant
/// response line in the reactor.
fn sweep(
    service: &AtlasService,
    request: protocol::SweepRequest,
    ctx: &FrontendContext<'_>,
) -> Option<String> {
    use std::sync::atomic::AtomicUsize;

    let invalid = |msg: String| {
        Some(protocol::render_result(&Err((
            request.id,
            crate::error::ServeError::InvalidRequest(msg),
        ))))
    };
    let items = request.items.len();
    if items == 0 {
        return invalid("a sweep needs at least one item".to_owned());
    }
    if items > protocol::MAX_SWEEP_ITEMS {
        return invalid(format!(
            "sweep has {items} items, limit is {}",
            protocol::MAX_SWEEP_ITEMS
        ));
    }
    let chunk = request
        .chunk_cycles
        .unwrap_or(protocol::DEFAULT_SERIES_CHUNK)
        .clamp(1, protocol::MAX_SERIES_CHUNK);
    let completer = Arc::new(ctx.completer());
    completer.stream(protocol::render_line(&protocol::SweepStartFrame {
        id: request.id,
        verb: "sweep".to_owned(),
        frame: "start".to_owned(),
        items,
    }));
    let remaining = Arc::new(AtomicUsize::new(items));
    let errors = Arc::new(AtomicUsize::new(0));
    let started = std::time::Instant::now();
    for (item, spec) in request.items.into_iter().enumerate() {
        let predict = protocol::PredictRequest {
            id: request.id,
            model: request.model.clone(),
            design: request.design.clone(),
            workload: spec.workload,
            workload_name: spec.workload_name,
            cycles: request.cycles,
            phases: spec.phases,
        };
        let id = request.id;
        let completer = Arc::clone(&completer);
        let remaining = Arc::clone(&remaining);
        let errors = Arc::clone(&errors);
        service.submit_with(predict, move |reply| {
            match reply {
                Ok(response) => {
                    completer.stream(protocol::render_line(&protocol::SweepItemFrame {
                        id,
                        verb: "sweep".to_owned(),
                        frame: "item".to_owned(),
                        item,
                        workload: response.workload,
                        cache_hit: response.cache_hit,
                        design_cache_hit: response.design_cache_hit,
                        mean_total_w: response.mean_total_w,
                        peak_total_w: response.peak_total_w,
                        groups: response.groups,
                    }));
                    let series = response.per_cycle_total_w;
                    let total_cycles = series.len();
                    let mut offset = 0;
                    while offset < total_cycles {
                        let end = (offset + chunk).min(total_cycles);
                        completer.stream(protocol::render_line(&protocol::SweepSeriesFrame {
                            id,
                            verb: "sweep".to_owned(),
                            frame: "series".to_owned(),
                            item,
                            offset,
                            total_cycles,
                            per_cycle_total_w: series[offset..end].to_vec(),
                        }));
                        offset = end;
                    }
                }
                Err((_, e)) => {
                    errors.fetch_add(1, Ordering::Relaxed);
                    completer.stream(protocol::render_line(&protocol::SweepErrorFrame {
                        id,
                        verb: "sweep".to_owned(),
                        frame: "error".to_owned(),
                        item,
                        error: e.to_string(),
                        kind: e.kind().to_owned(),
                    }));
                }
            }
            // The last item to finish — in any order — seals the sweep.
            if remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                completer.complete(protocol::render_line(&protocol::SweepEndFrame {
                    id,
                    verb: "sweep".to_owned(),
                    frame: "end".to_owned(),
                    items,
                    errors: errors.load(Ordering::Acquire),
                    latency_ms: started.elapsed().as_secs_f64() * 1e3,
                }));
            }
        });
    }
    None
}

/// Best-effort one-line refusal for connections over the limit. The
/// socket is fresh, so the handful of bytes lands in the send buffer
/// without blocking.
fn refuse(mut stream: TcpStream) {
    let line = serde_json::to_string(&ErrorResponse {
        id: None,
        error: "connection limit reached".to_owned(),
        kind: "overloaded".to_owned(),
    })
    .unwrap_or_default();
    let _ = stream.set_nonblocking(true);
    let _ = stream.write_all(line.as_bytes());
    let _ = stream.write_all(b"\n");
}

#[cfg(test)]
mod tests {
    use std::io::{BufRead, BufReader};

    use atlas_core::pipeline::{train_atlas, ExperimentConfig};

    use serde::Value;

    use super::*;
    use crate::protocol::{
        ModelsResponse, PredictDeltaResponse, PredictResponse, RegisterWorkloadResponse,
        StatsResponse, SweepItemFrame, SweepSeriesFrame, WorkloadsResponse,
    };
    use crate::ServiceConfig;

    /// Pull a string field out of a parsed frame (empty when absent).
    fn field_str<'a>(value: &'a Value, name: &str) -> &'a str {
        value
            .as_map()
            .and_then(|map| map.iter().find(|(k, _)| k == name))
            .and_then(|(_, v)| match v {
                Value::Str(s) => Some(s.as_str()),
                _ => None,
            })
            .unwrap_or("")
    }

    /// Pull a numeric field out of a parsed frame (u64::MAX when absent).
    fn field_u64(value: &Value, name: &str) -> u64 {
        value
            .as_map()
            .and_then(|map| map.iter().find(|(k, _)| k == name))
            .and_then(|(_, v)| match v {
                Value::UInt(n) => Some(*n),
                Value::Int(n) if *n >= 0 => Some(*n as u64),
                _ => None,
            })
            .unwrap_or(u64::MAX)
    }

    /// A configuration small enough to train inside a unit test.
    fn micro_trained() -> (atlas_core::AtlasModel, ExperimentConfig) {
        let mut cfg = ExperimentConfig::quick();
        cfg.cycles = 12;
        cfg.scale = 0.12;
        cfg.pretrain.steps = 10;
        cfg.pretrain.hidden_dim = 12;
        cfg.finetune.cycles_per_design = 4;
        cfg.finetune.gbdt.n_estimators = 12;
        let trained = train_atlas(&cfg);
        (trained.model, cfg)
    }

    fn micro_service(workers: usize) -> Arc<AtlasService> {
        let (model, cfg) = micro_trained();
        Arc::new(AtlasService::start_with(
            model,
            cfg,
            ServiceConfig {
                workers,
                ..ServiceConfig::default()
            },
        ))
    }

    fn spawn_reactor(service: Arc<AtlasService>, cfg: ReactorConfig) -> ReactorHandle {
        Reactor::bind(service, "127.0.0.1:0", cfg)
            .expect("binds")
            .spawn()
            .expect("spawns")
    }

    fn send_line(stream: &mut TcpStream, line: &str) {
        let framed = format!("{line}\n");
        stream.write_all(framed.as_bytes()).expect("writes");
    }

    fn read_line(reader: &mut BufReader<TcpStream>) -> String {
        let mut line = String::new();
        reader.read_line(&mut line).expect("reads a line");
        line
    }

    #[test]
    fn serves_predictions_stats_and_errors_over_one_connection() {
        let handle = spawn_reactor(micro_service(2), ReactorConfig::default());
        let mut stream = TcpStream::connect(handle.addr()).expect("connects");
        let mut reader = BufReader::new(stream.try_clone().expect("clones"));

        send_line(
            &mut stream,
            r#"{"id":1,"design":"C2","workload":"W1","cycles":6}"#,
        );
        let resp: PredictResponse =
            serde_json::from_str(&read_line(&mut reader)).expect("prediction parses");
        assert_eq!(resp.id, Some(1));
        assert_eq!(resp.cycles, 6);
        assert!(resp.mean_total_w > 0.0);

        // Same key again: served from cache.
        send_line(
            &mut stream,
            r#"{"id":2,"design":"C2","workload":"W1","cycles":6}"#,
        );
        let warm: PredictResponse = serde_json::from_str(&read_line(&mut reader)).expect("parses");
        assert!(warm.cache_hit);
        assert_eq!(warm.per_cycle_total_w, resp.per_cycle_total_w);

        // Stats verb is answered inline with byte-budget fields.
        send_line(&mut stream, r#"{"id":3,"verb":"stats"}"#);
        let stats: StatsResponse =
            serde_json::from_str(&read_line(&mut reader)).expect("stats parses");
        assert_eq!(stats.id, Some(3));
        assert_eq!(stats.requests, 2);
        assert!(stats.embedding_cache.weight > 0);
        assert!(stats.embedding_cache.budget >= stats.embedding_cache.weight);

        // Bad JSON and unknown designs are typed per-line errors, not
        // connection teardowns.
        send_line(&mut stream, "not json");
        let err = read_line(&mut reader);
        assert!(err.contains("invalid_request"), "got: {err}");
        send_line(
            &mut stream,
            r#"{"id":4,"design":"C9","workload":"W1","cycles":6}"#,
        );
        let err = read_line(&mut reader);
        assert!(err.contains("unknown_design"), "got: {err}");

        // The catalog verbs are answered inline.
        send_line(&mut stream, r#"{"id":5,"verb":"models"}"#);
        let models: ModelsResponse =
            serde_json::from_str(&read_line(&mut reader)).expect("models parses");
        assert_eq!(models.id, Some(5));
        assert_eq!(models.default_model, "default");
        assert_eq!(models.models.len(), 1);

        // Register a workload, list it, then use it by name — the second
        // use is a cache hit.
        send_line(
            &mut stream,
            r#"{"id":6,"verb":"register_workload","name":"spiky",
                "phases":[{"activity":0.6,"min_len":1,"max_len":3}]}"#
                .replace('\n', " ")
                .trim(),
        );
        let reg: RegisterWorkloadResponse =
            serde_json::from_str(&read_line(&mut reader)).expect("registration parses");
        assert_eq!(reg.id, Some(6));
        assert_eq!(reg.workload.name, "spiky");
        assert!(!reg.replaced);
        send_line(&mut stream, r#"{"id":7,"verb":"workloads"}"#);
        let listed: WorkloadsResponse =
            serde_json::from_str(&read_line(&mut reader)).expect("workloads parses");
        assert_eq!(listed.workloads.len(), 1);
        assert_eq!(listed.presets, vec!["W1".to_owned(), "W2".to_owned()]);
        send_line(
            &mut stream,
            r#"{"id":8,"design":"C2","workload_name":"spiky","cycles":6}"#,
        );
        let cold: PredictResponse =
            serde_json::from_str(&read_line(&mut reader)).expect("registered predict parses");
        assert_eq!(cold.workload, "spiky");
        assert!(!cold.cache_hit);
        send_line(
            &mut stream,
            r#"{"id":9,"design":"C2","workload_name":"spiky","cycles":6}"#,
        );
        let warm: PredictResponse = serde_json::from_str(&read_line(&mut reader)).expect("parses");
        assert!(
            warm.cache_hit,
            "registered workload reuse must hit the cache"
        );

        // An unknown registered name is a structured unknown_workload
        // error that preserves the request id — not a generic parse error.
        send_line(
            &mut stream,
            r#"{"id":10,"design":"C2","workload_name":"nope","cycles":6}"#,
        );
        let err = read_line(&mut reader);
        assert!(err.contains("\"kind\":\"unknown_workload\""), "got: {err}");
        assert!(
            err.contains("\"id\":10"),
            "id must be preserved, got: {err}"
        );
        assert!(err.contains("nope"), "got: {err}");

        drop(stream);
        drop(reader);
        let stats = handle.stats();
        assert_eq!(stats.accepted, 1);
        assert_eq!(stats.requests, 6);
        handle.shutdown().expect("clean shutdown");
    }

    /// The `predict_delta` and `sweep` verbs over the wire: a delta
    /// against a warm base, a sweep streamed as chunked frames (start /
    /// item / series / error / end), and malformed edit specs answered
    /// with typed errors that preserve the request id.
    #[test]
    fn predict_delta_and_sweep_stream_over_the_wire() {
        let handle = spawn_reactor(micro_service(2), ReactorConfig::default());
        let mut stream = TcpStream::connect(handle.addr()).expect("connects");
        let mut reader = BufReader::new(stream.try_clone().expect("clones"));

        // Warm the base trace, then delta against it.
        send_line(
            &mut stream,
            r#"{"id":1,"design":"C2","workload":"W1","cycles":6}"#,
        );
        let base: PredictResponse =
            serde_json::from_str(&read_line(&mut reader)).expect("base parses");
        assert!(!base.cache_hit);
        send_line(
            &mut stream,
            r#"{"id":2,"verb":"predict_delta","design":"C2","workload":"W1","cycles":9,"base":{"cycles":6}}"#,
        );
        let delta: PredictDeltaResponse =
            serde_json::from_str(&read_line(&mut reader)).expect("delta parses");
        assert_eq!(delta.id, Some(2));
        assert_eq!(delta.verb, "predict_delta");
        assert!(delta.base_hit, "the 6-cycle base must be found warm");
        assert!(delta.reused_cycles > 0);
        assert_eq!(delta.per_cycle_total_w.len(), 9);

        // A sweep whose chunk is smaller than the trace: the series must
        // arrive split across frames. Item 1 names an unknown registered
        // workload, so it answers as an `error` frame without sinking the
        // other item or the stream.
        send_line(
            &mut stream,
            r#"{"id":3,"verb":"sweep","design":"C2","cycles":6,"chunk_cycles":4,"items":[{"workload":"W1"},{"workload_name":"nope"}]}"#,
        );
        let mut frames: Vec<Value> = Vec::new();
        loop {
            let line = read_line(&mut reader);
            let value: Value = serde_json::from_str(&line).expect("frame parses");
            let done = field_str(&value, "frame") == "end";
            frames.push(value);
            if done {
                break;
            }
        }
        for frame in &frames {
            assert_eq!(field_u64(frame, "id"), 3, "every frame echoes the id");
            assert_eq!(field_str(frame, "verb"), "sweep");
        }
        assert_eq!(field_str(&frames[0], "frame"), "start");
        assert_eq!(field_u64(&frames[0], "items"), 2);
        let item: SweepItemFrame = {
            let value = frames
                .iter()
                .find(|f| field_str(f, "frame") == "item")
                .expect("one item frame");
            serde_json::from_str(&serde_json::to_string(value).expect("renders"))
                .expect("item frame parses")
        };
        assert_eq!(item.item, 0);
        assert_eq!(item.workload, "W1");
        assert!(item.cache_hit, "the W1/6 trace was warmed above");
        let series: Vec<SweepSeriesFrame> = frames
            .iter()
            .filter(|f| field_str(f, "frame") == "series")
            .map(|value| {
                serde_json::from_str(&serde_json::to_string(value).expect("renders"))
                    .expect("series frame parses")
            })
            .collect();
        assert_eq!(series.len(), 2, "6 cycles at chunk 4 is two frames");
        assert_eq!(
            (series[0].offset, series[0].per_cycle_total_w.len()),
            (0, 4)
        );
        assert_eq!(
            (series[1].offset, series[1].per_cycle_total_w.len()),
            (4, 2)
        );
        assert!(series.iter().all(|s| s.item == 0 && s.total_cycles == 6));
        let errors: Vec<&Value> = frames
            .iter()
            .filter(|f| field_str(f, "frame") == "error")
            .collect();
        assert_eq!(errors.len(), 1);
        assert_eq!(field_u64(errors[0], "item"), 1);
        assert_eq!(field_str(errors[0], "kind"), "unknown_workload");
        let end = frames.last().expect("end frame");
        assert_eq!(field_u64(end, "items"), 2);
        assert_eq!(field_u64(end, "errors"), 1);

        // Malformed edit specs: a self-contradictory base and a
        // wrong-typed hint both answer typed errors carrying the id.
        send_line(
            &mut stream,
            r#"{"id":4,"verb":"predict_delta","design":"C2","workload":"W1","cycles":6,"base":{"workload_name":"x","phases":[{"activity":0.5,"min_len":1,"max_len":2}]}}"#,
        );
        let err = read_line(&mut reader);
        assert!(err.contains("\"kind\":\"invalid_request\""), "got: {err}");
        assert!(err.contains("\"id\":4"), "id must be preserved, got: {err}");
        send_line(
            &mut stream,
            r#"{"id":5,"verb":"predict_delta","design":"C2","workload":"W1","cycles":6,"changed_submodules":"all"}"#,
        );
        let err = read_line(&mut reader);
        assert!(err.contains("\"kind\":\"invalid_request\""), "got: {err}");
        assert!(err.contains("\"id\":5"), "id must be preserved, got: {err}");
        // And an empty sweep is refused up front, before any frame.
        send_line(
            &mut stream,
            r#"{"id":6,"verb":"sweep","design":"C2","cycles":6,"items":[]}"#,
        );
        let err = read_line(&mut reader);
        assert!(err.contains("\"kind\":\"invalid_request\""), "got: {err}");
        assert!(err.contains("\"id\":6"), "id must be preserved, got: {err}");

        drop(stream);
        drop(reader);
        handle.shutdown().expect("clean shutdown");
    }

    /// The control-plane verbs over the wire: hot load (including a
    /// wrong-format-version rejection that preserves the request id,
    /// mirroring the `unknown_workload` tests), routed prediction on the
    /// loaded model, and structured unload errors for unknown and
    /// default models.
    #[test]
    fn load_and_unload_model_verbs_over_the_wire() {
        let (model, cfg) = micro_trained();
        let service = Arc::new(AtlasService::start_with(
            model.clone(),
            cfg.clone(),
            ServiceConfig {
                workers: 2,
                ..ServiceConfig::default()
            },
        ));
        // A valid model file and a wrong-format-version tampering of it.
        let dir = std::env::temp_dir().join(format!("atlas-wire-reload-{}", std::process::id()));
        let registry = crate::registry::ModelRegistry::open(&dir).expect("registry opens");
        let good = registry.save("hot", &model, &cfg).expect("saves");
        let json = std::fs::read_to_string(&good).expect("readable");
        let bad = dir.join("future.atlas.json");
        let marker = format!("\"format_version\":{}", crate::registry::FORMAT_VERSION);
        let tampered = json.replace(
            &marker,
            &format!("\"format_version\":{}", crate::registry::FORMAT_VERSION + 1),
        );
        assert_ne!(json, tampered, "version marker must exist in the file");
        std::fs::write(&bad, tampered).expect("writable");

        let handle = spawn_reactor(service, ReactorConfig::default());
        let mut stream = TcpStream::connect(handle.addr()).expect("connects");
        let mut reader = BufReader::new(stream.try_clone().expect("clones"));

        // Wrong version: a structured `registry` error with the id echoed
        // — never a connection teardown.
        send_line(
            &mut stream,
            &format!(
                r#"{{"id":21,"verb":"load_model","name":"hot","path":"{}"}}"#,
                bad.display()
            ),
        );
        let err = read_line(&mut reader);
        assert!(err.contains("\"kind\":\"registry\""), "got: {err}");
        assert!(
            err.contains("\"id\":21"),
            "id must be preserved, got: {err}"
        );
        assert!(err.contains("format version"), "got: {err}");

        // A valid load is acknowledged and immediately routable.
        send_line(
            &mut stream,
            &format!(
                r#"{{"id":22,"verb":"load_model","name":"hot","path":"{}"}}"#,
                good.display()
            ),
        );
        let loaded: crate::protocol::LoadModelResponse =
            serde_json::from_str(&read_line(&mut reader)).expect("load_model parses");
        assert_eq!(loaded.id, Some(22));
        assert_eq!(loaded.model.name, "hot");
        assert_eq!(loaded.default_model, "default");
        send_line(&mut stream, r#"{"id":23,"verb":"models"}"#);
        let models: ModelsResponse =
            serde_json::from_str(&read_line(&mut reader)).expect("models parses");
        assert_eq!(models.models.len(), 2);
        send_line(
            &mut stream,
            r#"{"id":24,"design":"C2","workload":"W1","cycles":6,"model":"hot"}"#,
        );
        let resp: PredictResponse =
            serde_json::from_str(&read_line(&mut reader)).expect("routed predict parses");
        assert_eq!(resp.model, "hot");
        assert!(resp.mean_total_w > 0.0);

        // Unload errors are structured and id-preserving.
        send_line(
            &mut stream,
            r#"{"id":25,"verb":"unload_model","name":"nope"}"#,
        );
        let err = read_line(&mut reader);
        assert!(err.contains("\"kind\":\"unknown_model\""), "got: {err}");
        assert!(err.contains("\"id\":25"), "got: {err}");
        send_line(
            &mut stream,
            r#"{"id":26,"verb":"unload_model","name":"default"}"#,
        );
        let err = read_line(&mut reader);
        assert!(err.contains("\"kind\":\"invalid_request\""), "got: {err}");
        assert!(err.contains("\"id\":26"), "got: {err}");

        // A real unload is acknowledged; the name stops routing.
        send_line(
            &mut stream,
            r#"{"id":27,"verb":"unload_model","name":"hot"}"#,
        );
        let unloaded: crate::protocol::UnloadModelResponse =
            serde_json::from_str(&read_line(&mut reader)).expect("unload_model parses");
        assert_eq!(unloaded.id, Some(27));
        assert_eq!(unloaded.name, "hot");
        send_line(
            &mut stream,
            r#"{"id":28,"design":"C2","workload":"W1","cycles":6,"model":"hot"}"#,
        );
        let err = read_line(&mut reader);
        assert!(err.contains("\"kind\":\"unknown_model\""), "got: {err}");
        assert!(err.contains("\"id\":28"), "got: {err}");

        handle.shutdown().expect("clean shutdown");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The `load_design` verb over the wire: malformed bodies are
    /// structured `parse_error` replies (id preserved), oversize bodies
    /// are refused before parsing, duplicates are rejected, and a design
    /// uploaded over TCP predicts bit-identically to the same design
    /// loaded in-process.
    #[test]
    fn load_design_verb_over_the_wire() {
        use atlas_liberty::{CellClass, Drive};
        use atlas_netlist::NetlistBuilder;

        let (model, cfg) = micro_trained();
        let service = Arc::new(AtlasService::start_with(
            model,
            cfg,
            ServiceConfig {
                workers: 2,
                max_design_bytes: 4096,
                ..ServiceConfig::default()
            },
        ));
        let mut b = NetlistBuilder::new("wired");
        let sm = b.add_submodule("top.u0", "top");
        let a = b.add_input();
        let c = b.add_input();
        let x = b
            .add_cell(CellClass::Nor2, Drive::X1, &[a, c], sm)
            .expect("ok");
        let q = b.add_dff(x, sm).expect("ok");
        b.mark_output(q);
        let design = b.finish().expect("valid");
        let verilog = design.to_verilog();
        let body = serde_json::to_string(&verilog).expect("escapes");

        let handle = spawn_reactor(Arc::clone(&service), ReactorConfig::default());
        let mut stream = TcpStream::connect(handle.addr()).expect("connects");
        let mut reader = BufReader::new(stream.try_clone().expect("clones"));

        // A body that fails to parse is a structured parse_error with the
        // request id echoed — never a connection teardown.
        send_line(
            &mut stream,
            r#"{"id":40,"verb":"load_design","name":"junk","verilog":"not a netlist"}"#,
        );
        let err = read_line(&mut reader);
        assert!(err.contains("\"kind\":\"parse_error\""), "got: {err}");
        assert!(err.contains("\"id\":40"), "got: {err}");

        // An oversize body is refused before parsing (the cap here is
        // below the reactor's line limit, so the refusal is the
        // service's, with the id preserved).
        let oversize =
            serde_json::to_string(&format!("{verilog}{}", "/".repeat(4096))).expect("escapes");
        send_line(
            &mut stream,
            &format!(r#"{{"id":41,"verb":"load_design","name":"big","verilog":{oversize}}}"#),
        );
        let err = read_line(&mut reader);
        assert!(err.contains("\"kind\":\"invalid_request\""), "got: {err}");
        assert!(err.contains("\"id\":41"), "got: {err}");
        assert!(err.contains("bytes"), "got: {err}");

        // A valid upload is acknowledged with the stored identity.
        send_line(
            &mut stream,
            &format!(r#"{{"id":42,"verb":"load_design","name":"wired","verilog":{body}}}"#),
        );
        let loaded: crate::protocol::LoadDesignResponse =
            serde_json::from_str(&read_line(&mut reader)).expect("load_design parses");
        assert_eq!(loaded.id, Some(42));
        assert_eq!(loaded.design.name, "wired");
        assert_eq!(loaded.design.cells, design.cell_count());
        assert_eq!(loaded.design.nets, design.net_count());

        // Duplicate names are rejected, never replaced.
        send_line(
            &mut stream,
            &format!(r#"{{"id":43,"verb":"load_design","name":"wired","verilog":{body}}}"#),
        );
        let err = read_line(&mut reader);
        assert!(err.contains("\"kind\":\"invalid_request\""), "got: {err}");
        assert!(err.contains("\"id\":43"), "got: {err}");
        assert!(err.contains("already loaded"), "got: {err}");

        // The uploaded design predicts over the wire...
        send_line(
            &mut stream,
            r#"{"id":44,"design":"wired","workload":"W1","cycles":6}"#,
        );
        let uploaded: PredictResponse =
            serde_json::from_str(&read_line(&mut reader)).expect("uploaded predict parses");
        assert_eq!(uploaded.id, Some(44));
        assert_eq!(uploaded.design, "wired");
        assert!(uploaded.mean_total_w > 0.0);

        // ... bit-identically to the same design loaded in-process.
        let local = service
            .load_design_parsed("local", design)
            .expect("in-process load");
        assert_eq!(local.fingerprint, loaded.design.fingerprint);
        send_line(
            &mut stream,
            r#"{"id":45,"design":"local","workload":"W1","cycles":6}"#,
        );
        let inproc: PredictResponse =
            serde_json::from_str(&read_line(&mut reader)).expect("in-process predict parses");
        assert_eq!(inproc.per_cycle_total_w, uploaded.per_cycle_total_w);
        assert_eq!(inproc.mean_total_w, uploaded.mean_total_w);

        handle.shutdown().expect("clean shutdown");
    }

    #[test]
    fn idle_connections_stay_parked_and_responsive() {
        // (The strict OS-thread-count assertion lives in the dedicated
        // tests/reactor_scale.rs process, where no parallel unit tests
        // can perturb /proc/self/status.)
        let handle = spawn_reactor(micro_service(2), ReactorConfig::default());
        let idle: Vec<TcpStream> = (0..96)
            .map(|_| TcpStream::connect(handle.addr()).expect("connects"))
            .collect();
        // Wait for the reactor to register them all.
        wait_until(|| handle.stats().active >= 96);

        // A request on the last connection still gets answered.
        let mut last = idle.into_iter().next_back().expect("nonempty");
        let mut reader = BufReader::new(last.try_clone().expect("clones"));
        send_line(
            &mut last,
            r#"{"id":9,"design":"C2","workload":"W2","cycles":5}"#,
        );
        let resp: PredictResponse = serde_json::from_str(&read_line(&mut reader)).expect("parses");
        assert_eq!(resp.id, Some(9));
        handle.shutdown().expect("clean shutdown");
    }

    #[test]
    fn connection_limit_refuses_with_overloaded_error() {
        let handle = spawn_reactor(
            micro_service(1),
            ReactorConfig {
                max_connections: 2,
                ..ReactorConfig::default()
            },
        );
        let _a = TcpStream::connect(handle.addr()).expect("connects");
        let _b = TcpStream::connect(handle.addr()).expect("connects");
        wait_until(|| handle.stats().active == 2);

        let over = TcpStream::connect(handle.addr()).expect("TCP accept still succeeds");
        let mut reader = BufReader::new(over);
        let line = read_line(&mut reader);
        assert!(line.contains("overloaded"), "got: {line}");
        // The refused socket is closed: next read returns EOF.
        let mut rest = String::new();
        reader.read_line(&mut rest).expect("EOF read");
        assert!(rest.is_empty());
        wait_until(|| handle.stats().rejected == 1);
        handle.shutdown().expect("clean shutdown");
    }

    #[test]
    fn backpressure_pauses_flooding_clients_and_recovers() {
        // One worker: completion order matches submission order, so the
        // in-order assertion below is deterministic.
        let handle = spawn_reactor(
            micro_service(1),
            ReactorConfig {
                max_inflight: 4,
                ..ReactorConfig::default()
            },
        );
        let mut stream = TcpStream::connect(handle.addr()).expect("connects");
        let mut reader = BufReader::new(stream.try_clone().expect("clones"));

        // Flood 64 requests without reading a single response.
        let n = 64;
        for i in 0..n {
            send_line(
                &mut stream,
                &format!(r#"{{"id":{i},"design":"C2","workload":"W1","cycles":5}}"#),
            );
        }
        // Every request is eventually answered, in order, and the
        // reactor paused the connection at least once along the way.
        for i in 0..n {
            let resp: PredictResponse =
                serde_json::from_str(&read_line(&mut reader)).expect("parses");
            assert_eq!(resp.id, Some(i));
        }
        let stats = handle.stats();
        assert_eq!(stats.requests, n);
        assert!(
            stats.pauses > 0,
            "flooding past max_inflight must trip back-pressure"
        );
        handle.shutdown().expect("clean shutdown");
    }

    fn wait_until(mut cond: impl FnMut() -> bool) {
        for _ in 0..2000 {
            if cond() {
                return;
            }
            thread::sleep(std::time::Duration::from_millis(1));
        }
        panic!("condition not reached within 2s");
    }
}
