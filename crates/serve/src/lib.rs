//! `atlas-serve` — the ATLAS model as a long-lived prediction service.
//!
//! The paper's value proposition is replacing an hours-long P&R +
//! simulation flow with a fast inference call; this crate packages that
//! call as an always-on, multi-model service instead of a one-shot
//! driver:
//!
//! * [`registry`] — versioned on-disk persistence for trained models
//!   (format version + config fingerprint headers, so a service refuses
//!   incompatible files instead of mis-loading them), and the
//!   [`ModelCatalog`] assembling several loaded models for serving;
//! * [`service`] — a std-thread worker pool routing requests across the
//!   catalog's named models, each with its own two-level LRU [`cache`]
//!   (design artifacts, then per-(design, workload, cycles) encoder
//!   embeddings under a **byte budget**), so repeat requests skip
//!   netlist generation, feature construction, and all encoder forwards;
//!   concurrent cold requests for one key are **single-flighted** into
//!   one computation and admitted through per-model **cold-compute
//!   quotas** ([`quota`]) so one model's cold storm cannot starve the
//!   rest; plus the server-side **workload library** (register a phase
//!   schedule once, reference it by name forever — optionally journaled
//!   to disk and replayed at startup), and the live control plane
//!   (`load_model`/`unload_model` mutate the hosted catalog without a
//!   restart);
//! * [`reactor`] — the non-blocking TCP front door: N epoll reactor
//!   threads (one by default), each with its own `SO_REUSEPORT`
//!   listener, connection table, and wakeup, multiplex thousands of
//!   connections with per-connection back-pressure, so idle clients
//!   cost buffers instead of threads; any [`reactor::Frontend`] can sit
//!   behind it;
//! * [`shard`] — horizontal scale-out: a consistent-hash ring routing
//!   trace keys across N serve processes, and the [`shard::ShardProxy`]
//!   frontend the `atlas-shard` binary serves (warm-start cache
//!   snapshots live in [`service`]:
//!   [`AtlasService::snapshot_cache`](service::AtlasService::snapshot_cache) /
//!   [`AtlasService::restore_cache`](service::AtlasService::restore_cache));
//! * [`protocol`] — the JSON-lines request/response wire format spoken
//!   over stdin/stdout or TCP by the `serve` binary: the `predict`,
//!   `stats`, `models`, `load_model`, `unload_model`,
//!   `register_workload`, `workloads`, `load_design`, and `shard_map`
//!   verbs (full reference in `docs/PROTOCOL.md`);
//! * [`error`] — typed errors ([`ServeError`]) replacing the panics of
//!   the batch drivers.
//!
//! The architecture document `docs/ARCHITECTURE.md` walks one request
//! through every layer listed above.
//!
//! # Quick start
//!
//! ```no_run
//! use atlas_core::pipeline::{train_atlas, ExperimentConfig};
//! use atlas_serve::{AtlasService, ModelRegistry, PredictRequest, ServiceConfig};
//!
//! let cfg = ExperimentConfig::quick();
//! let trained = train_atlas(&cfg);
//!
//! // Persist, reload, serve.
//! let registry = ModelRegistry::open("target/registry").unwrap();
//! registry.save("quick", &trained.model, &cfg).unwrap();
//! let saved = registry.load("quick").unwrap();
//! let service = AtlasService::start(saved, ServiceConfig::default());
//!
//! let response = service.call(PredictRequest::new("C2", "W1", 64)).unwrap();
//! println!("mean total: {:.3} W (cache hit: {})", response.mean_total_w, response.cache_hit);
//! ```
//!
//! # Hosting several models
//!
//! ```no_run
//! use atlas_serve::{AtlasService, ModelCatalog, ModelRegistry, PredictRequest, ServiceConfig};
//!
//! let registry = ModelRegistry::open("target/registry").unwrap();
//! let mut catalog = ModelCatalog::new();
//! catalog.load_spec(&registry, "stable=quick").unwrap();
//! catalog.load_spec(&registry, "canary=quick-v2").unwrap();
//! let service = AtlasService::start_catalog(catalog, ServiceConfig::default()).unwrap();
//!
//! // Requests route by name; without one they go to the default model.
//! let canary = service
//!     .call(PredictRequest::new("C2", "W1", 64).on_model("canary"))
//!     .unwrap();
//! assert_eq!(canary.model, "canary");
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod error;
pub mod protocol;
pub mod quota;
pub mod reactor;
pub mod registry;
pub mod service;
pub mod shard;

pub use cache::{CacheStats, LruCache};
pub use error::ServeError;
pub use protocol::{
    DeltaBase, ErrorResponse, GroupSummary, LoadDesignRequest, LoadDesignResponse,
    LoadModelRequest, LoadModelResponse, ModelsResponse, PredictDeltaRequest, PredictDeltaResponse,
    PredictRequest, PredictResponse, RegisterWorkloadRequest, RegisterWorkloadResponse,
    RequestLine, ShardInfo, ShardMapResponse, StatsResponse, SweepItem, SweepRequest,
    UnloadModelRequest, UnloadModelResponse, WorkloadsResponse,
};
pub use quota::{Admission, QuotaGate};
pub use reactor::{
    Frontend, PoolHandle, Reactor, ReactorConfig, ReactorHandle, ReactorPool, ReactorStats,
};
pub use registry::{ModelCatalog, ModelRegistry, RegistryError, SavedModel, FORMAT_VERSION};
pub use service::{
    parse_workload_journal, render_journal_entry, AtlasService, DeltaReply, DesignInfo, ModelInfo,
    ModelStats, RegisteredWorkload, Reply, ServiceConfig, ServiceStats, SnapshotRestoreReport,
    WorkloadJournalEntry,
};
pub use shard::{trace_route_key, ShardProxy, ShardRing};
