//! `atlas-serve` — the ATLAS model as a long-lived prediction service.
//!
//! The paper's value proposition is replacing an hours-long P&R +
//! simulation flow with a fast inference call; this crate packages that
//! call as an always-on service instead of a one-shot driver:
//!
//! * [`registry`] — versioned on-disk persistence for trained models
//!   (format version + config fingerprint headers, so a service refuses
//!   incompatible files instead of mis-loading them);
//! * [`service`] — a std-thread worker pool over a shared model with a
//!   two-level LRU [`cache`] (design artifacts, then per-(design,
//!   workload, cycles) encoder embeddings under a **byte budget**), so
//!   repeat requests skip netlist generation, feature construction, and
//!   all encoder forwards; concurrent cold requests for one key are
//!   **single-flighted** into one computation;
//! * [`reactor`] — the non-blocking TCP front door: one epoll thread
//!   multiplexes thousands of connections with per-connection
//!   back-pressure, so idle clients cost buffers instead of threads;
//! * [`protocol`] — the JSON-lines request/response wire format spoken
//!   over stdin/stdout or TCP by the `serve` binary, including the
//!   `stats` verb and inline phase-schedule workloads;
//! * [`error`] — typed errors ([`ServeError`]) replacing the panics of
//!   the batch drivers.
//!
//! # Quick start
//!
//! ```no_run
//! use atlas_core::pipeline::{train_atlas, ExperimentConfig};
//! use atlas_serve::{AtlasService, ModelRegistry, PredictRequest, ServiceConfig};
//!
//! let cfg = ExperimentConfig::quick();
//! let trained = train_atlas(&cfg);
//!
//! // Persist, reload, serve.
//! let registry = ModelRegistry::open("target/registry").unwrap();
//! registry.save("quick", &trained.model, &cfg).unwrap();
//! let saved = registry.load("quick").unwrap();
//! let service = AtlasService::start(saved, ServiceConfig::default());
//!
//! let response = service.call(PredictRequest::new("C2", "W1", 64)).unwrap();
//! println!("mean total: {:.3} W (cache hit: {})", response.mean_total_w, response.cache_hit);
//! ```

pub mod cache;
pub mod error;
pub mod protocol;
pub mod reactor;
pub mod registry;
pub mod service;

pub use cache::{CacheStats, LruCache};
pub use error::ServeError;
pub use protocol::{
    ErrorResponse, GroupSummary, PredictRequest, PredictResponse, RequestLine, StatsResponse,
};
pub use reactor::{Reactor, ReactorConfig, ReactorHandle, ReactorStats};
pub use registry::{ModelRegistry, RegistryError, SavedModel, FORMAT_VERSION};
pub use service::{AtlasService, Reply, ServiceConfig, ServiceStats};
