//! Per-model admission control for cold work: a counting gate with a
//! bounded parking queue.
//!
//! The worker pool is shared by every hosted model, so without a limit a
//! *cold storm* on one model — many concurrent requests that all need the
//! expensive simulate + encode pipeline — occupies every worker and
//! starves the other models' cheap warm requests. A [`QuotaGate`] bounds
//! how many workers one model may tie up in cold work at once:
//!
//! * [`QuotaGate::admit`] grants a slot while fewer than `quota` are
//!   running; otherwise it **parks** the work item (up to a bound) so the
//!   worker thread is immediately free for other models' requests;
//! * [`QuotaGate::release`] frees a slot and hands back one parked item
//!   for the caller to re-dispatch through the shared pool;
//! * beyond the parking bound, items are **rejected** outright — the
//!   structured `quota_exceeded` back-pressure signal of the wire
//!   protocol.
//!
//! The gate stores the parked payloads itself, so the park/grant decision
//! and the release/hand-back pairing are atomic under one mutex. That
//! gives the liveness invariant the serving layer relies on: an item is
//! only ever parked while `running == quota ≥ 1`, so there is always a
//! later `release` to pop it — no lost wakeups.
//!
//! The quota is passed *per call* rather than stored, because the fair
//! default share (`workers / hosted models`) changes as models are
//! hot-loaded and unloaded.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Outcome of one [`QuotaGate::admit`] call.
#[derive(Debug)]
pub enum Admission<T> {
    /// A slot was granted and the item handed back: run the work now and
    /// call [`QuotaGate::release`] when it finishes (use a drop guard so
    /// panics release too).
    Granted(T),
    /// The gate is saturated; the item was parked inside the gate. A
    /// later [`QuotaGate::release`] hands it back for re-dispatch.
    Parked,
    /// Both the gate and its parking queue are full; the item is handed
    /// back so the caller can answer with a structured rejection.
    Rejected(T),
}

/// A counting admission gate with a bounded parking queue (see the
/// module docs for the serving-layer role).
#[derive(Debug)]
pub struct QuotaGate<T> {
    max_parked: usize,
    inner: Mutex<Inner<T>>,
    queued: AtomicU64,
    rejected: AtomicU64,
}

#[derive(Debug)]
struct Inner<T> {
    running: usize,
    parked: VecDeque<T>,
}

impl<T> QuotaGate<T> {
    /// A gate parking at most `max_parked` items while saturated.
    pub fn new(max_parked: usize) -> QuotaGate<T> {
        QuotaGate {
            max_parked,
            inner: Mutex::new(Inner {
                running: 0,
                parked: VecDeque::new(),
            }),
            queued: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
        }
    }

    /// Try to occupy a slot under `quota` (clamped to ≥ 1): grant when
    /// below it, park the item when saturated, reject when the parking
    /// queue is full too.
    pub fn admit(&self, quota: usize, item: T) -> Admission<T> {
        let quota = quota.max(1);
        let mut inner = self.inner.lock().expect("quota gate lock");
        if inner.running < quota {
            inner.running += 1;
            return Admission::Granted(item);
        }
        if inner.parked.len() < self.max_parked {
            inner.parked.push_back(item);
            self.queued.fetch_add(1, Ordering::Relaxed);
            Admission::Parked
        } else {
            self.rejected.fetch_add(1, Ordering::Relaxed);
            Admission::Rejected(item)
        }
    }

    /// Free one granted slot and pop the oldest parked item, which the
    /// caller must re-dispatch (it re-enters [`QuotaGate::admit`] rather
    /// than inheriting the slot, so a raised quota takes effect and the
    /// work re-checks caches it may no longer need).
    pub fn release(&self) -> Option<T> {
        let mut inner = self.inner.lock().expect("quota gate lock");
        inner.running = inner.running.saturating_sub(1);
        inner.parked.pop_front()
    }

    /// Take every parked item (used on model unload and service
    /// shutdown, where no release may ever come for them).
    pub fn drain_parked(&self) -> Vec<T> {
        let mut inner = self.inner.lock().expect("quota gate lock");
        inner.parked.drain(..).collect()
    }

    /// Slots currently granted (and not yet released).
    pub fn running(&self) -> usize {
        self.inner.lock().expect("quota gate lock").running
    }

    /// Items currently parked.
    pub fn parked_len(&self) -> usize {
        self.inner.lock().expect("quota gate lock").parked.len()
    }

    /// Monotone count of items ever parked.
    pub fn queued_total(&self) -> u64 {
        self.queued.load(Ordering::Relaxed)
    }

    /// Monotone count of items ever rejected.
    pub fn rejected_total(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grants_until_quota_then_parks_then_rejects() {
        let gate: QuotaGate<u32> = QuotaGate::new(2);
        assert!(matches!(gate.admit(2, 1), Admission::Granted(1)));
        assert!(matches!(gate.admit(2, 2), Admission::Granted(2)));
        assert!(matches!(gate.admit(2, 3), Admission::Parked));
        assert!(matches!(gate.admit(2, 4), Admission::Parked));
        assert!(matches!(gate.admit(2, 5), Admission::Rejected(5)));
        assert_eq!(gate.running(), 2);
        assert_eq!(gate.parked_len(), 2);
        assert_eq!(gate.queued_total(), 2);
        assert_eq!(gate.rejected_total(), 1);
    }

    #[test]
    fn release_pops_parked_in_fifo_order() {
        let gate: QuotaGate<u32> = QuotaGate::new(8);
        assert!(matches!(gate.admit(1, 1), Admission::Granted(1)));
        assert!(matches!(gate.admit(1, 2), Admission::Parked));
        assert!(matches!(gate.admit(1, 3), Admission::Parked));
        assert_eq!(gate.release(), Some(2));
        assert_eq!(gate.running(), 0);
        // The popped item re-admits rather than inheriting the slot.
        assert!(matches!(gate.admit(1, 2), Admission::Granted(2)));
        assert_eq!(gate.release(), Some(3));
        assert_eq!(gate.release(), None);
        assert_eq!(gate.running(), 0);
    }

    #[test]
    fn zero_quota_is_clamped_to_one() {
        let gate: QuotaGate<u32> = QuotaGate::new(1);
        assert!(matches!(gate.admit(0, 1), Admission::Granted(1)));
        assert!(matches!(gate.admit(0, 2), Admission::Parked));
    }

    #[test]
    fn drain_takes_every_parked_item() {
        let gate: QuotaGate<u32> = QuotaGate::new(8);
        assert!(matches!(gate.admit(1, 1), Admission::Granted(1)));
        for i in 2..6 {
            assert!(matches!(gate.admit(1, i), Admission::Parked));
        }
        assert_eq!(gate.drain_parked(), vec![2, 3, 4, 5]);
        assert_eq!(gate.parked_len(), 0);
        // Running slots are untouched by a drain.
        assert_eq!(gate.running(), 1);
        assert_eq!(gate.release(), None);
    }

    #[test]
    fn raising_the_quota_takes_effect_on_the_next_admit() {
        let gate: QuotaGate<u32> = QuotaGate::new(8);
        assert!(matches!(gate.admit(1, 1), Admission::Granted(1)));
        assert!(matches!(gate.admit(1, 2), Admission::Parked));
        // Fair share grew (a model was unloaded): new work is granted
        // even though an item is still parked awaiting a release.
        assert!(matches!(gate.admit(2, 3), Admission::Granted(3)));
        assert_eq!(gate.running(), 2);
    }
}
