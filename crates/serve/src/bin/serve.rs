//! The `serve` binary: answer JSON-lines prediction requests over
//! stdin/stdout or TCP from a registry-loaded model.
//!
//! ```text
//! serve --registry DIR --model NAME [--workers N] [--cache-mb N]
//!       [--tcp ADDR] [--max-conns N]
//! serve --registry DIR --list
//! ```
//!
//! In stdio mode each stdin line is a request and each stdout line the
//! matching response; EOF shuts the service down. In TCP mode a single
//! epoll reactor thread multiplexes every connection (idle connections
//! cost a file descriptor, not a thread), so the whole process runs on
//! `--workers + 2` OS threads regardless of connection count.

use std::io::{BufRead, Write};
use std::process::ExitCode;
use std::sync::Arc;

use atlas_serve::reactor::{Reactor, ReactorConfig};
use atlas_serve::{protocol, AtlasService, ModelRegistry, RequestLine, ServiceConfig};

struct Args {
    registry: String,
    model: Option<String>,
    list: bool,
    workers: usize,
    cache_mb: usize,
    tcp: Option<String>,
    max_conns: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        registry: String::new(),
        model: None,
        list: false,
        workers: 4,
        cache_mb: 256,
        tcp: None,
        max_conns: ReactorConfig::default().max_connections,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--registry" => args.registry = value("--registry")?,
            "--model" => args.model = Some(value("--model")?),
            "--list" => args.list = true,
            "--workers" => {
                args.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?;
            }
            "--cache-mb" => {
                args.cache_mb = value("--cache-mb")?
                    .parse()
                    .map_err(|e| format!("--cache-mb: {e}"))?;
            }
            "--tcp" => args.tcp = Some(value("--tcp")?),
            "--max-conns" => {
                args.max_conns = value("--max-conns")?
                    .parse()
                    .map_err(|e| format!("--max-conns: {e}"))?;
            }
            "--help" | "-h" => {
                println!(
                    "usage: serve --registry DIR (--model NAME [--workers N] \
                     [--cache-mb N] [--tcp ADDR] [--max-conns N] | --list)"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if args.registry.is_empty() {
        return Err("--registry is required".into());
    }
    if !args.list && args.model.is_none() {
        return Err("either --model NAME or --list is required".into());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::FAILURE;
        }
    };

    let registry = match ModelRegistry::open(&args.registry) {
        Ok(registry) => registry,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    if args.list {
        match registry.list() {
            Ok(names) => {
                for name in names {
                    println!("{name}");
                }
                return ExitCode::SUCCESS;
            }
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let name = args.model.as_deref().expect("checked in parse_args");
    let saved = match registry.load(name) {
        Ok(saved) => saved,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "serving model `{name}` (config fingerprint {:#018x}) with {} workers",
        saved.header.config_fingerprint, args.workers
    );
    let service = Arc::new(AtlasService::start(
        saved,
        ServiceConfig {
            workers: args.workers,
            embedding_cache_bytes: args.cache_mb.saturating_mul(1 << 20),
            ..ServiceConfig::default()
        },
    ));

    match &args.tcp {
        Some(addr) => serve_tcp(service, addr, args.max_conns),
        None => {
            serve_stdio(&service);
            ExitCode::SUCCESS
        }
    }
}

/// One request line → one response line (the synchronous stdio path; the
/// TCP path goes through the reactor instead).
fn answer(service: &AtlasService, line: &str) -> String {
    match protocol::parse_line(line) {
        Ok(RequestLine::Predict(request)) => {
            let id = request.id;
            protocol::render_result(&service.call(request).map_err(|e| (id, e)))
        }
        Ok(RequestLine::Stats { id }) => {
            protocol::render_stats(&protocol::stats_response(id, &service.stats()))
        }
        Err(e) => protocol::render_result(&Err((protocol::salvage_id(line), e))),
    }
}

fn serve_stdio(service: &AtlasService) {
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let response = answer(service, &line);
        let mut out = stdout.lock();
        let _ = writeln!(out, "{response}");
        let _ = out.flush();
    }
    let stats = service.stats();
    eprintln!(
        "served {} requests ({} errors); embedding cache {}/{} hits, {}/{} bytes",
        stats.requests,
        stats.errors,
        stats.embedding_cache.hits,
        stats.embedding_cache.hits + stats.embedding_cache.misses,
        stats.embedding_cache.weight,
        stats.embedding_cache.budget,
    );
}

fn serve_tcp(service: Arc<AtlasService>, addr: &str, max_conns: usize) -> ExitCode {
    let reactor = match Reactor::bind(
        service,
        addr,
        ReactorConfig {
            max_connections: max_conns,
            ..ReactorConfig::default()
        },
    ) {
        Ok(reactor) => reactor,
        Err(e) => {
            eprintln!("error: bind {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match reactor.local_addr() {
        Ok(bound) => eprintln!("listening on {bound} (epoll reactor, max {max_conns} connections)"),
        Err(_) => eprintln!("listening on {addr}"),
    }
    // The reactor runs on the main thread, so the process stays at
    // workers + 1 OS threads regardless of connection count.
    match reactor.run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: reactor: {e}");
            ExitCode::FAILURE
        }
    }
}
